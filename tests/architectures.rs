//! Integration: the same AC pool mimics different architectures purely
//! through event routing (Figure 3), including mid-run elasticity and
//! AC failure with re-routing (§5 "Elasticity for Free").

use std::sync::Arc;

use anydb::common::metrics::Counter;
use anydb::common::{AcId, TxnId};
use anydb::core::component::AnyComponent;
use anydb::core::event::{Completion, DoneBatch, Event, OpDone, OpEnvelope, TxnTracker};
use anydb::core::strategy::payment_stage_groups;
use anydb::txn::sequencer::Sequencer;
use anydb::workload::tpcc::cols::warehouse;
use anydb::workload::tpcc::gen::TxnRequest;
use anydb::workload::tpcc::{CustomerSelector, PaymentParams, TpccConfig, TpccDb};
use crossbeam::channel::{unbounded, Receiver};

/// Collects `n` transaction completion notices, flattening the batched
/// protocol (ACs emit one `DoneBatch` per drained chunk per channel).
fn recv_flat(rx: &Receiver<DoneBatch>, n: usize) -> Vec<OpDone> {
    let mut out = Vec::new();
    while out.len() < n {
        for c in rx.recv().expect("completion channel open").0 {
            match c {
                Completion::Txn(done) => out.push(done),
                Completion::Query { .. } => panic!("unexpected query completion"),
            }
        }
    }
    assert_eq!(out.len(), n, "more completions than expected");
    out
}

fn payment(w: i64, amount: f64) -> PaymentParams {
    PaymentParams {
        w_id: w,
        d_id: 1,
        c_w_id: w,
        c_d_id: 1,
        customer: CustomerSelector::ById(1),
        amount,
        date: 20_200_610,
    }
}

fn w_ytd(db: &TpccDb, w: i64) -> f64 {
    db.warehouse
        .read(db.warehouse_rid(w).unwrap())
        .unwrap()
        .0
        .get(warehouse::W_YTD)
        .as_float()
        .unwrap()
}

#[test]
fn one_pool_serves_aggregated_and_disaggregated_queries_concurrently() {
    let db = Arc::new(TpccDb::load(TpccConfig::small(), 201).unwrap());
    let mut senders = Vec::new();
    let mut handles = Vec::new();
    for i in 0..3u32 {
        let (tx, h) = AnyComponent::spawn(AcId(i), db.clone(), None, Arc::new(Counter::new()));
        senders.push(tx);
        handles.push(h);
    }
    let (done_tx, done_rx) = unbounded();
    let sequencer = Sequencer::new(db.cfg.warehouses as usize);

    // Aggregated transaction on AC 0 (warehouse 1) and a decomposed one
    // across all ACs (warehouse 2), in flight at the same time.
    senders[0].send(Event::ExecuteTxn {
        txn: TxnId(1),
        req: TxnRequest::Payment(payment(1, 10.0)),
        done: done_tx.clone(),
    });
    let p = payment(2, 20.0);
    let domain = (p.w_id - 1) as u32;
    let seq = sequencer.stamp(domain as usize);
    let groups = payment_stage_groups(&p);
    let tracker = TxnTracker::new(TxnId(2), groups.len() as u32, done_tx.clone());
    for (stage, ops) in groups {
        senders[stage as usize % senders.len()].send(Event::OpGroup(OpEnvelope {
            txn: TxnId(2),
            stage,
            domain,
            seq,
            ops,
            tracker: tracker.clone(),
        }));
    }

    for d in recv_flat(&done_rx, 2) {
        assert!(d.ok, "txn {} failed", d.txn);
    }
    assert!((w_ytd(&db, 1) - 300_010.0).abs() < 1e-6);
    assert!((w_ytd(&db, 2) - 300_020.0).abs() < 1e-6);

    for tx in senders {
        tx.send(Event::Shutdown);
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn failed_ac_is_replaced_by_rerouting_its_partition() {
    // Shared-nothing ownership: AC 0 owns warehouse 1. The AC "fails"
    // (drains and stops); a replacement AC takes over the partition and
    // the client simply routes subsequent events there. No state moves —
    // storage is reachable by any AC (fully stateless components).
    let db = Arc::new(TpccDb::load(TpccConfig::small(), 202).unwrap());
    let (done_tx, done_rx) = unbounded();

    let (ac0, h0) = AnyComponent::spawn(AcId(0), db.clone(), None, Arc::new(Counter::new()));
    for i in 0..10u64 {
        ac0.send(Event::ExecuteTxn {
            txn: TxnId(i),
            req: TxnRequest::Payment(payment(1, 1.0)),
            done: done_tx.clone(),
        });
    }
    assert!(recv_flat(&done_rx, 10).iter().all(|d| d.ok));
    // Failure: component stops (drained first — the streams would be
    // rerouted by the reliable-streams mechanism the paper sketches).
    ac0.send(Event::Shutdown);
    h0.join().unwrap();

    // Replacement AC continues the partition.
    let (ac1, h1) = AnyComponent::spawn(AcId(1), db.clone(), None, Arc::new(Counter::new()));
    for i in 10..20u64 {
        ac1.send(Event::ExecuteTxn {
            txn: TxnId(i),
            req: TxnRequest::Payment(payment(1, 1.0)),
            done: done_tx.clone(),
        });
    }
    assert!(recv_flat(&done_rx, 10).iter().all(|d| d.ok));
    ac1.send(Event::Shutdown);
    h1.join().unwrap();

    // All 20 payments applied exactly once across the failover.
    assert!((w_ytd(&db, 1) - 300_020.0).abs() < 1e-6);
    assert_eq!(db.history.row_count(), 20);
}

#[test]
fn order_gates_hold_across_interleaved_domains() {
    // Two domains interleaved on one AC: per-domain order must hold
    // independently; cross-domain order is free.
    let db = Arc::new(TpccDb::load(TpccConfig::small(), 203).unwrap());
    let (ac, h) = AnyComponent::spawn(AcId(0), db.clone(), None, Arc::new(Counter::new()));
    let (done_tx, done_rx) = unbounded();
    let sequencer = Sequencer::new(2);

    // Submit out of order within each domain.
    let mut submissions = Vec::new();
    for (domain, w) in [(0u32, 1i64), (1, 2)] {
        let seqs: Vec<_> = (0..4).map(|_| sequencer.stamp(domain as usize)).collect();
        for &s in seqs.iter().rev() {
            submissions.push((domain, w, s));
        }
    }
    for (i, (domain, w, seq)) in submissions.iter().enumerate() {
        let tracker = TxnTracker::new(TxnId(i as u64), 1, done_tx.clone());
        ac.send(Event::OpGroup(OpEnvelope {
            txn: TxnId(i as u64),
            stage: 0,
            domain: *domain,
            seq: *seq,
            ops: vec![anydb::core::event::TxnOp::PayWarehouse { w: *w, amount: 1.0 }],
            tracker,
        }));
    }
    assert!(recv_flat(&done_rx, submissions.len()).iter().all(|d| d.ok));
    assert!((w_ytd(&db, 1) - 300_004.0).abs() < 1e-6);
    assert!((w_ytd(&db, 2) - 300_004.0).abs() < 1e-6);
    ac.send(Event::Shutdown);
    h.join().unwrap();
}
