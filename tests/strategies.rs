//! Integration: every execution strategy (Figure 4 b/c/d + streaming CC)
//! executes the same workload correctly — serializable histories and
//! intact TPC-C money invariants — on the real threaded engine.

use std::sync::Arc;
use std::time::Duration;

use anydb::core::{AnyDbEngine, EngineConfig, Strategy};
use anydb::txn::history::History;
use anydb::workload::phases::PhaseKind;
use anydb::workload::tpcc::cols::{district, warehouse};
use anydb::workload::tpcc::{TpccConfig, TpccDb};

fn run(strategy: Strategy, kind: PhaseKind, seed: u64) -> (Arc<TpccDb>, Arc<History>, u64) {
    let db = Arc::new(TpccDb::load(TpccConfig::small(), seed).unwrap());
    let hist = Arc::new(History::new());
    let engine = AnyDbEngine::new(
        db.clone(),
        EngineConfig {
            strategy,
            acs: 2,
            drivers: 2,
            ..Default::default()
        },
    )
    .with_history(hist.clone());
    let r = engine.run_phase(kind, Duration::from_millis(120), seed);
    (db, hist, r.committed)
}

/// Σ warehouse-YTD deltas must equal Σ district-YTD deltas (every payment
/// adds its amount to exactly one of each).
fn money_invariant(db: &TpccDb) {
    let mut w_delta = 0.0;
    for w in 1..=db.cfg.warehouses as i64 {
        let ytd = db
            .warehouse
            .read(db.warehouse_rid(w).unwrap())
            .unwrap()
            .0
            .get(warehouse::W_YTD)
            .as_float()
            .unwrap();
        w_delta += ytd - 300_000.0;
    }
    let mut d_delta = 0.0;
    for w in 1..=db.cfg.warehouses as i64 {
        for d in 1..=db.cfg.districts_per_warehouse as i64 {
            let ytd = db
                .district
                .read(db.district_rid(w, d).unwrap())
                .unwrap()
                .0
                .get(district::D_YTD)
                .as_float()
                .unwrap();
            d_delta += ytd - 30_000.0;
        }
    }
    // Relative tolerance: the sums reach ~1e8 after a fast run, where a
    // fixed 1e-6 is below f64 accumulation noise.
    let tol = (w_delta.abs() * 1e-12).max(1e-6);
    assert!(
        (w_delta - d_delta).abs() < tol,
        "money leaked: warehouses {w_delta} vs districts {d_delta}"
    );
}

#[test]
fn shared_nothing_is_serializable_with_invariants() {
    let (db, hist, committed) = run(Strategy::SharedNothing, PhaseKind::OltpPartitionable, 101);
    assert!(committed > 100);
    assert!(hist.is_serializable());
    money_invariant(&db);
}

#[test]
fn streaming_cc_is_serializable_under_skew() {
    let (db, hist, committed) = run(Strategy::StreamingCc, PhaseKind::OltpSkewed, 102);
    assert!(committed > 100);
    assert!(hist.is_serializable());
    money_invariant(&db);
}

#[test]
fn precise_intra_is_serializable_under_skew() {
    let (db, hist, committed) = run(Strategy::PreciseIntra, PhaseKind::OltpSkewed, 103);
    assert!(committed > 100);
    assert!(hist.is_serializable());
    money_invariant(&db);
}

#[test]
fn static_intra_is_serializable_under_skew() {
    let (db, hist, committed) = run(Strategy::StaticIntra, PhaseKind::OltpSkewed, 104);
    assert!(committed > 20);
    assert!(hist.is_serializable());
    money_invariant(&db);
}

#[test]
fn history_row_count_matches_committed_payments() {
    // Every committed payment inserts exactly one history row; the
    // streaming pipeline must not lose or duplicate any.
    let (db, _, committed) = run(Strategy::StreamingCc, PhaseKind::OltpPartitionable, 105);
    assert_eq!(db.history.row_count() as u64, committed);
}
