//! Cross-crate property-based tests on core invariants.

use anydb::common::{Tuple, Value};
use anydb::storage::key::IndexKey;
use anydb::storage::{HashIndex, Wal};
use anydb::stream::spsc::spsc_channel;
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(Value::Float),
        "[a-zA-Z0-9 ]{0,24}".prop_map(|s| Value::str(&s)),
        Just(Value::Null),
    ]
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    prop::collection::vec(arb_value(), 0..8).prop_map(Tuple::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The wire codec roundtrips every representable tuple.
    #[test]
    fn tuple_codec_roundtrips(t in arb_tuple()) {
        let encoded = t.encode();
        let decoded = Tuple::decode(&encoded).unwrap();
        prop_assert_eq!(decoded, t);
    }

    /// Concatenating tuples preserves both sides' values.
    #[test]
    fn tuple_concat_preserves(a in arb_tuple(), b in arb_tuple()) {
        let c = a.concat(&b);
        prop_assert_eq!(c.arity(), a.arity() + b.arity());
        prop_assert_eq!(&c.values()[..a.arity()], a.values());
        prop_assert_eq!(&c.values()[a.arity()..], b.values());
    }

    /// The SPSC ring delivers everything exactly once, in order, for any
    /// push/pop interleaving (driven by a schedule of operations).
    #[test]
    fn spsc_is_fifo_and_lossless(
        cap in 1usize..32,
        schedule in prop::collection::vec(any::<bool>(), 0..256),
    ) {
        let (mut tx, mut rx) = spsc_channel::<u64>(cap);
        let mut next_push = 0u64;
        let mut next_pop = 0u64;
        for push in schedule {
            if push {
                if tx.push(next_push).is_ok() {
                    next_push += 1;
                }
            } else if let Ok(v) = rx.pop() {
                prop_assert_eq!(v, next_pop);
                next_pop += 1;
            }
        }
        while let Ok(v) = rx.pop() {
            prop_assert_eq!(v, next_pop);
            next_pop += 1;
        }
        prop_assert_eq!(next_pop, next_push);
    }

    /// The hash index behaves like a model map under arbitrary
    /// insert/remove/lookup sequences.
    #[test]
    fn hash_index_matches_model(ops in prop::collection::vec((0i64..32, any::<bool>()), 0..128)) {
        use anydb::common::{PartitionId, Rid, TableId};
        let idx = HashIndex::new();
        let mut model: std::collections::HashMap<i64, Rid> = Default::default();
        let mut slot = 0u32;
        for (key, insert) in ops {
            let k = IndexKey::new(vec![key.into()]);
            if insert {
                let rid = Rid::new(TableId(0), PartitionId(0), slot);
                slot += 1;
                match idx.insert(k.clone(), rid) {
                    Ok(()) => { prop_assert!(model.insert(key, rid).is_none()); }
                    Err(_) => { prop_assert!(model.contains_key(&key)); }
                }
            } else {
                prop_assert_eq!(idx.remove(&k), model.remove(&key));
            }
            prop_assert_eq!(idx.get(&k), model.get(&key).copied());
        }
        prop_assert_eq!(idx.len(), model.len());
    }

    /// WAL serialization roundtrips arbitrary logs.
    #[test]
    fn wal_roundtrips(entries in prop::collection::vec((any::<u64>(), 0u8..4, 0u32..8), 0..32)) {
        use anydb::common::{PartitionId, Rid, TableId, TxnId};
        use anydb::storage::LogOp;
        let wal = Wal::new();
        for (txn, kind, slot) in entries {
            let op = match kind {
                0 => LogOp::Insert {
                    table: TableId(0),
                    partition: PartitionId(0),
                    slot,
                    tuple: Tuple::new(vec![Value::Int(slot as i64)]),
                },
                1 => LogOp::Update {
                    rid: Rid::new(TableId(0), PartitionId(0), slot),
                    after: Tuple::new(vec![Value::Int(slot as i64 + 1)]),
                },
                2 => LogOp::Commit,
                _ => LogOp::Abort,
            };
            wal.append(TxnId(txn), op);
        }
        let parsed = Wal::deserialize(wal.serialize()).unwrap();
        prop_assert_eq!(parsed, wal.snapshot());
    }
}

/// Streaming CC produces serializable histories for randomized skew
/// mixes. Kept outside `proptest!` (each case spins real threads) with a
/// bounded number of seeds.
#[test]
fn streaming_cc_serializable_across_seeds() {
    use anydb::core::{AnyDbEngine, EngineConfig, Strategy};
    use anydb::txn::history::History;
    use anydb::workload::phases::PhaseKind;
    use anydb::workload::tpcc::{TpccConfig, TpccDb};
    use std::sync::Arc;
    use std::time::Duration;

    for seed in [1u64, 7, 23, 99] {
        let db = Arc::new(TpccDb::load(TpccConfig::small(), seed).unwrap());
        let hist = Arc::new(History::new());
        let engine = AnyDbEngine::new(
            db,
            EngineConfig {
                strategy: Strategy::StreamingCc,
                acs: 2,
                drivers: 2,
                ..Default::default()
            },
        )
        .with_history(hist.clone());
        let kind = if seed % 2 == 0 {
            PhaseKind::OltpPartitionable
        } else {
            PhaseKind::OltpSkewed
        };
        engine.run_phase(kind, Duration::from_millis(60), seed);
        assert!(hist.is_serializable(), "seed {seed} not serializable");
    }
}
