//! Integration: the baseline and AnyDB execute the same logical workload
//! with equivalent effects, and the figure-level orderings hold.

use std::sync::Arc;
use std::time::Duration;

use anydb::core::{AnyDbEngine, EngineConfig, Strategy};
use anydb::dbx1000::{Dbx1000, Dbx1000Config};
use anydb::sim::{figure1_series, figure5_series};
use anydb::workload::chbench::Q3Spec;
use anydb::workload::phases::PhaseKind;
use anydb::workload::tpcc::{TpccConfig, TpccDb};

#[test]
fn both_systems_answer_q3_identically() {
    // Seed 302: under the workspace's deterministic RNG, seed 301 happens
    // to load zero open A-state orders at small scale, which would make
    // the `a > 0` assertion below vacuous-fail for reasons unrelated to
    // the engines being compared.
    let db = Arc::new(TpccDb::load(TpccConfig::small(), 302).unwrap());
    let spec = Q3Spec::default();
    let a = anydb::dbx1000::exec_q3(&db, &spec);
    let b = anydb::core::olap::exec_q3_local(&db, &spec);
    assert_eq!(a, b);
    assert!(a > 0);
}

#[test]
fn both_systems_make_progress_on_every_phase_kind() {
    for kind in [
        PhaseKind::OltpPartitionable,
        PhaseKind::OltpSkewed,
        PhaseKind::HtapSkewed,
        PhaseKind::HtapPartitionable,
    ] {
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 302).unwrap());
        let baseline = Dbx1000::new(
            db,
            Dbx1000Config {
                executors: 2,
                payment_fraction: 1.0,
                ..Default::default()
            },
        );
        let r = baseline.run_phase(kind, Duration::from_millis(80), 1);
        assert!(r.committed > 0, "baseline stalled on {kind:?}");
        if kind.has_olap() {
            assert!(r.olap_queries > 0, "baseline ran no OLAP on {kind:?}");
        }

        let db = Arc::new(TpccDb::load(TpccConfig::small(), 303).unwrap());
        let engine = AnyDbEngine::new(
            db,
            EngineConfig {
                strategy: Strategy::SharedNothing,
                acs: 2,
                ..Default::default()
            },
        );
        let r = engine.run_phase(kind, Duration::from_millis(80), 1);
        assert!(r.committed > 0, "AnyDB stalled on {kind:?}");
        if kind.has_olap() {
            assert!(r.olap_queries > 0, "AnyDB ran no OLAP on {kind:?}");
        }
    }
}

#[test]
fn figure1_ordering_holds_in_simulation() {
    let (anydb, dbx) = figure1_series(4, Duration::from_millis(30), 304);
    // AnyDB ≥ baseline in every phase; strictly better under skew & HTAP.
    for (a, d) in anydb.iter().zip(&dbx) {
        assert!(a.mtps >= d.mtps * 0.95, "phase {}", a.phase);
    }
    assert!(anydb[4].mtps > dbx[4].mtps * 1.8, "skew advantage missing");
    assert!(
        anydb[10].mtps > dbx[10].mtps * 1.2,
        "HTAP isolation missing"
    );
}

#[test]
fn figure5_ordering_holds_in_simulation() {
    let series = figure5_series(4, Duration::from_millis(30), 305);
    let at = |label: &str, phase: usize| {
        series
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, p)| p[phase].mtps)
            .unwrap()
    };
    // Contended phase: the paper's ordering.
    assert!(at("DBx1000 4TE", 4) <= at("DBx1000 1TE", 4) * 1.2);
    assert!(at("DBx1000 4TE", 4) < at("AnyDB Static Intra-Txn", 4));
    assert!(at("AnyDB Static Intra-Txn", 4) < at("AnyDB Precise Intra-Txn", 4));
    assert!(at("AnyDB Precise Intra-Txn", 4) < at("AnyDB Streaming CC", 4));
    // Partitionable phase: shared-nothing wins, as in the paper.
    assert!(at("AnyDB Shared-Nothing", 0) >= at("AnyDB Streaming CC", 0));
}
