//! CI bench regression gate.
//!
//! Compares the JSONs emitted by the gated ablations — `abl_adaptive`
//! (`BENCH_adaptive.json`, transport level), `abl_routing`
//! (`BENCH_routing.json`, engine level), `abl_columnar`
//! (`BENCH_columnar.json`, OLAP stream level), `abl_htap`
//! (`BENCH_htap.json`, HTAP-local level: shared-snapshot columnar Q3 +
//! the zero-copy split flatness ceiling), `abl_shared`
//! (`BENCH_shared.json`, multi-query level: shared-pipeline cost
//! scaling at N=32 concurrent Q3 members), `abl_pushdown`
//! (`BENCH_pushdown.json`, remote-scan level: predicate pushdown vs
//! ship-then-filter on modeled wire bytes), `abl_failover`
//! (`BENCH_failover.json`, replication level: sync/async/unreplicated
//! commit-ack throughput plus the zero-lost-acked-commits invariant
//! under a mid-load primary crash) and `abl_shard`
//! (`BENCH_shard.json`, sharding level: multi-node scale-out, the
//! single-shard vs sync-2PC cost split, and the zero-lost-acked-orders
//! invariant under a mid-2PC coordinator crash) and `abl_morph`
//! (`BENCH_morph.json`, adaptivity level: the morphing engine vs every
//! static strategy over the day-in-the-life schedule, in deterministic
//! virtual time) — against the checked-in
//! baseline (`tools/bench_baseline.json`) and exits non-zero on
//! regression, so the batching/routing/columnar/sharing/pushdown/
//! replication/sharding wins cannot silently rot. Every bench emits the same flat schema (gated
//! `ratio_*` keys plus ungated raw values, no per-file exceptions), and
//! all current files are merged into one metric map before checking
//! (their key namespaces are disjoint by construction).
//!
//! The baseline deliberately pins only **ratio** metrics: absolute
//! events/sec vary with the CI host, ratios between two modes measured
//! in the same run do not. Absolute metrics in the current JSONs are
//! reported but not gated. The baseline values are the *acceptance
//! floors* the PRs committed to (e.g. batched >= 1.5x unbatched,
//! columnar >= 2x row) — not last-measured ratios — so an improvement
//! to one mode can never trip the gate on the ratio it appears under;
//! each bench's header comment records its observed run-to-run
//! variance and why its floor sits where it does.
//!
//! Rules, per baseline key:
//! * key contains `latency`  → lower is better: fail if
//!   `current > baseline * (1 + TOLERANCE)`.
//! * otherwise               → higher is better: fail if
//!   `current < baseline * (1 - TOLERANCE)`.
//! * key missing from every current JSON → fail (a silently dropped
//!   metric is a regression of the gate itself).
//!
//! Usage: `bench_gate [baseline.json] [current.json ...]` (defaults:
//! `tools/bench_baseline.json` and the nine `BENCH_*.json` files — the
//! paths CI uses from the repo root).
//!
//! When `$GITHUB_STEP_SUMMARY` is set (as it is on every GitHub Actions
//! step), the gate additionally appends its verdict as a markdown table
//! — metric, baseline, current, current/baseline ratio, PASS/FAIL — so
//! a failed run explains itself on the job's summary page without
//! digging through logs.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Allowed relative regression before the gate trips.
const TOLERANCE: f64 = 0.15;

/// Parses the flat `{"key": number, ...}` JSON both the bench and the
/// baseline use. Not a general JSON parser on purpose: nesting or
/// non-numeric values are a format error worth failing loudly on.
fn parse_flat_json(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let body = text.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or("expected a top-level JSON object")?;
    let mut out = BTreeMap::new();
    for entry in body.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (key, value) = entry
            .split_once(':')
            .ok_or_else(|| format!("malformed entry: {entry:?}"))?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("unquoted key: {key:?}"))?;
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|e| format!("bad number for {key:?}: {e}"))?;
        out.insert(key.to_string(), value);
    }
    Ok(out)
}

fn lower_is_better(key: &str) -> bool {
    key.contains("latency")
}

/// Checks every baseline metric; returns human-readable failures.
fn check(baseline: &BTreeMap<String, f64>, current: &BTreeMap<String, f64>) -> Vec<String> {
    let mut failures = Vec::new();
    for (key, base) in baseline {
        let Some(cur) = current.get(key) else {
            failures.push(format!("{key}: missing from current results"));
            continue;
        };
        if lower_is_better(key) {
            let ceiling = base * (1.0 + TOLERANCE);
            if *cur > ceiling {
                failures.push(format!(
                    "{key}: {cur:.4} exceeds ceiling {ceiling:.4} (baseline {base:.4})"
                ));
            }
        } else {
            let floor = base * (1.0 - TOLERANCE);
            if *cur < floor {
                failures.push(format!(
                    "{key}: {cur:.4} below floor {floor:.4} (baseline {base:.4})"
                ));
            }
        }
    }
    failures
}

/// Renders the gate's full verdict as a GitHub-flavored markdown table.
/// One row per baseline metric, in baseline order: the committed floor
/// (or ceiling for latency keys), the measured value, their ratio, and
/// the same PASS/FAIL decision [`check`] makes. Missing metrics FAIL
/// with an em-dash instead of a number, mirroring the gate rule.
fn render_summary_table(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
) -> String {
    let mut out = String::from(
        "### Bench regression gate\n\n\
         | metric | baseline | current | current/baseline | verdict |\n\
         |---|---:|---:|---:|---|\n",
    );
    for (key, base) in baseline {
        let bound = if lower_is_better(key) {
            "ceiling"
        } else {
            "floor"
        };
        match current.get(key) {
            Some(cur) => {
                let pass = if lower_is_better(key) {
                    *cur <= base * (1.0 + TOLERANCE)
                } else {
                    *cur >= base * (1.0 - TOLERANCE)
                };
                let verdict = if pass { "PASS" } else { "**FAIL**" };
                out.push_str(&format!(
                    "| `{key}` | {base:.4} ({bound}) | {cur:.4} | {:.2}x | {verdict} |\n",
                    cur / base
                ));
            }
            None => out.push_str(&format!(
                "| `{key}` | {base:.4} ({bound}) | — | — | **FAIL** (missing) |\n"
            )),
        }
    }
    out.push_str(&format!(
        "\n{} gated metrics, ±{:.0}% tolerance.\n",
        baseline.len(),
        TOLERANCE * 100.0
    ));
    out
}

/// Appends the markdown verdict to the file `$GITHUB_STEP_SUMMARY`
/// names, when CI provides one. Best-effort: a summary that cannot be
/// written must never change the gate's exit code.
fn write_step_summary(table: &str) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    use std::io::Write;
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        Ok(mut f) => {
            let _ = f.write_all(table.as_bytes());
        }
        Err(err) => eprintln!("bench_gate: cannot append step summary to {path}: {err}"),
    }
}

fn load(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    parse_flat_json(&text).map_err(|e| format!("{path}: {e}"))
}

/// The bench-emitted files gated by default (all namespaces disjoint).
const DEFAULT_CURRENT: [&str; 9] = [
    "BENCH_adaptive.json",
    "BENCH_routing.json",
    "BENCH_columnar.json",
    "BENCH_htap.json",
    "BENCH_shared.json",
    "BENCH_pushdown.json",
    "BENCH_failover.json",
    "BENCH_shard.json",
    "BENCH_morph.json",
];

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let baseline_path = args
        .next()
        .unwrap_or_else(|| "tools/bench_baseline.json".into());
    let mut current_paths: Vec<String> = args.collect();
    if current_paths.is_empty() {
        current_paths = DEFAULT_CURRENT.iter().map(|s| s.to_string()).collect();
    }

    let baseline = match load(&baseline_path) {
        Ok(b) => b,
        Err(err) => {
            eprintln!("bench_gate: {err}");
            return ExitCode::FAILURE;
        }
    };
    let mut current = BTreeMap::new();
    let mut failed = false;
    for path in &current_paths {
        match load(path) {
            Ok(map) => current.extend(map),
            Err(err) => {
                eprintln!("bench_gate: {err}");
                failed = true;
            }
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }

    println!(
        "bench_gate: {} vs baseline {}",
        current_paths.join(" + "),
        baseline_path
    );
    for (key, base) in &baseline {
        let cur = current.get(key).copied();
        println!(
            "  {key}: current {} / baseline {base:.4}",
            cur.map_or("<missing>".into(), |v| format!("{v:.4}"))
        );
    }

    let failures = check(&baseline, &current);
    write_step_summary(&render_summary_table(&baseline, &current));
    if failures.is_empty() {
        println!(
            "bench_gate: OK ({} gated metrics within {:.0}% of baseline)",
            baseline.len(),
            TOLERANCE * 100.0
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("bench_gate: REGRESSION {f}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn parses_the_bench_emitter_format() {
        let text = "{\n  \"a_mev_s\": 12.5,\n  \"ratio_b\": 0.9700\n}\n";
        let parsed = parse_flat_json(text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed["a_mev_s"], 12.5);
        assert_eq!(parsed["ratio_b"], 0.97);
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(parse_flat_json("not json").is_err());
        assert!(parse_flat_json("{\"k\": \"text\"}").is_err());
        assert!(parse_flat_json("{k: 1}").is_err());
    }

    #[test]
    fn passes_within_tolerance() {
        let base = map(&[("ratio_x", 1.0)]);
        let cur = map(&[("ratio_x", 0.90)]);
        assert!(check(&base, &cur).is_empty());
    }

    #[test]
    fn fails_beyond_tolerance() {
        let base = map(&[("ratio_x", 1.0)]);
        let cur = map(&[("ratio_x", 0.80)]);
        assert_eq!(check(&base, &cur).len(), 1);
    }

    #[test]
    fn latency_keys_gate_upward() {
        let base = map(&[("ratio_idle_latency_a_vs_b", 0.15)]);
        let ok = map(&[("ratio_idle_latency_a_vs_b", 0.05)]);
        assert!(check(&base, &ok).is_empty());
        let bad = map(&[("ratio_idle_latency_a_vs_b", 0.50)]);
        assert_eq!(check(&base, &bad).len(), 1);
    }

    #[test]
    fn missing_metric_fails() {
        let base = map(&[("ratio_x", 1.0)]);
        let cur = map(&[("ratio_y", 1.0)]);
        assert_eq!(check(&base, &cur).len(), 1);
    }

    #[test]
    fn extra_current_metrics_are_ignored() {
        let base = map(&[("ratio_x", 1.0)]);
        let cur = map(&[("ratio_x", 1.0), ("spsc_static1_mev_s", 74.0)]);
        assert!(check(&base, &cur).is_empty());
    }

    #[test]
    fn summary_table_mirrors_the_gate_verdicts() {
        let base = map(&[
            ("ratio_ok", 2.0),
            ("ratio_bad", 4.0),
            ("ratio_idle_latency_x", 0.2),
        ]);
        let cur = map(&[
            ("ratio_ok", 2.1),
            ("ratio_bad", 1.0),
            ("ratio_idle_latency_x", 0.9),
        ]);
        let table = render_summary_table(&base, &cur);
        // One markdown row per gated metric, header included.
        assert_eq!(table.matches("\n| `ratio_").count(), 3);
        assert!(table.contains("| `ratio_ok` | 2.0000 (floor) | 2.1000 | 1.05x | PASS |"));
        assert!(table.contains("| `ratio_bad` | 4.0000 (floor) | 1.0000 | 0.25x | **FAIL** |"));
        // Latency keys gate as ceilings, and gate upward.
        assert!(table
            .contains("| `ratio_idle_latency_x` | 0.2000 (ceiling) | 0.9000 | 4.50x | **FAIL** |"));
        assert!(table.contains("3 gated metrics"));
        // The table and check() must never disagree on pass/fail counts.
        assert_eq!(table.matches("**FAIL**").count(), check(&base, &cur).len());
    }

    #[test]
    fn summary_table_flags_missing_metrics() {
        let base = map(&[("ratio_x", 1.0)]);
        let table = render_summary_table(&base, &BTreeMap::new());
        assert!(table.contains("| `ratio_x` | 1.0000 (floor) | — | — | **FAIL** (missing) |"));
    }
}
