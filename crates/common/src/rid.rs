//! Record identifiers.

use std::fmt;

use crate::ids::{PartitionId, TableId};

/// A record identifier: table, partition, and slot within the partition.
///
/// RIDs are stable for the lifetime of a record (our partitions never move
/// rows), so they can be carried inside events and data-stream items — this
/// is the `RID` flowing between `Index.lookup` and `Record.read` events in
/// Figure 4 (a) of the paper.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rid {
    /// Table the record belongs to.
    pub table: TableId,
    /// Horizontal partition holding the record.
    pub partition: PartitionId,
    /// Slot index within the partition's row store.
    pub slot: u32,
}

impl Rid {
    /// Creates a new record id.
    #[inline]
    pub const fn new(table: TableId, partition: PartitionId, slot: u32) -> Self {
        Self {
            table,
            partition,
            slot,
        }
    }

    /// Packs the RID into a single `u128` (useful as a hash/lock key).
    #[inline]
    pub const fn pack(self) -> u128 {
        ((self.table.0 as u128) << 64) | ((self.partition.0 as u128) << 32) | self.slot as u128
    }

    /// Reverses [`Rid::pack`].
    #[inline]
    pub const fn unpack(packed: u128) -> Self {
        Self {
            table: TableId((packed >> 64) as u32),
            partition: PartitionId(((packed >> 32) & 0xFFFF_FFFF) as u32),
            slot: (packed & 0xFFFF_FFFF) as u32,
        }
    }
}

impl fmt::Debug for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rid({}:{}:{})", self.table, self.partition, self.slot)
    }
}

impl fmt::Display for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.table, self.partition, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let rid = Rid::new(TableId(7), PartitionId(3), 42);
        assert_eq!(Rid::unpack(rid.pack()), rid);
        let extreme = Rid::new(TableId(u32::MAX), PartitionId(u32::MAX), u32::MAX);
        assert_eq!(Rid::unpack(extreme.pack()), extreme);
    }

    #[test]
    fn pack_is_injective_across_fields() {
        let a = Rid::new(TableId(1), PartitionId(0), 0);
        let b = Rid::new(TableId(0), PartitionId(1), 0);
        let c = Rid::new(TableId(0), PartitionId(0), 1);
        assert_ne!(a.pack(), b.pack());
        assert_ne!(b.pack(), c.pack());
        assert_ne!(a.pack(), c.pack());
    }

    #[test]
    fn display_format() {
        assert_eq!(Rid::new(TableId(1), PartitionId(2), 3).to_string(), "1:2:3");
    }
}
