//! Columnar batches: the struct-of-arrays representation data streams ship
//! for OLAP state.
//!
//! Row [`Tuple`]s are the right unit for OLTP events (a handful of values
//! riding along with the event), but §4 data streams move *millions* of
//! rows per query, and a `Vec<Value>` per row costs an allocation, an enum
//! tag per value, and — on the wire — a self-describing tag per value. A
//! [`ColumnBatch`] stores the same rows column-organized (C-Store-style):
//! one typed vector per column (`Vec<i64>` / `Vec<f64>` / a string arena),
//! a null bitmap per column, and a wire encoding that spends one tag per
//! *column* with the values packed contiguously. Operators work on column
//! slices with selection vectors and materialize rows only at the final
//! output (late materialization).
//!
//! ## Shared buffers and views (Arrow-style)
//!
//! Column buffers are **immutable and `Arc`-shared** once built: a
//! [`Column`] is an `(offset, length)` *view* over shared typed buffers,
//! so [`ColumnBatch::slice`], [`ColumnBatch::split`] and
//! [`ColumnBatch::project`] are O(columns) metadata operations that never
//! copy a value — a producer can split a partition's worth of columns
//! into wire batches for free. Mutation (`push*`) is copy-on-write: it
//! requires exclusive ownership of the full buffer and re-materializes
//! the visible window first when the column is shared or truncated
//! (scans append through a [`BatchAppender`], which pays the exclusivity
//! check once per scan instead of once per value).
//!
//! The modeled wire size is computable in O(columns) from the view
//! lengths — no per-row accounting — which is what lets producers maintain
//! batch sizes incrementally instead of re-walking every tuple.

use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{DbError, DbResult};
use crate::schema::{DataType, Schema};
use crate::tuple::Tuple;
use crate::value::Value;

/// Wire tags for the columnar encoding (one per column, not per value).
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_STR: u8 = 3;

/// Wire tags for the [`ColPredicate`] codec.
const PRED_INT_GE: u8 = 1;
const PRED_STR_PREFIX: u8 = 2;
const PRED_INT_BETWEEN: u8 = 3;
const PRED_AND: u8 = 4;

/// Hard cap on decoded batch geometry, so a corrupt header cannot ask the
/// decoder to reserve gigabytes.
const MAX_DECODE_ROWS: usize = 1 << 24;

/// Maximum predicate nesting the decoder accepts (a corrupt `And` chain
/// must not recurse unboundedly).
const MAX_PRED_DEPTH: usize = 8;

/// Sets bit `row` in a little-endian byte bitmap, growing it as needed.
fn bit_set(bits: &mut Vec<u8>, row: usize) {
    if bits.len() <= row / 8 {
        bits.resize(row / 8 + 1, 0);
    }
    bits[row / 8] |= 1 << (row % 8);
}

/// Clears bit `row` (no-op when the bitmap never grew that far).
fn bit_clear(bits: &mut [u8], row: usize) {
    if let Some(b) = bits.get_mut(row / 8) {
        *b &= !(1 << (row % 8));
    }
}

/// Reads bit `row` of a little-endian byte bitmap.
fn bit_get(bits: &[u8], row: usize) -> bool {
    bits.get(row / 8).is_some_and(|b| b & (1 << (row % 8)) != 0)
}

/// Sets bits `lo..hi` of a u64-word selection bitmap (used by the
/// trivially-true `And(vec![])` in the bitmap evaluators). Whole words
/// inside the range are written in one store each.
fn set_bit_range(bits: &mut [u64], lo: usize, hi: usize) {
    for (w, word) in bits.iter_mut().enumerate() {
        let word_lo = w * 64;
        let word_hi = word_lo + 64;
        if hi <= word_lo || word_hi <= lo {
            continue;
        }
        let start = lo.max(word_lo) - word_lo;
        let end = hi.min(word_hi) - word_lo;
        let mask = if end - start == 64 {
            !0
        } else {
            ((1u64 << (end - start)) - 1) << start
        };
        *word |= mask;
    }
}

/// Expands a u64-word selection bitmap into row indices, appending one
/// `u32` per set bit to `sel` in ascending order. Set-bit iteration
/// (`trailing_zeros` + clear-lowest-bit) touches only the words, so
/// sparse selections cost O(words + ones) instead of O(rows).
pub fn bitmap_ones(bits: &[u64], sel: &mut Vec<u32>) {
    for (w, word) in bits.iter().enumerate() {
        let mut word = *word;
        let base = (w * 64) as u32;
        while word != 0 {
            sel.push(base + word.trailing_zeros());
            word &= word - 1;
        }
    }
}

/// Typed value storage of one column: immutable buffers shared between
/// every view cloned from the same batch. Null positions hold a
/// placeholder (`0` / `0.0` / empty string); the owning [`Column`]'s
/// bitmap is authoritative.
#[derive(Debug, Clone)]
enum ColumnData {
    /// 64-bit integers.
    Int(Arc<Vec<i64>>),
    /// 64-bit floats.
    Float(Arc<Vec<f64>>),
    /// Strings in a shared arena: value `i` is
    /// `arena[offsets[i] .. offsets[i + 1]]` (`offsets.len() == rows + 1`
    /// over the *base* buffer; views window into it).
    Str {
        /// Row boundaries into the arena, monotone. `offsets[0]` is 0 for
        /// owned columns but non-zero for views into a larger buffer.
        offsets: Arc<Vec<u32>>,
        /// Concatenated string payloads.
        arena: Arc<String>,
    },
}

/// One column: a `(offset, length)` view over shared typed buffers plus a
/// (shared) null bitmap addressed in *base* row coordinates.
///
/// Equality is **logical**: two columns are equal when they expose the
/// same typed values and null positions, regardless of how their views
/// window the underlying buffers.
#[derive(Debug, Clone)]
pub struct Column {
    data: ColumnData,
    /// Bit `off + i` set = visible row `i` is NULL. Empty while the base
    /// buffer has no nulls (the common case). Shared by views; a view of
    /// a null-free range of a null-carrying buffer still reports
    /// [`Column::has_nulls`] conservatively (the per-row
    /// [`Column::is_null`] stays exact).
    nulls: Arc<Vec<u8>>,
    /// First visible row in the shared buffers.
    off: usize,
    /// Number of visible rows.
    len: usize,
}

/// Exclusive append handles onto one column's buffers, produced by
/// [`Column::col_mut`] after copy-on-write; lets hot loops push values
/// without re-checking `Arc` uniqueness per value.
enum ColDataMut<'a> {
    Int(&'a mut Vec<i64>),
    Float(&'a mut Vec<f64>),
    Str {
        offsets: &'a mut Vec<u32>,
        arena: &'a mut String,
    },
}

/// Mutable append session over one column (see [`BatchAppender`]).
///
/// The column's `len` is deliberately *not* updated per push — the
/// appender fixes every column's length once on drop, which removes a
/// handful of memory read-modify-writes from each row of a hot scan.
struct ColMut<'a> {
    data: ColDataMut<'a>,
    nulls: &'a mut Vec<u8>,
    len: &'a mut usize,
}

impl ColMut<'_> {
    /// Appends `v`, type-checked against the column type; NULL is allowed
    /// in any column. `row` is the value's row index (for the null
    /// bitmap).
    fn push(&mut self, v: &Value, row: usize) -> DbResult<()> {
        match (&mut self.data, v) {
            (ColDataMut::Int(col), Value::Int(i)) => col.push(*i),
            (ColDataMut::Float(col), Value::Float(f)) => col.push(*f),
            (ColDataMut::Str { offsets, arena }, Value::Str(s)) => {
                arena.push_str(s);
                offsets.push(arena.len() as u32);
            }
            (_, Value::Null) => self.push_null(row),
            _ => return Err(DbError::TypeMismatch("value type vs column type")),
        }
        Ok(())
    }

    /// Appends a NULL at row index `row` (placeholder value + bitmap bit).
    fn push_null(&mut self, row: usize) {
        match &mut self.data {
            ColDataMut::Int(col) => col.push(0),
            ColDataMut::Float(col) => col.push(0.0),
            ColDataMut::Str { offsets, arena } => offsets.push(arena.len() as u32),
        }
        bit_set(self.nulls, row);
    }

    /// Pre-sizes the value buffers for `n` more rows (arena growth stays
    /// amortized — string payload sizes are unknown upfront).
    fn reserve(&mut self, n: usize) {
        match &mut self.data {
            ColDataMut::Int(col) => col.reserve(n),
            ColDataMut::Float(col) => col.reserve(n),
            ColDataMut::Str { offsets, .. } => offsets.reserve(n),
        }
    }

    /// Bulk-appends rows `lo..hi` of `store`, landing at destination row
    /// `dst_start` onward. Int/Float ranges are one `extend_from_slice`
    /// (the memcpy that replaces a per-row tuple walk); strings copy
    /// their arena spans contiguously.
    fn extend_from_store(
        &mut self,
        store: &ColumnStore,
        lo: usize,
        hi: usize,
        dst_start: usize,
    ) -> DbResult<()> {
        match (&mut self.data, &store.data) {
            (ColDataMut::Int(col), StoreData::Int(src)) => col.extend_from_slice(&src[lo..hi]),
            (ColDataMut::Float(col), StoreData::Float(src)) => col.extend_from_slice(&src[lo..hi]),
            (ColDataMut::Str { offsets, arena }, StoreData::Str { spans, arena: src }) => {
                for &(off, len) in &spans[lo..hi] {
                    arena.push_str(&src[off as usize..(off + len) as usize]);
                    offsets.push(arena.len() as u32);
                }
            }
            _ => return Err(DbError::TypeMismatch("value type vs column type")),
        }
        if !store.nulls.is_empty() {
            for i in lo..hi {
                if store.is_null(i) {
                    bit_set(self.nulls, dst_start + (i - lo));
                }
            }
        }
        Ok(())
    }

    /// Gathers the rows listed in `sel` from `store` (filtered-scan
    /// materialization), landing at destination row `dst_start` onward.
    fn extend_from_store_sel(
        &mut self,
        store: &ColumnStore,
        sel: &[u32],
        dst_start: usize,
    ) -> DbResult<()> {
        match (&mut self.data, &store.data) {
            (ColDataMut::Int(col), StoreData::Int(src)) => {
                col.extend(sel.iter().map(|&i| src[i as usize]));
            }
            (ColDataMut::Float(col), StoreData::Float(src)) => {
                col.extend(sel.iter().map(|&i| src[i as usize]));
            }
            (ColDataMut::Str { offsets, arena }, StoreData::Str { spans, arena: src }) => {
                for &i in sel {
                    let (off, len) = spans[i as usize];
                    arena.push_str(&src[off as usize..(off + len) as usize]);
                    offsets.push(arena.len() as u32);
                }
            }
            _ => return Err(DbError::TypeMismatch("value type vs column type")),
        }
        if !store.nulls.is_empty() {
            for (k, &i) in sel.iter().enumerate() {
                if store.is_null(i as usize) {
                    bit_set(self.nulls, dst_start + k);
                }
            }
        }
        Ok(())
    }
}

impl Column {
    /// An empty column of the given type.
    pub fn new(ty: DataType) -> Self {
        let data = match ty {
            DataType::Int => ColumnData::Int(Arc::new(Vec::new())),
            DataType::Float => ColumnData::Float(Arc::new(Vec::new())),
            DataType::Str => ColumnData::Str {
                offsets: Arc::new(vec![0]),
                arena: Arc::new(String::new()),
            },
        };
        Self {
            data,
            nulls: Arc::new(Vec::new()),
            off: 0,
            len: 0,
        }
    }

    /// The column's declared type.
    pub fn data_type(&self) -> DataType {
        match &self.data {
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Str { .. } => DataType::Str,
        }
    }

    /// Number of visible rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Rows in the shared base buffer (a view may expose fewer).
    fn base_rows(&self) -> usize {
        match &self.data {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str { offsets, .. } => offsets.len() - 1,
        }
    }

    /// The raw visible values (`None` if this is not an Int column). Null
    /// rows hold `0`; consult [`Column::is_null`].
    #[inline]
    pub fn ints(&self) -> Option<&[i64]> {
        match &self.data {
            ColumnData::Int(v) => Some(&v[self.off..self.off + self.len]),
            _ => None,
        }
    }

    /// The raw visible values (`None` if this is not a Float column).
    #[inline]
    pub fn floats(&self) -> Option<&[f64]> {
        match &self.data {
            ColumnData::Float(v) => Some(&v[self.off..self.off + self.len]),
            _ => None,
        }
    }

    /// The string at visible row `row` (`None` for non-Str columns; empty
    /// for nulls).
    ///
    /// # Panics
    /// Panics if `row` is out of range.
    #[inline]
    pub fn str_at(&self, row: usize) -> Option<&str> {
        match &self.data {
            ColumnData::Str { offsets, arena } => {
                let i = self.off + row;
                assert!(row < self.len, "str_at({row}) of {} rows", self.len);
                Some(&arena[offsets[i] as usize..offsets[i + 1] as usize])
            }
            _ => None,
        }
    }

    /// True if the value at visible row `row` is NULL.
    #[inline]
    pub fn is_null(&self, row: usize) -> bool {
        let i = self.off + row;
        self.nulls
            .get(i / 8)
            .is_some_and(|b| b & (1 << (i % 8)) != 0)
    }

    /// True if the column *may* hold NULLs: exact for owned columns,
    /// conservative for views (the base buffer has nulls, possibly
    /// outside the view's window). [`Column::is_null`] is always exact.
    pub fn has_nulls(&self) -> bool {
        !self.nulls.is_empty()
    }

    /// True if any *visible* row is NULL (O(rows) for views).
    fn has_nulls_in_view(&self) -> bool {
        !self.nulls.is_empty() && (0..self.len).any(|i| self.is_null(i))
    }

    /// Materializes the value at visible row `row`.
    ///
    /// # Panics
    /// Panics if `row` is out of range.
    pub fn value(&self, row: usize) -> Value {
        if self.is_null(row) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(_) => Value::Int(self.ints().expect("int column")[row]),
            ColumnData::Float(_) => Value::Float(self.floats().expect("float column")[row]),
            ColumnData::Str { .. } => Value::str(self.str_at(row).expect("str column")),
        }
    }

    /// Re-materializes the visible window into exclusively-owned buffers
    /// unless this column already *is* the whole, un-shared buffer. After
    /// this, `off == 0`, `len == base_rows()`, and every `Arc` is unique.
    fn make_exclusive(&mut self) {
        let full = self.off == 0 && self.len == self.base_rows();
        if !(full && Arc::get_mut(&mut self.nulls).is_some()) {
            let mut fresh = Vec::new();
            if !self.nulls.is_empty() {
                for i in 0..self.len {
                    if self.is_null(i) {
                        bit_set(&mut fresh, i);
                    }
                }
            }
            self.nulls = Arc::new(fresh);
        }
        match &mut self.data {
            ColumnData::Int(v) => {
                if !(full && Arc::get_mut(v).is_some()) {
                    *v = Arc::new(v[self.off..self.off + self.len].to_vec());
                }
            }
            ColumnData::Float(v) => {
                if !(full && Arc::get_mut(v).is_some()) {
                    *v = Arc::new(v[self.off..self.off + self.len].to_vec());
                }
            }
            ColumnData::Str { offsets, arena } => {
                if !(full && Arc::get_mut(offsets).is_some() && Arc::get_mut(arena).is_some()) {
                    let base = offsets[self.off];
                    let end = offsets[self.off + self.len];
                    let rebased: Vec<u32> = offsets[self.off..=self.off + self.len]
                        .iter()
                        .map(|&o| o - base)
                        .collect();
                    *arena = Arc::new(arena[base as usize..end as usize].to_string());
                    *offsets = Arc::new(rebased);
                }
            }
        }
        self.off = 0;
    }

    /// An exclusive append session (copy-on-write happens here, once).
    fn col_mut(&mut self) -> ColMut<'_> {
        self.make_exclusive();
        let Column {
            data, nulls, len, ..
        } = self;
        let data = match data {
            ColumnData::Int(v) => ColDataMut::Int(Arc::get_mut(v).expect("exclusive")),
            ColumnData::Float(v) => ColDataMut::Float(Arc::get_mut(v).expect("exclusive")),
            ColumnData::Str { offsets, arena } => ColDataMut::Str {
                offsets: Arc::get_mut(offsets).expect("exclusive"),
                arena: Arc::get_mut(arena).expect("exclusive"),
            },
        };
        ColMut {
            data,
            nulls: Arc::get_mut(nulls).expect("exclusive"),
            len,
        }
    }

    /// Appends `v`, type-checked against the column type; NULL is allowed
    /// in any column (null-ability is the schema's concern, checked at
    /// insert — streams just carry what storage holds). Copy-on-write if
    /// the column is a shared view; use a [`BatchAppender`] to amortize
    /// that check over a whole scan.
    pub fn push(&mut self, v: &Value) -> DbResult<()> {
        let row = self.len;
        let mut m = self.col_mut();
        m.push(v, row)?;
        *m.len = row + 1;
        Ok(())
    }

    /// Appends a NULL (placeholder value + bitmap bit).
    pub fn push_null(&mut self) {
        let row = self.len;
        let mut m = self.col_mut();
        m.push_null(row);
        *m.len = row + 1;
    }

    /// Modeled wire size of this column's payload: one tag + null flag,
    /// the bitmap when (possibly) present, and the packed values. O(1) —
    /// a view of a null-free window over a null-carrying buffer charges
    /// for a bitmap it would not strictly need to ship.
    pub fn wire_size(&self) -> usize {
        let bitmap = if self.nulls.is_empty() {
            0
        } else {
            self.len.div_ceil(8)
        };
        let payload = match &self.data {
            ColumnData::Int(_) | ColumnData::Float(_) => 8 * self.len,
            ColumnData::Str { offsets, .. } => {
                let span = (offsets[self.off + self.len] - offsets[self.off]) as usize;
                4 * (self.len + 1) + span
            }
        };
        2 + bitmap + payload
    }

    /// Copies the visible rows listed in `sel` (in order) into a new,
    /// owned column — selection is inherently a gather, not a view.
    ///
    /// # Panics
    /// Panics if a selection index is out of range.
    pub fn take(&self, sel: &[u32]) -> Column {
        let mut nulls = Vec::new();
        if self.has_nulls() {
            for (row, &i) in sel.iter().enumerate() {
                if self.is_null(i as usize) {
                    bit_set(&mut nulls, row);
                }
            }
        }
        let data = match &self.data {
            ColumnData::Int(_) => {
                let v = self.ints().expect("int column");
                ColumnData::Int(Arc::new(sel.iter().map(|&i| v[i as usize]).collect()))
            }
            ColumnData::Float(_) => {
                let v = self.floats().expect("float column");
                ColumnData::Float(Arc::new(sel.iter().map(|&i| v[i as usize]).collect()))
            }
            ColumnData::Str { .. } => {
                let mut dst_offsets = Vec::with_capacity(sel.len() + 1);
                dst_offsets.push(0u32);
                let mut dst_arena = String::new();
                for &i in sel {
                    dst_arena.push_str(self.str_at(i as usize).expect("str column"));
                    dst_offsets.push(dst_arena.len() as u32);
                }
                ColumnData::Str {
                    offsets: Arc::new(dst_offsets),
                    arena: Arc::new(dst_arena),
                }
            }
        };
        Column {
            data,
            nulls: Arc::new(nulls),
            off: 0,
            len: sel.len(),
        }
    }

    /// A zero-copy view of visible rows `lo..hi`: shares the underlying
    /// buffers, adjusting only the window. O(1).
    fn slice(&self, lo: usize, hi: usize) -> Column {
        Column {
            data: self.data.clone(),
            nulls: self.nulls.clone(),
            off: self.off + lo,
            len: hi - lo,
        }
    }

    /// True if `self` and `other` are views over the very same base
    /// buffer (zero-copy sharing witness; test/diagnostic use).
    pub fn shares_buffer_with(&self, other: &Column) -> bool {
        match (&self.data, &other.data) {
            (ColumnData::Int(a), ColumnData::Int(b)) => Arc::ptr_eq(a, b),
            (ColumnData::Float(a), ColumnData::Float(b)) => Arc::ptr_eq(a, b),
            (ColumnData::Str { arena: a, .. }, ColumnData::Str { arena: b, .. }) => {
                Arc::ptr_eq(a, b)
            }
            _ => false,
        }
    }
}

impl PartialEq for Column {
    /// Logical equality: same type, same visible values, same null
    /// positions — view windows and buffer sharing are representation.
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len || self.data_type() != other.data_type() {
            return false;
        }
        let nulls_agree = if self.nulls.is_empty() && other.nulls.is_empty() {
            true
        } else {
            (0..self.len).all(|i| self.is_null(i) == other.is_null(i))
        };
        if !nulls_agree {
            return false;
        }
        match &self.data {
            ColumnData::Int(_) => self.ints() == other.ints(),
            ColumnData::Float(_) => self.floats() == other.floats(),
            ColumnData::Str { .. } => (0..self.len).all(|i| self.str_at(i) == other.str_at(i)),
        }
    }
}

/// Typed value storage of one column in the ColumnStore mirror. Strings
/// live in an append-only arena addressed by per-row `(offset, len)`
/// spans, so an in-place update appends the new payload and repoints the
/// span — the old bytes become garbage, which is the classic write-
/// optimized-column trade (a real system compacts; update volume here is
/// OLTP-rate, not scan-rate).
enum StoreData {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Strings: value `i` is `arena[spans[i].0 .. spans[i].0 + spans[i].1]`.
    Str {
        /// `(offset, len)` of each row's payload in the arena.
        spans: Vec<(u32, u32)>,
        /// Append-only payload arena (updates append and repoint).
        arena: String,
    },
}

/// Spans address the store arena with `u32` offsets, and the arena is
/// long-lived and append-only (string updates leave garbage behind), so
/// a write that would push it past `u32` addressing must fail loudly —
/// a wrapped offset would silently repoint rows at the wrong bytes. The
/// panic is the compaction backstop: hitting it means the column has
/// accumulated ~4 GiB of string writes in one partition and needs arena
/// compaction (ROADMAP follow-up), not a bigger integer.
fn check_arena_capacity(arena: &str, incoming: &str) {
    assert!(
        arena.len() + incoming.len() <= u32::MAX as usize,
        "column-store string arena exceeds u32 addressing; compact it"
    );
}

/// Mutable, in-place-updatable typed storage of one column — the unit of
/// the write-through **per-column storage mirror** partitions maintain
/// (the C-Store/Vertica move). Unlike [`Column`], whose buffers are
/// immutable and `Arc`-shared between views, a store is uniquely owned
/// by its writer and supports [`ColumnStore::set`] (OLTP update
/// write-through) next to [`ColumnStore::push`] (append write-through).
/// Scans never hand out references into a store: they bulk-copy ranges
/// into a [`ColumnBatch`] via [`BatchAppender::extend_from_stores`] /
/// [`BatchAppender::extend_from_stores_sel`] — sequential typed-vector
/// copies, no per-row tuple walk.
pub struct ColumnStore {
    data: StoreData,
    /// Bit `row` set = row is NULL (lazily grown, like [`Column`]).
    nulls: Vec<u8>,
    len: usize,
}

impl ColumnStore {
    /// An empty store of the given type.
    pub fn new(ty: DataType) -> Self {
        let data = match ty {
            DataType::Int => StoreData::Int(Vec::new()),
            DataType::Float => StoreData::Float(Vec::new()),
            DataType::Str => StoreData::Str {
                spans: Vec::new(),
                arena: String::new(),
            },
        };
        Self {
            data,
            nulls: Vec::new(),
            len: 0,
        }
    }

    /// The store's declared type.
    pub fn data_type(&self) -> DataType {
        match &self.data {
            StoreData::Int(_) => DataType::Int,
            StoreData::Float(_) => DataType::Float,
            StoreData::Str { .. } => DataType::Str,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the store holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if the row is NULL.
    #[inline]
    pub fn is_null(&self, row: usize) -> bool {
        bit_get(&self.nulls, row)
    }

    /// The raw values (`None` if not an Int store); null rows hold `0`.
    #[inline]
    pub fn ints(&self) -> Option<&[i64]> {
        match &self.data {
            StoreData::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The raw values (`None` if not a Float store).
    #[inline]
    pub fn floats(&self) -> Option<&[f64]> {
        match &self.data {
            StoreData::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The string at `row` (`None` for non-Str stores; empty for nulls).
    ///
    /// # Panics
    /// Panics if `row` is out of range.
    #[inline]
    pub fn str_at(&self, row: usize) -> Option<&str> {
        match &self.data {
            StoreData::Str { spans, arena } => {
                let (off, len) = spans[row];
                Some(&arena[off as usize..(off + len) as usize])
            }
            _ => None,
        }
    }

    /// Materializes the value at `row` (tests/diagnostics).
    ///
    /// # Panics
    /// Panics if `row` is out of range.
    pub fn value(&self, row: usize) -> Value {
        if self.is_null(row) {
            return Value::Null;
        }
        match &self.data {
            StoreData::Int(v) => Value::Int(v[row]),
            StoreData::Float(v) => Value::Float(v[row]),
            StoreData::Str { .. } => Value::str(self.str_at(row).expect("str store")),
        }
    }

    /// Appends `v`, type-checked; NULL is allowed in any column.
    pub fn push(&mut self, v: &Value) -> DbResult<()> {
        let row = self.len;
        match (&mut self.data, v) {
            (StoreData::Int(col), Value::Int(i)) => col.push(*i),
            (StoreData::Float(col), Value::Float(f)) => col.push(*f),
            (StoreData::Str { spans, arena }, Value::Str(s)) => {
                check_arena_capacity(arena, s);
                spans.push((arena.len() as u32, s.len() as u32));
                arena.push_str(s);
            }
            (data, Value::Null) => {
                match data {
                    StoreData::Int(col) => col.push(0),
                    StoreData::Float(col) => col.push(0.0),
                    StoreData::Str { spans, arena } => spans.push((arena.len() as u32, 0)),
                }
                bit_set(&mut self.nulls, row);
            }
            _ => return Err(DbError::TypeMismatch("value type vs column type")),
        }
        self.len = row + 1;
        Ok(())
    }

    /// Pre-sizes the value buffer for `n` more rows.
    pub fn reserve(&mut self, n: usize) {
        match &mut self.data {
            StoreData::Int(col) => col.reserve(n),
            StoreData::Float(col) => col.reserve(n),
            StoreData::Str { spans, .. } => spans.reserve(n),
        }
    }

    /// Overwrites the value at `row` in place, type-checked. Returns
    /// whether the stored value actually **changed** — the diff signal
    /// column-level epochs key off (a write-through of an identical
    /// value must not invalidate cached scans of this column).
    ///
    /// # Panics
    /// Panics if `row` is out of range.
    pub fn set(&mut self, row: usize, v: &Value) -> DbResult<bool> {
        assert!(row < self.len, "set({row}) of {} rows", self.len);
        let was_null = self.is_null(row);
        let changed = match (&mut self.data, v) {
            (StoreData::Int(col), Value::Int(i)) => {
                let changed = was_null || col[row] != *i;
                col[row] = *i;
                changed
            }
            (StoreData::Float(col), Value::Float(f)) => {
                // Bit-level compare: a NaN overwrite must still count as
                // a change the first time, and -0.0 vs 0.0 are distinct
                // stored states.
                let changed = was_null || col[row].to_bits() != f.to_bits();
                col[row] = *f;
                changed
            }
            (StoreData::Str { spans, arena }, Value::Str(s)) => {
                let (off, len) = spans[row];
                let changed = was_null || arena[off as usize..(off + len) as usize] != **s;
                if changed {
                    check_arena_capacity(arena, s);
                    spans[row] = (arena.len() as u32, s.len() as u32);
                    arena.push_str(s);
                }
                changed
            }
            (data, Value::Null) => {
                if !was_null {
                    match data {
                        StoreData::Int(col) => col[row] = 0,
                        StoreData::Float(col) => col[row] = 0.0,
                        StoreData::Str { spans, .. } => {
                            spans[row].1 = 0;
                        }
                    }
                }
                bit_set(&mut self.nulls, row);
                !was_null
            }
            _ => return Err(DbError::TypeMismatch("value type vs column type")),
        };
        if changed && was_null && !matches!(v, Value::Null) {
            bit_clear(&mut self.nulls, row);
        }
        Ok(changed)
    }
}

/// A columnar predicate that can be *pushed down* to the scan (evaluated
/// per row while the scan still holds the row) or evaluated vectorized
/// over a [`ColumnBatch`] into a selection vector. The enum is the
/// deliberately small pushdown language: what a NIC flow / storage AC can
/// apply without running user code — and it has a wire codec
/// ([`ColPredicate::encode_into`]) so a flow spec can be shipped to
/// wherever the scan runs. `Eq + Hash` let predicates key caches (the
/// shared-scan cache in storage keys on `(partition, proj, pred)`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ColPredicate {
    /// `col >= min` over Int values; NULLs and non-Int values fail.
    IntGe {
        /// Column position (pre-projection, i.e. in scan input order).
        col: usize,
        /// Inclusive lower bound.
        min: i64,
    },
    /// `min <= col <= max` over Int values (both bounds inclusive);
    /// NULLs and non-Int values fail.
    IntBetween {
        /// Column position (pre-projection).
        col: usize,
        /// Inclusive lower bound.
        min: i64,
        /// Inclusive upper bound.
        max: i64,
    },
    /// Str value at `col` starts with `prefix`; NULLs and non-Str fail.
    StrPrefix {
        /// Column position (pre-projection).
        col: usize,
        /// Required prefix.
        prefix: String,
    },
    /// Conjunction: every child must pass. `And(vec![])` passes all rows.
    And(Vec<ColPredicate>),
}

impl ColPredicate {
    /// Row-at-a-time evaluation (scan pushdown and row-path parity).
    pub fn matches(&self, values: &[Value]) -> bool {
        match self {
            ColPredicate::IntGe { col, min } => {
                matches!(values.get(*col), Some(Value::Int(v)) if v >= min)
            }
            ColPredicate::IntBetween { col, min, max } => {
                matches!(values.get(*col), Some(Value::Int(v)) if v >= min && v <= max)
            }
            ColPredicate::StrPrefix { col, prefix } => {
                matches!(values.get(*col), Some(Value::Str(s)) if s.starts_with(prefix.as_str()))
            }
            ColPredicate::And(ps) => ps.iter().all(|p| p.matches(values)),
        }
    }

    /// Row-at-a-time evaluation over a tuple.
    pub fn matches_tuple(&self, t: &Tuple) -> bool {
        self.matches(t.values())
    }

    /// Evaluation of one row of a column batch (used to refine `And`
    /// selections; missing or mistyped columns fail, like
    /// [`ColPredicate::matches`]).
    pub fn matches_row(&self, batch: &ColumnBatch, row: usize) -> bool {
        match self {
            ColPredicate::IntGe { col, min } => batch
                .columns()
                .get(*col)
                .is_some_and(|c| !c.is_null(row) && c.ints().is_some_and(|v| v[row] >= *min)),
            ColPredicate::IntBetween { col, min, max } => {
                batch.columns().get(*col).is_some_and(|c| {
                    !c.is_null(row) && c.ints().is_some_and(|v| v[row] >= *min && v[row] <= *max)
                })
            }
            ColPredicate::StrPrefix { col, prefix } => batch.columns().get(*col).is_some_and(|c| {
                !c.is_null(row)
                    && c.str_at(row)
                        .is_some_and(|s| s.starts_with(prefix.as_str()))
            }),
            ColPredicate::And(ps) => ps.iter().all(|p| p.matches_row(batch, row)),
        }
    }

    /// Vectorized evaluation: appends the indices of passing rows of
    /// `batch` to `sel`. The predicate's `col` addresses `batch`'s own
    /// column order here (apply [`ColPredicate::at`] after projection).
    /// Missing or mistyped columns select nothing.
    pub fn select(&self, batch: &ColumnBatch, sel: &mut Vec<u32>) {
        match self {
            ColPredicate::IntGe { col, min } => {
                let Some(column) = batch.columns().get(*col) else {
                    return;
                };
                let Some(vals) = column.ints() else { return };
                if column.has_nulls() {
                    sel.extend((0..vals.len()).filter_map(|i| {
                        (vals[i] >= *min && !column.is_null(i)).then_some(i as u32)
                    }));
                } else {
                    sel.extend(
                        vals.iter()
                            .enumerate()
                            .filter_map(|(i, v)| (v >= min).then_some(i as u32)),
                    );
                }
            }
            ColPredicate::IntBetween { col, min, max } => {
                let Some(column) = batch.columns().get(*col) else {
                    return;
                };
                let Some(vals) = column.ints() else { return };
                if column.has_nulls() {
                    sel.extend((0..vals.len()).filter_map(|i| {
                        (vals[i] >= *min && vals[i] <= *max && !column.is_null(i))
                            .then_some(i as u32)
                    }));
                } else {
                    sel.extend(
                        vals.iter()
                            .enumerate()
                            .filter_map(|(i, v)| (v >= min && v <= max).then_some(i as u32)),
                    );
                }
            }
            ColPredicate::StrPrefix { col, prefix } => {
                let Some(column) = batch.columns().get(*col) else {
                    return;
                };
                if !matches!(column.data_type(), DataType::Str) {
                    return;
                }
                for i in 0..column.len() {
                    if !column.is_null(i)
                        && column
                            .str_at(i)
                            .is_some_and(|s| s.starts_with(prefix.as_str()))
                    {
                        sel.push(i as u32);
                    }
                }
            }
            ColPredicate::And(ps) => {
                let Some((first, rest)) = ps.split_first() else {
                    // Empty conjunction: every row passes.
                    sel.extend((0..batch.rows()).map(|i| i as u32));
                    return;
                };
                let start = sel.len();
                first.select(batch, sel);
                if rest.is_empty() {
                    return;
                }
                // Refine the first child's selection in place: the later
                // children only look at already-selected rows.
                let mut w = start;
                for r in start..sel.len() {
                    let row = sel[r];
                    if rest.iter().all(|p| p.matches_row(batch, row as usize)) {
                        sel[w] = row;
                        w += 1;
                    }
                }
                sel.truncate(w);
            }
        }
    }

    /// Row-at-a-time evaluation over mirror stores (indexed by schema
    /// position, like [`ColPredicate::matches`] over full-width rows);
    /// missing or mistyped columns fail, NULLs fail.
    pub fn matches_stores(&self, stores: &[ColumnStore], row: usize) -> bool {
        match self {
            ColPredicate::IntGe { col, min } => stores
                .get(*col)
                .is_some_and(|s| !s.is_null(row) && s.ints().is_some_and(|v| v[row] >= *min)),
            ColPredicate::IntBetween { col, min, max } => stores.get(*col).is_some_and(|s| {
                !s.is_null(row) && s.ints().is_some_and(|v| v[row] >= *min && v[row] <= *max)
            }),
            ColPredicate::StrPrefix { col, prefix } => stores.get(*col).is_some_and(|s| {
                !s.is_null(row)
                    && s.str_at(row)
                        .is_some_and(|v| v.starts_with(prefix.as_str()))
            }),
            ColPredicate::And(ps) => ps.iter().all(|p| p.matches_stores(stores, row)),
        }
    }

    /// Vectorized evaluation over mirror stores: appends the **absolute**
    /// indices of rows in `lo..hi` passing the predicate to `sel`.
    /// Column positions address the full schema (stores are the whole
    /// mirror, pre-projection). Missing or mistyped columns select
    /// nothing, mirroring [`ColPredicate::select`].
    pub fn select_stores(&self, stores: &[ColumnStore], lo: usize, hi: usize, sel: &mut Vec<u32>) {
        match self {
            ColPredicate::IntGe { col, min } => {
                let Some(s) = stores.get(*col) else { return };
                let Some(vals) = s.ints() else { return };
                sel.extend(
                    (lo..hi).filter_map(|i| (vals[i] >= *min && !s.is_null(i)).then_some(i as u32)),
                );
            }
            ColPredicate::IntBetween { col, min, max } => {
                let Some(s) = stores.get(*col) else { return };
                let Some(vals) = s.ints() else { return };
                sel.extend((lo..hi).filter_map(|i| {
                    (vals[i] >= *min && vals[i] <= *max && !s.is_null(i)).then_some(i as u32)
                }));
            }
            ColPredicate::StrPrefix { col, prefix } => {
                let Some(s) = stores.get(*col) else { return };
                if !matches!(s.data_type(), DataType::Str) {
                    return;
                }
                for i in lo..hi {
                    if !s.is_null(i) && s.str_at(i).is_some_and(|v| v.starts_with(prefix.as_str()))
                    {
                        sel.push(i as u32);
                    }
                }
            }
            ColPredicate::And(ps) => {
                let Some((first, rest)) = ps.split_first() else {
                    sel.extend((lo..hi).map(|i| i as u32));
                    return;
                };
                let start = sel.len();
                first.select_stores(stores, lo, hi, sel);
                if rest.is_empty() {
                    return;
                }
                // Refine the first child's selection in place.
                let mut w = start;
                for r in start..sel.len() {
                    let row = sel[r];
                    if rest.iter().all(|p| p.matches_stores(stores, row as usize)) {
                        sel[w] = row;
                        w += 1;
                    }
                }
                sel.truncate(w);
            }
        }
    }

    /// Conservative implication test: `true` means every row matching
    /// `other` also matches `self` (`self ⊇ other` as row sets); `false`
    /// makes no claim. The test is syntactic — unrelated predicates
    /// simply fail to compare — so false negatives only cost the caller
    /// a redundant scan, while a false positive would be a correctness
    /// bug (the shared-scan cache uses this to serve a request from a
    /// cached *superset* scan and refine, so served rows must be a
    /// superset of the requested rows).
    pub fn covers(&self, other: &ColPredicate) -> bool {
        match (self, other) {
            // A conjunction covers `other` iff every conjunct does
            // (vacuously true for `And(vec![])`, which matches all rows).
            (ColPredicate::And(ps), _) => ps.iter().all(|p| p.covers(other)),
            // A leaf covers a conjunction if some single conjunct alone
            // implies the leaf (sufficient, not necessary: conservative).
            (_, ColPredicate::And(qs)) => qs.iter().any(|q| self.covers(q)),
            (
                ColPredicate::IntGe { col: c1, min: m1 },
                ColPredicate::IntGe { col: c2, min: m2 },
            ) => c1 == c2 && m1 <= m2,
            (
                ColPredicate::IntGe { col: c1, min: m1 },
                ColPredicate::IntBetween {
                    col: c2, min: m2, ..
                },
            ) => c1 == c2 && m1 <= m2,
            (
                ColPredicate::IntBetween {
                    col: c1,
                    min: m1,
                    max: x1,
                },
                ColPredicate::IntBetween {
                    col: c2,
                    min: m2,
                    max: x2,
                },
            ) => c1 == c2 && m1 <= m2 && x2 <= x1,
            (
                ColPredicate::IntBetween {
                    col: c1,
                    min: m1,
                    max: x1,
                },
                ColPredicate::IntGe { col: c2, min: m2 },
            ) => c1 == c2 && m1 <= m2 && *x1 == i64::MAX,
            (
                ColPredicate::StrPrefix {
                    col: c1,
                    prefix: p1,
                },
                ColPredicate::StrPrefix {
                    col: c2,
                    prefix: p2,
                },
            ) => c1 == c2 && p2.starts_with(p1.as_str()),
            _ => false,
        }
    }

    /// A hull of the union: the tightest predicate *in the algebra*
    /// matching every row that `self` or `other` matches. It is a hull,
    /// not the union — it may admit rows neither input matched (two
    /// disjoint date windows hull to one spanning window), which is
    /// exactly what shared execution wants: scan once with the hull,
    /// refine per query. Same-column leaves widen pairwise; everything
    /// else falls back through [`ColPredicate::covers`] to the
    /// trivially-true `And(vec![])`, which is always a valid hull.
    pub fn union_hull(&self, other: &ColPredicate) -> ColPredicate {
        match (self, other) {
            (
                ColPredicate::IntGe { col: c1, min: m1 },
                ColPredicate::IntGe { col: c2, min: m2 },
            ) if c1 == c2 => ColPredicate::IntGe {
                col: *c1,
                min: (*m1).min(*m2),
            },
            // An open-ended window absorbs a bounded one on the same
            // column: only the smaller lower bound survives.
            (
                ColPredicate::IntGe { col: c1, min: m1 },
                ColPredicate::IntBetween {
                    col: c2, min: m2, ..
                },
            )
            | (
                ColPredicate::IntBetween {
                    col: c2, min: m2, ..
                },
                ColPredicate::IntGe { col: c1, min: m1 },
            ) if c1 == c2 => ColPredicate::IntGe {
                col: *c1,
                min: (*m1).min(*m2),
            },
            (
                ColPredicate::IntBetween {
                    col: c1,
                    min: m1,
                    max: x1,
                },
                ColPredicate::IntBetween {
                    col: c2,
                    min: m2,
                    max: x2,
                },
            ) if c1 == c2 => ColPredicate::IntBetween {
                col: *c1,
                min: (*m1).min(*m2),
                max: (*x1).max(*x2),
            },
            // Longest common prefix. The empty prefix is still a real
            // constraint: both inputs require a non-NULL Str at `col`,
            // and so does `StrPrefix { prefix: "" }`.
            (
                ColPredicate::StrPrefix {
                    col: c1,
                    prefix: p1,
                },
                ColPredicate::StrPrefix {
                    col: c2,
                    prefix: p2,
                },
            ) if c1 == c2 => ColPredicate::StrPrefix {
                col: *c1,
                prefix: p1
                    .chars()
                    .zip(p2.chars())
                    .take_while(|(a, b)| a == b)
                    .map(|(a, _)| a)
                    .collect(),
            },
            _ if self.covers(other) => self.clone(),
            _ if other.covers(self) => other.clone(),
            _ => ColPredicate::And(Vec::new()),
        }
    }

    /// The same predicate re-addressed from schema positions to the
    /// column order of a batch scanned with projection `proj` (leaf `col`
    /// becomes its index *within* `proj`). Returns `None` when the
    /// predicate reads a column `proj` does not carry — the caller then
    /// cannot re-evaluate it against the projected batch.
    pub fn project_columns(&self, proj: &[usize]) -> Option<ColPredicate> {
        match self {
            ColPredicate::IntGe { col, min } => Some(ColPredicate::IntGe {
                col: proj.iter().position(|p| p == col)?,
                min: *min,
            }),
            ColPredicate::IntBetween { col, min, max } => Some(ColPredicate::IntBetween {
                col: proj.iter().position(|p| p == col)?,
                min: *min,
                max: *max,
            }),
            ColPredicate::StrPrefix { col, prefix } => Some(ColPredicate::StrPrefix {
                col: proj.iter().position(|p| p == col)?,
                prefix: prefix.clone(),
            }),
            ColPredicate::And(ps) => Some(ColPredicate::And(
                ps.iter()
                    .map(|p| p.project_columns(proj))
                    .collect::<Option<Vec<_>>>()?,
            )),
        }
    }

    /// Vectorized evaluation into a word bitmap: after the call, bit `i`
    /// of `bits` is set iff row `i` of `batch` passes. `bits` is cleared
    /// and resized to `rows.div_ceil(64)` words. Same addressing and
    /// missing/mistyped-column semantics as [`ColPredicate::select`],
    /// but the inner loops are branchless (a comparison shifted into the
    /// word instead of a conditional push), which is what the shared
    /// pipeline's refinement fan-out wants when one batch is filtered N
    /// times. Expand with [`bitmap_ones`] when indices are needed.
    pub fn select_bitmap(&self, batch: &ColumnBatch, bits: &mut Vec<u64>) {
        let rows = batch.rows();
        bits.clear();
        bits.resize(rows.div_ceil(64), 0);
        self.fill_bitmap(batch, rows, bits);
    }

    /// Core of [`ColPredicate::select_bitmap`]: ORs passing rows into
    /// `bits`, which the caller must present zeroed.
    fn fill_bitmap(&self, batch: &ColumnBatch, rows: usize, bits: &mut [u64]) {
        match self {
            ColPredicate::IntGe { col, min } => {
                let Some(column) = batch.columns().get(*col) else {
                    return;
                };
                let Some(vals) = column.ints() else { return };
                if column.has_nulls() {
                    for (i, v) in vals.iter().enumerate() {
                        let pass = *v >= *min && !column.is_null(i);
                        bits[i >> 6] |= u64::from(pass) << (i & 63);
                    }
                } else {
                    for (i, v) in vals.iter().enumerate() {
                        bits[i >> 6] |= u64::from(*v >= *min) << (i & 63);
                    }
                }
            }
            ColPredicate::IntBetween { col, min, max } => {
                let Some(column) = batch.columns().get(*col) else {
                    return;
                };
                let Some(vals) = column.ints() else { return };
                if column.has_nulls() {
                    for (i, v) in vals.iter().enumerate() {
                        let pass = *v >= *min && *v <= *max && !column.is_null(i);
                        bits[i >> 6] |= u64::from(pass) << (i & 63);
                    }
                } else {
                    for (i, v) in vals.iter().enumerate() {
                        bits[i >> 6] |= u64::from(*v >= *min && *v <= *max) << (i & 63);
                    }
                }
            }
            ColPredicate::StrPrefix { col, prefix } => {
                let Some(column) = batch.columns().get(*col) else {
                    return;
                };
                if !matches!(column.data_type(), DataType::Str) {
                    return;
                }
                for i in 0..column.len() {
                    let pass = !column.is_null(i)
                        && column
                            .str_at(i)
                            .is_some_and(|s| s.starts_with(prefix.as_str()));
                    bits[i >> 6] |= u64::from(pass) << (i & 63);
                }
            }
            ColPredicate::And(ps) => {
                let Some((first, rest)) = ps.split_first() else {
                    set_bit_range(bits, 0, rows);
                    return;
                };
                first.fill_bitmap(batch, rows, bits);
                if rest.is_empty() {
                    return;
                }
                // Conjunction = word-wise AND of the children's bitmaps.
                let mut scratch = vec![0u64; bits.len()];
                for p in rest {
                    p.fill_bitmap(batch, rows, &mut scratch);
                    for (w, s) in bits.iter_mut().zip(&scratch) {
                        *w &= *s;
                    }
                    scratch.fill(0);
                }
            }
        }
    }

    /// Bitmap twin of [`ColPredicate::select_stores`]: after the call,
    /// bit `i` of `bits` is set iff `i ∈ lo..hi` and row `i` of the
    /// mirror passes. `bits` is cleared and resized to
    /// `hi.div_ceil(64)` words — bits index **absolute** row positions,
    /// like the selection vectors `select_stores` appends.
    pub fn select_stores_bitmap(
        &self,
        stores: &[ColumnStore],
        lo: usize,
        hi: usize,
        bits: &mut Vec<u64>,
    ) {
        bits.clear();
        bits.resize(hi.div_ceil(64), 0);
        self.fill_stores_bitmap(stores, lo, hi, bits);
    }

    /// Core of [`ColPredicate::select_stores_bitmap`]: ORs passing rows
    /// in `lo..hi` into `bits`, which the caller must present zeroed.
    fn fill_stores_bitmap(&self, stores: &[ColumnStore], lo: usize, hi: usize, bits: &mut [u64]) {
        match self {
            ColPredicate::IntGe { col, min } => {
                let Some(s) = stores.get(*col) else { return };
                let Some(vals) = s.ints() else { return };
                for i in lo..hi {
                    let pass = vals[i] >= *min && !s.is_null(i);
                    bits[i >> 6] |= u64::from(pass) << (i & 63);
                }
            }
            ColPredicate::IntBetween { col, min, max } => {
                let Some(s) = stores.get(*col) else { return };
                let Some(vals) = s.ints() else { return };
                for i in lo..hi {
                    let pass = vals[i] >= *min && vals[i] <= *max && !s.is_null(i);
                    bits[i >> 6] |= u64::from(pass) << (i & 63);
                }
            }
            ColPredicate::StrPrefix { col, prefix } => {
                let Some(s) = stores.get(*col) else { return };
                if !matches!(s.data_type(), DataType::Str) {
                    return;
                }
                for i in lo..hi {
                    let pass = !s.is_null(i)
                        && s.str_at(i).is_some_and(|v| v.starts_with(prefix.as_str()));
                    bits[i >> 6] |= u64::from(pass) << (i & 63);
                }
            }
            ColPredicate::And(ps) => {
                let Some((first, rest)) = ps.split_first() else {
                    set_bit_range(bits, lo, hi);
                    return;
                };
                first.fill_stores_bitmap(stores, lo, hi, bits);
                if rest.is_empty() {
                    return;
                }
                let mut scratch = vec![0u64; bits.len()];
                for p in rest {
                    p.fill_stores_bitmap(stores, lo, hi, &mut scratch);
                    for (w, s) in bits.iter_mut().zip(&scratch) {
                        *w &= *s;
                    }
                    scratch.fill(0);
                }
            }
        }
    }

    /// Appends every column position the predicate reads to `out`
    /// (duplicates possible). With a projection, `proj ∪ columns` is the
    /// column set whose epochs certify a filtered scan.
    pub fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            ColPredicate::IntGe { col, .. }
            | ColPredicate::IntBetween { col, .. }
            | ColPredicate::StrPrefix { col, .. } => out.push(*col),
            ColPredicate::And(ps) => {
                for p in ps {
                    p.collect_columns(out);
                }
            }
        }
    }

    /// The same predicate re-addressed to column position `col` (used
    /// when a projection reorders columns between scan and flow). For an
    /// `And`, every child is re-addressed — conjunctions shipped across a
    /// projection boundary must therefore be single-column.
    pub fn at(&self, col: usize) -> ColPredicate {
        match self {
            ColPredicate::IntGe { min, .. } => ColPredicate::IntGe { col, min: *min },
            ColPredicate::IntBetween { min, max, .. } => ColPredicate::IntBetween {
                col,
                min: *min,
                max: *max,
            },
            ColPredicate::StrPrefix { prefix, .. } => ColPredicate::StrPrefix {
                col,
                prefix: prefix.clone(),
            },
            ColPredicate::And(ps) => ColPredicate::And(ps.iter().map(|p| p.at(col)).collect()),
        }
    }

    /// Nesting depth of the predicate tree: 0 for leaves, one more than
    /// the deepest child for `And` (an empty `And` counts as depth 1).
    pub fn depth(&self) -> usize {
        match self {
            ColPredicate::And(ps) => 1 + ps.iter().map(ColPredicate::depth).max().unwrap_or(0),
            _ => 0,
        }
    }

    /// Encodes the predicate in its wire format: one tag byte per node,
    /// column positions as u32, bounds as i64, prefixes as length-framed
    /// UTF-8, `And` as a u16 child count followed by the children.
    ///
    /// Trees nested deeper than the codec's depth cap are not wire-
    /// encodable — [`ColPredicate::decode_from`] would reject the bytes —
    /// and are a construction bug (planners emit flat conjunctions), so
    /// this is debug-asserted: check [`ColPredicate::depth`] first if a
    /// predicate comes from an untrusted composer.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        debug_assert!(
            self.depth() <= MAX_PRED_DEPTH,
            "predicate tree too deep to roundtrip the wire codec"
        );
        self.encode_node(buf);
    }

    fn encode_node(&self, buf: &mut BytesMut) {
        match self {
            ColPredicate::IntGe { col, min } => {
                buf.put_u8(PRED_INT_GE);
                buf.put_u32(*col as u32);
                buf.put_i64(*min);
            }
            ColPredicate::IntBetween { col, min, max } => {
                buf.put_u8(PRED_INT_BETWEEN);
                buf.put_u32(*col as u32);
                buf.put_i64(*min);
                buf.put_i64(*max);
            }
            ColPredicate::StrPrefix { col, prefix } => {
                debug_assert!(prefix.len() <= u16::MAX as usize);
                buf.put_u8(PRED_STR_PREFIX);
                buf.put_u32(*col as u32);
                buf.put_u16(prefix.len() as u16);
                buf.put_slice(prefix.as_bytes());
            }
            ColPredicate::And(ps) => {
                debug_assert!(ps.len() <= u16::MAX as usize);
                buf.put_u8(PRED_AND);
                buf.put_u16(ps.len() as u16);
                for p in ps {
                    p.encode_node(buf);
                }
            }
        }
    }

    /// Encodes into a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Decodes one predicate, advancing `buf` past the consumed bytes.
    /// Rejects truncation, unknown tags, non-UTF-8 prefixes, and
    /// conjunctions nested deeper than the codec's depth cap.
    pub fn decode_from(buf: &mut impl Buf) -> DbResult<ColPredicate> {
        Self::decode_depth(buf, 0)
    }

    fn decode_depth(buf: &mut impl Buf, depth: usize) -> DbResult<ColPredicate> {
        if depth > MAX_PRED_DEPTH {
            return Err(DbError::Codec("predicate nesting too deep"));
        }
        if buf.remaining() < 1 {
            return Err(DbError::Codec("predicate tag truncated"));
        }
        match buf.get_u8() {
            PRED_INT_GE => {
                if buf.remaining() < 4 + 8 {
                    return Err(DbError::Codec("int-ge predicate truncated"));
                }
                let col = buf.get_u32() as usize;
                let min = buf.get_i64();
                Ok(ColPredicate::IntGe { col, min })
            }
            PRED_INT_BETWEEN => {
                if buf.remaining() < 4 + 16 {
                    return Err(DbError::Codec("int-between predicate truncated"));
                }
                let col = buf.get_u32() as usize;
                let min = buf.get_i64();
                let max = buf.get_i64();
                Ok(ColPredicate::IntBetween { col, min, max })
            }
            PRED_STR_PREFIX => {
                if buf.remaining() < 4 + 2 {
                    return Err(DbError::Codec("str-prefix predicate truncated"));
                }
                let col = buf.get_u32() as usize;
                let len = buf.get_u16() as usize;
                if buf.remaining() < len {
                    return Err(DbError::Codec("str-prefix payload truncated"));
                }
                let mut bytes = vec![0u8; len];
                buf.copy_to_slice(&mut bytes);
                let prefix =
                    String::from_utf8(bytes).map_err(|_| DbError::Codec("str-prefix not utf-8"))?;
                Ok(ColPredicate::StrPrefix { col, prefix })
            }
            PRED_AND => {
                if buf.remaining() < 2 {
                    return Err(DbError::Codec("and predicate truncated"));
                }
                let n = buf.get_u16() as usize;
                let mut ps = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    ps.push(Self::decode_depth(buf, depth + 1)?);
                }
                Ok(ColPredicate::And(ps))
            }
            _ => Err(DbError::Codec("unknown predicate tag")),
        }
    }

    /// Decodes from a standalone buffer (must be fully consumed).
    pub fn decode(bytes: &Bytes) -> DbResult<ColPredicate> {
        let mut buf = bytes.clone();
        let p = Self::decode_from(&mut buf)?;
        if buf.remaining() != 0 {
            return Err(DbError::Codec("trailing bytes after predicate"));
        }
        Ok(p)
    }
}

/// A column-organized batch of rows — the vectorized counterpart of a
/// tuple batch. All columns always hold the same number of rows.
///
/// Cloning, [`ColumnBatch::slice`], [`ColumnBatch::split`] and
/// [`ColumnBatch::project`] are zero-copy (shared buffers + view
/// windows); equality is logical (see [`Column`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnBatch {
    columns: Vec<Column>,
    rows: usize,
}

/// An exclusive append session over a whole [`ColumnBatch`]: the
/// copy-on-write exclusivity check runs once at construction, and row /
/// column counters are written back once on drop — so hot scan loops
/// push row after row at plain `Vec::push` cost.
pub struct BatchAppender<'a> {
    cols: Vec<ColMut<'a>>,
    rows: &'a mut usize,
    /// Rows the batch held when the session began.
    start: usize,
    /// Complete rows appended by this session.
    added: usize,
}

impl BatchAppender<'_> {
    /// Appends one row given in the batch's column order. On `Err` the
    /// batch is left with ragged columns and must be discarded (see
    /// [`ColumnBatch::push_row`]).
    pub fn push_row(&mut self, values: &[Value]) -> DbResult<()> {
        if values.len() != self.cols.len() {
            return Err(DbError::SchemaMismatch("row arity vs batch arity"));
        }
        let row = self.start + self.added;
        for (col, v) in self.cols.iter_mut().zip(values) {
            col.push(v, row)?;
        }
        self.added += 1;
        Ok(())
    }

    /// Appends the `proj` positions of a full-width row — the projection
    /// pushdown entry point used by scans: only the projected values are
    /// ever copied. On `Err` the batch must be discarded.
    pub fn push_projected(&mut self, values: &[Value], proj: &[usize]) -> DbResult<()> {
        if proj.len() != self.cols.len() {
            return Err(DbError::SchemaMismatch("projection arity vs batch arity"));
        }
        let row = self.start + self.added;
        for (col, &i) in self.cols.iter_mut().zip(proj) {
            let v = values
                .get(i)
                .ok_or(DbError::SchemaMismatch("projection index out of range"))?;
            col.push(v, row)?;
        }
        self.added += 1;
        Ok(())
    }

    /// Pre-sizes every column's value buffer for `n` more rows.
    pub fn reserve(&mut self, n: usize) {
        for col in &mut self.cols {
            col.reserve(n);
        }
    }

    /// Bulk-appends rows `lo..hi` of each store — `stores` given in the
    /// batch's column order (i.e. already projected). This is the
    /// mirror-scan fast path: one typed range copy per column instead of
    /// one tuple walk per row. On `Err` (arity or type mismatch) the
    /// batch may be ragged and must be discarded.
    pub fn extend_from_stores(
        &mut self,
        stores: &[&ColumnStore],
        lo: usize,
        hi: usize,
    ) -> DbResult<()> {
        if stores.len() != self.cols.len() {
            return Err(DbError::SchemaMismatch("projection arity vs batch arity"));
        }
        let dst_start = self.start + self.added;
        for (col, store) in self.cols.iter_mut().zip(stores) {
            col.extend_from_store(store, lo, hi, dst_start)?;
        }
        self.added += hi - lo;
        Ok(())
    }

    /// Gathers the rows listed in `sel` (store row indices) from each
    /// store — the filtered-scan counterpart of
    /// [`BatchAppender::extend_from_stores`]. On `Err` the batch must be
    /// discarded.
    pub fn extend_from_stores_sel(&mut self, stores: &[&ColumnStore], sel: &[u32]) -> DbResult<()> {
        if stores.len() != self.cols.len() {
            return Err(DbError::SchemaMismatch("projection arity vs batch arity"));
        }
        let dst_start = self.start + self.added;
        for (col, store) in self.cols.iter_mut().zip(stores) {
            col.extend_from_store_sel(store, sel, dst_start)?;
        }
        self.added += sel.len();
        Ok(())
    }
}

impl Drop for BatchAppender<'_> {
    fn drop(&mut self) {
        // Publish the session's row count to every column and the batch.
        // Values of a row abandoned mid-append (type error) sit beyond the
        // published length and are re-materialized away by the next
        // copy-on-write — the batch is documented as discard-on-error
        // regardless.
        let rows = self.start + self.added;
        for col in &mut self.cols {
            *col.len = rows;
        }
        *self.rows = rows;
    }
}

impl ColumnBatch {
    /// An empty batch with the given column types.
    pub fn new(types: &[DataType]) -> Self {
        Self {
            columns: types.iter().map(|&ty| Column::new(ty)).collect(),
            rows: 0,
        }
    }

    /// An empty batch typed from a projection of `schema`.
    ///
    /// # Panics
    /// Panics if a projection index is out of range — projections are
    /// resolved against the checked schema, so this is a plan bug.
    pub fn for_projection(schema: &Schema, proj: &[usize]) -> Self {
        Self::new(
            &proj
                .iter()
                .map(|&i| schema.columns()[i].ty)
                .collect::<Vec<_>>(),
        )
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// True if there are no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The columns.
    #[inline]
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// One column.
    ///
    /// # Panics
    /// Panics if out of range; operators resolve positions against the
    /// batch's schema before touching columns.
    #[inline]
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// The column types in order.
    pub fn types(&self) -> Vec<DataType> {
        self.columns.iter().map(Column::data_type).collect()
    }

    /// An exclusive append session (one copy-on-write check for the whole
    /// batch; scans hold this across every row they materialize).
    pub fn appender(&mut self) -> BatchAppender<'_> {
        let Self { columns, rows } = self;
        let start = *rows;
        BatchAppender {
            cols: columns.iter_mut().map(Column::col_mut).collect(),
            rows,
            start,
            added: 0,
        }
    }

    /// Appends one row given in this batch's column order.
    ///
    /// On `Err` the batch is left with ragged columns and must be
    /// discarded — rows reaching this path were schema-checked at insert,
    /// so a mismatch means the batch was typed for another table.
    pub fn push_row(&mut self, values: &[Value]) -> DbResult<()> {
        self.appender().push_row(values)
    }

    /// Appends the `proj` positions of a full-width row — the projection
    /// pushdown entry point used by scans: only the projected values are
    /// ever copied. On `Err` the batch must be discarded (see
    /// [`ColumnBatch::push_row`]).
    pub fn push_projected(&mut self, values: &[Value], proj: &[usize]) -> DbResult<()> {
        self.appender().push_projected(values, proj)
    }

    /// Materializes row `i` as a tuple (late materialization boundary).
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn row_tuple(&self, i: usize) -> Tuple {
        Tuple::new(self.columns.iter().map(|c| c.value(i)).collect())
    }

    /// Materializes every row (row-path interop and tests).
    pub fn to_tuples(&self) -> Vec<Tuple> {
        (0..self.rows).map(|i| self.row_tuple(i)).collect()
    }

    /// Builds a batch from tuples with the given column types.
    pub fn from_tuples(types: &[DataType], tuples: &[Tuple]) -> DbResult<Self> {
        let mut out = Self::new(types);
        {
            let mut app = out.appender();
            for t in tuples {
                app.push_row(t.values())?;
            }
        }
        Ok(out)
    }

    /// Modeled wire size in bytes — O(columns), derived from view
    /// lengths, so producers never re-walk rows to size a batch.
    pub fn bytes(&self) -> usize {
        6 + self.columns.iter().map(Column::wire_size).sum::<usize>()
    }

    /// Gathers the rows listed in `sel` (a selection vector) into a new
    /// batch — how vectorized filters materialize their survivors.
    pub fn take(&self, sel: &[u32]) -> ColumnBatch {
        ColumnBatch {
            columns: self.columns.iter().map(|c| c.take(sel)).collect(),
            rows: sel.len(),
        }
    }

    /// Keeps only the listed columns, in the given order. Zero-copy: the
    /// new batch shares the survivors' buffers.
    ///
    /// # Panics
    /// Panics if an index is out of range.
    pub fn project(&self, cols: &[usize]) -> ColumnBatch {
        ColumnBatch {
            columns: cols.iter().map(|&i| self.columns[i].clone()).collect(),
            rows: self.rows,
        }
    }

    /// A zero-copy view of rows `lo..hi`: O(columns) metadata, no values
    /// copied — every view shares the original buffers.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, lo: usize, hi: usize) -> ColumnBatch {
        assert!(
            lo <= hi && hi <= self.rows,
            "slice {lo}..{hi} of {}",
            self.rows
        );
        ColumnBatch {
            columns: self.columns.iter().map(|c| c.slice(lo, hi)).collect(),
            rows: hi - lo,
        }
    }

    /// Splits into views of at most `batch_rows` rows (wire batching).
    /// Zero-copy: O(batches × columns) total, independent of row count —
    /// this is what keeps the producer path free of per-batch memcpys.
    ///
    /// # Panics
    /// Panics if `batch_rows` is zero.
    pub fn split(self, batch_rows: usize) -> Vec<ColumnBatch> {
        assert!(batch_rows > 0);
        if self.rows <= batch_rows {
            return if self.rows == 0 {
                Vec::new()
            } else {
                vec![self]
            };
        }
        let mut out = Vec::with_capacity(self.rows.div_ceil(batch_rows));
        let mut lo = 0;
        while lo < self.rows {
            let hi = (lo + batch_rows).min(self.rows);
            out.push(self.slice(lo, hi));
            lo = hi;
        }
        out
    }

    /// Encodes the batch in the columnar wire format: a `(rows, ncols)`
    /// header, then per column one tag byte, a null-bitmap flag (+ bitmap
    /// when set) and the values packed contiguously — replacing the
    /// per-value tags of the row encoding. Views are rebased while
    /// writing (string offsets shifted, bitmaps repacked), so an encoded
    /// view is indistinguishable from an encoded copy.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        debug_assert!(self.columns.len() <= u16::MAX as usize);
        buf.put_u32(self.rows as u32);
        buf.put_u16(self.columns.len() as u16);
        for col in &self.columns {
            match &col.data {
                ColumnData::Int(_) => buf.put_u8(TAG_INT),
                ColumnData::Float(_) => buf.put_u8(TAG_FLOAT),
                ColumnData::Str { .. } => buf.put_u8(TAG_STR),
            }
            if !col.has_nulls_in_view() {
                buf.put_u8(0);
            } else {
                buf.put_u8(1);
                // Repack the window's bits into a view-local bitmap padded
                // to the full row count for a self-describing layout.
                let mut bm = vec![0u8; self.rows.div_ceil(8)];
                for i in 0..col.len {
                    if col.is_null(i) {
                        bm[i / 8] |= 1 << (i % 8);
                    }
                }
                buf.put_slice(&bm);
            }
            match &col.data {
                ColumnData::Int(_) => {
                    for &i in col.ints().expect("int column") {
                        buf.put_i64(i);
                    }
                }
                ColumnData::Float(_) => {
                    for &f in col.floats().expect("float column") {
                        buf.put_f64(f);
                    }
                }
                ColumnData::Str { offsets, arena } => {
                    let base = offsets[col.off];
                    for &o in &offsets[col.off..=col.off + col.len] {
                        buf.put_u32(o - base);
                    }
                    let end = offsets[col.off + col.len];
                    buf.put_slice(&arena.as_bytes()[base as usize..end as usize]);
                }
            }
        }
    }

    /// Encodes into a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.bytes());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Decodes one batch, advancing `buf` past the consumed bytes.
    /// Rejects truncation, unknown tags, and malformed string layouts.
    pub fn decode_from(buf: &mut impl Buf) -> DbResult<ColumnBatch> {
        if buf.remaining() < 6 {
            return Err(DbError::Codec("column batch header truncated"));
        }
        let rows = buf.get_u32() as usize;
        let ncols = buf.get_u16() as usize;
        if rows > MAX_DECODE_ROWS {
            return Err(DbError::Codec("column batch row count implausible"));
        }
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            if buf.remaining() < 2 {
                return Err(DbError::Codec("column header truncated"));
            }
            let tag = buf.get_u8();
            let has_nulls = match buf.get_u8() {
                0 => false,
                1 => true,
                _ => return Err(DbError::Codec("bad null-bitmap flag")),
            };
            let nulls = if has_nulls {
                let want = rows.div_ceil(8);
                if buf.remaining() < want {
                    return Err(DbError::Codec("null bitmap truncated"));
                }
                let mut bm = vec![0u8; want];
                buf.copy_to_slice(&mut bm);
                // Canonicalize to the builder's lazy form (bits are only
                // ever set, so an in-memory bitmap never ends in a zero
                // byte).
                while bm.last() == Some(&0) {
                    bm.pop();
                }
                bm
            } else {
                Vec::new()
            };
            let data = match tag {
                TAG_INT => {
                    if buf.remaining() < 8 * rows {
                        return Err(DbError::Codec("int column truncated"));
                    }
                    ColumnData::Int(Arc::new((0..rows).map(|_| buf.get_i64()).collect()))
                }
                TAG_FLOAT => {
                    if buf.remaining() < 8 * rows {
                        return Err(DbError::Codec("float column truncated"));
                    }
                    ColumnData::Float(Arc::new((0..rows).map(|_| buf.get_f64()).collect()))
                }
                TAG_STR => {
                    if buf.remaining() < 4 * (rows + 1) {
                        return Err(DbError::Codec("str offsets truncated"));
                    }
                    let offsets: Vec<u32> = (0..=rows).map(|_| buf.get_u32()).collect();
                    if offsets[0] != 0 || offsets.windows(2).any(|w| w[0] > w[1]) {
                        return Err(DbError::Codec("str offsets not monotone"));
                    }
                    let arena_len = offsets[rows] as usize;
                    if buf.remaining() < arena_len {
                        return Err(DbError::Codec("str arena truncated"));
                    }
                    let mut bytes = vec![0u8; arena_len];
                    buf.copy_to_slice(&mut bytes);
                    let arena =
                        String::from_utf8(bytes).map_err(|_| DbError::Codec("str not utf-8"))?;
                    if offsets.iter().any(|&o| !arena.is_char_boundary(o as usize)) {
                        return Err(DbError::Codec("str offset splits a character"));
                    }
                    ColumnData::Str {
                        offsets: Arc::new(offsets),
                        arena: Arc::new(arena),
                    }
                }
                _ => return Err(DbError::Codec("unknown column tag")),
            };
            columns.push(Column {
                data,
                nulls: Arc::new(nulls),
                off: 0,
                len: rows,
            });
        }
        Ok(ColumnBatch { columns, rows })
    }

    /// Decodes from a standalone buffer.
    pub fn decode(bytes: &Bytes) -> DbResult<ColumnBatch> {
        let mut buf = bytes.clone();
        Self::decode_from(&mut buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn types() -> Vec<DataType> {
        vec![DataType::Int, DataType::Float, DataType::Str]
    }

    fn sample() -> ColumnBatch {
        let mut b = ColumnBatch::new(&types());
        b.push_row(&[Value::Int(1), Value::Float(1.5), Value::str("alpha")])
            .unwrap();
        b.push_row(&[Value::Int(-2), Value::Null, Value::str("")])
            .unwrap();
        b.push_row(&[Value::Null, Value::Float(2.5), Value::Null])
            .unwrap();
        b
    }

    #[test]
    fn push_and_materialize_roundtrip() {
        let b = sample();
        assert_eq!(b.rows(), 3);
        assert_eq!(b.arity(), 3);
        assert_eq!(
            b.row_tuple(1).values(),
            &[Value::Int(-2), Value::Null, Value::str("")]
        );
        assert_eq!(b.row_tuple(2).get(0), &Value::Null);
        let tuples = b.to_tuples();
        let back = ColumnBatch::from_tuples(&types(), &tuples).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut b = ColumnBatch::new(&[DataType::Int]);
        assert!(b.push_row(&[Value::str("x")]).is_err());
        assert!(b.push_row(&[Value::Int(1), Value::Int(2)]).is_err());
        assert!(b.push_row(&[Value::Int(1)]).is_ok());
    }

    #[test]
    fn projection_pushdown_copies_only_projected() {
        let mut b = ColumnBatch::new(&[DataType::Str, DataType::Int]);
        let wide = [
            Value::Int(7),
            Value::str("keep"),
            Value::Float(9.9),
            Value::Int(42),
        ];
        b.push_projected(&wide, &[1, 3]).unwrap();
        assert_eq!(
            b.row_tuple(0).values(),
            &[Value::str("keep"), Value::Int(42)]
        );
        assert!(b.push_projected(&wide, &[0]).is_err()); // arity
        assert!(b.push_projected(&wide, &[1, 9]).is_err()); // range
    }

    #[test]
    fn encode_decode_roundtrip() {
        let b = sample();
        let enc = b.encode();
        assert_eq!(ColumnBatch::decode(&enc).unwrap(), b);
        // The modeled size upper-bounds the encoding closely.
        assert!(enc.len() <= b.bytes() + 8, "{} vs {}", enc.len(), b.bytes());
    }

    #[test]
    fn empty_batch_roundtrip() {
        let b = ColumnBatch::new(&types());
        assert_eq!(ColumnBatch::decode(&b.encode()).unwrap(), b);
        let none = ColumnBatch::new(&[]);
        assert_eq!(ColumnBatch::decode(&none.encode()).unwrap(), none);
    }

    #[test]
    fn decode_rejects_truncation() {
        let enc = sample().encode();
        for cut in 0..enc.len() {
            assert!(
                ColumnBatch::decode(&enc.slice(0..cut)).is_err(),
                "decode must fail at cut {cut}"
            );
        }
    }

    #[test]
    fn decode_rejects_unknown_tag_and_bad_offsets() {
        let mut buf = BytesMut::new();
        buf.put_u32(1);
        buf.put_u16(1);
        buf.put_u8(99);
        buf.put_u8(0);
        assert_eq!(
            ColumnBatch::decode(&buf.freeze()),
            Err(DbError::Codec("unknown column tag"))
        );
        // Non-monotone string offsets.
        let mut buf = BytesMut::new();
        buf.put_u32(1);
        buf.put_u16(1);
        buf.put_u8(TAG_STR);
        buf.put_u8(0);
        buf.put_u32(0);
        buf.put_u32(4);
        buf.put_slice(b"ab"); // arena shorter than declared
        assert!(ColumnBatch::decode(&buf.freeze()).is_err());
    }

    #[test]
    fn columnar_wire_beats_row_wire_for_ints() {
        // 3 int columns, 100 rows: row encoding pays a tag per value.
        let types = vec![DataType::Int; 3];
        let tuples: Vec<Tuple> = (0..100)
            .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i * 2), Value::Int(i * 3)]))
            .collect();
        let col = ColumnBatch::from_tuples(&types, &tuples).unwrap();
        let row_bytes: usize = tuples.iter().map(Tuple::wire_size).sum();
        assert!(
            col.bytes() < row_bytes,
            "columnar {} !< row {row_bytes}",
            col.bytes()
        );
        assert!(col.encode().len() < row_bytes);
    }

    #[test]
    fn take_gathers_selection() {
        let b = sample();
        let sel = vec![2u32, 0];
        let took = b.take(&sel);
        assert_eq!(took.rows(), 2);
        assert_eq!(took.row_tuple(0), b.row_tuple(2));
        assert_eq!(took.row_tuple(1), b.row_tuple(0));
    }

    #[test]
    fn slice_and_split_preserve_rows() {
        let mut b = ColumnBatch::new(&types());
        for i in 0..10 {
            b.push_row(&[Value::Int(i), Value::Float(i as f64), Value::str("s")])
                .unwrap();
        }
        let all = b.to_tuples();
        let parts = b.split(4);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(ColumnBatch::rows).sum::<usize>(), 10);
        let glued: Vec<Tuple> = parts.iter().flat_map(ColumnBatch::to_tuples).collect();
        assert_eq!(glued, all);
        assert!(ColumnBatch::new(&types()).split(4).is_empty());
    }

    #[test]
    fn slice_split_and_project_are_zero_copy() {
        let mut b = ColumnBatch::new(&types());
        for i in 0..32 {
            b.push_row(&[Value::Int(i), Value::Float(0.5), Value::str("zc")])
                .unwrap();
        }
        let view = b.slice(5, 21);
        for (c, v) in b.columns().iter().zip(view.columns()) {
            assert!(c.shares_buffer_with(v), "slice must share buffers");
        }
        let projected = b.project(&[2, 0]);
        assert!(projected.column(0).shares_buffer_with(b.column(2)));
        assert!(projected.column(1).shares_buffer_with(b.column(0)));
        let original = b.clone();
        for part in b.split(7) {
            for (c, v) in original.columns().iter().zip(part.columns()) {
                assert!(c.shares_buffer_with(v), "split must share buffers");
            }
        }
    }

    #[test]
    fn views_roundtrip_codec_and_equal_copies() {
        let b = sample();
        let view = b.slice(1, 3);
        // Logical equality with a materialized copy of the same rows.
        let copy = ColumnBatch::from_tuples(&types(), &view.to_tuples()).unwrap();
        assert_eq!(view, copy);
        assert_eq!(copy, view);
        // The view encodes as if it were the copy.
        assert_eq!(ColumnBatch::decode(&view.encode()).unwrap(), copy);
        // A view over the null-free prefix drops the bitmap on the wire.
        let head = b.slice(0, 1);
        assert_eq!(
            ColumnBatch::decode(&head.encode()).unwrap(),
            ColumnBatch::from_tuples(&types(), &head.to_tuples()).unwrap()
        );
    }

    #[test]
    fn mutating_a_view_copies_on_write() {
        let mut b = ColumnBatch::new(&[DataType::Int, DataType::Str]);
        for i in 0..8 {
            b.push_row(&[Value::Int(i), Value::str("v")]).unwrap();
        }
        let baseline = b.to_tuples();
        let mut view = b.slice(2, 5);
        view.push_row(&[Value::Int(99), Value::str("new")]).unwrap();
        assert_eq!(view.rows(), 4);
        assert_eq!(view.row_tuple(0), baseline[2]);
        assert_eq!(
            view.row_tuple(3).values(),
            &[Value::Int(99), Value::str("new")]
        );
        // The original batch is untouched by the view's append.
        assert_eq!(b.to_tuples(), baseline);
        assert!(!view.column(0).shares_buffer_with(b.column(0)));
    }

    #[test]
    fn predicates_row_and_vectorized_agree() {
        let mut b = ColumnBatch::new(&[DataType::Int, DataType::Str]);
        for (i, s) in [(5i64, "Alpha"), (20, "beta"), (30, "Ax"), (1, "A")] {
            b.push_row(&[Value::Int(i), Value::str(s)]).unwrap();
        }
        b.push_row(&[Value::Null, Value::Null]).unwrap();
        for pred in [
            ColPredicate::IntGe { col: 0, min: 10 },
            ColPredicate::IntBetween {
                col: 0,
                min: 2,
                max: 20,
            },
            ColPredicate::StrPrefix {
                col: 1,
                prefix: "A".into(),
            },
            ColPredicate::And(vec![
                ColPredicate::IntBetween {
                    col: 0,
                    min: 1,
                    max: 30,
                },
                ColPredicate::StrPrefix {
                    col: 1,
                    prefix: "A".into(),
                },
            ]),
            ColPredicate::And(vec![]),
        ] {
            let mut sel = Vec::new();
            pred.select(&b, &mut sel);
            let by_row: Vec<u32> = (0..b.rows())
                .filter(|&i| pred.matches_tuple(&b.row_tuple(i)))
                .map(|i| i as u32)
                .collect();
            assert_eq!(sel, by_row, "{pred:?}");
            let by_batch_row: Vec<u32> = (0..b.rows())
                .filter(|&i| pred.matches_row(&b, i))
                .map(|i| i as u32)
                .collect();
            assert_eq!(sel, by_batch_row, "matches_row of {pred:?}");
            if !matches!(pred, ColPredicate::And(ref ps) if ps.is_empty()) {
                assert!(!sel.contains(&4), "null row must fail {pred:?}");
            }
        }
    }

    #[test]
    fn predicate_readdress() {
        let p = ColPredicate::StrPrefix {
            col: 5,
            prefix: "A".into(),
        };
        assert_eq!(
            p.at(0),
            ColPredicate::StrPrefix {
                col: 0,
                prefix: "A".into()
            }
        );
        let range = ColPredicate::And(vec![ColPredicate::IntBetween {
            col: 3,
            min: 1,
            max: 9,
        }]);
        assert_eq!(
            range.at(1),
            ColPredicate::And(vec![ColPredicate::IntBetween {
                col: 1,
                min: 1,
                max: 9
            }])
        );
    }

    #[test]
    fn predicate_codec_roundtrips() {
        let preds = [
            ColPredicate::IntGe { col: 4, min: -7 },
            ColPredicate::IntBetween {
                col: 0,
                min: 20070101,
                max: 20121231,
            },
            ColPredicate::StrPrefix {
                col: 5,
                prefix: "Aß漢".into(),
            },
            ColPredicate::And(vec![]),
            ColPredicate::And(vec![
                ColPredicate::IntGe { col: 1, min: 0 },
                ColPredicate::And(vec![ColPredicate::StrPrefix {
                    col: 2,
                    prefix: String::new(),
                }]),
            ]),
        ];
        for p in preds {
            let enc = p.encode();
            assert_eq!(ColPredicate::decode(&enc).unwrap(), p, "{p:?}");
            // Every strict prefix must be rejected.
            for cut in 0..enc.len() {
                assert!(
                    ColPredicate::decode(&enc.slice(0..cut)).is_err(),
                    "{p:?} decoded at cut {cut}"
                );
            }
        }
    }

    #[test]
    fn predicate_codec_rejects_bad_input() {
        let mut buf = BytesMut::new();
        buf.put_u8(200);
        assert_eq!(
            ColPredicate::decode(&buf.freeze()),
            Err(DbError::Codec("unknown predicate tag"))
        );
        // Deep And nesting is bounded.
        let mut buf = BytesMut::new();
        for _ in 0..(MAX_PRED_DEPTH + 2) {
            buf.put_u8(PRED_AND);
            buf.put_u16(1);
        }
        buf.put_u8(PRED_INT_GE);
        buf.put_u32(0);
        buf.put_i64(0);
        assert_eq!(
            ColPredicate::decode(&buf.freeze()),
            Err(DbError::Codec("predicate nesting too deep"))
        );
        // Non-UTF-8 prefix payload.
        let mut buf = BytesMut::new();
        buf.put_u8(PRED_STR_PREFIX);
        buf.put_u32(0);
        buf.put_u16(2);
        buf.put_slice(&[0xFF, 0xFE]);
        assert_eq!(
            ColPredicate::decode(&buf.freeze()),
            Err(DbError::Codec("str-prefix not utf-8"))
        );
        // Trailing garbage after a valid predicate.
        let mut buf = BytesMut::new();
        ColPredicate::IntGe { col: 0, min: 1 }.encode_into(&mut buf);
        buf.put_u8(0);
        assert_eq!(
            ColPredicate::decode(&buf.freeze()),
            Err(DbError::Codec("trailing bytes after predicate"))
        );
    }

    #[test]
    fn predicate_depth_cap_is_symmetric_at_the_boundary() {
        // Exactly MAX_PRED_DEPTH levels of And: encodable AND decodable.
        let mut p = ColPredicate::IntGe { col: 0, min: 1 };
        for _ in 0..MAX_PRED_DEPTH {
            p = ColPredicate::And(vec![p]);
        }
        assert_eq!(p.depth(), MAX_PRED_DEPTH);
        assert_eq!(ColPredicate::decode(&p.encode()).unwrap(), p);
        // One deeper is not wire-encodable (debug-asserted on encode,
        // rejected on decode — see `predicate_codec_rejects_bad_input`).
        let deeper = ColPredicate::And(vec![p]);
        assert_eq!(deeper.depth(), MAX_PRED_DEPTH + 1);
    }

    #[test]
    fn column_store_push_set_and_diff() {
        let mut s = ColumnStore::new(DataType::Str);
        s.push(&Value::str("alpha")).unwrap();
        s.push(&Value::Null).unwrap();
        s.push(&Value::str("")).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.value(0), Value::str("alpha"));
        assert_eq!(s.value(1), Value::Null);
        assert_eq!(s.value(2), Value::str(""));
        // Identical overwrite reports no change (epoch diff signal).
        assert!(!s.set(0, &Value::str("alpha")).unwrap());
        assert!(s.set(0, &Value::str("beta")).unwrap());
        assert_eq!(s.value(0), Value::str("beta"));
        // Null transitions both ways are changes; repeated nulls are not.
        assert!(s.set(0, &Value::Null).unwrap());
        assert!(!s.set(0, &Value::Null).unwrap());
        assert!(s.set(1, &Value::str("")).unwrap());
        assert_eq!(s.value(1), Value::str(""));
        assert!(!s.is_null(1));
        // Type mismatch is an error, not a silent write.
        assert!(s.set(2, &Value::Int(1)).is_err());
        assert!(s.push(&Value::Float(0.5)).is_err());

        let mut i = ColumnStore::new(DataType::Int);
        i.push(&Value::Int(7)).unwrap();
        assert!(!i.set(0, &Value::Int(7)).unwrap());
        assert!(i.set(0, &Value::Int(8)).unwrap());
        let mut f = ColumnStore::new(DataType::Float);
        f.push(&Value::Float(0.0)).unwrap();
        assert!(!f.set(0, &Value::Float(0.0)).unwrap());
        assert!(
            f.set(0, &Value::Float(-0.0)).unwrap(),
            "-0.0 is a new bit pattern"
        );
        assert!(f.set(0, &Value::Float(f64::NAN)).unwrap());
        assert!(
            !f.set(0, &Value::Float(f64::NAN)).unwrap(),
            "same NaN bits: no change"
        );
    }

    #[test]
    fn extend_from_stores_matches_per_row_pushes() {
        // Build stores with nulls and updated strings (garbage in the
        // arena), copy ranges and selections into batches, and compare
        // with the value-at-a-time oracle.
        let mut ints = ColumnStore::new(DataType::Int);
        let mut strs = ColumnStore::new(DataType::Str);
        for i in 0..20i64 {
            let iv = if i % 5 == 0 {
                Value::Null
            } else {
                Value::Int(i)
            };
            let sv = if i % 7 == 0 {
                Value::Null
            } else {
                Value::str(format!("s{i}"))
            };
            ints.push(&iv).unwrap();
            strs.push(&sv).unwrap();
        }
        // In-place updates: repointed spans must copy correctly.
        strs.set(3, &Value::str("replaced-three")).unwrap();
        ints.set(4, &Value::Int(-4)).unwrap();

        let stores = [&ints, &strs];
        let mut bulk = ColumnBatch::new(&[DataType::Int, DataType::Str]);
        {
            let mut app = bulk.appender();
            app.extend_from_stores(&stores, 2, 13).unwrap();
        }
        let mut oracle = ColumnBatch::new(&[DataType::Int, DataType::Str]);
        for i in 2..13 {
            oracle.push_row(&[ints.value(i), strs.value(i)]).unwrap();
        }
        assert_eq!(bulk, oracle);

        let sel: Vec<u32> = vec![0, 3, 4, 7, 19];
        let mut gathered = ColumnBatch::new(&[DataType::Int, DataType::Str]);
        {
            let mut app = gathered.appender();
            app.extend_from_stores_sel(&stores, &sel).unwrap();
        }
        let mut oracle = ColumnBatch::new(&[DataType::Int, DataType::Str]);
        for &i in &sel {
            let i = i as usize;
            oracle.push_row(&[ints.value(i), strs.value(i)]).unwrap();
        }
        assert_eq!(gathered, oracle);

        // Arity and type mismatches surface as errors.
        let mut wrong = ColumnBatch::new(&[DataType::Float, DataType::Str]);
        assert!(wrong.appender().extend_from_stores(&stores, 0, 1).is_err());
        let mut short = ColumnBatch::new(&[DataType::Int]);
        assert!(short.appender().extend_from_stores(&stores, 0, 1).is_err());
    }

    #[test]
    fn store_predicates_agree_with_row_evaluation() {
        let mut w = ColumnStore::new(DataType::Int);
        let mut state = ColumnStore::new(DataType::Str);
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for (i, s) in [(5i64, "Alpha"), (20, "beta"), (30, "Ax"), (1, "A")] {
            w.push(&Value::Int(i)).unwrap();
            state.push(&Value::str(s)).unwrap();
            rows.push(vec![Value::Int(i), Value::str(s)]);
        }
        w.push(&Value::Null).unwrap();
        state.push(&Value::Null).unwrap();
        rows.push(vec![Value::Null, Value::Null]);
        let stores = vec![w, state];
        for pred in [
            ColPredicate::IntGe { col: 0, min: 10 },
            ColPredicate::IntBetween {
                col: 0,
                min: 2,
                max: 20,
            },
            ColPredicate::StrPrefix {
                col: 1,
                prefix: "A".into(),
            },
            ColPredicate::And(vec![
                ColPredicate::IntGe { col: 0, min: 2 },
                ColPredicate::StrPrefix {
                    col: 1,
                    prefix: "A".into(),
                },
            ]),
            ColPredicate::And(vec![]),
            ColPredicate::IntGe { col: 9, min: 0 }, // missing column
            ColPredicate::IntGe { col: 1, min: 0 }, // mistyped column
        ] {
            let mut sel = Vec::new();
            pred.select_stores(&stores, 0, rows.len(), &mut sel);
            let by_row: Vec<u32> = (0..rows.len())
                .filter(|&i| pred.matches(&rows[i]))
                .map(|i| i as u32)
                .collect();
            assert_eq!(sel, by_row, "{pred:?}");
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(
                    pred.matches_stores(&stores, i),
                    pred.matches(row),
                    "{pred:?} row {i}"
                );
            }
            // A sub-range selects exactly the full selection's overlap.
            let mut sub = Vec::new();
            pred.select_stores(&stores, 1, 3, &mut sub);
            let expect: Vec<u32> = by_row
                .iter()
                .copied()
                .filter(|&i| (1..3).contains(&(i as usize)))
                .collect();
            assert_eq!(sub, expect, "{pred:?} subrange");
        }
    }

    #[test]
    fn collect_columns_walks_conjunctions() {
        let p = ColPredicate::And(vec![
            ColPredicate::IntGe { col: 4, min: 0 },
            ColPredicate::And(vec![ColPredicate::StrPrefix {
                col: 2,
                prefix: "A".into(),
            }]),
        ]);
        let mut cols = Vec::new();
        p.collect_columns(&mut cols);
        cols.sort_unstable();
        assert_eq!(cols, vec![2, 4]);
        let mut none = Vec::new();
        ColPredicate::And(vec![]).collect_columns(&mut none);
        assert!(none.is_empty());
    }

    #[test]
    fn for_projection_types_from_schema() {
        let schema = Schema::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Int),
                ColumnDef::new("b", DataType::Str),
                ColumnDef::new("c", DataType::Float),
            ],
            &["a"],
        );
        let b = ColumnBatch::for_projection(&schema, &[2, 0]);
        assert_eq!(b.types(), vec![DataType::Float, DataType::Int]);
    }

    #[test]
    fn bytes_tracks_growth_without_row_walks() {
        let mut b = ColumnBatch::new(&types());
        let empty = b.bytes();
        b.push_row(&[Value::Int(1), Value::Float(0.5), Value::str("abcd")])
            .unwrap();
        // int 8 + float 8 + str offset 4 + 4 arena bytes
        assert_eq!(b.bytes(), empty + 8 + 8 + 4 + 4);
    }

    #[test]
    fn appender_amortizes_pushes() {
        let mut b = ColumnBatch::new(&types());
        {
            let mut app = b.appender();
            app.reserve(16);
            for i in 0..16 {
                app.push_row(&[Value::Int(i), Value::Float(i as f64), Value::str("x")])
                    .unwrap();
            }
            assert!(app.push_projected(&[Value::Int(0)], &[0, 0, 0, 0]).is_err());
        }
        assert_eq!(b.rows(), 16); // the failed ragged push added no row
        assert_eq!(b.column(0).ints().unwrap().len(), 16);
    }

    /// Predicates spanning every variant plus the degenerate shapes
    /// (empty conjunction, missing column, mistyped column) — the cases
    /// the bitmap evaluators must agree with the append evaluators on.
    fn bitmap_preds() -> Vec<ColPredicate> {
        vec![
            ColPredicate::IntGe { col: 0, min: 10 },
            ColPredicate::IntBetween {
                col: 0,
                min: 5,
                max: 25,
            },
            ColPredicate::StrPrefix {
                col: 1,
                prefix: "A".into(),
            },
            ColPredicate::And(vec![
                ColPredicate::IntGe { col: 0, min: 3 },
                ColPredicate::StrPrefix {
                    col: 1,
                    prefix: "A".into(),
                },
            ]),
            ColPredicate::And(vec![ColPredicate::IntGe { col: 0, min: 20 }]),
            ColPredicate::And(vec![]),
            ColPredicate::IntGe { col: 9, min: 0 }, // missing column
            ColPredicate::IntGe { col: 1, min: 0 }, // mistyped column
            ColPredicate::StrPrefix {
                col: 0,
                prefix: "A".into(),
            }, // mistyped column
        ]
    }

    #[test]
    fn bitmap_select_agrees_with_append_select() {
        // 150 rows: multiple bitmap words plus a partial tail word.
        let mut b = ColumnBatch::new(&[DataType::Int, DataType::Str]);
        for i in 0..150i64 {
            let iv = if i % 11 == 0 {
                Value::Null
            } else {
                Value::Int(i % 40)
            };
            let sv = if i % 13 == 0 {
                Value::Null
            } else if i % 3 == 0 {
                Value::str(format!("A{i}"))
            } else {
                Value::str(format!("b{i}"))
            };
            b.push_row(&[iv, sv]).unwrap();
        }
        let mut bits = Vec::new();
        let mut from_bits = Vec::new();
        for pred in bitmap_preds() {
            let mut sel = Vec::new();
            pred.select(&b, &mut sel);
            pred.select_bitmap(&b, &mut bits);
            assert_eq!(bits.len(), b.rows().div_ceil(64), "{pred:?}");
            from_bits.clear();
            bitmap_ones(&bits, &mut from_bits);
            assert_eq!(from_bits, sel, "{pred:?}");
        }
    }

    #[test]
    fn stores_bitmap_select_agrees_with_append_select() {
        let mut ints = ColumnStore::new(DataType::Int);
        let mut strs = ColumnStore::new(DataType::Str);
        for i in 0..150i64 {
            let iv = if i % 11 == 0 {
                Value::Null
            } else {
                Value::Int(i % 40)
            };
            let sv = if i % 13 == 0 {
                Value::Null
            } else if i % 3 == 0 {
                Value::str(format!("A{i}"))
            } else {
                Value::str(format!("b{i}"))
            };
            ints.push(&iv).unwrap();
            strs.push(&sv).unwrap();
        }
        let stores = vec![ints, strs];
        let mut bits = Vec::new();
        let mut from_bits = Vec::new();
        // Ranges crossing word boundaries, word-aligned, and empty.
        for (lo, hi) in [(0usize, 150usize), (3, 130), (64, 128), (70, 70)] {
            for pred in bitmap_preds() {
                let mut sel = Vec::new();
                pred.select_stores(&stores, lo, hi, &mut sel);
                pred.select_stores_bitmap(&stores, lo, hi, &mut bits);
                assert_eq!(bits.len(), hi.div_ceil(64), "{pred:?} {lo}..{hi}");
                from_bits.clear();
                bitmap_ones(&bits, &mut from_bits);
                assert_eq!(from_bits, sel, "{pred:?} {lo}..{hi}");
            }
        }
    }

    #[test]
    fn covers_is_conservative_implication() {
        let ge5 = ColPredicate::IntGe { col: 0, min: 5 };
        let ge7 = ColPredicate::IntGe { col: 0, min: 7 };
        let ge5_other_col = ColPredicate::IntGe { col: 2, min: 5 };
        let bt7_9 = ColPredicate::IntBetween {
            col: 0,
            min: 7,
            max: 9,
        };
        let bt5_100 = ColPredicate::IntBetween {
            col: 0,
            min: 5,
            max: 100,
        };
        let bt5_open = ColPredicate::IntBetween {
            col: 0,
            min: 5,
            max: i64::MAX,
        };
        let pa = ColPredicate::StrPrefix {
            col: 1,
            prefix: "A".into(),
        };
        let pab = ColPredicate::StrPrefix {
            col: 1,
            prefix: "AB".into(),
        };
        let pempty = ColPredicate::StrPrefix {
            col: 1,
            prefix: String::new(),
        };
        let all = ColPredicate::And(vec![]);

        assert!(ge5.covers(&ge7));
        assert!(!ge7.covers(&ge5));
        assert!(!ge5.covers(&ge5_other_col));
        assert!(ge5.covers(&bt7_9));
        assert!(!ge7.covers(&bt5_100));
        assert!(bt5_100.covers(&bt7_9));
        assert!(!bt7_9.covers(&bt5_100));
        // A bounded window never covers an open-ended one — unless its
        // upper bound literally is i64::MAX.
        assert!(!bt5_100.covers(&ge7));
        assert!(bt5_open.covers(&ge7));
        assert!(pa.covers(&pab));
        assert!(!pab.covers(&pa));
        assert!(pempty.covers(&pa));
        // The empty conjunction matches all rows: covers everything, is
        // covered by no leaf.
        assert!(all.covers(&ge5));
        assert!(all.covers(&all));
        assert!(!ge5.covers(&all));
        // Conjunction sides recurse.
        assert!(ColPredicate::And(vec![ge5.clone()]).covers(&ge7));
        assert!(ge5.covers(&ColPredicate::And(vec![ge7.clone(), pa.clone()])));
        assert!(!ge5.covers(&ColPredicate::And(vec![pa.clone()])));
        // Cross-variant comparisons make no claim.
        assert!(!pa.covers(&ge5));
        assert!(!ge5.covers(&pa));
    }

    #[test]
    fn union_hull_is_a_hull_of_both_inputs() {
        let preds = bitmap_preds();
        // Row oracle: everything either input matches, the hull matches.
        let rows: Vec<Vec<Value>> = (0..60i64)
            .map(|i| {
                vec![
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i)
                    },
                    if i % 2 == 0 {
                        Value::str(format!("A{i}"))
                    } else {
                        Value::str(format!("z{i}"))
                    },
                ]
            })
            .collect();
        for p in &preds {
            for q in &preds {
                let hull = p.union_hull(q);
                assert!(hull.covers(p), "{hull:?} must cover {p:?}");
                assert!(hull.covers(q), "{hull:?} must cover {q:?}");
                for row in &rows {
                    if p.matches(row) || q.matches(row) {
                        assert!(hull.matches(row), "{hull:?} missed a row of {p:?} | {q:?}");
                    }
                }
            }
        }
        // Tight shapes, not just the trivial hull.
        let ge5 = ColPredicate::IntGe { col: 0, min: 5 };
        let ge9 = ColPredicate::IntGe { col: 0, min: 9 };
        assert_eq!(ge5.union_hull(&ge9), ge5);
        let bt1_2 = ColPredicate::IntBetween {
            col: 0,
            min: 1,
            max: 2,
        };
        let bt10_20 = ColPredicate::IntBetween {
            col: 0,
            min: 10,
            max: 20,
        };
        // Disjoint windows hull to one spanning window (admitting the gap).
        assert_eq!(
            bt1_2.union_hull(&bt10_20),
            ColPredicate::IntBetween {
                col: 0,
                min: 1,
                max: 20
            }
        );
        // Open-ended absorbs bounded: only the smaller min survives.
        assert_eq!(
            ge9.union_hull(&bt1_2),
            ColPredicate::IntGe { col: 0, min: 1 }
        );
        let pab = ColPredicate::StrPrefix {
            col: 1,
            prefix: "AB".into(),
        };
        let pac = ColPredicate::StrPrefix {
            col: 1,
            prefix: "AC".into(),
        };
        assert_eq!(
            pab.union_hull(&pac),
            ColPredicate::StrPrefix {
                col: 1,
                prefix: "A".into()
            }
        );
        // Unrelated predicates fall back to the trivially-true hull.
        let other_col = ColPredicate::IntGe { col: 2, min: 5 };
        assert_eq!(ge5.union_hull(&other_col), ColPredicate::And(vec![]));
    }

    #[test]
    fn project_columns_readdresses_into_projection() {
        let proj = [2usize, 4, 6];
        let p = ColPredicate::IntGe { col: 4, min: 9 };
        assert_eq!(
            p.project_columns(&proj),
            Some(ColPredicate::IntGe { col: 1, min: 9 })
        );
        let conj = ColPredicate::And(vec![
            ColPredicate::IntGe { col: 4, min: 9 },
            ColPredicate::StrPrefix {
                col: 6,
                prefix: "A".into(),
            },
        ]);
        assert_eq!(
            conj.project_columns(&proj),
            Some(ColPredicate::And(vec![
                ColPredicate::IntGe { col: 1, min: 9 },
                ColPredicate::StrPrefix {
                    col: 2,
                    prefix: "A".into(),
                },
            ]))
        );
        // A column the projection does not carry cannot be re-addressed,
        // even from inside a conjunction.
        assert_eq!(
            ColPredicate::IntGe { col: 3, min: 0 }.project_columns(&proj),
            None
        );
        assert_eq!(
            ColPredicate::And(vec![
                ColPredicate::IntGe { col: 2, min: 0 },
                ColPredicate::IntGe { col: 3, min: 0 },
            ])
            .project_columns(&proj),
            None
        );
        assert_eq!(
            ColPredicate::And(vec![]).project_columns(&proj),
            Some(ColPredicate::And(vec![]))
        );
    }
}
