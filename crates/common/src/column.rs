//! Columnar batches: the struct-of-arrays representation data streams ship
//! for OLAP state.
//!
//! Row [`Tuple`]s are the right unit for OLTP events (a handful of values
//! riding along with the event), but §4 data streams move *millions* of
//! rows per query, and a `Vec<Value>` per row costs an allocation, an enum
//! tag per value, and — on the wire — a self-describing tag per value. A
//! [`ColumnBatch`] stores the same rows column-organized (C-Store-style):
//! one typed vector per column (`Vec<i64>` / `Vec<f64>` / a string arena),
//! a null bitmap per column, and a wire encoding that spends one tag per
//! *column* with the values packed contiguously. Operators work on column
//! slices with selection vectors and materialize rows only at the final
//! output (late materialization).
//!
//! The modeled wire size is computable in O(columns) from the vector
//! lengths — no per-row accounting — which is what lets producers maintain
//! batch sizes incrementally instead of re-walking every tuple.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{DbError, DbResult};
use crate::schema::{DataType, Schema};
use crate::tuple::Tuple;
use crate::value::Value;

/// Wire tags for the columnar encoding (one per column, not per value).
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_STR: u8 = 3;

/// Hard cap on decoded batch geometry, so a corrupt header cannot ask the
/// decoder to reserve gigabytes.
const MAX_DECODE_ROWS: usize = 1 << 24;

/// Typed value storage of one column. Null positions hold a placeholder
/// (`0` / `0.0` / empty string); the owning [`Column`]'s bitmap is
/// authoritative.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Strings in a shared arena: value `i` is
    /// `arena[offsets[i] .. offsets[i + 1]]` (`offsets.len() == rows + 1`).
    Str {
        /// Row boundaries into the arena, monotone, starting at 0.
        offsets: Vec<u32>,
        /// Concatenated string payloads.
        arena: String,
    },
}

/// One column: typed values plus a null bitmap.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    data: ColumnData,
    /// Bit `i` set = row `i` is NULL. Empty while the column has no nulls
    /// (the common case), sized to `ceil(rows / 8)` after the first null.
    nulls: Vec<u8>,
}

impl Column {
    /// An empty column of the given type.
    pub fn new(ty: DataType) -> Self {
        let data = match ty {
            DataType::Int => ColumnData::Int(Vec::new()),
            DataType::Float => ColumnData::Float(Vec::new()),
            DataType::Str => ColumnData::Str {
                offsets: vec![0],
                arena: String::new(),
            },
        };
        Self {
            data,
            nulls: Vec::new(),
        }
    }

    /// The column's declared type.
    pub fn data_type(&self) -> DataType {
        match &self.data {
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Str { .. } => DataType::Str,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str { offsets, .. } => offsets.len() - 1,
        }
    }

    /// True if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The raw values (`None` if this is not an Int column). Null rows
    /// hold `0`; consult [`Column::is_null`].
    #[inline]
    pub fn ints(&self) -> Option<&[i64]> {
        match &self.data {
            ColumnData::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The raw values (`None` if this is not a Float column).
    #[inline]
    pub fn floats(&self) -> Option<&[f64]> {
        match &self.data {
            ColumnData::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The string at `row` (`None` for non-Str columns; empty for nulls).
    ///
    /// # Panics
    /// Panics if `row` is out of range.
    #[inline]
    pub fn str_at(&self, row: usize) -> Option<&str> {
        match &self.data {
            ColumnData::Str { offsets, arena } => {
                Some(&arena[offsets[row] as usize..offsets[row + 1] as usize])
            }
            _ => None,
        }
    }

    /// True if the value at `row` is NULL.
    #[inline]
    pub fn is_null(&self, row: usize) -> bool {
        self.nulls
            .get(row / 8)
            .is_some_and(|b| b & (1 << (row % 8)) != 0)
    }

    /// True if the column holds any NULLs.
    pub fn has_nulls(&self) -> bool {
        !self.nulls.is_empty()
    }

    /// Materializes the value at `row`.
    ///
    /// # Panics
    /// Panics if `row` is out of range.
    pub fn value(&self, row: usize) -> Value {
        if self.is_null(row) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[row]),
            ColumnData::Float(v) => Value::Float(v[row]),
            ColumnData::Str { .. } => Value::str(self.str_at(row).expect("str column")),
        }
    }

    /// Appends `v`, type-checked against the column type; NULL is allowed
    /// in any column (null-ability is the schema's concern, checked at
    /// insert — streams just carry what storage holds).
    pub fn push(&mut self, v: &Value) -> DbResult<()> {
        match (&mut self.data, v) {
            (ColumnData::Int(col), Value::Int(i)) => col.push(*i),
            (ColumnData::Float(col), Value::Float(f)) => col.push(*f),
            (ColumnData::Str { offsets, arena }, Value::Str(s)) => {
                arena.push_str(s);
                offsets.push(arena.len() as u32);
            }
            (_, Value::Null) => {
                self.push_null();
                return Ok(());
            }
            _ => return Err(DbError::TypeMismatch("value type vs column type")),
        }
        Ok(())
    }

    /// Appends a NULL (placeholder value + bitmap bit).
    pub fn push_null(&mut self) {
        let row = self.len();
        match &mut self.data {
            ColumnData::Int(col) => col.push(0),
            ColumnData::Float(col) => col.push(0.0),
            ColumnData::Str { offsets, arena } => offsets.push(arena.len() as u32),
        }
        self.set_null_bit(row);
    }

    fn set_null_bit(&mut self, row: usize) {
        if self.nulls.len() <= row / 8 {
            self.nulls.resize(row / 8 + 1, 0);
        }
        self.nulls[row / 8] |= 1 << (row % 8);
    }

    /// Modeled wire size of this column's payload: one tag + null flag,
    /// the bitmap when present, and the packed values. O(1).
    pub fn wire_size(&self) -> usize {
        let rows = self.len();
        let bitmap = if self.nulls.is_empty() {
            0
        } else {
            rows.div_ceil(8)
        };
        let payload = match &self.data {
            ColumnData::Int(_) | ColumnData::Float(_) => 8 * rows,
            ColumnData::Str { offsets, arena } => 4 * offsets.len() + arena.len(),
        };
        2 + bitmap + payload
    }

    /// Copies the rows listed in `sel` (in order) into a new column.
    ///
    /// # Panics
    /// Panics if a selection index is out of range.
    pub fn take(&self, sel: &[u32]) -> Column {
        let mut out = Column::new(self.data_type());
        match &self.data {
            ColumnData::Int(v) => {
                let ColumnData::Int(dst) = &mut out.data else {
                    unreachable!()
                };
                dst.reserve(sel.len());
                dst.extend(sel.iter().map(|&i| v[i as usize]));
            }
            ColumnData::Float(v) => {
                let ColumnData::Float(dst) = &mut out.data else {
                    unreachable!()
                };
                dst.reserve(sel.len());
                dst.extend(sel.iter().map(|&i| v[i as usize]));
            }
            ColumnData::Str { .. } => {
                let mut dst_offsets = Vec::with_capacity(sel.len() + 1);
                dst_offsets.push(0u32);
                let mut dst_arena = String::new();
                for &i in sel {
                    dst_arena.push_str(self.str_at(i as usize).expect("str column"));
                    dst_offsets.push(dst_arena.len() as u32);
                }
                out.data = ColumnData::Str {
                    offsets: dst_offsets,
                    arena: dst_arena,
                };
            }
        }
        if self.has_nulls() {
            for (row, &i) in sel.iter().enumerate() {
                if self.is_null(i as usize) {
                    out.set_null_bit(row);
                }
            }
        }
        out
    }

    /// Copies rows `lo..hi` into a new column.
    fn slice(&self, lo: usize, hi: usize) -> Column {
        let mut out = Column::new(self.data_type());
        match &self.data {
            ColumnData::Int(v) => out.data = ColumnData::Int(v[lo..hi].to_vec()),
            ColumnData::Float(v) => out.data = ColumnData::Float(v[lo..hi].to_vec()),
            ColumnData::Str { offsets, arena } => {
                let base = offsets[lo];
                out.data = ColumnData::Str {
                    offsets: offsets[lo..=hi].iter().map(|&o| o - base).collect(),
                    arena: arena[base as usize..offsets[hi] as usize].to_string(),
                };
            }
        }
        if self.has_nulls() {
            for row in lo..hi {
                if self.is_null(row) {
                    out.set_null_bit(row - lo);
                }
            }
        }
        out
    }
}

/// A columnar predicate that can be *pushed down* to the scan (evaluated
/// per row while the scan still holds the row) or evaluated vectorized
/// over a [`ColumnBatch`] into a selection vector. The enum is the
/// deliberately small pushdown language: what a NIC flow / storage AC can
/// apply without running user code.
#[derive(Debug, Clone, PartialEq)]
pub enum ColPredicate {
    /// `col >= min` over Int values; NULLs and non-Int values fail.
    IntGe {
        /// Column position (pre-projection, i.e. in scan input order).
        col: usize,
        /// Inclusive lower bound.
        min: i64,
    },
    /// Str value at `col` starts with `prefix`; NULLs and non-Str fail.
    StrPrefix {
        /// Column position (pre-projection).
        col: usize,
        /// Required prefix.
        prefix: String,
    },
}

impl ColPredicate {
    /// Row-at-a-time evaluation (scan pushdown and row-path parity).
    pub fn matches(&self, values: &[Value]) -> bool {
        match self {
            ColPredicate::IntGe { col, min } => {
                matches!(values.get(*col), Some(Value::Int(v)) if v >= min)
            }
            ColPredicate::StrPrefix { col, prefix } => {
                matches!(values.get(*col), Some(Value::Str(s)) if s.starts_with(prefix.as_str()))
            }
        }
    }

    /// Row-at-a-time evaluation over a tuple.
    pub fn matches_tuple(&self, t: &Tuple) -> bool {
        self.matches(t.values())
    }

    /// Vectorized evaluation: appends the indices of passing rows of
    /// `batch` to `sel`. The predicate's `col` addresses `batch`'s own
    /// column order here (apply [`ColPredicate::at`] after projection).
    pub fn select(&self, batch: &ColumnBatch, sel: &mut Vec<u32>) {
        match self {
            ColPredicate::IntGe { col, min } => {
                let column = batch.column(*col);
                let Some(vals) = column.ints() else { return };
                if column.has_nulls() {
                    sel.extend((0..vals.len()).filter_map(|i| {
                        (vals[i] >= *min && !column.is_null(i)).then_some(i as u32)
                    }));
                } else {
                    sel.extend(
                        vals.iter()
                            .enumerate()
                            .filter_map(|(i, v)| (v >= min).then_some(i as u32)),
                    );
                }
            }
            ColPredicate::StrPrefix { col, prefix } => {
                let column = batch.column(*col);
                if !matches!(column.data_type(), DataType::Str) {
                    return;
                }
                for i in 0..column.len() {
                    if !column.is_null(i)
                        && column
                            .str_at(i)
                            .is_some_and(|s| s.starts_with(prefix.as_str()))
                    {
                        sel.push(i as u32);
                    }
                }
            }
        }
    }

    /// The same predicate re-addressed to column position `col` (used
    /// when a projection reorders columns between scan and flow).
    pub fn at(&self, col: usize) -> ColPredicate {
        match self {
            ColPredicate::IntGe { min, .. } => ColPredicate::IntGe { col, min: *min },
            ColPredicate::StrPrefix { prefix, .. } => ColPredicate::StrPrefix {
                col,
                prefix: prefix.clone(),
            },
        }
    }
}

/// A column-organized batch of rows — the vectorized counterpart of a
/// tuple batch. All columns always hold the same number of rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnBatch {
    columns: Vec<Column>,
    rows: usize,
}

impl ColumnBatch {
    /// An empty batch with the given column types.
    pub fn new(types: &[DataType]) -> Self {
        Self {
            columns: types.iter().map(|&ty| Column::new(ty)).collect(),
            rows: 0,
        }
    }

    /// An empty batch typed from a projection of `schema`.
    ///
    /// # Panics
    /// Panics if a projection index is out of range — projections are
    /// resolved against the checked schema, so this is a plan bug.
    pub fn for_projection(schema: &Schema, proj: &[usize]) -> Self {
        Self::new(
            &proj
                .iter()
                .map(|&i| schema.columns()[i].ty)
                .collect::<Vec<_>>(),
        )
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// True if there are no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The columns.
    #[inline]
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// One column.
    ///
    /// # Panics
    /// Panics if out of range; operators resolve positions against the
    /// batch's schema before touching columns.
    #[inline]
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// The column types in order.
    pub fn types(&self) -> Vec<DataType> {
        self.columns.iter().map(Column::data_type).collect()
    }

    /// Appends one row given in this batch's column order.
    ///
    /// On `Err` the batch is left with ragged columns and must be
    /// discarded — rows reaching this path were schema-checked at insert,
    /// so a mismatch means the batch was typed for another table.
    pub fn push_row(&mut self, values: &[Value]) -> DbResult<()> {
        if values.len() != self.columns.len() {
            return Err(DbError::SchemaMismatch("row arity vs batch arity"));
        }
        for (col, v) in self.columns.iter_mut().zip(values) {
            col.push(v)?;
        }
        self.rows += 1;
        Ok(())
    }

    /// Appends the `proj` positions of a full-width row — the projection
    /// pushdown entry point used by scans: only the projected values are
    /// ever copied. On `Err` the batch must be discarded (see
    /// [`ColumnBatch::push_row`]).
    pub fn push_projected(&mut self, values: &[Value], proj: &[usize]) -> DbResult<()> {
        if proj.len() != self.columns.len() {
            return Err(DbError::SchemaMismatch("projection arity vs batch arity"));
        }
        for (col, &i) in self.columns.iter_mut().zip(proj) {
            let v = values
                .get(i)
                .ok_or(DbError::SchemaMismatch("projection index out of range"))?;
            col.push(v)?;
        }
        self.rows += 1;
        Ok(())
    }

    /// Materializes row `i` as a tuple (late materialization boundary).
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn row_tuple(&self, i: usize) -> Tuple {
        Tuple::new(self.columns.iter().map(|c| c.value(i)).collect())
    }

    /// Materializes every row (row-path interop and tests).
    pub fn to_tuples(&self) -> Vec<Tuple> {
        (0..self.rows).map(|i| self.row_tuple(i)).collect()
    }

    /// Builds a batch from tuples with the given column types.
    pub fn from_tuples(types: &[DataType], tuples: &[Tuple]) -> DbResult<Self> {
        let mut out = Self::new(types);
        for t in tuples {
            out.push_row(t.values())?;
        }
        Ok(out)
    }

    /// Modeled wire size in bytes — O(columns), derived from vector
    /// lengths, so producers never re-walk rows to size a batch.
    pub fn bytes(&self) -> usize {
        6 + self.columns.iter().map(Column::wire_size).sum::<usize>()
    }

    /// Gathers the rows listed in `sel` (a selection vector) into a new
    /// batch — how vectorized filters materialize their survivors.
    pub fn take(&self, sel: &[u32]) -> ColumnBatch {
        ColumnBatch {
            columns: self.columns.iter().map(|c| c.take(sel)).collect(),
            rows: sel.len(),
        }
    }

    /// Keeps only the listed columns, in the given order.
    ///
    /// # Panics
    /// Panics if an index is out of range.
    pub fn project(&self, cols: &[usize]) -> ColumnBatch {
        ColumnBatch {
            columns: cols.iter().map(|&i| self.columns[i].clone()).collect(),
            rows: self.rows,
        }
    }

    /// Copies rows `lo..hi` into a new batch.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, lo: usize, hi: usize) -> ColumnBatch {
        assert!(
            lo <= hi && hi <= self.rows,
            "slice {lo}..{hi} of {}",
            self.rows
        );
        ColumnBatch {
            columns: self.columns.iter().map(|c| c.slice(lo, hi)).collect(),
            rows: hi - lo,
        }
    }

    /// Splits into batches of at most `batch_rows` rows (wire batching).
    ///
    /// # Panics
    /// Panics if `batch_rows` is zero.
    pub fn split(self, batch_rows: usize) -> Vec<ColumnBatch> {
        assert!(batch_rows > 0);
        if self.rows <= batch_rows {
            return if self.rows == 0 {
                Vec::new()
            } else {
                vec![self]
            };
        }
        let mut out = Vec::with_capacity(self.rows.div_ceil(batch_rows));
        let mut lo = 0;
        while lo < self.rows {
            let hi = (lo + batch_rows).min(self.rows);
            out.push(self.slice(lo, hi));
            lo = hi;
        }
        out
    }

    /// Encodes the batch in the columnar wire format: a `(rows, ncols)`
    /// header, then per column one tag byte, a null-bitmap flag (+ bitmap
    /// when set) and the values packed contiguously — replacing the
    /// per-value tags of the row encoding.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        debug_assert!(self.columns.len() <= u16::MAX as usize);
        buf.put_u32(self.rows as u32);
        buf.put_u16(self.columns.len() as u16);
        for col in &self.columns {
            match &col.data {
                ColumnData::Int(_) => buf.put_u8(TAG_INT),
                ColumnData::Float(_) => buf.put_u8(TAG_FLOAT),
                ColumnData::Str { .. } => buf.put_u8(TAG_STR),
            }
            if col.nulls.is_empty() {
                buf.put_u8(0);
            } else {
                buf.put_u8(1);
                let want = self.rows.div_ceil(8);
                buf.put_slice(&col.nulls);
                // The bitmap is allocated lazily up to the last null row;
                // pad to the full row count for a self-describing layout.
                for _ in col.nulls.len()..want {
                    buf.put_u8(0);
                }
            }
            match &col.data {
                ColumnData::Int(v) => {
                    for &i in v {
                        buf.put_i64(i);
                    }
                }
                ColumnData::Float(v) => {
                    for &f in v {
                        buf.put_f64(f);
                    }
                }
                ColumnData::Str { offsets, arena } => {
                    for &o in offsets {
                        buf.put_u32(o);
                    }
                    buf.put_slice(arena.as_bytes());
                }
            }
        }
    }

    /// Encodes into a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.bytes());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Decodes one batch, advancing `buf` past the consumed bytes.
    /// Rejects truncation, unknown tags, and malformed string layouts.
    pub fn decode_from(buf: &mut impl Buf) -> DbResult<ColumnBatch> {
        if buf.remaining() < 6 {
            return Err(DbError::Codec("column batch header truncated"));
        }
        let rows = buf.get_u32() as usize;
        let ncols = buf.get_u16() as usize;
        if rows > MAX_DECODE_ROWS {
            return Err(DbError::Codec("column batch row count implausible"));
        }
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            if buf.remaining() < 2 {
                return Err(DbError::Codec("column header truncated"));
            }
            let tag = buf.get_u8();
            let has_nulls = match buf.get_u8() {
                0 => false,
                1 => true,
                _ => return Err(DbError::Codec("bad null-bitmap flag")),
            };
            let nulls = if has_nulls {
                let want = rows.div_ceil(8);
                if buf.remaining() < want {
                    return Err(DbError::Codec("null bitmap truncated"));
                }
                let mut bm = vec![0u8; want];
                buf.copy_to_slice(&mut bm);
                // Canonicalize to the builder's lazy form (bits are only
                // ever set, so an in-memory bitmap never ends in a zero
                // byte); keeps decoded batches `==` to their originals.
                while bm.last() == Some(&0) {
                    bm.pop();
                }
                bm
            } else {
                Vec::new()
            };
            let data = match tag {
                TAG_INT => {
                    if buf.remaining() < 8 * rows {
                        return Err(DbError::Codec("int column truncated"));
                    }
                    ColumnData::Int((0..rows).map(|_| buf.get_i64()).collect())
                }
                TAG_FLOAT => {
                    if buf.remaining() < 8 * rows {
                        return Err(DbError::Codec("float column truncated"));
                    }
                    ColumnData::Float((0..rows).map(|_| buf.get_f64()).collect())
                }
                TAG_STR => {
                    if buf.remaining() < 4 * (rows + 1) {
                        return Err(DbError::Codec("str offsets truncated"));
                    }
                    let offsets: Vec<u32> = (0..=rows).map(|_| buf.get_u32()).collect();
                    if offsets[0] != 0 || offsets.windows(2).any(|w| w[0] > w[1]) {
                        return Err(DbError::Codec("str offsets not monotone"));
                    }
                    let arena_len = offsets[rows] as usize;
                    if buf.remaining() < arena_len {
                        return Err(DbError::Codec("str arena truncated"));
                    }
                    let mut bytes = vec![0u8; arena_len];
                    buf.copy_to_slice(&mut bytes);
                    let arena =
                        String::from_utf8(bytes).map_err(|_| DbError::Codec("str not utf-8"))?;
                    if offsets.iter().any(|&o| !arena.is_char_boundary(o as usize)) {
                        return Err(DbError::Codec("str offset splits a character"));
                    }
                    ColumnData::Str { offsets, arena }
                }
                _ => return Err(DbError::Codec("unknown column tag")),
            };
            columns.push(Column { data, nulls });
        }
        Ok(ColumnBatch { columns, rows })
    }

    /// Decodes from a standalone buffer.
    pub fn decode(bytes: &Bytes) -> DbResult<ColumnBatch> {
        let mut buf = bytes.clone();
        Self::decode_from(&mut buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn types() -> Vec<DataType> {
        vec![DataType::Int, DataType::Float, DataType::Str]
    }

    fn sample() -> ColumnBatch {
        let mut b = ColumnBatch::new(&types());
        b.push_row(&[Value::Int(1), Value::Float(1.5), Value::str("alpha")])
            .unwrap();
        b.push_row(&[Value::Int(-2), Value::Null, Value::str("")])
            .unwrap();
        b.push_row(&[Value::Null, Value::Float(2.5), Value::Null])
            .unwrap();
        b
    }

    #[test]
    fn push_and_materialize_roundtrip() {
        let b = sample();
        assert_eq!(b.rows(), 3);
        assert_eq!(b.arity(), 3);
        assert_eq!(
            b.row_tuple(1).values(),
            &[Value::Int(-2), Value::Null, Value::str("")]
        );
        assert_eq!(b.row_tuple(2).get(0), &Value::Null);
        let tuples = b.to_tuples();
        let back = ColumnBatch::from_tuples(&types(), &tuples).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut b = ColumnBatch::new(&[DataType::Int]);
        assert!(b.push_row(&[Value::str("x")]).is_err());
        assert!(b.push_row(&[Value::Int(1), Value::Int(2)]).is_err());
        assert!(b.push_row(&[Value::Int(1)]).is_ok());
    }

    #[test]
    fn projection_pushdown_copies_only_projected() {
        let mut b = ColumnBatch::new(&[DataType::Str, DataType::Int]);
        let wide = [
            Value::Int(7),
            Value::str("keep"),
            Value::Float(9.9),
            Value::Int(42),
        ];
        b.push_projected(&wide, &[1, 3]).unwrap();
        assert_eq!(
            b.row_tuple(0).values(),
            &[Value::str("keep"), Value::Int(42)]
        );
        assert!(b.push_projected(&wide, &[0]).is_err()); // arity
        assert!(b.push_projected(&wide, &[1, 9]).is_err()); // range
    }

    #[test]
    fn encode_decode_roundtrip() {
        let b = sample();
        let enc = b.encode();
        assert_eq!(ColumnBatch::decode(&enc).unwrap(), b);
        // The modeled size upper-bounds the encoding closely.
        assert!(enc.len() <= b.bytes() + 8, "{} vs {}", enc.len(), b.bytes());
    }

    #[test]
    fn empty_batch_roundtrip() {
        let b = ColumnBatch::new(&types());
        assert_eq!(ColumnBatch::decode(&b.encode()).unwrap(), b);
        let none = ColumnBatch::new(&[]);
        assert_eq!(ColumnBatch::decode(&none.encode()).unwrap(), none);
    }

    #[test]
    fn decode_rejects_truncation() {
        let enc = sample().encode();
        for cut in 0..enc.len() {
            assert!(
                ColumnBatch::decode(&enc.slice(0..cut)).is_err(),
                "decode must fail at cut {cut}"
            );
        }
    }

    #[test]
    fn decode_rejects_unknown_tag_and_bad_offsets() {
        let mut buf = BytesMut::new();
        buf.put_u32(1);
        buf.put_u16(1);
        buf.put_u8(99);
        buf.put_u8(0);
        assert_eq!(
            ColumnBatch::decode(&buf.freeze()),
            Err(DbError::Codec("unknown column tag"))
        );
        // Non-monotone string offsets.
        let mut buf = BytesMut::new();
        buf.put_u32(1);
        buf.put_u16(1);
        buf.put_u8(TAG_STR);
        buf.put_u8(0);
        buf.put_u32(0);
        buf.put_u32(4);
        buf.put_slice(b"ab"); // arena shorter than declared
        assert!(ColumnBatch::decode(&buf.freeze()).is_err());
    }

    #[test]
    fn columnar_wire_beats_row_wire_for_ints() {
        // 3 int columns, 100 rows: row encoding pays a tag per value.
        let types = vec![DataType::Int; 3];
        let tuples: Vec<Tuple> = (0..100)
            .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i * 2), Value::Int(i * 3)]))
            .collect();
        let col = ColumnBatch::from_tuples(&types, &tuples).unwrap();
        let row_bytes: usize = tuples.iter().map(Tuple::wire_size).sum();
        assert!(
            col.bytes() < row_bytes,
            "columnar {} !< row {row_bytes}",
            col.bytes()
        );
        assert!(col.encode().len() < row_bytes);
    }

    #[test]
    fn take_gathers_selection() {
        let b = sample();
        let sel = vec![2u32, 0];
        let took = b.take(&sel);
        assert_eq!(took.rows(), 2);
        assert_eq!(took.row_tuple(0), b.row_tuple(2));
        assert_eq!(took.row_tuple(1), b.row_tuple(0));
    }

    #[test]
    fn slice_and_split_preserve_rows() {
        let mut b = ColumnBatch::new(&types());
        for i in 0..10 {
            b.push_row(&[Value::Int(i), Value::Float(i as f64), Value::str("s")])
                .unwrap();
        }
        let all = b.to_tuples();
        let parts = b.split(4);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(ColumnBatch::rows).sum::<usize>(), 10);
        let glued: Vec<Tuple> = parts.iter().flat_map(ColumnBatch::to_tuples).collect();
        assert_eq!(glued, all);
        assert!(ColumnBatch::new(&types()).split(4).is_empty());
    }

    #[test]
    fn predicates_row_and_vectorized_agree() {
        let mut b = ColumnBatch::new(&[DataType::Int, DataType::Str]);
        for (i, s) in [(5i64, "Alpha"), (20, "beta"), (30, "Ax"), (1, "A")] {
            b.push_row(&[Value::Int(i), Value::str(s)]).unwrap();
        }
        b.push_row(&[Value::Null, Value::Null]).unwrap();
        for pred in [
            ColPredicate::IntGe { col: 0, min: 10 },
            ColPredicate::StrPrefix {
                col: 1,
                prefix: "A".into(),
            },
        ] {
            let mut sel = Vec::new();
            pred.select(&b, &mut sel);
            let by_row: Vec<u32> = (0..b.rows())
                .filter(|&i| pred.matches_tuple(&b.row_tuple(i)))
                .map(|i| i as u32)
                .collect();
            assert_eq!(sel, by_row, "{pred:?}");
            assert!(!sel.contains(&4), "null row must fail {pred:?}");
        }
    }

    #[test]
    fn predicate_readdress() {
        let p = ColPredicate::StrPrefix {
            col: 5,
            prefix: "A".into(),
        };
        assert_eq!(
            p.at(0),
            ColPredicate::StrPrefix {
                col: 0,
                prefix: "A".into()
            }
        );
    }

    #[test]
    fn for_projection_types_from_schema() {
        let schema = Schema::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Int),
                ColumnDef::new("b", DataType::Str),
                ColumnDef::new("c", DataType::Float),
            ],
            &["a"],
        );
        let b = ColumnBatch::for_projection(&schema, &[2, 0]);
        assert_eq!(b.types(), vec![DataType::Float, DataType::Int]);
    }

    #[test]
    fn bytes_tracks_growth_without_row_walks() {
        let mut b = ColumnBatch::new(&types());
        let empty = b.bytes();
        b.push_row(&[Value::Int(1), Value::Float(0.5), Value::str("abcd")])
            .unwrap();
        // int 8 + float 8 + str offset 4 + 4 arena bytes
        assert_eq!(b.bytes(), empty + 8 + 8 + 4 + 4);
    }
}
