//! Row representation and the compact binary wire encoding used by data
//! streams.
//!
//! Data streams in an architecture-less DBMS ship *all* state between ACs,
//! so tuples need a cheap clone (Arc'd strings, see [`crate::value`]) and a
//! compact self-describing binary encoding for links that model network
//! transfer. The encoding is hand-rolled on `bytes` — we deliberately do not
//! pull in serde (see DESIGN.md §4).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{DbError, DbResult};
use crate::value::Value;

/// Wire tags for the tuple encoding.
const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_STR: u8 = 3;

/// A row of values.
///
/// `Tuple` is the unit flowing through data streams: scans emit tuples,
/// joins consume and produce them, and update events carry the new column
/// values as tuples.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Self { values }
    }

    /// An empty tuple.
    pub fn empty() -> Self {
        Self { values: Vec::new() }
    }

    /// The values in column order.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Mutable access (used by in-place update operators).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [Value] {
        &mut self.values
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The value at `idx`.
    ///
    /// # Panics
    /// Panics if out of range; operators resolve column indices against a
    /// checked schema before touching tuples.
    #[inline]
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Replaces the value at `idx`, returning the previous one.
    #[inline]
    pub fn set(&mut self, idx: usize, v: Value) -> Value {
        std::mem::replace(&mut self.values[idx], v)
    }

    /// Consumes the tuple, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Concatenates two tuples (join output).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.arity() + other.arity());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple::new(values)
    }

    /// Projects the tuple onto the given column indices.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple::new(indices.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Approximate wire size in bytes; used by simulated links to model
    /// transfer time (latency + size / bandwidth).
    pub fn wire_size(&self) -> usize {
        2 + self.values.iter().map(Value::wire_size).sum::<usize>()
    }

    /// Encodes the tuple into `buf` in the self-describing wire format.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        debug_assert!(self.values.len() <= u16::MAX as usize);
        buf.put_u16(self.values.len() as u16);
        for v in &self.values {
            match v {
                Value::Null => buf.put_u8(TAG_NULL),
                Value::Int(i) => {
                    buf.put_u8(TAG_INT);
                    buf.put_i64(*i);
                }
                Value::Float(f) => {
                    buf.put_u8(TAG_FLOAT);
                    buf.put_f64(*f);
                }
                Value::Str(s) => {
                    buf.put_u8(TAG_STR);
                    buf.put_u32(s.len() as u32);
                    buf.put_slice(s.as_bytes());
                }
            }
        }
    }

    /// Encodes the tuple into a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_size());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Decodes one tuple from `buf`, advancing it past the consumed bytes.
    pub fn decode_from(buf: &mut impl Buf) -> DbResult<Tuple> {
        if buf.remaining() < 2 {
            return Err(DbError::Codec("tuple header truncated"));
        }
        let arity = buf.get_u16() as usize;
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            if buf.remaining() < 1 {
                return Err(DbError::Codec("value tag truncated"));
            }
            let tag = buf.get_u8();
            let v = match tag {
                TAG_NULL => Value::Null,
                TAG_INT => {
                    if buf.remaining() < 8 {
                        return Err(DbError::Codec("int truncated"));
                    }
                    Value::Int(buf.get_i64())
                }
                TAG_FLOAT => {
                    if buf.remaining() < 8 {
                        return Err(DbError::Codec("float truncated"));
                    }
                    Value::Float(buf.get_f64())
                }
                TAG_STR => {
                    if buf.remaining() < 4 {
                        return Err(DbError::Codec("str len truncated"));
                    }
                    let len = buf.get_u32() as usize;
                    if buf.remaining() < len {
                        return Err(DbError::Codec("str body truncated"));
                    }
                    let mut bytes = vec![0u8; len];
                    buf.copy_to_slice(&mut bytes);
                    let s =
                        String::from_utf8(bytes).map_err(|_| DbError::Codec("str not utf-8"))?;
                    Value::from(s)
                }
                _ => return Err(DbError::Codec("unknown value tag")),
            };
            values.push(v);
        }
        Ok(Tuple::new(values))
    }

    /// Decodes a tuple from a standalone buffer.
    pub fn decode(bytes: &Bytes) -> DbResult<Tuple> {
        let mut buf = bytes.clone();
        Self::decode_from(&mut buf)
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tuple {
        Tuple::new(vec![
            Value::Int(-5),
            Value::Float(3.25),
            Value::str("hello"),
            Value::Null,
        ])
    }

    #[test]
    fn encode_decode_roundtrip() {
        let t = sample();
        let enc = t.encode();
        assert_eq!(Tuple::decode(&enc).unwrap(), t);
    }

    #[test]
    fn empty_tuple_roundtrip() {
        let t = Tuple::empty();
        assert_eq!(Tuple::decode(&t.encode()).unwrap(), t);
    }

    #[test]
    fn decode_multiple_from_one_buffer() {
        let a = Tuple::new(vec![Value::Int(1)]);
        let b = Tuple::new(vec![Value::str("x"), Value::Null]);
        let mut buf = BytesMut::new();
        a.encode_into(&mut buf);
        b.encode_into(&mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(Tuple::decode_from(&mut bytes).unwrap(), a);
        assert_eq!(Tuple::decode_from(&mut bytes).unwrap(), b);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn decode_rejects_truncation() {
        let t = sample();
        let enc = t.encode();
        for cut in 0..enc.len() {
            let truncated = enc.slice(0..cut);
            assert!(
                Tuple::decode(&truncated).is_err(),
                "decode must fail at cut {cut}"
            );
        }
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let mut buf = BytesMut::new();
        buf.put_u16(1);
        buf.put_u8(99);
        assert_eq!(
            Tuple::decode(&buf.freeze()),
            Err(DbError::Codec("unknown value tag"))
        );
    }

    #[test]
    fn concat_and_project() {
        let a = Tuple::new(vec![Value::Int(1), Value::Int(2)]);
        let b = Tuple::new(vec![Value::str("x")]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(
            c.project(&[2, 0]).values(),
            &[Value::str("x"), Value::Int(1)]
        );
    }

    #[test]
    fn wire_size_upper_bounds_encoding() {
        let t = sample();
        assert!(t.encode().len() <= t.wire_size() + 8);
    }

    #[test]
    fn set_returns_previous() {
        let mut t = Tuple::new(vec![Value::Int(1)]);
        let old = t.set(0, Value::Int(2));
        assert_eq!(old, Value::Int(1));
        assert_eq!(t.get(0), &Value::Int(2));
    }
}
