//! FxHash-style fast hashing.
//!
//! SipHash (std's default) is needlessly slow for the integer keys that
//! dominate our hot paths (RIDs, warehouse ids, lock keys). This is the
//! well-known Fx multiply-rotate hash used by rustc, implemented in-repo so
//! we stay within the allowed dependency set (DESIGN.md §4). HashDoS is not
//! a concern for a self-generated benchmark workload.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx multiply-rotate hasher (word-at-a-time).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut word = [0u8; 8];
            word.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(word));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut word = [0u8; 4];
            word.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u32::from_le_bytes(word) as u64);
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add_to_hash(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Hashes a single `u64` without constructing a map (hot path of hash
/// partitioning and hash joins).
#[inline]
pub fn hash_u64(v: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(v);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"abc"), hash_of(&"abc"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
        assert_ne!(hash_u64(10), hash_u64(11));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn spreads_sequential_keys() {
        // Sequential keys (warehouse ids) must not collide in low bits after
        // hashing, or hash partitioning would be degenerate.
        let mut buckets = [0usize; 8];
        for k in 0..10_000u64 {
            buckets[(hash_u64(k) % 8) as usize] += 1;
        }
        for &b in &buckets {
            assert!(b > 500, "bucket underfilled: {buckets:?}");
        }
    }

    #[test]
    fn mixed_width_writes_differ_from_byte_writes() {
        // Not a correctness requirement, but documents that the hasher is
        // width-sensitive, like the upstream Fx implementation.
        let mut a = FxHasher::default();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = FxHasher::default();
        b.write(&[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(a.finish(), b.finish()); // same word, little-endian
    }
}
