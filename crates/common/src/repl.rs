//! The replication wire protocol: WAL records and the messages that ship
//! them between a primary storage AC and its follower (DESIGN.md §9).
//!
//! [`LogOp`] and [`LogRecord`] live here — not in the storage crate —
//! because PR 8 makes log records *messages*: a primary streams them over
//! a modeled link exactly like scan requests and replies travel in
//! [`crate::scan`]. The storage crate re-exports them and keeps the
//! in-memory `Wal` container; this module owns only what crosses a wire.
//!
//! Four messages, tagged outside both the scan range (0xA1..=0xA3) and
//! every payload codec's tag space so mixed links can dispatch:
//!
//! * [`ReplMsg::Records`] — a batch of contiguous log records (whole
//!   committed transactions; the primary ships per drain chunk),
//! * [`ReplMsg::Ack`] — the follower's cumulative applied-LSN watermark,
//! * [`ReplMsg::Heartbeat`] — primary liveness under a lease, carrying
//!   its term and log tip,
//! * [`ReplMsg::CatchupFrom`] — "ship me your tail from this LSN": sent
//!   by a (re)joining follower, and by a live follower that detects an
//!   LSN gap (a dropped batch on a lossy link) — retransmission *is* the
//!   catch-up path, there is no separate repair protocol.
//!
//! Decoding is hardened the same way the scan codec is: every truncation,
//! unknown tag, or unconsumed trailing byte is a [`DbError::Codec`] — a
//! torn or corrupt frame off a faulty link must never panic a follower.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::commit::{decode_prep_ops_from, encode_prep_ops_into, PrepOp};
use crate::error::{DbError, DbResult};
use crate::ids::{PartitionId, TableId, TxnId};
use crate::rid::Rid;
use crate::tuple::Tuple;

/// Message tag of an encoded [`ReplMsg::Records`].
pub const MSG_REPL_RECORDS: u8 = 0xB1;
/// Message tag of an encoded [`ReplMsg::Ack`].
pub const MSG_REPL_ACK: u8 = 0xB2;
/// Message tag of an encoded [`ReplMsg::Heartbeat`].
pub const MSG_REPL_HEARTBEAT: u8 = 0xB3;
/// Message tag of an encoded [`ReplMsg::CatchupFrom`].
pub const MSG_REPL_CATCHUP: u8 = 0xB4;

/// Op tag: insert.
const OP_INSERT: u8 = 0;
/// Op tag: update.
const OP_UPDATE: u8 = 1;
/// Op tag: commit.
const OP_COMMIT: u8 = 2;
/// Op tag: abort.
const OP_ABORT: u8 = 3;
/// Op tag: 2PC prepare (staged cross-shard writes).
const OP_PREPARE: u8 = 4;
/// Op tag: 2PC decision.
const OP_DECIDE: u8 = 5;

/// One logged operation.
#[derive(Debug, Clone, PartialEq)]
pub enum LogOp {
    /// A new row was appended. The RID is logged so replay can verify it
    /// reproduces identical physical placement.
    Insert {
        /// Table inserted into.
        table: TableId,
        /// Partition the row went to.
        partition: PartitionId,
        /// Slot the row landed in.
        slot: u32,
        /// The full row image.
        tuple: Tuple,
    },
    /// A row was overwritten; `after` is the full after-image (physical
    /// redo logging — simple and idempotent).
    Update {
        /// The updated record.
        rid: Rid,
        /// Full after-image.
        after: Tuple,
    },
    /// Transaction committed; its earlier records become redo-able.
    Commit,
    /// Transaction aborted; its earlier records are ignored by replay.
    Abort,
    /// A cross-shard transaction's writes are staged (2PC phase one).
    /// Logged by every participant before it votes yes, and by the
    /// coordinator before it solicits votes, so staged state survives a
    /// crash: recovery finds Prepare records without a matching
    /// [`LogOp::Decide`] and re-asks `coord` for the outcome
    /// (presumed-abort if the coordinator never logged a decision).
    Prepare {
        /// The coordinating shard node, for in-doubt recovery queries.
        coord: u32,
        /// The staged writes, replayable on decide-commit.
        ops: Vec<PrepOp>,
    },
    /// The 2PC outcome for a staged transaction. On the coordinator,
    /// `parts` lists the remote participants the decision still must
    /// reach (re-delivery set after a coordinator crash); participants
    /// log it with an empty `parts`.
    Decide {
        /// `true` = commit the staged writes, `false` = discard them.
        commit: bool,
        /// Remote participant nodes owed this decision (coordinator only).
        parts: Vec<u32>,
    },
}

/// A log record: sequence number, owning transaction, operation.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// Monotonically increasing log sequence number.
    pub lsn: u64,
    /// The transaction the operation belongs to.
    pub txn: TxnId,
    /// The operation.
    pub op: LogOp,
}

impl LogRecord {
    /// Minimum encoded size of one record (lsn + txn + op tag); used to
    /// sanity-bound count headers before allocating.
    pub const MIN_WIRE_SIZE: usize = 8 + 8 + 1;

    /// Encodes one record: lsn, txn, op tag, op body.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64(self.lsn);
        buf.put_u64(self.txn.raw());
        match &self.op {
            LogOp::Insert {
                table,
                partition,
                slot,
                tuple,
            } => {
                buf.put_u8(OP_INSERT);
                buf.put_u32(table.raw());
                buf.put_u32(partition.raw());
                buf.put_u32(*slot);
                tuple.encode_into(buf);
            }
            LogOp::Update { rid, after } => {
                buf.put_u8(OP_UPDATE);
                buf.put_u32(rid.table.raw());
                buf.put_u32(rid.partition.raw());
                buf.put_u32(rid.slot);
                after.encode_into(buf);
            }
            LogOp::Commit => buf.put_u8(OP_COMMIT),
            LogOp::Abort => buf.put_u8(OP_ABORT),
            LogOp::Prepare { coord, ops } => {
                buf.put_u8(OP_PREPARE);
                buf.put_u32(*coord);
                encode_prep_ops_into(ops, buf);
            }
            LogOp::Decide { commit, parts } => {
                buf.put_u8(OP_DECIDE);
                buf.put_u8(u8::from(*commit));
                buf.put_u32(parts.len() as u32);
                for p in parts {
                    buf.put_u32(*p);
                }
            }
        }
    }

    /// Decodes one record, advancing `buf`. Truncation and unknown op
    /// tags are [`DbError::Codec`] — a shipped batch must be rejectable
    /// without panicking, whatever bytes a faulty link delivers.
    pub fn decode_from(buf: &mut impl Buf) -> DbResult<LogRecord> {
        if buf.remaining() < Self::MIN_WIRE_SIZE {
            return Err(DbError::Codec("log record header truncated"));
        }
        let lsn = buf.get_u64();
        let txn = TxnId(buf.get_u64());
        let op = match buf.get_u8() {
            OP_INSERT => {
                if buf.remaining() < 12 {
                    return Err(DbError::Codec("log insert truncated"));
                }
                let table = TableId(buf.get_u32());
                let partition = PartitionId(buf.get_u32());
                let slot = buf.get_u32();
                let tuple = Tuple::decode_from(buf)?;
                LogOp::Insert {
                    table,
                    partition,
                    slot,
                    tuple,
                }
            }
            OP_UPDATE => {
                if buf.remaining() < 12 {
                    return Err(DbError::Codec("log update truncated"));
                }
                let rid = Rid::new(
                    TableId(buf.get_u32()),
                    PartitionId(buf.get_u32()),
                    buf.get_u32(),
                );
                let after = Tuple::decode_from(buf)?;
                LogOp::Update { rid, after }
            }
            OP_COMMIT => LogOp::Commit,
            OP_ABORT => LogOp::Abort,
            OP_PREPARE => {
                if buf.remaining() < 4 {
                    return Err(DbError::Codec("log prepare truncated"));
                }
                let coord = buf.get_u32();
                let ops = decode_prep_ops_from(buf)?;
                LogOp::Prepare { coord, ops }
            }
            OP_DECIDE => {
                if buf.remaining() < 5 {
                    return Err(DbError::Codec("log decide truncated"));
                }
                let commit = match buf.get_u8() {
                    0 => false,
                    1 => true,
                    _ => return Err(DbError::Codec("log decide flag corrupt")),
                };
                let n = buf.get_u32() as usize;
                if n > buf.remaining() / 4 {
                    return Err(DbError::Codec("log decide count exceeds payload"));
                }
                let parts = (0..n).map(|_| buf.get_u32()).collect();
                LogOp::Decide { commit, parts }
            }
            _ => return Err(DbError::Codec("unknown log op tag")),
        };
        Ok(LogRecord { lsn, txn, op })
    }
}

/// Encodes a record sequence as the durable-log body: u64 count followed
/// by the records. This is exactly what `Wal::serialize` writes "to
/// disk", and what rides inside a [`ReplMsg::Records`] frame.
pub fn encode_records_into(records: &[LogRecord], buf: &mut BytesMut) {
    buf.put_u64(records.len() as u64);
    for r in records {
        r.encode_into(buf);
    }
}

/// Decodes a record sequence written by [`encode_records_into`],
/// advancing `buf`. The count header is bounded by the bytes actually
/// present before any allocation, so a corrupt header claiming 2^60
/// records is a [`DbError::Codec`], not an abort.
pub fn decode_records_from(buf: &mut impl Buf) -> DbResult<Vec<LogRecord>> {
    if buf.remaining() < 8 {
        return Err(DbError::Codec("log header truncated"));
    }
    let n = buf.get_u64() as usize;
    if n > buf.remaining() / LogRecord::MIN_WIRE_SIZE {
        return Err(DbError::Codec("log count exceeds payload"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(LogRecord::decode_from(buf)?);
    }
    Ok(out)
}

/// One replication protocol message. See the module docs for who sends
/// what; the codec is symmetric so either end can decode a mixed stream.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplMsg {
    /// A batch of log records shipped primary → follower. Batches are
    /// LSN-contiguous and end on transaction boundaries, so the follower
    /// can replay each batch independently (commit detection needs the
    /// whole transaction in one batch).
    Records(Vec<LogRecord>),
    /// Follower → primary: every record with `lsn <= ack` is applied on
    /// the follower (cumulative, so lost acks are repaired by later ones).
    Ack {
        /// Highest contiguously applied LSN.
        lsn: u64,
    },
    /// Primary → follower: liveness under the lease, with the primary's
    /// election term and current log tip (next LSN to be assigned).
    Heartbeat {
        /// The sending primary's term.
        term: u64,
        /// The primary's next-LSN watermark.
        next_lsn: u64,
    },
    /// Follower → primary: ship your WAL tail starting at this LSN. Sent
    /// on (re)join and on gap detection.
    CatchupFrom {
        /// First LSN the sender is missing.
        lsn: u64,
    },
}

impl ReplMsg {
    /// Encodes the message: tag, then the body.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            ReplMsg::Records(records) => {
                buf.put_u8(MSG_REPL_RECORDS);
                encode_records_into(records, buf);
            }
            ReplMsg::Ack { lsn } => {
                buf.put_u8(MSG_REPL_ACK);
                buf.put_u64(*lsn);
            }
            ReplMsg::Heartbeat { term, next_lsn } => {
                buf.put_u8(MSG_REPL_HEARTBEAT);
                buf.put_u64(*term);
                buf.put_u64(*next_lsn);
            }
            ReplMsg::CatchupFrom { lsn } => {
                buf.put_u8(MSG_REPL_CATCHUP);
                buf.put_u64(*lsn);
            }
        }
    }

    /// Encodes into a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Decodes one message, advancing `buf` past the consumed bytes.
    pub fn decode_from(buf: &mut impl Buf) -> DbResult<ReplMsg> {
        if buf.remaining() < 1 {
            return Err(DbError::Codec("repl message truncated"));
        }
        match buf.get_u8() {
            MSG_REPL_RECORDS => Ok(ReplMsg::Records(decode_records_from(buf)?)),
            MSG_REPL_ACK => {
                if buf.remaining() < 8 {
                    return Err(DbError::Codec("repl ack truncated"));
                }
                Ok(ReplMsg::Ack { lsn: buf.get_u64() })
            }
            MSG_REPL_HEARTBEAT => {
                if buf.remaining() < 16 {
                    return Err(DbError::Codec("repl heartbeat truncated"));
                }
                Ok(ReplMsg::Heartbeat {
                    term: buf.get_u64(),
                    next_lsn: buf.get_u64(),
                })
            }
            MSG_REPL_CATCHUP => {
                if buf.remaining() < 8 {
                    return Err(DbError::Codec("repl catchup truncated"));
                }
                Ok(ReplMsg::CatchupFrom { lsn: buf.get_u64() })
            }
            _ => Err(DbError::Codec("unknown repl message tag")),
        }
    }

    /// Decodes from a standalone frame (must be fully consumed — a frame
    /// is exactly one message).
    pub fn decode(bytes: &Bytes) -> DbResult<ReplMsg> {
        let mut buf = bytes.clone();
        let msg = Self::decode_from(&mut buf)?;
        if buf.remaining() != 0 {
            return Err(DbError::Codec("trailing bytes after repl message"));
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord {
                lsn: 10,
                txn: TxnId(3),
                op: LogOp::Insert {
                    table: TableId(1),
                    partition: PartitionId(0),
                    slot: 4,
                    tuple: Tuple::new(vec![Value::Int(7), Value::str("x")]),
                },
            },
            LogRecord {
                lsn: 11,
                txn: TxnId(3),
                op: LogOp::Update {
                    rid: Rid::new(TableId(1), PartitionId(0), 4),
                    after: Tuple::new(vec![Value::Int(7), Value::str("y")]),
                },
            },
            LogRecord {
                lsn: 12,
                txn: TxnId(3),
                op: LogOp::Commit,
            },
            LogRecord {
                lsn: 13,
                txn: TxnId(4),
                op: LogOp::Abort,
            },
            LogRecord {
                lsn: 14,
                txn: TxnId(5),
                op: LogOp::Prepare {
                    coord: 2,
                    ops: vec![PrepOp {
                        table: TableId(1),
                        tuple: Tuple::new(vec![Value::Int(8)]),
                    }],
                },
            },
            LogRecord {
                lsn: 15,
                txn: TxnId(5),
                op: LogOp::Decide {
                    commit: true,
                    parts: vec![0, 3],
                },
            },
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        let msgs = [
            ReplMsg::Records(sample_records()),
            ReplMsg::Records(Vec::new()),
            ReplMsg::Ack { lsn: 99 },
            ReplMsg::Heartbeat {
                term: 2,
                next_lsn: 100,
            },
            ReplMsg::CatchupFrom { lsn: 14 },
        ];
        for msg in msgs {
            let enc = msg.encode();
            assert_eq!(ReplMsg::decode(&enc).unwrap(), msg);
        }
    }

    #[test]
    fn every_strict_prefix_is_rejected() {
        let enc = ReplMsg::Records(sample_records()).encode();
        for cut in 0..enc.len() {
            assert!(
                ReplMsg::decode(&enc.slice(0..cut)).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_are_rejected() {
        let enc = ReplMsg::Ack { lsn: 1 }.encode();
        let mut bad_tag = enc.chunk().to_vec();
        bad_tag[0] = 0x7F;
        assert_eq!(
            ReplMsg::decode(&Bytes::copy_from_slice(&bad_tag)),
            Err(DbError::Codec("unknown repl message tag"))
        );
        let mut trailing = enc.chunk().to_vec();
        trailing.push(0);
        assert!(ReplMsg::decode(&Bytes::copy_from_slice(&trailing)).is_err());
    }

    #[test]
    fn corrupt_count_header_is_rejected_without_allocating() {
        // A frame claiming 2^60 records with a 9-byte body must fail fast
        // on the count bound, not attempt a giant Vec reservation.
        let mut buf = BytesMut::new();
        buf.put_u8(MSG_REPL_RECORDS);
        buf.put_u64(1 << 60);
        buf.put_u8(0);
        assert_eq!(
            ReplMsg::decode(&buf.freeze()),
            Err(DbError::Codec("log count exceeds payload"))
        );
    }

    #[test]
    fn unknown_op_tag_is_codec_error() {
        let mut buf = BytesMut::new();
        buf.put_u64(1); // one record promised
        buf.put_u64(5); // lsn
        buf.put_u64(0); // txn
        buf.put_u8(9); // bogus op tag
        let mut bytes = buf.freeze();
        assert_eq!(
            decode_records_from(&mut bytes),
            Err(DbError::Codec("unknown log op tag"))
        );
    }
}
