//! The remote scan wire protocol: self-describing pushed-down scan
//! requests and certified columnar replies (DESIGN.md §8).
//!
//! AnyDB's data beaming (paper §4, Figure 6) only works across component
//! boundaries if the *scan itself* can travel: a compute AC must be able
//! to hand a remote storage AC its projection, its predicate, and its
//! batching wishes as bytes, and get back only the surviving columns plus
//! proof of what the scan observed. [`ScanRequest`] and [`ScanReply`] are
//! those two messages. Both reuse the existing codecs end to end — the
//! depth-capped [`ColPredicate`] encoding and the one-tag-per-column
//! [`ColumnBatch`] encoding — framed by a one-byte message tag so a link
//! carrying mixed traffic can dispatch (and fuzzers have something to
//! flip).
//!
//! The reply carries the [`ScanSnapshot`] certificate verbatim: the
//! consumer — not the storage side — decides whether a scan's consistency
//! (point-in-time vs read-committed prefix) is good enough for its query,
//! so the evidence must cross the wire with the data it certifies.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::column::{ColPredicate, ColumnBatch};
use crate::error::{DbError, DbResult};
use crate::ids::PartitionId;

/// Message tag of an encoded [`ScanRequest`]. Deliberately outside the
/// predicate (1..=4) and column (1..=3) tag ranges so a frame can never
/// be mistaken for a bare payload.
pub const MSG_SCAN_REQUEST: u8 = 0xA1;
/// Message tag of an encoded [`ScanReply`].
pub const MSG_SCAN_REPLY: u8 = 0xA2;
/// Message tag of an encoded [`ScanError`].
pub const MSG_SCAN_ERROR: u8 = 0xA3;

/// Request flag: a predicate follows the projection.
const FLAG_PRED: u8 = 1 << 0;
/// Request flag: serve through the shared-scan cache (the snapshot hint —
/// the requester accepts any cached point-in-time image of this shape).
const FLAG_SHARED: u8 = 1 << 1;
/// Request flag: scan one named partition instead of all of them.
const FLAG_PARTITION: u8 = 1 << 2;
/// All flag bits a decoder understands; anything else is from the future
/// and rejected rather than silently ignored.
const FLAG_MASK: u8 = FLAG_PRED | FLAG_SHARED | FLAG_PARTITION;

/// What a snapshot scan observed — the snapshot's consistency
/// certificate. Produced by the storage layer, shipped inside every
/// [`ScanReply`].
///
/// The contract (also §6 of DESIGN.md):
///
/// 1. **Fixed prefix** — the scan covers exactly the `prefix` rows present
///    when it began, in slot order; rows appended while it runs are never
///    visible.
/// 2. **Row atomicity** — every row is materialized under mutual exclusion
///    with writers, so no torn row can be observed, ever.
/// 3. **Epoch certificate** — `epoch_start == epoch_end` proves no write
///    (append or update) was interleaved anywhere in the partition, i.e.
///    the whole prefix is one point-in-time image. When they differ, the
///    scan is still a sequence of per-chunk point-in-time images
///    (read-committed prefix semantics) and `max_version` bounds the
///    newest row state it can contain.
/// 4. **Column-set certificate** — `cols_epoch_start == cols_epoch_end`
///    proves no write *changed a projected or filtered column* (and
///    nothing was appended): the scanned projection is one point-in-time
///    image even if unrelated columns were written mid-scan. This is the
///    certificate the shared-scan cache revalidates against, which is what
///    keeps cached OLAP snapshots alive across OLTP writes to disjoint
///    columns. Un-mirrored partitions fall back to the global epochs here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanSnapshot {
    /// Rows in the captured prefix (scanned pre-filter).
    pub prefix: usize,
    /// Rows that passed the predicate into the output batch.
    pub matched: usize,
    /// Partition write epoch when the scan began.
    pub epoch_start: u64,
    /// Partition write epoch when the scan finished.
    pub epoch_end: u64,
    /// Max relevant epoch (appends + projected ∪ filtered columns) when
    /// the scan began.
    pub cols_epoch_start: u64,
    /// Max relevant epoch when the scan finished.
    pub cols_epoch_end: u64,
    /// Highest row version observed in the prefix (0 when empty).
    pub max_version: u64,
}

impl ScanSnapshot {
    /// True when the whole prefix is certified as one point-in-time image
    /// (no write anywhere in the partition raced the scan).
    pub fn is_point_in_time(&self) -> bool {
        self.epoch_start == self.epoch_end
    }

    /// True when the scanned **projection** is certified as one
    /// point-in-time image: no append and no change to a projected or
    /// filtered column raced the scan (writes to unrelated columns are
    /// allowed). Implied by [`ScanSnapshot::is_point_in_time`]; this is
    /// the cacheable condition.
    pub fn is_cols_point_in_time(&self) -> bool {
        self.cols_epoch_start == self.cols_epoch_end
    }

    /// Fixed wire size: seven u64 fields, no framing of its own (the
    /// enclosing message provides the tag).
    pub const WIRE_SIZE: usize = 7 * 8;

    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64(self.prefix as u64);
        buf.put_u64(self.matched as u64);
        buf.put_u64(self.epoch_start);
        buf.put_u64(self.epoch_end);
        buf.put_u64(self.cols_epoch_start);
        buf.put_u64(self.cols_epoch_end);
        buf.put_u64(self.max_version);
    }

    fn decode_from(buf: &mut impl Buf) -> DbResult<ScanSnapshot> {
        if buf.remaining() < Self::WIRE_SIZE {
            return Err(DbError::Codec("scan snapshot truncated"));
        }
        Ok(ScanSnapshot {
            prefix: buf.get_u64() as usize,
            matched: buf.get_u64() as usize,
            epoch_start: buf.get_u64(),
            epoch_end: buf.get_u64(),
            cols_epoch_start: buf.get_u64(),
            cols_epoch_end: buf.get_u64(),
            max_version: buf.get_u64(),
        })
    }
}

/// A pushed-down scan, as a message: "run this projection and predicate
/// at *your* data and ship back only what survives".
///
/// There is no table field — a scan connection is established per table
/// (the request addresses "the table at the other end"), exactly like the
/// per-stream links the beaming pipeline already opens per scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanRequest {
    /// Scan one partition, or `None` for every partition the serving AC
    /// holds (one certified reply stream per partition either way).
    pub partition: Option<PartitionId>,
    /// Column positions to ship back, in reply column order.
    pub proj: Vec<usize>,
    /// Predicate evaluated at the remote scan; `None` ships the whole
    /// projection. Columns it reads need not appear in `proj`.
    pub pred: Option<ColPredicate>,
    /// Split surviving rows into reply batches of at most this many rows
    /// (pipelining granularity); `0` means one reply per partition.
    pub batch_rows: usize,
    /// Snapshot hint: when `true` the scan may be served from (and will
    /// populate) the shared-scan cache — the requester accepts any cached
    /// point-in-time image of this shape. When `false` the storage AC
    /// runs a private snapshot scan.
    pub shared: bool,
}

impl ScanRequest {
    /// Encodes the request: message tag, flags, optional partition,
    /// batch-rows, projection, then the optional predicate via the
    /// [`ColPredicate`] codec.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        debug_assert!(self.proj.len() <= u16::MAX as usize);
        buf.put_u8(MSG_SCAN_REQUEST);
        let mut flags = 0u8;
        if self.pred.is_some() {
            flags |= FLAG_PRED;
        }
        if self.shared {
            flags |= FLAG_SHARED;
        }
        if self.partition.is_some() {
            flags |= FLAG_PARTITION;
        }
        buf.put_u8(flags);
        if let Some(p) = self.partition {
            buf.put_u32(p.raw());
        }
        buf.put_u32(self.batch_rows as u32);
        buf.put_u16(self.proj.len() as u16);
        for &c in &self.proj {
            buf.put_u32(c as u32);
        }
        if let Some(pred) = &self.pred {
            pred.encode_into(buf);
        }
    }

    /// Encodes into a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Decodes one request, advancing `buf` past the consumed bytes.
    /// Rejects truncation, a wrong message tag, and unknown flag bits
    /// (a future field this decoder would silently mis-frame).
    pub fn decode_from(buf: &mut impl Buf) -> DbResult<ScanRequest> {
        if buf.remaining() < 2 {
            return Err(DbError::Codec("scan request header truncated"));
        }
        if buf.get_u8() != MSG_SCAN_REQUEST {
            return Err(DbError::Codec("not a scan request"));
        }
        let flags = buf.get_u8();
        if flags & !FLAG_MASK != 0 {
            return Err(DbError::Codec("unknown scan request flags"));
        }
        let partition = if flags & FLAG_PARTITION != 0 {
            if buf.remaining() < 4 {
                return Err(DbError::Codec("scan request partition truncated"));
            }
            Some(PartitionId(buf.get_u32()))
        } else {
            None
        };
        if buf.remaining() < 4 + 2 {
            return Err(DbError::Codec("scan request header truncated"));
        }
        let batch_rows = buf.get_u32() as usize;
        let nproj = buf.get_u16() as usize;
        if buf.remaining() < nproj * 4 {
            return Err(DbError::Codec("scan request projection truncated"));
        }
        let proj = (0..nproj).map(|_| buf.get_u32() as usize).collect();
        let pred = if flags & FLAG_PRED != 0 {
            Some(ColPredicate::decode_from(buf)?)
        } else {
            None
        };
        Ok(ScanRequest {
            partition,
            proj,
            pred,
            batch_rows,
            shared: flags & FLAG_SHARED != 0,
        })
    }

    /// Decodes from a standalone buffer (must be fully consumed).
    pub fn decode(bytes: &Bytes) -> DbResult<ScanRequest> {
        let mut buf = bytes.clone();
        let req = Self::decode_from(&mut buf)?;
        if buf.remaining() != 0 {
            return Err(DbError::Codec("trailing bytes after scan request"));
        }
        Ok(req)
    }
}

/// One certified batch of surviving columns from one partition's scan.
///
/// A request that splits (`batch_rows > 0`) produces several replies per
/// partition; each repeats the partition's [`ScanSnapshot`] so every
/// frame is independently interpretable (a consumer can act on batch `k`
/// before batch `k+1` exists — the certificate cannot arrive "at the
/// end" without stalling the pipeline).
#[derive(Debug, Clone, PartialEq)]
pub struct ScanReply {
    /// Partition the batch came from.
    pub partition: PartitionId,
    /// What the serving scan observed (see [`ScanSnapshot`]).
    pub snapshot: ScanSnapshot,
    /// The surviving rows, projected and encoded columnar.
    pub batch: ColumnBatch,
}

impl ScanReply {
    /// Encodes the reply: message tag, partition, certificate, then the
    /// [`ColumnBatch`] codec.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u8(MSG_SCAN_REPLY);
        buf.put_u32(self.partition.raw());
        self.snapshot.encode_into(buf);
        self.batch.encode_into(buf);
    }

    /// Encodes into a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Decodes one reply, advancing `buf` past the consumed bytes.
    pub fn decode_from(buf: &mut impl Buf) -> DbResult<ScanReply> {
        if buf.remaining() < 1 + 4 {
            return Err(DbError::Codec("scan reply header truncated"));
        }
        if buf.get_u8() != MSG_SCAN_REPLY {
            return Err(DbError::Codec("not a scan reply"));
        }
        let partition = PartitionId(buf.get_u32());
        let snapshot = ScanSnapshot::decode_from(buf)?;
        let batch = ColumnBatch::decode_from(buf)?;
        Ok(ScanReply {
            partition,
            snapshot,
            batch,
        })
    }

    /// Decodes from a standalone buffer (must be fully consumed —
    /// stricter than [`ColumnBatch::decode`], because a reply frame is
    /// exactly one message).
    pub fn decode(bytes: &Bytes) -> DbResult<ScanReply> {
        let mut buf = bytes.clone();
        let reply = Self::decode_from(&mut buf)?;
        if buf.remaining() != 0 {
            return Err(DbError::Codec("trailing bytes after scan reply"));
        }
        Ok(reply)
    }
}

/// A serving AC's refusal, as a message: the request frame could not be
/// decoded or could not be served, and *why*. Without this, a remote
/// caller whose request was malformed would wait on a reply stream that
/// never produces anything and learn nothing when it times out — the
/// server knew the reason and dropped it on the floor (the pre-PR-8
/// `debug_assert!` + skip behavior, which is silence in release builds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanError {
    /// Human-readable reason, bounded by the codec at `u16::MAX` bytes.
    pub reason: String,
}

impl ScanError {
    /// Builds an error reply from any displayable cause.
    pub fn new(reason: impl std::fmt::Display) -> Self {
        let mut reason = reason.to_string();
        reason.truncate(u16::MAX as usize);
        Self { reason }
    }

    /// Encodes the error: message tag, length-framed UTF-8 reason.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u8(MSG_SCAN_ERROR);
        buf.put_u16(self.reason.len() as u16);
        buf.put_slice(self.reason.as_bytes());
    }

    /// Encodes into a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Decodes one error reply, advancing `buf`.
    pub fn decode_from(buf: &mut impl Buf) -> DbResult<ScanError> {
        if buf.remaining() < 1 + 2 {
            return Err(DbError::Codec("scan error header truncated"));
        }
        if buf.get_u8() != MSG_SCAN_ERROR {
            return Err(DbError::Codec("not a scan error"));
        }
        let len = buf.get_u16() as usize;
        if buf.remaining() < len {
            return Err(DbError::Codec("scan error reason truncated"));
        }
        let mut bytes = vec![0u8; len];
        buf.copy_to_slice(&mut bytes);
        let reason =
            String::from_utf8(bytes).map_err(|_| DbError::Codec("scan error reason not utf-8"))?;
        Ok(ScanError { reason })
    }

    /// Decodes from a standalone frame (must be fully consumed).
    pub fn decode(bytes: &Bytes) -> DbResult<ScanError> {
        let mut buf = bytes.clone();
        let err = Self::decode_from(&mut buf)?;
        if buf.remaining() != 0 {
            return Err(DbError::Codec("trailing bytes after scan error"));
        }
        Ok(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;
    use crate::tuple::Tuple;
    use crate::value::Value;

    fn sample_snapshot() -> ScanSnapshot {
        ScanSnapshot {
            prefix: 100,
            matched: 7,
            epoch_start: 3,
            epoch_end: 3,
            cols_epoch_start: 2,
            cols_epoch_end: 2,
            max_version: 41,
        }
    }

    fn sample_batch() -> ColumnBatch {
        ColumnBatch::from_tuples(
            &[DataType::Int, DataType::Str],
            &[
                Tuple::new(vec![Value::Int(1), Value::str("aa")]),
                Tuple::new(vec![Value::Null, Value::str("bb")]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn request_roundtrips_all_field_shapes() {
        let reqs = [
            ScanRequest {
                partition: None,
                proj: vec![],
                pred: None,
                batch_rows: 0,
                shared: false,
            },
            ScanRequest {
                partition: Some(PartitionId(9)),
                proj: vec![3, 0, 7],
                pred: Some(ColPredicate::And(vec![
                    ColPredicate::IntGe { col: 1, min: -4 },
                    ColPredicate::StrPrefix {
                        col: 2,
                        prefix: "ab".into(),
                    },
                ])),
                batch_rows: 512,
                shared: true,
            },
        ];
        for req in reqs {
            let enc = req.encode();
            assert_eq!(ScanRequest::decode(&enc).unwrap(), req);
        }
    }

    #[test]
    fn request_rejects_unknown_flags_tag_and_trailing() {
        let req = ScanRequest {
            partition: None,
            proj: vec![1],
            pred: None,
            batch_rows: 0,
            shared: false,
        };
        let enc = req.encode();
        let mut bad_tag = enc.chunk().to_vec();
        bad_tag[0] = MSG_SCAN_REPLY;
        assert!(ScanRequest::decode(&Bytes::copy_from_slice(&bad_tag)).is_err());
        let mut bad_flags = enc.chunk().to_vec();
        bad_flags[1] |= 1 << 6;
        assert!(ScanRequest::decode(&Bytes::copy_from_slice(&bad_flags)).is_err());
        let mut trailing = enc.chunk().to_vec();
        trailing.push(0);
        assert!(ScanRequest::decode(&Bytes::copy_from_slice(&trailing)).is_err());
    }

    #[test]
    fn request_rejects_every_strict_prefix() {
        let req = ScanRequest {
            partition: Some(PartitionId(2)),
            proj: vec![0, 4],
            pred: Some(ColPredicate::IntBetween {
                col: 4,
                min: 1,
                max: 9,
            }),
            batch_rows: 64,
            shared: true,
        };
        let enc = req.encode();
        for cut in 0..enc.len() {
            assert!(
                ScanRequest::decode(&enc.slice(0..cut)).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn reply_roundtrips() {
        let reply = ScanReply {
            partition: PartitionId(3),
            snapshot: sample_snapshot(),
            batch: sample_batch(),
        };
        let enc = reply.encode();
        assert_eq!(ScanReply::decode(&enc).unwrap(), reply);
    }

    #[test]
    fn reply_rejects_prefixes_tag_and_trailing() {
        let reply = ScanReply {
            partition: PartitionId(0),
            snapshot: sample_snapshot(),
            batch: sample_batch(),
        };
        let enc = reply.encode();
        for cut in 0..enc.len() {
            assert!(
                ScanReply::decode(&enc.slice(0..cut)).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        let mut bad_tag = enc.chunk().to_vec();
        bad_tag[0] = MSG_SCAN_REQUEST;
        assert!(ScanReply::decode(&Bytes::copy_from_slice(&bad_tag)).is_err());
        let mut trailing = enc.chunk().to_vec();
        trailing.push(0);
        assert!(ScanReply::decode(&Bytes::copy_from_slice(&trailing)).is_err());
    }

    #[test]
    fn scan_error_roundtrips_and_rejects_prefixes() {
        let err = ScanError::new(DbError::Codec("unknown scan request flags"));
        let enc = err.encode();
        assert_eq!(ScanError::decode(&enc).unwrap(), err);
        for cut in 0..enc.len() {
            assert!(
                ScanError::decode(&enc.slice(0..cut)).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        let mut bad_tag = enc.chunk().to_vec();
        bad_tag[0] = MSG_SCAN_REPLY;
        assert!(ScanError::decode(&Bytes::copy_from_slice(&bad_tag)).is_err());
        let mut trailing = enc.chunk().to_vec();
        trailing.push(0);
        assert!(ScanError::decode(&Bytes::copy_from_slice(&trailing)).is_err());
    }

    #[test]
    fn snapshot_certificates() {
        let s = sample_snapshot();
        assert!(s.is_point_in_time());
        assert!(s.is_cols_point_in_time());
        let racy = ScanSnapshot {
            epoch_end: 4,
            cols_epoch_end: 4,
            ..s
        };
        assert!(!racy.is_point_in_time());
        assert!(!racy.is_cols_point_in_time());
    }
}
