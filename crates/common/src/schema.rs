//! Table schemas and column metadata.

use std::fmt;
use std::sync::Arc;

use crate::error::{DbError, DbResult};
use crate::value::Value;

/// Column data types supported by the storage layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (also encodes dates as `yyyymmdd`).
    Int,
    /// 64-bit float (money amounts).
    Float,
    /// Variable-length UTF-8 string.
    Str,
}

/// A column definition: name, type, nullability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name, lower-case by convention (e.g. `w_ytd`).
    pub name: String,
    /// Declared type.
    pub ty: DataType,
    /// Whether NULL is allowed.
    pub nullable: bool,
}

impl ColumnDef {
    /// Non-nullable column.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Self {
            name: name.into(),
            ty,
            nullable: false,
        }
    }

    /// Nullable column.
    pub fn nullable(name: impl Into<String>, ty: DataType) -> Self {
        Self {
            name: name.into(),
            ty,
            nullable: true,
        }
    }
}

/// A table schema. Cheaply cloneable (`Arc` inside) because schemas ride
/// along catalog data streams to whichever AC needs them.
#[derive(Clone, PartialEq, Eq)]
pub struct Schema {
    inner: Arc<SchemaInner>,
}

#[derive(PartialEq, Eq)]
struct SchemaInner {
    name: String,
    columns: Vec<ColumnDef>,
    /// Indices of the primary-key columns, in key order.
    primary_key: Vec<usize>,
}

impl Schema {
    /// Builds a schema; `primary_key` lists column names in key order.
    ///
    /// # Panics
    /// Panics if a primary-key column name is unknown or duplicated — this
    /// is a static definition error, not a runtime condition.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>, primary_key: &[&str]) -> Self {
        let name = name.into();
        let mut pk = Vec::with_capacity(primary_key.len());
        for key in primary_key {
            let idx = columns
                .iter()
                .position(|c| c.name == *key)
                .unwrap_or_else(|| panic!("schema {name}: unknown pk column {key}"));
            assert!(
                !pk.contains(&idx),
                "schema {name}: duplicate pk column {key}"
            );
            pk.push(idx);
        }
        Self {
            inner: Arc::new(SchemaInner {
                name,
                columns,
                primary_key: pk,
            }),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// All column definitions, in declaration order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.inner.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.inner.columns.len()
    }

    /// Positions of the primary-key columns.
    pub fn primary_key(&self) -> &[usize] {
        &self.inner.primary_key
    }

    /// Resolves a column name to its position.
    pub fn column_index(&self, name: &str) -> DbResult<usize> {
        self.inner
            .columns
            .iter()
            .position(|c| c.name == name)
            .ok_or(DbError::SchemaMismatch("unknown column name"))
    }

    /// Validates that `values` matches this schema (arity, types, nulls).
    pub fn check(&self, values: &[Value]) -> DbResult<()> {
        if values.len() != self.arity() {
            return Err(DbError::SchemaMismatch("tuple arity"));
        }
        for (v, c) in values.iter().zip(self.columns()) {
            match v.data_type() {
                Some(ty) if ty == c.ty => {}
                None if c.nullable => {}
                None => return Err(DbError::SchemaMismatch("null in non-nullable column")),
                Some(_) => return Err(DbError::SchemaMismatch("column type")),
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Schema({}", self.inner.name)?;
        for c in &self.inner.columns {
            write!(f, " {}:{:?}", c.name, c.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Str),
                ColumnDef::nullable("score", DataType::Float),
            ],
            &["id"],
        )
    }

    #[test]
    fn basic_introspection() {
        let s = sample();
        assert_eq!(s.name(), "t");
        assert_eq!(s.arity(), 3);
        assert_eq!(s.primary_key(), &[0]);
        assert_eq!(s.column_index("name").unwrap(), 1);
        assert!(s.column_index("missing").is_err());
    }

    #[test]
    fn check_accepts_valid_tuples() {
        let s = sample();
        s.check(&[Value::Int(1), Value::str("a"), Value::Float(0.5)])
            .unwrap();
        s.check(&[Value::Int(1), Value::str("a"), Value::Null])
            .unwrap();
    }

    #[test]
    fn check_rejects_bad_tuples() {
        let s = sample();
        // wrong arity
        assert!(s.check(&[Value::Int(1)]).is_err());
        // wrong type
        assert!(s
            .check(&[Value::str("x"), Value::str("a"), Value::Null])
            .is_err());
        // null in non-nullable
        assert!(s
            .check(&[Value::Null, Value::str("a"), Value::Null])
            .is_err());
    }

    #[test]
    #[should_panic(expected = "unknown pk column")]
    fn unknown_pk_panics() {
        Schema::new("t", vec![ColumnDef::new("a", DataType::Int)], &["b"]);
    }

    #[test]
    fn composite_primary_key_order_preserved() {
        let s = Schema::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Int),
                ColumnDef::new("b", DataType::Int),
            ],
            &["b", "a"],
        );
        assert_eq!(s.primary_key(), &[1, 0]);
    }
}
