//! The common error type used across all AnyDB crates.

use std::fmt;

use crate::ids::{PartitionId, TableId, TxnId};
use crate::rid::Rid;

/// Result alias for fallible AnyDB operations.
pub type DbResult<T> = Result<T, DbError>;

/// Errors surfaced by storage, transaction, and execution layers.
///
/// Variants deliberately carry enough context to be actionable in logs
/// without allocating in the hot path (ids, not strings), except for the
/// catch-all variants used at API boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// The referenced table does not exist in the catalog.
    UnknownTable(TableId),
    /// The referenced table name does not exist in the catalog.
    UnknownTableName(String),
    /// The referenced partition does not exist for the table.
    UnknownPartition(TableId, PartitionId),
    /// A record lookup failed.
    RecordNotFound(Rid),
    /// A unique index rejected a duplicate key.
    DuplicateKey(TableId),
    /// An index lookup missed.
    KeyNotFound(TableId),
    /// The transaction was aborted by concurrency control (e.g. wait-die).
    TxnAborted(TxnId),
    /// A lock could not be acquired under a no-wait policy.
    LockConflict(TxnId),
    /// Optimistic validation failed at commit time.
    ValidationFailed(TxnId),
    /// Tuple arity or column type did not match the schema.
    SchemaMismatch(&'static str),
    /// A value was used with an incompatible type.
    TypeMismatch(&'static str),
    /// Decoding a wire-format tuple or message failed.
    Codec(&'static str),
    /// A stream endpoint was closed / disconnected.
    StreamClosed,
    /// A remote peer answered with an explicit error reply.
    Remote(String),
    /// A deadline expired before the operation (or its retries) finished.
    Timeout(&'static str),
    /// A bounded queue was full and the send policy was fail-fast.
    QueueFull,
    /// The engine or a component was shut down.
    Shutdown,
    /// Recovery found a corrupt or truncated log entry.
    CorruptLog(u64),
    /// Configuration is invalid.
    Config(String),
    /// Internal invariant violation; indicates a bug.
    Internal(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownTable(t) => write!(f, "unknown table {t}"),
            DbError::UnknownTableName(n) => write!(f, "unknown table '{n}'"),
            DbError::UnknownPartition(t, p) => {
                write!(f, "unknown partition {p} of table {t}")
            }
            DbError::RecordNotFound(rid) => write!(f, "record not found: {rid}"),
            DbError::DuplicateKey(t) => write!(f, "duplicate key in table {t}"),
            DbError::KeyNotFound(t) => write!(f, "key not found in table {t}"),
            DbError::TxnAborted(t) => write!(f, "transaction {t} aborted"),
            DbError::LockConflict(t) => write!(f, "lock conflict for transaction {t}"),
            DbError::ValidationFailed(t) => {
                write!(f, "optimistic validation failed for transaction {t}")
            }
            DbError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            DbError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            DbError::Codec(m) => write!(f, "codec error: {m}"),
            DbError::StreamClosed => write!(f, "stream closed"),
            DbError::Remote(m) => write!(f, "remote error: {m}"),
            DbError::Timeout(m) => write!(f, "timed out: {m}"),
            DbError::QueueFull => write!(f, "queue full"),
            DbError::Shutdown => write!(f, "engine shut down"),
            DbError::CorruptLog(lsn) => write!(f, "corrupt log entry at lsn {lsn}"),
            DbError::Config(m) => write!(f, "invalid configuration: {m}"),
            DbError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

impl DbError {
    /// True if the error is a concurrency-control abort that the client is
    /// expected to retry (as opposed to a logic or configuration error).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            DbError::TxnAborted(_) | DbError::LockConflict(_) | DbError::ValidationFailed(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = DbError::UnknownPartition(TableId(1), PartitionId(2));
        assert_eq!(e.to_string(), "unknown partition 2 of table 1");
        assert_eq!(DbError::StreamClosed.to_string(), "stream closed");
    }

    #[test]
    fn retryable_classification() {
        assert!(DbError::TxnAborted(TxnId(1)).is_retryable());
        assert!(DbError::LockConflict(TxnId(1)).is_retryable());
        assert!(DbError::ValidationFailed(TxnId(1)).is_retryable());
        assert!(!DbError::StreamClosed.is_retryable());
        assert!(!DbError::Codec("x").is_retryable());
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(DbError::QueueFull);
        assert_eq!(e.to_string(), "queue full");
    }
}
