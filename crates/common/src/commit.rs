//! The cross-shard commit wire protocol: two-phase commit messages that
//! travel over inter-shard links (DESIGN.md §10).
//!
//! Five messages, tagged in the 0xC1..=0xC5 range — outside the scan
//! (0xA1..=0xA3) and replication (0xB1..=0xB4) tag spaces so a mixed
//! link can dispatch on the first byte:
//!
//! * [`CommitMsg::Prepare`] — coordinator → participant: stage these
//!   writes for the transaction and vote,
//! * [`CommitMsg::Vote`] — participant → coordinator: staged (yes) or
//!   refused (no),
//! * [`CommitMsg::Decide`] — coordinator → participant: commit or abort
//!   the staged transaction,
//! * [`CommitMsg::DecideAck`] — participant → coordinator: the decision
//!   is applied and durable, stop retransmitting it,
//! * [`CommitMsg::DecideQuery`] — participant → coordinator: "what
//!   became of this transaction?" — sent by a participant stuck with a
//!   staged transaction (e.g. after its own recovery, or after the
//!   coordinator crashed). The coordinator answers decided transactions
//!   from its log and unknown ones with presumed-abort; like
//!   `CatchupFrom` in [`crate::repl`], retransmission *is* the recovery
//!   protocol — there is no separate repair path.
//!
//! Decoding is hardened exactly like the scan and repl codecs: every
//! truncation, unknown tag, malformed bool byte, count header exceeding
//! the payload, or unconsumed trailing byte is a [`DbError::Codec`] —
//! a torn frame off a faulty link must never panic a shard node.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{DbError, DbResult};
use crate::ids::{TableId, TxnId};
use crate::tuple::Tuple;

/// Message tag of an encoded [`CommitMsg::Prepare`].
pub const MSG_COMMIT_PREPARE: u8 = 0xC1;
/// Message tag of an encoded [`CommitMsg::Vote`].
pub const MSG_COMMIT_VOTE: u8 = 0xC2;
/// Message tag of an encoded [`CommitMsg::Decide`].
pub const MSG_COMMIT_DECIDE: u8 = 0xC3;
/// Message tag of an encoded [`CommitMsg::DecideAck`].
pub const MSG_COMMIT_DECIDE_ACK: u8 = 0xC4;
/// Message tag of an encoded [`CommitMsg::DecideQuery`].
pub const MSG_COMMIT_DECIDE_QUERY: u8 = 0xC5;

/// One staged write inside a [`CommitMsg::Prepare`]: an insert into
/// `table` that becomes visible only if the transaction commits. Also
/// the payload of a `LogOp::Prepare` WAL record, so a participant's
/// staged state survives its own crash.
#[derive(Debug, Clone, PartialEq)]
pub struct PrepOp {
    /// Table the row is destined for.
    pub table: TableId,
    /// The full row image to insert on commit.
    pub tuple: Tuple,
}

impl PrepOp {
    /// Minimum encoded size (table id + empty tuple header); used to
    /// sanity-bound count headers before allocating.
    pub const MIN_WIRE_SIZE: usize = 4 + 2;

    /// Encodes one staged op: table id, then the tuple.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u32(self.table.raw());
        self.tuple.encode_into(buf);
    }

    /// Decodes one staged op, advancing `buf`.
    pub fn decode_from(buf: &mut impl Buf) -> DbResult<PrepOp> {
        if buf.remaining() < Self::MIN_WIRE_SIZE {
            return Err(DbError::Codec("prep op truncated"));
        }
        let table = TableId(buf.get_u32());
        let tuple = Tuple::decode_from(buf)?;
        Ok(PrepOp { table, tuple })
    }
}

/// Encodes a staged-op sequence: u32 count followed by the ops. Shared
/// by [`CommitMsg::Prepare`] and the `LogOp::Prepare` WAL record body.
pub fn encode_prep_ops_into(ops: &[PrepOp], buf: &mut BytesMut) {
    buf.put_u32(ops.len() as u32);
    for op in ops {
        op.encode_into(buf);
    }
}

/// Decodes a staged-op sequence written by [`encode_prep_ops_into`].
/// The count header is bounded by the bytes actually present before any
/// allocation happens.
pub fn decode_prep_ops_from(buf: &mut impl Buf) -> DbResult<Vec<PrepOp>> {
    if buf.remaining() < 4 {
        return Err(DbError::Codec("prep op count truncated"));
    }
    let n = buf.get_u32() as usize;
    if n > buf.remaining() / PrepOp::MIN_WIRE_SIZE {
        return Err(DbError::Codec("prep op count exceeds payload"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(PrepOp::decode_from(buf)?);
    }
    Ok(out)
}

/// Decodes one strict bool byte (0 or 1; anything else is corruption).
fn decode_bool(buf: &mut impl Buf, what: &'static str) -> DbResult<bool> {
    match buf.get_u8() {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(DbError::Codec(what)),
    }
}

/// One two-phase-commit protocol message. See the module docs for who
/// sends what; the codec is symmetric so either end decodes any frame.
#[derive(Debug, Clone, PartialEq)]
pub enum CommitMsg {
    /// Coordinator → participant: stage `ops` for `txn` and vote. `coord`
    /// names the coordinating node so a recovering participant knows whom
    /// to ask about an in-doubt transaction.
    Prepare {
        /// The distributed transaction.
        txn: TxnId,
        /// The coordinating shard node's id.
        coord: u32,
        /// Writes to stage at the receiving participant.
        ops: Vec<PrepOp>,
    },
    /// Participant → coordinator: `yes` if the ops are staged and
    /// durable, `no` if the participant refuses (the coordinator must
    /// then decide abort).
    Vote {
        /// The distributed transaction.
        txn: TxnId,
        /// Whether the participant staged successfully.
        yes: bool,
    },
    /// Coordinator → participant: the outcome. Retransmitted until the
    /// participant acks, so delivery loss only delays, never diverges.
    Decide {
        /// The distributed transaction.
        txn: TxnId,
        /// `true` to apply the staged writes, `false` to discard them.
        commit: bool,
    },
    /// Participant → coordinator: the decision for `txn` is applied and
    /// logged; retransmission can stop.
    DecideAck {
        /// The distributed transaction.
        txn: TxnId,
    },
    /// Participant → coordinator: re-ask for the outcome of a staged
    /// transaction (participant recovery, or a lost `Decide`).
    DecideQuery {
        /// The distributed transaction.
        txn: TxnId,
    },
}

impl CommitMsg {
    /// Encodes the message: tag, then the body.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            CommitMsg::Prepare { txn, coord, ops } => {
                buf.put_u8(MSG_COMMIT_PREPARE);
                buf.put_u64(txn.raw());
                buf.put_u32(*coord);
                encode_prep_ops_into(ops, buf);
            }
            CommitMsg::Vote { txn, yes } => {
                buf.put_u8(MSG_COMMIT_VOTE);
                buf.put_u64(txn.raw());
                buf.put_u8(u8::from(*yes));
            }
            CommitMsg::Decide { txn, commit } => {
                buf.put_u8(MSG_COMMIT_DECIDE);
                buf.put_u64(txn.raw());
                buf.put_u8(u8::from(*commit));
            }
            CommitMsg::DecideAck { txn } => {
                buf.put_u8(MSG_COMMIT_DECIDE_ACK);
                buf.put_u64(txn.raw());
            }
            CommitMsg::DecideQuery { txn } => {
                buf.put_u8(MSG_COMMIT_DECIDE_QUERY);
                buf.put_u64(txn.raw());
            }
        }
    }

    /// Encodes into a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Decodes one message, advancing `buf` past the consumed bytes.
    pub fn decode_from(buf: &mut impl Buf) -> DbResult<CommitMsg> {
        if buf.remaining() < 1 {
            return Err(DbError::Codec("commit message truncated"));
        }
        let tag = buf.get_u8();
        if buf.remaining() < 8 {
            return Err(DbError::Codec("commit txn id truncated"));
        }
        let txn = TxnId(buf.get_u64());
        match tag {
            MSG_COMMIT_PREPARE => {
                if buf.remaining() < 4 {
                    return Err(DbError::Codec("commit prepare truncated"));
                }
                let coord = buf.get_u32();
                let ops = decode_prep_ops_from(buf)?;
                Ok(CommitMsg::Prepare { txn, coord, ops })
            }
            MSG_COMMIT_VOTE => {
                if buf.remaining() < 1 {
                    return Err(DbError::Codec("commit vote truncated"));
                }
                let yes = decode_bool(buf, "commit vote flag corrupt")?;
                Ok(CommitMsg::Vote { txn, yes })
            }
            MSG_COMMIT_DECIDE => {
                if buf.remaining() < 1 {
                    return Err(DbError::Codec("commit decide truncated"));
                }
                let commit = decode_bool(buf, "commit decide flag corrupt")?;
                Ok(CommitMsg::Decide { txn, commit })
            }
            MSG_COMMIT_DECIDE_ACK => Ok(CommitMsg::DecideAck { txn }),
            MSG_COMMIT_DECIDE_QUERY => Ok(CommitMsg::DecideQuery { txn }),
            _ => Err(DbError::Codec("unknown commit message tag")),
        }
    }

    /// Decodes from a standalone frame (must be fully consumed — a frame
    /// is exactly one message).
    pub fn decode(bytes: &Bytes) -> DbResult<CommitMsg> {
        let mut buf = bytes.clone();
        let msg = Self::decode_from(&mut buf)?;
        if buf.remaining() != 0 {
            return Err(DbError::Codec("trailing bytes after commit message"));
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn sample_ops() -> Vec<PrepOp> {
        vec![
            PrepOp {
                table: TableId(2),
                tuple: Tuple::new(vec![Value::Int(41), Value::str("remote")]),
            },
            PrepOp {
                table: TableId(3),
                tuple: Tuple::new(vec![Value::Int(42), Value::Null]),
            },
        ]
    }

    fn sample_msgs() -> Vec<CommitMsg> {
        vec![
            CommitMsg::Prepare {
                txn: TxnId(7),
                coord: 1,
                ops: sample_ops(),
            },
            CommitMsg::Prepare {
                txn: TxnId(8),
                coord: 0,
                ops: Vec::new(),
            },
            CommitMsg::Vote {
                txn: TxnId(7),
                yes: true,
            },
            CommitMsg::Vote {
                txn: TxnId(7),
                yes: false,
            },
            CommitMsg::Decide {
                txn: TxnId(7),
                commit: true,
            },
            CommitMsg::Decide {
                txn: TxnId(9),
                commit: false,
            },
            CommitMsg::DecideAck { txn: TxnId(7) },
            CommitMsg::DecideQuery { txn: TxnId(9) },
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        for msg in sample_msgs() {
            let enc = msg.encode();
            assert_eq!(CommitMsg::decode(&enc).unwrap(), msg);
        }
    }

    #[test]
    fn every_strict_prefix_is_rejected() {
        for msg in sample_msgs() {
            let enc = msg.encode();
            for cut in 0..enc.len() {
                assert!(
                    CommitMsg::decode(&enc.slice(0..cut)).is_err(),
                    "prefix of {cut} bytes decoded for {msg:?}"
                );
            }
        }
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_are_rejected() {
        let enc = CommitMsg::DecideAck { txn: TxnId(1) }.encode();
        let mut bad_tag = enc.chunk().to_vec();
        bad_tag[0] = 0x7F;
        assert_eq!(
            CommitMsg::decode(&Bytes::copy_from_slice(&bad_tag)),
            Err(DbError::Codec("unknown commit message tag"))
        );
        let mut trailing = enc.chunk().to_vec();
        trailing.push(0);
        assert_eq!(
            CommitMsg::decode(&Bytes::copy_from_slice(&trailing)),
            Err(DbError::Codec("trailing bytes after commit message"))
        );
    }

    #[test]
    fn bogus_bool_bytes_are_codec_errors() {
        let vote = CommitMsg::Vote {
            txn: TxnId(1),
            yes: true,
        }
        .encode();
        let mut corrupt = vote.chunk().to_vec();
        *corrupt.last_mut().unwrap() = 2;
        assert_eq!(
            CommitMsg::decode(&Bytes::copy_from_slice(&corrupt)),
            Err(DbError::Codec("commit vote flag corrupt"))
        );
        let decide = CommitMsg::Decide {
            txn: TxnId(1),
            commit: false,
        }
        .encode();
        let mut corrupt = decide.chunk().to_vec();
        *corrupt.last_mut().unwrap() = 0xFF;
        assert_eq!(
            CommitMsg::decode(&Bytes::copy_from_slice(&corrupt)),
            Err(DbError::Codec("commit decide flag corrupt"))
        );
    }

    #[test]
    fn corrupt_op_count_is_rejected_without_allocating() {
        // A prepare claiming 2^30 staged ops with a near-empty body must
        // fail fast on the count bound, not attempt a giant reservation.
        let mut buf = BytesMut::new();
        buf.put_u8(MSG_COMMIT_PREPARE);
        buf.put_u64(1); // txn
        buf.put_u32(0); // coord
        buf.put_u32(1 << 30); // op count
        buf.put_u8(0);
        assert_eq!(
            CommitMsg::decode(&buf.freeze()),
            Err(DbError::Codec("prep op count exceeds payload"))
        );
    }
}
