//! Dynamically typed datums.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::error::{DbError, DbResult};
use crate::schema::DataType;

/// A single column value.
///
/// Strings are reference counted so that cloning tuples while routing them
/// through data streams does not copy payload bytes (the guide's advice on
/// avoiding hot-path allocations).
#[derive(Clone, PartialEq)]
pub enum Value {
    /// 64-bit signed integer. Also used for dates encoded as `yyyymmdd`.
    Int(i64),
    /// 64-bit float, used for money amounts (like DBx1000 does).
    Float(f64),
    /// UTF-8 string.
    Str(Arc<str>),
    /// Null / absent.
    Null,
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The runtime type of this value; `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Null => None,
        }
    }

    /// Extracts an integer, erroring on other types.
    #[inline]
    pub fn as_int(&self) -> DbResult<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            _ => Err(DbError::TypeMismatch("expected Int")),
        }
    }

    /// Extracts a float; integers widen losslessly.
    #[inline]
    pub fn as_float(&self) -> DbResult<f64> {
        match self {
            Value::Float(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            _ => Err(DbError::TypeMismatch("expected Float")),
        }
    }

    /// Extracts a string slice, erroring on other types.
    #[inline]
    pub fn as_str(&self) -> DbResult<&str> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err(DbError::TypeMismatch("expected Str")),
        }
    }

    /// True if the value is SQL NULL.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Approximate in-memory/wire size in bytes, used by the simulated
    /// network to model transfer cost of data-stream items.
    #[inline]
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Int(_) => 9,
            Value::Float(_) => 9,
            Value::Str(s) => 5 + s.len(),
            Value::Null => 1,
        }
    }

    /// Total order used by sort/merge operators: Null < Int/Float < Str;
    /// numeric values compare numerically across Int/Float.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Str(_), _) => Ordering::Greater,
            (_, Str(_)) => Ordering::Less,
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v:.2}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.into_boxed_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int().unwrap(), 5);
        assert_eq!(Value::Int(5).as_float().unwrap(), 5.0);
        assert_eq!(Value::Float(2.5).as_float().unwrap(), 2.5);
        assert_eq!(Value::str("ab").as_str().unwrap(), "ab");
        assert!(Value::Null.is_null());
        assert!(Value::str("x").as_int().is_err());
        assert!(Value::Int(1).as_str().is_err());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3u32), Value::Int(3));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
        assert_eq!(Value::from("hi"), Value::str("hi"));
        assert_eq!(Value::from(String::from("hi")), Value::str("hi"));
    }

    #[test]
    fn total_order() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Null.total_cmp(&Value::Int(0)), Less);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Less);
        assert_eq!(Value::Float(3.0).total_cmp(&Value::Int(3)), Equal);
        assert_eq!(Value::str("b").total_cmp(&Value::str("a")), Greater);
        assert_eq!(Value::str("a").total_cmp(&Value::Int(9)), Greater);
    }

    #[test]
    fn wire_size_accounts_for_payload() {
        assert_eq!(Value::Int(1).wire_size(), 9);
        assert_eq!(Value::Null.wire_size(), 1);
        assert_eq!(Value::str("abcd").wire_size(), 9);
    }

    #[test]
    fn clone_is_cheap_for_strings() {
        let v = Value::str("payload");
        let w = v.clone();
        match (&v, &w) {
            (Value::Str(a), Value::Str(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => unreachable!(),
        }
    }
}
