//! Lightweight performance metrics: throughput counters and log-bucketed
//! latency histograms.
//!
//! The benchmark harnesses (Figures 1, 5, 6) read these to print the same
//! series the paper reports. Everything is lock-free so that recording a
//! commit from inside an AC's hot loop costs one relaxed atomic increment.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotone event counter (e.g. committed transactions).
#[derive(Debug, Default)]
pub struct Counter {
    count: AtomicU64,
}

impl Counter {
    /// New counter at zero.
    pub const fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Resets to zero, returning the previous value.
    pub fn take(&self) -> u64 {
        self.count.swap(0, Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` nanoseconds; bucket 63 is the overflow bucket.
const BUCKETS: usize = 64;

/// A concurrent latency histogram with power-of-two nanosecond buckets.
///
/// Percentile queries are approximate (bucket upper bound) which is plenty
/// for reporting benchmark latency distributions.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let ns = d.as_nanos().min(u64::MAX as u128) as u64;
        let bucket = if ns == 0 {
            0
        } else {
            (63 - ns.leading_zeros() as usize).min(BUCKETS - 1)
        };
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Mean latency, or zero if empty.
    pub fn mean(&self) -> Duration {
        let count = self.count();
        if count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sum_ns.load(Ordering::Relaxed) / count)
    }

    /// Approximate percentile (`p` in `[0, 100]`) as the upper bound of the
    /// bucket containing the p-th sample.
    pub fn percentile(&self, p: f64) -> Duration {
        let count = self.count();
        if count == 0 {
            return Duration::ZERO;
        }
        let target = ((p / 100.0) * count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                let upper = if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
                return Duration::from_nanos(upper);
            }
        }
        Duration::from_nanos(u64::MAX)
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Histogram(n={}, mean={:?}, p50={:?}, p99={:?})",
            self.count(),
            self.mean(),
            self.percentile(50.0),
            self.percentile(99.0)
        )
    }
}

/// Generates a flat counter-snapshot struct: every field a `u64`, with
/// saturating [`merge`], declaration-ordered [`fields`], and a one-line
/// non-zero [`report`]. [`RobustSnapshot`] (fault/replication/2PC
/// counters) and [`LoadSnapshot`] (the morph controller's load signals)
/// are both instances, so tests and reports treat them uniformly.
macro_rules! counter_snapshot {
    (
        $(#[$sdoc:meta])*
        $name:ident { $($(#[$doc:meta])* $field:ident,)* }
    ) => {
        $(#[$sdoc])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
        pub struct $name {
            $($(#[$doc])* pub $field: u64,)*
        }

        impl $name {
            /// Accumulates `other` into `self`, field by field (saturating,
            /// so merged reports can never wrap).
            pub fn merge(&mut self, other: &$name) {
                $(self.$field = self.$field.saturating_add(other.$field);)*
            }

            /// Every field as a `(name, value)` pair, in declaration order.
            pub fn fields(&self) -> Vec<(&'static str, u64)> {
                vec![$((stringify!($field), self.$field)),*]
            }

            /// A compact one-line report of the non-zero counters, e.g.
            /// `"frames_dropped=12 retry_attempts=3"`. Empty string when
            /// nothing fired.
            pub fn report(&self) -> String {
                self.fields()
                    .into_iter()
                    .filter(|&(_, v)| v != 0)
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            }
        }
    };
}

counter_snapshot! {
    /// A uniform snapshot of every robustness counter in the system:
    /// link fault injection, remote-scan serving and retry, WAL
    /// replication, and two-phase commit. Each subsystem converts its
    /// own metrics type into one of these (`FaultStats::snapshot`,
    /// `ReplMetrics::snapshot`, ...); chaos tests [`merge`] them and
    /// assert on one struct instead of plumbing several.
    ///
    /// [`merge`]: RobustSnapshot::merge
    RobustSnapshot {
    /// Frames a faulty link delivered (possibly delayed).
    frames_delivered,
    /// Frames a faulty link silently dropped.
    frames_dropped,
    /// Frames a faulty link delayed by an injected spike.
    frames_delayed,
    /// Sends refused by a cut link.
    sends_refused,
    /// Scan replies served by a storage AC.
    scans_served,
    /// Scan reply frames dropped server-side before sending.
    scan_frames_dropped,
    /// Scan error replies sent instead of data.
    scan_error_replies,
    /// Remote-scan request attempts issued (first tries + retries).
    retry_attempts,
    /// Remote-scan attempts that hit the per-attempt deadline.
    retry_timeouts,
    /// Remote-scan attempts abandoned mid-stream (torn reply set).
    retry_incomplete,
    /// Remote-scan requests that exhausted every attempt.
    retries_exhausted,
    /// Transactions committed through a replicated primary.
    repl_commits,
    /// WAL record batches shipped primary → follower.
    repl_batches_shipped,
    /// Follower acks processed by a primary.
    repl_acks,
    /// Heartbeats sent by primaries.
    repl_heartbeats,
    /// Catch-up requests served (joins, rejoins, gap repairs).
    repl_catchups,
    /// LSN gaps a follower detected on its ship link.
    repl_gaps,
    /// Corrupt replication frames rejected by a follower.
    repl_corrupt_frames,
    /// Follower promotions (lease expiries acted on).
    repl_promotions,
    /// 2PC prepares sent by coordinators.
    twopc_prepares,
    /// 2PC no-votes received (staging refused somewhere).
    twopc_votes_no,
    /// 2PC commit decisions logged.
    twopc_commits,
    /// 2PC abort decisions logged.
    twopc_aborts,
    /// 2PC protocol frames retransmitted (lost or unacked).
    twopc_retransmits,
    /// Decision queries answered for in-doubt participants.
    twopc_decide_queries,
    /// In-doubt transactions resolved by the presumed-abort rule.
    twopc_presumed_aborts,
    /// Corrupt 2PC frames rejected by a shard node.
    twopc_corrupt_frames,
    }
}

counter_snapshot! {
    /// One observation window of the load signals the system already
    /// collects — queue-depth mirrors, completion counts, the OLTP/OLAP
    /// mix — in the same flat-counter shape as [`RobustSnapshot`], so
    /// windows [`merge`] into longer horizons and report uniformly.
    ///
    /// Drivers build one per transaction window and feed it to the morph
    /// controller (`anydb_core::morph`); derived signals like
    /// [`hot_share`] and [`olap_fraction`] are computed on the merged
    /// counters, never sampled separately, so a snapshot carried across a
    /// thread or merged over a phase cannot disagree with itself.
    ///
    /// [`merge`]: LoadSnapshot::merge
    /// [`hot_share`]: LoadSnapshot::hot_share
    /// [`olap_fraction`]: LoadSnapshot::olap_fraction
    LoadSnapshot {
    /// Transactions committed during the window.
    oltp_committed,
    /// OLAP queries completed during the window.
    olap_completed,
    /// OLAP queries admitted (sent into an admission window).
    olap_admitted,
    /// Transaction windows this snapshot covers.
    windows,
    /// Queue-depth sampling rounds taken (one round reads every AC's
    /// depth mirror once).
    depth_samples,
    /// Backlog attributable to the hottest home partition, summed over
    /// sampling rounds. Under home-warehouse routing this is just the
    /// deepest single-AC queue; samplers running decomposed strategies
    /// attribute the (stage-spread) backlog back to home partitions so
    /// the skew signal stays comparable across execution strategies.
    depth_hot,
    /// Backlog across all ACs, summed over sampling rounds.
    depth_total,
    }
}

impl LoadSnapshot {
    /// The hottest AC's share of the total queued backlog, the skew
    /// signal: ~1.0 when one AC owns every queued event (a skewed phase
    /// routed shared-nothing), ~1/n under uniform routing. `None` when no
    /// backlog was observed — an empty queue says the current plan keeps
    /// up, not that the load is uniform.
    pub fn hot_share(&self) -> Option<f64> {
        if self.depth_total == 0 {
            None
        } else {
            Some(self.depth_hot as f64 / self.depth_total as f64)
        }
    }

    /// Fraction of completed work that was analytical, in `[0, 1]`; 0.0
    /// when nothing completed.
    pub fn olap_fraction(&self) -> f64 {
        let total = self.olap_completed + self.oltp_committed;
        if total == 0 {
            0.0
        } else {
            self.olap_completed as f64 / total as f64
        }
    }

    /// Mean total backlog per sampling round; 0.0 with no samples.
    pub fn mean_backlog(&self) -> f64 {
        if self.depth_samples == 0 {
            0.0
        } else {
            self.depth_total as f64 / self.depth_samples as f64
        }
    }
}

/// Measures throughput over a window: `tx/s = taken / elapsed`.
#[derive(Debug)]
pub struct ThroughputWindow {
    started: Instant,
}

impl Default for ThroughputWindow {
    fn default() -> Self {
        Self::new()
    }
}

impl ThroughputWindow {
    /// Opens a window starting now.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
        }
    }

    /// Closes the window: given an event count, returns events/second and
    /// restarts the window.
    pub fn rate(&mut self, events: u64) -> f64 {
        let elapsed = self.started.elapsed();
        self.started = Instant::now();
        if elapsed.is_zero() {
            return 0.0;
        }
        events as f64 / elapsed.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.take(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_counts_and_mean() {
        let h = Histogram::new();
        h.record(Duration::from_nanos(100));
        h.record(Duration::from_nanos(300));
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), Duration::from_nanos(200));
    }

    #[test]
    fn histogram_percentiles_monotone() {
        let h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(Duration::from_nanos(i * 1000));
        }
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        assert!(p50 <= p99);
        assert!(p50 >= Duration::from_nanos(1000));
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.percentile(99.0), Duration::ZERO);
    }

    #[test]
    fn histogram_zero_duration_sample() {
        let h = Histogram::new();
        h.record(Duration::ZERO);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn throughput_window_produces_positive_rate() {
        let mut w = ThroughputWindow::new();
        std::thread::sleep(Duration::from_millis(5));
        let r = w.rate(100);
        assert!(r > 0.0);
        assert!(r < 100.0 / 0.004);
    }

    #[test]
    fn robust_snapshot_merge_and_report() {
        let mut a = RobustSnapshot {
            frames_dropped: 2,
            retry_attempts: 1,
            ..Default::default()
        };
        let b = RobustSnapshot {
            frames_dropped: 3,
            twopc_presumed_aborts: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.frames_dropped, 5);
        assert_eq!(a.retry_attempts, 1);
        assert_eq!(a.twopc_presumed_aborts, 1);
        assert_eq!(
            a.report(),
            "frames_dropped=5 retry_attempts=1 twopc_presumed_aborts=1"
        );
        assert_eq!(RobustSnapshot::default().report(), "");
    }

    #[test]
    fn robust_snapshot_merge_saturates() {
        let mut a = RobustSnapshot {
            repl_commits: u64::MAX - 1,
            ..Default::default()
        };
        a.merge(&a.clone());
        assert_eq!(a.repl_commits, u64::MAX);
    }

    #[test]
    fn load_snapshot_merge_and_report() {
        let mut a = LoadSnapshot {
            oltp_committed: 100,
            depth_samples: 1,
            depth_hot: 8,
            depth_total: 8,
            windows: 1,
            ..Default::default()
        };
        let b = LoadSnapshot {
            oltp_committed: 50,
            olap_completed: 10,
            depth_samples: 1,
            depth_hot: 2,
            depth_total: 8,
            windows: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.oltp_committed, 150);
        assert_eq!(a.olap_completed, 10);
        assert_eq!(a.depth_samples, 2);
        assert_eq!(a.depth_hot, 10);
        assert_eq!(a.depth_total, 16);
        assert_eq!(
            a.report(),
            "oltp_committed=150 olap_completed=10 windows=2 \
             depth_samples=2 depth_hot=10 depth_total=16"
        );
        assert_eq!(LoadSnapshot::default().report(), "");
    }

    #[test]
    fn load_snapshot_merge_saturates() {
        let mut a = LoadSnapshot {
            depth_total: u64::MAX - 1,
            ..Default::default()
        };
        a.merge(&a.clone());
        assert_eq!(a.depth_total, u64::MAX);
    }

    #[test]
    fn load_snapshot_derived_signals() {
        // No backlog observed: the skew signal is absent, not zero.
        assert_eq!(LoadSnapshot::default().hot_share(), None);
        assert_eq!(LoadSnapshot::default().olap_fraction(), 0.0);
        assert_eq!(LoadSnapshot::default().mean_backlog(), 0.0);

        let skewed = LoadSnapshot {
            depth_hot: 32,
            depth_total: 32,
            depth_samples: 2,
            ..Default::default()
        };
        assert_eq!(skewed.hot_share(), Some(1.0));
        assert_eq!(skewed.mean_backlog(), 16.0);

        let uniform = LoadSnapshot {
            depth_hot: 8,
            depth_total: 32,
            depth_samples: 1,
            ..Default::default()
        };
        assert_eq!(uniform.hot_share(), Some(0.25));

        let htap = LoadSnapshot {
            oltp_committed: 75,
            olap_completed: 25,
            ..Default::default()
        };
        assert!((htap.olap_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn counter_is_sync_across_threads() {
        let c = std::sync::Arc::new(Counter::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.incr();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }
}
