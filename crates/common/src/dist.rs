//! Random distributions used by the workload generators.
//!
//! * [`Zipf`] — Zipfian distribution (YCSB-style, zeta-based) for skewed
//!   access patterns,
//! * [`HotSpot`] — a simpler "x% of accesses hit the first item" skew used
//!   to model the paper's "100% of payments operate on one warehouse",
//! * [`NuRand`] — TPC-C's non-uniform random function for customer ids and
//!   item ids.

use rand::Rng;

/// Zipfian distribution over `0..n` with skew parameter `theta` in `[0, 1)`.
///
/// Uses the Gray et al. quick method popularised by YCSB: constants are
/// precomputed once, sampling is O(1).
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Creates a Zipfian distribution over `0..n`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is outside `[0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf domain must be non-empty");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        let mut sum = 0.0;
        for i in 1..=n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        sum
    }

    /// Domain size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Samples a value in `0..n`; `0` is the most popular item.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.random();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5_f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }
}

/// Hot-spot distribution: with probability `hot_prob` the sample falls
/// uniformly in the first `hot_items` of the domain, otherwise uniformly in
/// the remainder (or the whole domain if `hot_items == n`).
#[derive(Debug, Clone, Copy)]
pub struct HotSpot {
    n: u64,
    hot_items: u64,
    hot_prob: f64,
}

impl HotSpot {
    /// Creates a hot-spot distribution over `0..n`.
    ///
    /// # Panics
    /// Panics on an empty domain, `hot_items` > `n`, or `hot_prob` outside
    /// `[0, 1]`.
    pub fn new(n: u64, hot_items: u64, hot_prob: f64) -> Self {
        assert!(n > 0);
        assert!(hot_items <= n && hot_items > 0);
        assert!((0.0..=1.0).contains(&hot_prob));
        Self {
            n,
            hot_items,
            hot_prob,
        }
    }

    /// Uniform distribution (no skew).
    pub fn uniform(n: u64) -> Self {
        Self::new(n, n, 1.0)
    }

    /// Fully skewed: every sample hits item 0 — the paper's "100% of TPC-C
    /// payment transactions operate on one warehouse only".
    pub fn single(n: u64) -> Self {
        Self::new(n, 1, 1.0)
    }

    /// Samples from the distribution.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        if self.hot_items == self.n {
            return rng.random_range(0..self.n);
        }
        if rng.random_bool(self.hot_prob) {
            rng.random_range(0..self.hot_items)
        } else {
            rng.random_range(self.hot_items..self.n)
        }
    }
}

/// TPC-C NURand(A, x, y): non-uniform random over `[x, y]`.
///
/// `c` is the per-run constant required by TPC-C §2.1.6; callers fix it at
/// load time so the same distribution is used by loader and terminals.
#[derive(Debug, Clone, Copy)]
pub struct NuRand {
    a: u64,
    x: u64,
    y: u64,
    c: u64,
}

impl NuRand {
    /// Creates a NURand generator; `a` must be 255, 1023 or 8191 per spec.
    pub fn new(a: u64, x: u64, y: u64, c: u64) -> Self {
        debug_assert!(matches!(a, 255 | 1023 | 8191));
        debug_assert!(x <= y);
        Self { a, x, y, c }
    }

    /// The standard generator for customer ids (1..=3000).
    pub fn customer_id(c: u64) -> Self {
        Self::new(1023, 1, 3000, c)
    }

    /// The standard generator for item ids (1..=100000).
    pub fn item_id(c: u64) -> Self {
        Self::new(8191, 1, 100_000, c)
    }

    /// The standard generator for customer last names (0..=999).
    pub fn last_name(c: u64) -> Self {
        Self::new(255, 0, 999, c)
    }

    /// Samples a value in `[x, y]`.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        let part_a = rng.random_range(0..=self.a);
        let part_b = rng.random_range(self.x..=self.y);
        (((part_a | part_b) + self.c) % (self.y - self.x + 1)) + self.x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_respects_bounds() {
        let z = Zipf::new(100, 0.9);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn zipf_is_skewed_toward_zero() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(2);
        let mut zero_hits = 0;
        const SAMPLES: usize = 20_000;
        for _ in 0..SAMPLES {
            if z.sample(&mut rng) == 0 {
                zero_hits += 1;
            }
        }
        // With theta=0.99 over 1000 items, item 0 gets far more than the
        // uniform share of 0.1%.
        assert!(
            zero_hits as f64 / SAMPLES as f64 > 0.05,
            "zero_hits = {zero_hits}"
        );
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((2_500..=7_500).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    fn hotspot_single_always_hits_zero() {
        let h = HotSpot::single(64);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert_eq!(h.sample(&mut rng), 0);
        }
    }

    #[test]
    fn hotspot_uniform_covers_domain() {
        let h = HotSpot::uniform(4);
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[h.sample(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn hotspot_probability_is_respected() {
        let h = HotSpot::new(100, 10, 0.9);
        let mut rng = StdRng::seed_from_u64(6);
        let mut hot = 0usize;
        const SAMPLES: usize = 20_000;
        for _ in 0..SAMPLES {
            if h.sample(&mut rng) < 10 {
                hot += 1;
            }
        }
        let frac = hot as f64 / SAMPLES as f64;
        assert!((0.85..=0.95).contains(&frac), "hot fraction {frac}");
    }

    #[test]
    fn nurand_respects_bounds() {
        let n = NuRand::customer_id(123);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = n.sample(&mut rng);
            assert!((1..=3000).contains(&v));
        }
    }

    #[test]
    fn nurand_last_name_bounds() {
        let n = NuRand::last_name(77);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..10_000 {
            assert!(n.sample(&mut rng) <= 999);
        }
    }
}
