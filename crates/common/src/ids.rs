//! Strongly typed identifiers used throughout the system.
//!
//! All identifiers are thin `u32`/`u64` newtypes. They exist so that a
//! partition id cannot accidentally be passed where a table id is expected,
//! which matters in a system whose whole point is routing things around.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $inner:ty) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw integer value.
            #[inline]
            pub const fn raw(self) -> $inner {
                self.0
            }

            /// Returns the id as a `usize`, for indexing into vectors.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<$inner> for $name {
            #[inline]
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }
    };
}

define_id!(
    /// Identifies one AnyComponent (AC) in the running system.
    AcId,
    u32
);
define_id!(
    /// Identifies a (simulated) server hosting a group of ACs.
    ServerId,
    u32
);
define_id!(
    /// Identifies a table in the catalog.
    TableId,
    u32
);
define_id!(
    /// Identifies a horizontal partition of a table (e.g. a TPC-C warehouse).
    PartitionId,
    u32
);
define_id!(
    /// Identifies a transaction. Monotonically increasing per client.
    TxnId,
    u64
);
define_id!(
    /// Identifies a query (OLAP) instance.
    QueryId,
    u64
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_raw() {
        assert_eq!(AcId(7).raw(), 7);
        assert_eq!(TxnId(u64::MAX).raw(), u64::MAX);
        assert_eq!(PartitionId::from(3u32), PartitionId(3));
    }

    #[test]
    fn ids_format() {
        assert_eq!(format!("{:?}", AcId(2)), "AcId(2)");
        assert_eq!(format!("{}", ServerId(4)), "4");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(TxnId(1) < TxnId(2));
        let mut v = vec![PartitionId(3), PartitionId(1), PartitionId(2)];
        v.sort();
        assert_eq!(v, vec![PartitionId(1), PartitionId(2), PartitionId(3)]);
    }

    #[test]
    fn ids_index() {
        let slots = ["a", "b", "c"];
        assert_eq!(slots[AcId(1).index()], "b");
    }
}
