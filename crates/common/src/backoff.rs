//! Escalating backoff for polling loops.
//!
//! The reproduction host may have very few cores (CI boxes often have 2),
//! so every polling loop in the system — AC event loops, idle transaction
//! executors, blocking queue receives — must escalate from spinning to
//! yielding to sleeping instead of burning a core. Busy-waiting one
//! component's loop would otherwise starve the component doing real work
//! and invert every experiment's results.

use std::time::Duration;

/// Escalating backoff: spin, then yield, then sleep.
#[derive(Debug, Clone)]
pub struct Backoff {
    step: u32,
    spin_limit: u32,
    yield_limit: u32,
    sleep: Duration,
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

impl Backoff {
    /// Default tuning: 64 spins, 16 yields, then 50µs sleeps.
    pub fn new() -> Self {
        Self::with_limits(64, 16, Duration::from_micros(50))
    }

    /// Custom tuning.
    pub fn with_limits(spin_limit: u32, yield_limit: u32, sleep: Duration) -> Self {
        Self {
            step: 0,
            spin_limit,
            yield_limit,
            sleep,
        }
    }

    /// Waits one escalation step.
    #[inline]
    pub fn wait(&mut self) {
        if self.step < self.spin_limit {
            std::hint::spin_loop();
        } else if self.step < self.spin_limit + self.yield_limit {
            std::thread::yield_now();
        } else {
            std::thread::sleep(self.sleep);
        }
        self.step = self.step.saturating_add(1);
    }

    /// Resets after useful work was found.
    #[inline]
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// True once the backoff has escalated past spinning (useful for
    /// "still idle?" heuristics).
    pub fn is_parked(&self) -> bool {
        self.step >= self.spin_limit + self.yield_limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_and_resets() {
        let mut b = Backoff::with_limits(2, 2, Duration::from_micros(1));
        assert!(!b.is_parked());
        for _ in 0..4 {
            b.wait();
        }
        assert!(b.is_parked());
        b.reset();
        assert!(!b.is_parked());
    }

    #[test]
    fn parked_backoff_sleeps() {
        let mut b = Backoff::with_limits(0, 0, Duration::from_millis(2));
        let start = std::time::Instant::now();
        b.wait();
        assert!(start.elapsed() >= Duration::from_millis(1));
    }
}
