//! # anydb-common
//!
//! Foundational types shared by every crate of the AnyDB reproduction:
//!
//! * [`value`] — dynamically typed datums stored in tuples,
//! * [`schema`] — table schemas and column metadata,
//! * [`tuple`] — row representation plus a compact binary wire encoding
//!   used by data streams,
//! * [`column`] — columnar (struct-of-arrays) batches with pushdown
//!   predicates and a one-tag-per-column wire encoding for OLAP streams,
//! * [`rid`] — record identifiers (partition, slot),
//! * [`scan`] — the remote scan wire protocol: pushed-down scan requests
//!   and certified columnar replies,
//! * [`repl`] — WAL records and the replication wire protocol that ships
//!   them from a primary storage AC to its follower,
//! * [`commit`] — the two-phase-commit wire protocol that makes
//!   cross-shard transactions atomic over modeled links,
//! * [`ids`] — strongly typed identifiers used across the system,
//! * [`fxmap`] — FxHash-style fast hash maps for hot lookup paths,
//! * [`dist`] — Zipfian / hot-spot / NURand distributions for workloads,
//! * [`metrics`] — throughput counters and latency histograms,
//! * [`error`] — the common error type.
//!
//! The crate is dependency-light on purpose: everything downstream (storage,
//! streams, transactions, the AnyDB core) builds on these definitions.

pub mod backoff;
pub mod column;
pub mod commit;
pub mod dist;
pub mod error;
pub mod fxmap;
pub mod ids;
pub mod metrics;
pub mod repl;
pub mod rid;
pub mod scan;
pub mod schema;
pub mod tuple;
pub mod value;

pub use column::{bitmap_ones, ColPredicate, Column, ColumnBatch, ColumnStore};
pub use commit::{CommitMsg, PrepOp};
pub use error::{DbError, DbResult};
pub use ids::{AcId, PartitionId, QueryId, ServerId, TableId, TxnId};
pub use metrics::RobustSnapshot;
pub use repl::{LogOp, LogRecord, ReplMsg};
pub use rid::Rid;
pub use scan::{ScanError, ScanReply, ScanRequest, ScanSnapshot};
pub use schema::{ColumnDef, DataType, Schema};
pub use tuple::Tuple;
pub use value::Value;
