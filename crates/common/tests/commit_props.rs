//! Property tests hardening the cross-shard commit codec the way the
//! WAL and scan codecs are hardened (`wal_props.rs` conventions): every
//! message roundtrips exactly, *no* strict prefix decodes, and no
//! bit-flip may ever panic the decoder. A shard node decodes whatever
//! bytes a faulty inter-shard link delivers; its only defenses are
//! `DbError::Codec` rejections.

use anydb_common::commit::{CommitMsg, PrepOp};
use anydb_common::{DbError, TableId, Tuple, TxnId, Value};
use bytes::{Buf, Bytes};
use proptest::prelude::*;

/// Builds one message whose variant and payload shape are driven by
/// `shape_seed`, mixing all five tags, empty and multi-op prepares, and
/// both bool polarities.
fn build_msg(shape_seed: u64) -> CommitMsg {
    let txn = TxnId(shape_seed % 11);
    match shape_seed % 6 {
        0 | 1 => {
            let n = (shape_seed / 6) as usize % 4;
            let ops = (0..n)
                .map(|i| PrepOp {
                    table: TableId((i % 3) as u32),
                    tuple: Tuple::new(vec![
                        Value::Int(shape_seed as i64 ^ i as i64),
                        if i.is_multiple_of(2) {
                            Value::str("line")
                        } else {
                            Value::Null
                        },
                    ]),
                })
                .collect();
            CommitMsg::Prepare {
                txn,
                coord: (shape_seed % 5) as u32,
                ops,
            }
        }
        2 => CommitMsg::Vote {
            txn,
            yes: shape_seed.is_multiple_of(2),
        },
        3 => CommitMsg::Decide {
            txn,
            commit: shape_seed.is_multiple_of(2),
        },
        4 => CommitMsg::DecideAck { txn },
        _ => CommitMsg::DecideQuery { txn },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Encode/decode is lossless for arbitrary message shapes.
    #[test]
    fn commit_messages_roundtrip(shape in any::<u64>()) {
        let msg = build_msg(shape);
        prop_assert_eq!(CommitMsg::decode(&msg.encode()).unwrap(), msg);
    }

    /// Every strict prefix of an encoded message is rejected with an
    /// error — never a panic, never a silent partial parse.
    #[test]
    fn every_strict_prefix_is_rejected(shape in any::<u64>()) {
        let bytes = build_msg(shape).encode();
        for cut in 0..bytes.len() {
            prop_assert!(
                CommitMsg::decode(&bytes.slice(0..cut)).is_err(),
                "prefix of {} bytes decoded",
                cut
            );
        }
    }

    /// Single-byte corruption anywhere in a frame either still decodes
    /// (the flipped byte was payload, e.g. a txn id bit) or is rejected
    /// with a `DbError::Codec` — it never panics the decoder. Flips
    /// landing on the tag byte cover the unknown-tag space; flips on a
    /// bool byte cover the strict 0/1 check.
    #[test]
    fn bitflips_never_panic(shape in any::<u64>(), pos_seed in any::<u64>(), flip in 1u8..=255) {
        let bytes = build_msg(shape).encode();
        let pos = (pos_seed as usize) % bytes.len();
        let mut fuzzed = bytes.chunk().to_vec();
        fuzzed[pos] ^= flip;
        match CommitMsg::decode(&Bytes::copy_from_slice(&fuzzed)) {
            Ok(_) => {}
            Err(DbError::Codec(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other:?}"),
        }
    }

    /// Appending any byte to a well-formed frame is rejected: a frame is
    /// exactly one message, so trailing garbage means a framing bug
    /// upstream and must surface as corruption, not be ignored.
    #[test]
    fn trailing_bytes_are_rejected(shape in any::<u64>(), extra in any::<u8>()) {
        let bytes = build_msg(shape).encode();
        let mut long = bytes.chunk().to_vec();
        long.push(extra);
        prop_assert_eq!(
            CommitMsg::decode(&Bytes::copy_from_slice(&long)),
            Err(DbError::Codec("trailing bytes after commit message"))
        );
    }
}
