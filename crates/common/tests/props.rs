//! Property tests for distributions, metrics, and the codec substrate.

use anydb_common::dist::{HotSpot, NuRand, Zipf};
use anydb_common::metrics::Histogram;
use anydb_common::{ColumnBatch, DataType, Rid, Tuple, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Zipf samples always stay inside the domain, for any (n, theta).
    #[test]
    fn zipf_stays_in_domain(n in 1u64..5_000, theta in 0.0f64..0.999, seed in any::<u64>()) {
        let z = Zipf::new(n, theta);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Hot-spot samples stay inside the domain and respect the hot set
    /// when the probability is 1.
    #[test]
    fn hotspot_stays_in_domain(n in 1u64..1_000, hot in 1u64..1_000, seed in any::<u64>()) {
        let hot = hot.min(n);
        let h = HotSpot::new(n, hot, 1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(h.sample(&mut rng) < hot.max(1));
        }
    }

    /// NURand respects its [x, y] bounds for all spec constants.
    #[test]
    fn nurand_stays_in_bounds(c in any::<u64>(), seed in any::<u64>()) {
        for (a, x, y) in [(255u64, 0u64, 999u64), (1023, 1, 3000), (8191, 1, 100_000)] {
            let n = NuRand::new(a, x, y, c);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..100 {
                let v = n.sample(&mut rng);
                prop_assert!((x..=y).contains(&v));
            }
        }
    }

    /// RID packing is a bijection.
    #[test]
    fn rid_pack_roundtrips(t in any::<u32>(), p in any::<u32>(), s in any::<u32>()) {
        use anydb_common::{PartitionId, TableId};
        let rid = Rid::new(TableId(t), PartitionId(p), s);
        prop_assert_eq!(Rid::unpack(rid.pack()), rid);
    }

    /// Histogram percentiles are monotone in p.
    #[test]
    fn histogram_percentiles_monotone(samples in prop::collection::vec(1u64..1_000_000, 1..100)) {
        let h = Histogram::new();
        for s in &samples {
            h.record(std::time::Duration::from_nanos(*s));
        }
        let p50 = h.percentile(50.0);
        let p90 = h.percentile(90.0);
        let p99 = h.percentile(99.0);
        prop_assert!(p50 <= p90);
        prop_assert!(p90 <= p99);
        prop_assert_eq!(h.count(), samples.len() as u64);
    }

    /// Projection then concat never panics and preserves arity sums.
    #[test]
    fn tuple_ops_compose(vals in prop::collection::vec(any::<i64>(), 1..8)) {
        let t = Tuple::new(vals.iter().copied().map(Value::Int).collect());
        let all: Vec<usize> = (0..t.arity()).collect();
        let projected = t.project(&all);
        prop_assert_eq!(&projected, &t);
        let doubled = t.concat(&projected);
        prop_assert_eq!(doubled.arity(), t.arity() * 2);
    }

    /// Row ↔ column conversion roundtrips for arbitrary schemas and
    /// values (all three types, nulls included).
    #[test]
    fn column_batch_roundtrips_rows(seed in any::<u64>(), cols in 1usize..6, rows in 0usize..24) {
        let (types, tuples) = arbitrary_columnar(seed, cols, rows);
        let batch = ColumnBatch::from_tuples(&types, &tuples).unwrap();
        prop_assert_eq!(batch.rows(), tuples.len());
        prop_assert_eq!(batch.to_tuples(), tuples);
    }

    /// The columnar wire codec roundtrips the same arbitrary batches.
    #[test]
    fn column_codec_roundtrips(seed in any::<u64>(), cols in 1usize..6, rows in 0usize..24) {
        let (types, tuples) = arbitrary_columnar(seed, cols, rows);
        let batch = ColumnBatch::from_tuples(&types, &tuples).unwrap();
        let enc = batch.encode();
        prop_assert_eq!(ColumnBatch::decode(&enc).unwrap(), batch);
    }

    /// Mirrors `tuple.rs::decode_rejects_truncation` for the columnar
    /// codec: every strict prefix of a valid encoding must fail to
    /// decode, for arbitrary batches.
    #[test]
    fn column_codec_rejects_truncation(seed in any::<u64>(), cols in 1usize..5, rows in 0usize..12) {
        let (types, tuples) = arbitrary_columnar(seed, cols, rows);
        let batch = ColumnBatch::from_tuples(&types, &tuples).unwrap();
        let enc = batch.encode();
        for cut in 0..enc.len() {
            prop_assert!(
                ColumnBatch::decode(&enc.slice(0..cut)).is_err(),
                "decode succeeded at cut {} of {}", cut, enc.len()
            );
        }
    }

    /// Corrupting a column's tag byte to an unknown value must be
    /// rejected, never misinterpreted.
    #[test]
    fn column_codec_rejects_unknown_tags(seed in any::<u64>(), cols in 1usize..5, rows in 0usize..12, bad_tag in 4u8..255) {
        use bytes::Buf;
        let (types, tuples) = arbitrary_columnar(seed, cols, rows);
        let batch = ColumnBatch::from_tuples(&types, &tuples).unwrap();
        let mut enc = batch.encode().chunk().to_vec();
        // The first column's tag sits right after the 6-byte header.
        enc[6] = bad_tag;
        let corrupted = bytes::Bytes::copy_from_slice(&enc);
        prop_assert!(ColumnBatch::decode(&corrupted).is_err());
    }

    /// Zero-copy `slice` views are indistinguishable from materialized
    /// copies of the same rows: equal (logical `==` both ways), same
    /// tuples, and the same bytes on the wire.
    #[test]
    fn slice_views_equal_copying_semantics(
        seed in any::<u64>(), cols in 1usize..6, rows in 0usize..24,
        lo_frac in 0.0f64..1.0, hi_frac in 0.0f64..1.0,
    ) {
        let (types, tuples) = arbitrary_columnar(seed, cols, rows);
        let batch = ColumnBatch::from_tuples(&types, &tuples).unwrap();
        let (mut lo, mut hi) = (
            (lo_frac * rows as f64) as usize,
            (hi_frac * rows as f64) as usize,
        );
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        let view = batch.slice(lo, hi);
        let copy = ColumnBatch::from_tuples(&types, &tuples[lo..hi]).unwrap();
        prop_assert_eq!(&view, &copy);
        prop_assert_eq!(&copy, &view);
        prop_assert_eq!(view.to_tuples(), &tuples[lo..hi]);
        // A view encodes exactly like the copy would (nulls rebased, string
        // offsets rebased), so decode(encode(view)) == copy.
        prop_assert_eq!(ColumnBatch::decode(&view.encode()).unwrap(), copy);
    }

    /// Zero-copy `split` preserves the copying split's observable
    /// behavior: same part geometry, same rows in order, every part
    /// sharing the parent's buffers, and codec-roundtrippable.
    #[test]
    fn split_views_equal_copying_semantics(
        seed in any::<u64>(), cols in 1usize..5, rows in 0usize..40, batch_rows in 1usize..12,
    ) {
        let (types, tuples) = arbitrary_columnar(seed, cols, rows);
        let batch = ColumnBatch::from_tuples(&types, &tuples).unwrap();
        let parts = batch.clone().split(batch_rows);
        prop_assert_eq!(parts.len(), rows.div_ceil(batch_rows));
        let mut glued = Vec::new();
        for part in &parts {
            prop_assert!(part.rows() <= batch_rows);
            for (pc, bc) in part.columns().iter().zip(batch.columns()) {
                prop_assert!(pc.shares_buffer_with(bc), "split copied a buffer");
            }
            prop_assert_eq!(ColumnBatch::decode(&part.encode()).unwrap(), part.clone());
            glued.extend(part.to_tuples());
        }
        prop_assert_eq!(glued, tuples);
    }

    /// Mutating one split view never leaks into its siblings or the
    /// parent (copy-on-write isolation of shared buffers).
    #[test]
    fn split_views_are_isolated_on_write(
        seed in any::<u64>(), cols in 1usize..4, rows in 2usize..24,
    ) {
        let (types, tuples) = arbitrary_columnar(seed, cols, rows);
        let batch = ColumnBatch::from_tuples(&types, &tuples).unwrap();
        let batch_rows = (rows / 2).max(1);
        let mut parts = batch.clone().split(batch_rows);
        let victim = tuples[0].clone();
        parts[0].push_row(victim.values()).unwrap();
        // Parent and the other parts still glue back to the original.
        prop_assert_eq!(batch.to_tuples(), tuples.clone());
        let rest: Vec<_> = parts[1..].iter().flat_map(|p| p.to_tuples()).collect();
        prop_assert_eq!(rest, &tuples[batch_rows..]);
    }

    /// The predicate wire codec roundtrips arbitrary predicate trees and
    /// rejects every strict prefix.
    #[test]
    fn predicate_codec_roundtrips(seed in any::<u64>(), depth in 0usize..3) {
        use anydb_common::ColPredicate;
        let mut rng = StdRng::seed_from_u64(seed);
        let pred = arbitrary_predicate(&mut rng, depth);
        let enc = pred.encode();
        prop_assert_eq!(ColPredicate::decode(&enc).unwrap(), pred);
        for cut in 0..enc.len() {
            prop_assert!(ColPredicate::decode(&enc.slice(0..cut)).is_err());
        }
    }

    /// Vectorized select and row-at-a-time matches agree for arbitrary
    /// predicate trees over arbitrary batches.
    #[test]
    fn predicate_select_matches_rows(seed in any::<u64>(), cols in 1usize..5, rows in 0usize..24, depth in 0usize..3) {
        let (types, tuples) = arbitrary_columnar(seed, cols, rows);
        let batch = ColumnBatch::from_tuples(&types, &tuples).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let pred = arbitrary_predicate(&mut rng, depth);
        let mut sel = Vec::new();
        pred.select(&batch, &mut sel);
        let by_row: Vec<u32> = (0..rows)
            .filter(|&i| pred.matches_tuple(&tuples[i]))
            .map(|i| i as u32)
            .collect();
        prop_assert_eq!(sel, by_row);
    }

    /// The bitmap evaluator selects exactly the rows the appending
    /// evaluator selects, for arbitrary predicate trees over arbitrary
    /// batches (including out-of-range and mistyped columns).
    #[test]
    fn predicate_bitmap_select_matches_select(seed in any::<u64>(), cols in 1usize..5, rows in 0usize..80, depth in 0usize..3) {
        use anydb_common::bitmap_ones;
        let (types, tuples) = arbitrary_columnar(seed, cols, rows);
        let batch = ColumnBatch::from_tuples(&types, &tuples).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x515);
        let pred = arbitrary_predicate(&mut rng, depth);
        let mut sel = Vec::new();
        pred.select(&batch, &mut sel);
        let mut bits = Vec::new();
        pred.select_bitmap(&batch, &mut bits);
        let mut from_bits = Vec::new();
        bitmap_ones(&bits, &mut from_bits);
        prop_assert_eq!(from_bits, sel);
    }

    /// `covers` is a sound implication test: whenever it claims
    /// `p ⊇ q`, every row matching `q` matches `p`. (It is allowed to
    /// decline to claim — false negatives only cost a scan.)
    #[test]
    fn covers_implies_row_subset(seed in any::<u64>(), cols in 1usize..5, rows in 0usize..40, dp in 0usize..3, dq in 0usize..3) {
        let (_, tuples) = arbitrary_columnar(seed, cols, rows);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0E5);
        let p = arbitrary_predicate(&mut rng, dp);
        let q = arbitrary_predicate(&mut rng, dq);
        if p.covers(&q) {
            for t in &tuples {
                prop_assert!(
                    !q.matches_tuple(t) || p.matches_tuple(t),
                    "{:?} claims to cover {:?} but missed {:?}", p, q, t
                );
            }
        }
    }

    /// `union_hull(p, q)` covers every row matched by `p` or `q`, for
    /// arbitrary predicate pairs (oracle: row-wise `matches`), and the
    /// syntactic `covers` test agrees it covers both inputs.
    #[test]
    fn union_hull_covers_both_inputs(seed in any::<u64>(), cols in 1usize..5, rows in 0usize..40, dp in 0usize..3, dq in 0usize..3) {
        let (_, tuples) = arbitrary_columnar(seed, cols, rows);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4011);
        let p = arbitrary_predicate(&mut rng, dp);
        let q = arbitrary_predicate(&mut rng, dq);
        let hull = p.union_hull(&q);
        prop_assert!(hull.covers(&p), "{:?} must cover {:?}", hull, p);
        prop_assert!(hull.covers(&q), "{:?} must cover {:?}", hull, q);
        for t in &tuples {
            if p.matches_tuple(t) || q.matches_tuple(t) {
                prop_assert!(hull.matches_tuple(t), "{:?} missed a row of {:?} | {:?}", hull, p, q);
            }
        }
    }

    /// Refinement after a superset scan equals a direct scan: scanning
    /// with `union_hull(p, q)` and re-filtering the survivors with `p`
    /// yields exactly the rows a direct `p` scan yields — the invariant
    /// the shared-scan cache's superset serving and the shared Q3
    /// pipeline's fan-out both rest on.
    #[test]
    fn refine_after_superset_scan_equals_direct_scan(seed in any::<u64>(), cols in 1usize..5, rows in 0usize..40, dp in 0usize..3, dq in 0usize..3) {
        use anydb_common::bitmap_ones;
        let (types, tuples) = arbitrary_columnar(seed, cols, rows);
        let batch = ColumnBatch::from_tuples(&types, &tuples).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5CA9);
        let p = arbitrary_predicate(&mut rng, dp);
        let q = arbitrary_predicate(&mut rng, dq);
        let hull = p.union_hull(&q);
        let mut hull_sel = Vec::new();
        hull.select(&batch, &mut hull_sel);
        let superset = batch.take(&hull_sel);
        let mut bits = Vec::new();
        p.select_bitmap(&superset, &mut bits);
        let mut refine_sel = Vec::new();
        bitmap_ones(&bits, &mut refine_sel);
        let refined = superset.take(&refine_sel);
        let mut direct_sel = Vec::new();
        p.select(&batch, &mut direct_sel);
        let direct = batch.take(&direct_sel);
        prop_assert_eq!(refined, direct);
    }

    /// The scan-request wire codec roundtrips arbitrary requests (every
    /// flag combination, arbitrary predicate trees) and rejects every
    /// strict prefix of a valid encoding.
    #[test]
    fn scan_request_codec_roundtrips(
        seed in any::<u64>(), depth in 0usize..3, has_pred in any::<bool>(),
        part in proptest::option::of(0u32..16), nproj in 0usize..6,
        batch_rows in 0usize..512, shared in any::<bool>(),
    ) {
        use anydb_common::{PartitionId, ScanRequest};
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let req = ScanRequest {
            partition: part.map(PartitionId),
            proj: (0..nproj).map(|_| rng.random_range(0..32usize)).collect(),
            pred: has_pred.then(|| arbitrary_predicate(&mut rng, depth)),
            batch_rows,
            shared,
        };
        let enc = req.encode();
        prop_assert_eq!(ScanRequest::decode(&enc).unwrap(), req);
        for cut in 0..enc.len() {
            prop_assert!(
                ScanRequest::decode(&enc.slice(0..cut)).is_err(),
                "request decode succeeded at cut {} of {}", cut, enc.len()
            );
        }
    }

    /// Corrupting a scan request's message tag or setting an unknown
    /// flag bit must be rejected, never misinterpreted — the request
    /// comes off a wire from another AC.
    #[test]
    fn scan_request_codec_rejects_unknown_tags_and_flags(
        seed in any::<u64>(), depth in 0usize..3, tag_xor in 1u8..255, flag_bit in 3u32..8,
    ) {
        use anydb_common::ScanRequest;
        let mut rng = StdRng::seed_from_u64(seed);
        let req = ScanRequest {
            partition: None,
            proj: vec![0, 2],
            pred: Some(arbitrary_predicate(&mut rng, depth)),
            batch_rows: 64,
            shared: true,
        };
        use bytes::Buf;
        let mut enc = req.encode().chunk().to_vec();
        enc[0] ^= tag_xor;
        prop_assert!(ScanRequest::decode(&bytes::Bytes::copy_from_slice(&enc)).is_err());
        let mut enc = req.encode().chunk().to_vec();
        enc[1] |= 1 << flag_bit; // a flag this codec version doesn't know
        prop_assert!(ScanRequest::decode(&bytes::Bytes::copy_from_slice(&enc)).is_err());
    }

    /// The scan-reply wire codec roundtrips arbitrary (snapshot, batch)
    /// payloads, rejects every strict prefix, and rejects a corrupted
    /// message tag.
    #[test]
    fn scan_reply_codec_roundtrips(
        seed in any::<u64>(), cols in 1usize..5, rows in 0usize..16, part in 0u32..8,
    ) {
        use anydb_common::{PartitionId, ScanReply, ScanSnapshot};
        use rand::Rng;
        let (types, tuples) = arbitrary_columnar(seed, cols, rows);
        let batch = ColumnBatch::from_tuples(&types, &tuples).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E1);
        let snapshot = ScanSnapshot {
            prefix: rng.random_range(0..1_000_000usize),
            matched: rng.random_range(0..1_000_000usize),
            epoch_start: rng.random(),
            epoch_end: rng.random(),
            cols_epoch_start: rng.random(),
            cols_epoch_end: rng.random(),
            max_version: rng.random(),
        };
        let reply = ScanReply { partition: PartitionId(part), snapshot, batch };
        let enc = reply.encode();
        prop_assert_eq!(&ScanReply::decode(&enc).unwrap(), &reply);
        for cut in 0..enc.len() {
            prop_assert!(
                ScanReply::decode(&enc.slice(0..cut)).is_err(),
                "reply decode succeeded at cut {} of {}", cut, enc.len()
            );
        }
        use bytes::Buf;
        let mut corrupted = enc.chunk().to_vec();
        corrupted[0] ^= 0x11;
        prop_assert!(ScanReply::decode(&bytes::Bytes::copy_from_slice(&corrupted)).is_err());
    }
}

/// Deterministically builds an arbitrary predicate tree of the given
/// depth (column positions may exceed the batch arity — predicates must
/// treat that as "no match", never panic).
fn arbitrary_predicate(rng: &mut StdRng, depth: usize) -> anydb_common::ColPredicate {
    use anydb_common::ColPredicate;
    use rand::Rng;
    let leaf = depth == 0 || rng.random_bool(0.5);
    if leaf {
        match rng.random_range(0..3u32) {
            0 => ColPredicate::IntGe {
                col: rng.random_range(0..6usize),
                min: rng.random_range(-500_000..500_000i64),
            },
            1 => {
                let a = rng.random_range(-500_000..500_000i64);
                let b = rng.random_range(-500_000..500_000i64);
                ColPredicate::IntBetween {
                    col: rng.random_range(0..6usize),
                    min: a.min(b),
                    max: a.max(b),
                }
            }
            _ => {
                let len = rng.random_range(0..3usize);
                let prefix: String = (0..len)
                    .map(|_| char::from(b'a' + rng.random_range(0..4u8)))
                    .collect();
                ColPredicate::StrPrefix {
                    col: rng.random_range(0..6usize),
                    prefix,
                }
            }
        }
    } else {
        let n = rng.random_range(0..3usize);
        ColPredicate::And(
            (0..n)
                .map(|_| arbitrary_predicate(rng, depth - 1))
                .collect(),
        )
    }
}

/// Deterministically builds an arbitrary columnar workload: `cols` column
/// types and `rows` tuples of matching values, with ~1 in 6 values NULL.
fn arbitrary_columnar(seed: u64, cols: usize, rows: usize) -> (Vec<DataType>, Vec<Tuple>) {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    let types: Vec<DataType> = (0..cols)
        .map(|_| match rng.random_range(0..3u32) {
            0 => DataType::Int,
            1 => DataType::Float,
            _ => DataType::Str,
        })
        .collect();
    let tuples: Vec<Tuple> = (0..rows)
        .map(|_| {
            types
                .iter()
                .map(|ty| {
                    if rng.random_bool(1.0 / 6.0) {
                        return Value::Null;
                    }
                    match ty {
                        DataType::Int => Value::Int(rng.random_range(-1_000_000..1_000_000i64)),
                        DataType::Float => {
                            Value::Float(rng.random_range(0..1_000_000i64) as f64 / 128.0)
                        }
                        DataType::Str => {
                            let len = rng.random_range(0..12usize);
                            let s: String = (0..len)
                                .map(|_| char::from(b'a' + rng.random_range(0..26u8)))
                                .collect();
                            Value::str(s)
                        }
                    }
                })
                .collect()
        })
        .collect();
    (types, tuples)
}
