//! Property tests for distributions, metrics, and the codec substrate.

use anydb_common::dist::{HotSpot, NuRand, Zipf};
use anydb_common::metrics::Histogram;
use anydb_common::{Rid, Tuple, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Zipf samples always stay inside the domain, for any (n, theta).
    #[test]
    fn zipf_stays_in_domain(n in 1u64..5_000, theta in 0.0f64..0.999, seed in any::<u64>()) {
        let z = Zipf::new(n, theta);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Hot-spot samples stay inside the domain and respect the hot set
    /// when the probability is 1.
    #[test]
    fn hotspot_stays_in_domain(n in 1u64..1_000, hot in 1u64..1_000, seed in any::<u64>()) {
        let hot = hot.min(n);
        let h = HotSpot::new(n, hot, 1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(h.sample(&mut rng) < hot.max(1));
        }
    }

    /// NURand respects its [x, y] bounds for all spec constants.
    #[test]
    fn nurand_stays_in_bounds(c in any::<u64>(), seed in any::<u64>()) {
        for (a, x, y) in [(255u64, 0u64, 999u64), (1023, 1, 3000), (8191, 1, 100_000)] {
            let n = NuRand::new(a, x, y, c);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..100 {
                let v = n.sample(&mut rng);
                prop_assert!((x..=y).contains(&v));
            }
        }
    }

    /// RID packing is a bijection.
    #[test]
    fn rid_pack_roundtrips(t in any::<u32>(), p in any::<u32>(), s in any::<u32>()) {
        use anydb_common::{PartitionId, TableId};
        let rid = Rid::new(TableId(t), PartitionId(p), s);
        prop_assert_eq!(Rid::unpack(rid.pack()), rid);
    }

    /// Histogram percentiles are monotone in p.
    #[test]
    fn histogram_percentiles_monotone(samples in prop::collection::vec(1u64..1_000_000, 1..100)) {
        let h = Histogram::new();
        for s in &samples {
            h.record(std::time::Duration::from_nanos(*s));
        }
        let p50 = h.percentile(50.0);
        let p90 = h.percentile(90.0);
        let p99 = h.percentile(99.0);
        prop_assert!(p50 <= p90);
        prop_assert!(p90 <= p99);
        prop_assert_eq!(h.count(), samples.len() as u64);
    }

    /// Projection then concat never panics and preserves arity sums.
    #[test]
    fn tuple_ops_compose(vals in prop::collection::vec(any::<i64>(), 1..8)) {
        let t = Tuple::new(vals.iter().copied().map(Value::Int).collect());
        let all: Vec<usize> = (0..t.arity()).collect();
        let projected = t.project(&all);
        prop_assert_eq!(&projected, &t);
        let doubled = t.concat(&projected);
        prop_assert_eq!(doubled.arity(), t.arity() * 2);
    }
}
