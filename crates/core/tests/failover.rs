//! Failover under load (PR 8 headline): a primary/follower pair of
//! storage ACs with sync WAL shipping, a client driver inserting through
//! the [`Router`], a crash injected mid-load, lease-based promotion, and
//! a rejoin of the crashed ex-primary as the new follower.
//!
//! The contract under audit: **every commit acked to the client survives
//! the failover** (sync acks release only once the follower's replicated
//! LSN covers them), the client-visible stall is bounded, and the
//! ex-primary's divergent unreplicated tail is discarded on rejoin
//! before it catches up from the new primary's WAL.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use anydb_common::DbError;
use anydb_core::replica::{
    drive_inserts, recover_replica, repl_connection, repl_store, repl_tuple, run_follower,
    run_primary, FollowerExit, PrimaryExit, ReplConfig, ReplMetrics, ReplMode, Router, REPL_TABLE,
};
use anydb_storage::Wal;
use anydb_stream::{FaultSpec, LinkSpec};

/// Polls `cond` with a deadline; panics with `what` on expiry.
fn wait_for(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn failover_under_load_loses_no_acked_commit() {
    const TOTAL: i64 = 800;
    const CRASH_AFTER_COMMITS: u64 = 200;

    let cfg = ReplConfig {
        mode: ReplMode::Sync,
        batch_ops: 32,
        heartbeat_every: Duration::from_millis(10),
        lease: Duration::from_millis(150),
    };
    let metrics = Arc::new(ReplMetrics::new());

    // Node A: boot primary. Node B: follower over an instant link.
    let store_a = Arc::new(repl_store());
    let wal_a = Arc::new(Wal::new());
    let store_b = Arc::new(repl_store());
    let wal_b = Arc::new(Wal::new());
    let (a_end, b_end) = repl_connection(LinkSpec::instant(), 256);

    let (ops1_tx, ops1_rx) = crossbeam::channel::unbounded();
    let (joins1_tx, joins1_rx) = crossbeam::channel::unbounded();
    assert!(joins1_tx.send(a_end).is_ok());
    let crash_a = Arc::new(AtomicBool::new(false));
    let router = Arc::new(Router::new(ops1_tx));

    let node_a = {
        let (store, wal, metrics, crash) = (
            Arc::clone(&store_a),
            Arc::clone(&wal_a),
            Arc::clone(&metrics),
            Arc::clone(&crash_a),
        );
        thread::spawn(move || {
            run_primary(
                &store, &wal, &ops1_rx, &joins1_rx, &cfg, &crash, &metrics, 1,
            )
        })
    };

    // Node B's second life: on promotion it re-routes the driver to its
    // own op channel and runs its own primary term.
    let (ops2_tx, ops2_rx) = crossbeam::channel::unbounded();
    let (joins2_tx, joins2_rx) = crossbeam::channel::unbounded();
    let stop_b = Arc::new(AtomicBool::new(false));
    let node_b = {
        let (store, wal, metrics, stop, router) = (
            Arc::clone(&store_b),
            Arc::clone(&wal_b),
            Arc::clone(&metrics),
            Arc::clone(&stop_b),
            Arc::clone(&router),
        );
        thread::spawn(move || {
            let exit = run_follower(&store, &wal, b_end, &cfg, &metrics, &stop);
            if exit == FollowerExit::Promoted {
                router.reroute(ops2_tx);
                // Drop this thread's Router handle: once every client
                // drops theirs the rerouted op sender goes with it, which
                // is what lets this primary term observe shutdown.
                drop(router);
                let crash_b = AtomicBool::new(false);
                run_primary(
                    &store, &wal, &ops2_rx, &joins2_rx, &cfg, &crash_b, &metrics, 2,
                );
            }
            exit
        })
    };

    let driver = {
        let router = Arc::clone(&router);
        thread::spawn(move || {
            drive_inserts(
                &router,
                0..TOTAL,
                16,
                Duration::from_millis(600),
                Duration::from_secs(60),
            )
        })
    };

    // Crash the primary mid-load, once a healthy chunk of commits acked.
    wait_for("mid-load commit volume", Duration::from_secs(30), || {
        metrics.commits.get() >= CRASH_AFTER_COMMITS
    });
    crash_a.store(true, Ordering::Relaxed);
    assert_eq!(node_a.join().unwrap(), PrimaryExit::Crashed);

    // Rejoin: replay A's log truncated at the replicated watermark (its
    // unreplicated tail was never acked and must not resurrect), then
    // catch up from B as the new follower.
    let store_a2 = Arc::new(repl_store());
    let wal_a2 = Arc::new(Wal::new());
    let recovered = recover_replica(
        wal_a.serialize(),
        metrics.watermark(),
        &store_a2,
        &wal_a2,
        &metrics,
    )
    .expect("ex-primary log replays clean under the watermark");
    assert!(
        wal_a2.next_lsn() <= metrics.watermark().max(1),
        "recovery kept records past the watermark"
    );
    assert!(recovered.committed > 0, "crash lost the replicated prefix");

    let (b_to_a2, a2_end) = repl_connection(LinkSpec::instant(), 256);
    assert!(joins2_tx.send(b_to_a2).is_ok());
    let stop_a2 = Arc::new(AtomicBool::new(false));
    let node_a2 = {
        let (store, wal, metrics, stop) = (
            Arc::clone(&store_a2),
            Arc::clone(&wal_a2),
            Arc::clone(&metrics),
            Arc::clone(&stop_a2),
        );
        thread::spawn(move || run_follower(&store, &wal, a2_end, &cfg, &metrics, &stop))
    };

    // The driver rides out the crash: submit retries while the router
    // points at the dead node, ack-timeout re-submission for the window
    // that died with it.
    let stats = driver.join().unwrap();
    assert_eq!(stats.failed, 0, "an insert was acked as failed");
    assert_eq!(
        stats.acked_ids,
        (0..TOTAL).collect::<Vec<_>>(),
        "driver finished without every id acked"
    );
    assert!(
        stats.resubmits > 0,
        "crash mid-window should force at least one re-submission"
    );
    // Client-visible stall: lease expiry + promotion + re-route +
    // re-submission. Bounded generously for a loaded 1-core CI host.
    assert!(
        stats.max_ack_gap < Duration::from_secs(10),
        "failover stall {:?} unbounded",
        stats.max_ack_gap
    );

    // THE audit: every acked id is durable on the surviving primary. A
    // re-insert of an acked row must be recognized at its primary key.
    let table_b = store_b.table(REPL_TABLE).unwrap();
    for &id in &stats.acked_ids {
        match table_b.insert(repl_tuple(id)) {
            Err(DbError::DuplicateKey(_)) => {}
            other => panic!("acked id {id} lost in failover: {other:?}"),
        }
    }

    // The rejoined ex-primary catches up to the new primary's WAL tail.
    let target = wal_b.next_lsn();
    wait_for("ex-primary catch-up", Duration::from_secs(10), || {
        wal_a2.next_lsn() >= target
    });
    assert_eq!(
        store_a2.table(REPL_TABLE).unwrap().row_count(),
        table_b.row_count(),
        "caught-up follower disagrees with primary on row count"
    );

    assert_eq!(metrics.promotions.get(), 1, "exactly one promotion");
    assert!(metrics.catchups.get() >= 2, "join + rejoin both catch up");
    assert!(
        metrics.replay_inserts.get() > 0 && metrics.replay_committed.get() > 0,
        "RecoveryStats never surfaced into the metrics layer"
    );

    // Teardown, promotion-free: stop the follower first (B just sees a
    // dead link and degrades), then close B's op feed.
    stop_a2.store(true, Ordering::Relaxed);
    assert_eq!(node_a2.join().unwrap(), FollowerExit::Stopped);
    drop(router);
    drop(joins2_tx);
    assert_eq!(node_b.join().unwrap(), FollowerExit::Promoted);
}

#[test]
fn lossy_ship_link_converges_through_gap_repair() {
    const TOTAL: i64 = 300;

    let cfg = ReplConfig {
        mode: ReplMode::Sync,
        batch_ops: 16,
        heartbeat_every: Duration::from_millis(10),
        lease: Duration::from_secs(2),
    };
    let metrics = Arc::new(ReplMetrics::new());

    let store_a = Arc::new(repl_store());
    let wal_a = Arc::new(Wal::new());
    let store_b = Arc::new(repl_store());
    let wal_b = Arc::new(Wal::new());

    // Forty percent of ship-direction frames (records AND heartbeats)
    // vanish. Sync commits can then only release through the repair
    // loop: follower detects the hole, asks CatchupFrom, primary ships
    // the tail again, idempotent replay absorbs the overlap.
    let (mut a_end, b_end) = repl_connection(LinkSpec::instant(), 256);
    a_end.tx.inject_faults(FaultSpec::new(0xF01).drop_prob(0.4));

    let (ops_tx, ops_rx) = crossbeam::channel::unbounded();
    let (joins_tx, joins_rx) = crossbeam::channel::unbounded();
    assert!(joins_tx.send(a_end).is_ok());
    let crash = Arc::new(AtomicBool::new(false));
    let router = Arc::new(Router::new(ops_tx));

    let primary = {
        let (store, wal, metrics, crash) = (
            Arc::clone(&store_a),
            Arc::clone(&wal_a),
            Arc::clone(&metrics),
            Arc::clone(&crash),
        );
        thread::spawn(move || {
            run_primary(&store, &wal, &ops_rx, &joins_rx, &cfg, &crash, &metrics, 1)
        })
    };
    let stop = Arc::new(AtomicBool::new(false));
    let follower = {
        let (store, wal, metrics, stop) = (
            Arc::clone(&store_b),
            Arc::clone(&wal_b),
            Arc::clone(&metrics),
            Arc::clone(&stop),
        );
        thread::spawn(move || run_follower(&store, &wal, b_end, &cfg, &metrics, &stop))
    };

    let stats = drive_inserts(
        &router,
        0..TOTAL,
        16,
        Duration::from_secs(5),
        Duration::from_secs(60),
    );
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.acked_ids, (0..TOTAL).collect::<Vec<_>>());

    // Every ack implies follower durability, loss or no loss.
    assert_eq!(
        store_b.table(REPL_TABLE).unwrap().row_count() as i64,
        TOTAL,
        "sync-acked commits missing on the follower"
    );
    assert_eq!(wal_b.next_lsn(), wal_a.next_lsn());

    // Stop the follower before closing the primary's op feed so the
    // teardown races can't manufacture a promotion.
    stop.store(true, Ordering::Relaxed);
    follower.join().unwrap();
    drop(router);
    assert_eq!(primary.join().unwrap(), PrimaryExit::Stopped);
    assert_eq!(metrics.promotions.get(), 0);
}
