//! Property tests for the morph controller's hysteresis guarantees.
//!
//! The controller is pure in `(now, snapshot)`, so these replay random
//! telemetry histories deterministically and check the two invariants the
//! live engine relies on (DESIGN.md §11):
//!
//! 1. **Never thrash**: no two switches ever land within one dwell
//!    window, whatever the signals do.
//! 2. **Convergence**: a constant workload produces at most one switch,
//!    ever — the controller settles and stays settled.

use std::time::Duration;

use anydb_common::metrics::LoadSnapshot;
use anydb_core::morph::{MorphConfig, MorphController};
use anydb_core::strategy::Strategy as Exec;
use proptest::prelude::*;

/// A random but valid telemetry window: arbitrary backlog up to 4096
/// events, the hot partition owning an arbitrary share of it.
fn snapshots() -> impl Strategy<Value = LoadSnapshot> {
    (0u64..4096, 0u64..101).prop_map(|(total, hot_pct)| LoadSnapshot {
        oltp_committed: 100,
        depth_samples: 1,
        depth_hot: total * hot_pct / 100,
        depth_total: total,
        windows: 1,
        ..Default::default()
    })
}

fn cfg(dwell_ms: u64) -> MorphConfig {
    MorphConfig {
        dwell: Duration::from_millis(dwell_ms),
        min_backlog: 8,
        improvement: 1.0,
        acs: 4,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever telemetry arrives and however irregular the observation
    /// cadence, two switches are never taken within one dwell window.
    #[test]
    fn never_switches_twice_within_a_dwell_window(
        snaps in prop::collection::vec(snapshots(), 1..64),
        gaps in prop::collection::vec(0u64..10, 1..64),
        dwell_ms in 1u64..50,
    ) {
        let mut c = MorphController::new(Exec::SharedNothing, cfg(dwell_ms));
        let dwell = Duration::from_millis(dwell_ms);
        let mut now = Duration::ZERO;
        let mut last_switch: Option<Duration> = None;
        for (snap, gap) in snaps.iter().zip(gaps.iter().cycle()) {
            now += Duration::from_millis(*gap);
            let d = c.observe(now, snap);
            if d.switch_to.is_some() {
                if let Some(prev) = last_switch {
                    prop_assert!(
                        now - prev >= dwell,
                        "switches {:?} apart inside a {:?} dwell",
                        now - prev,
                        dwell
                    );
                }
                last_switch = Some(now);
            }
        }
    }

    /// A constant workload converges: at most one switch over any number
    /// of observations, from any starting strategy.
    #[test]
    fn constant_workload_switches_at_most_once(
        snap in snapshots(),
        start in 0usize..Exec::ALL.len(),
        observations in 2usize..128,
    ) {
        let start = Exec::ALL[start];
        let mut c = MorphController::new(start, cfg(5));
        for i in 0..observations {
            // Well past the dwell each time: dwell never masks a would-be
            // thrash here, so any oscillation would show as switches.
            c.observe(Duration::from_millis(i as u64 * 100), &snap);
        }
        prop_assert!(
            c.switches() <= 1,
            "constant workload produced {} switches (start {:?}, end {:?})",
            c.switches(),
            start,
            c.current()
        );
    }

    /// The steered OLAP window always lands inside its configured bounds.
    #[test]
    fn olap_window_stays_in_bounds(
        snaps in prop::collection::vec(snapshots(), 1..32),
        olap in prop::collection::vec(0u64..1000, 1..32),
    ) {
        let mut c = MorphController::new(Exec::SharedNothing, cfg(5));
        let (narrow, wide) = c.config().olap_window;
        for (i, (snap, q)) in snaps.iter().zip(olap.iter().cycle()).enumerate() {
            let mut snap = *snap;
            snap.olap_completed = *q;
            let d = c.observe(Duration::from_millis(i as u64), &snap);
            prop_assert!(d.olap_window >= narrow && d.olap_window <= wide);
        }
    }
}
