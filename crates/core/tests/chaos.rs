//! Deterministic chaos suite for the sharded engine (PR 9 headline):
//! cross-shard TPC-C new-orders under seed-pinned frame loss, delay
//! spikes, coordinator crashes at every 2PC protocol step, and a
//! participant shard failing over to its sync follower mid-load.
//!
//! Every scenario audits the same three contracts:
//!
//! * **zero lost acked commits** — every order acked ok to the driver is
//!   fully visible across the shard stores afterwards;
//! * **zero half-applied cross-shard transactions** — every order is
//!   both-or-neither ([`OrderVisibility::Torn`] never survives), acked
//!   or not;
//! * **bounded stall** — the longest client-visible ack gap stays under
//!   a generous bound even through crash + recovery.
//!
//! Fault seeds are pinned by name; `CHAOS_SEED=<name>` restricts the
//! loss/delay scenarios to one seed so CI can fan the suite out as a
//! matrix. An unknown name fails loudly rather than silently passing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use anydb_common::metrics::RobustSnapshot;
use anydb_core::replica::{repl_connection, run_follower, FollowerExit, ReplConfig, ReplMode};
use anydb_core::shard::{
    audit_order, drive_orders, peer_pair, shard_mesh, shard_store, CrashPoint, NodeExit,
    OrderVisibility, PeerEnd, ShardConfig, ShardMap, ShardMetrics, ShardNode, ShardOp, ShardRouter,
};
use anydb_storage::Wal;
use anydb_stream::{FaultSpec, LinkSpec};
use anydb_workload::tpcc::NewOrderParams;
use crossbeam::channel::Sender as ChanSender;

/// The pinned seed set. CI runs one matrix entry per name.
const SEEDS: [(&str, u64); 3] = [
    ("alpha", 0xA1FA_0001),
    ("bravo", 0xB4A0_0002),
    ("charlie", 0xC4A1_0003),
];

/// Seeds selected for this process: all of them, or the single one named
/// by `CHAOS_SEED`.
fn pinned_seeds() -> Vec<(&'static str, u64)> {
    match std::env::var("CHAOS_SEED") {
        Ok(name) if !name.is_empty() => {
            let picked: Vec<_> = SEEDS.iter().copied().filter(|(n, _)| *n == name).collect();
            assert!(!picked.is_empty(), "unknown CHAOS_SEED {name:?}");
            picked
        }
        _ => SEEDS.to_vec(),
    }
}

/// A launched shard node: its channels, switches, and join handle. The
/// store/WAL Arcs stay out here so audits and recovery outlive a crash.
struct NodeHandle {
    ops_tx: ChanSender<ShardOp>,
    peer_joins: ChanSender<PeerEnd>,
    #[allow(dead_code)]
    repl_joins: ChanSender<anydb_core::replica::PrimaryEnd>,
    crash: Arc<AtomicBool>,
    #[allow(dead_code)]
    stop: Arc<AtomicBool>,
    handle: thread::JoinHandle<NodeExit>,
}

fn launch(sn: ShardNode, peers: Vec<PeerEnd>) -> NodeHandle {
    let (ops_tx, ops_rx) = crossbeam::channel::unbounded();
    let (pj_tx, pj_rx) = crossbeam::channel::unbounded();
    let (rj_tx, rj_rx) = crossbeam::channel::unbounded();
    let crash = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let handle = {
        let (crash, stop) = (Arc::clone(&crash), Arc::clone(&stop));
        thread::spawn(move || {
            let mut sn = sn;
            sn.run(&ops_rx, peers, &pj_rx, &rj_rx, &crash, &stop)
        })
    };
    NodeHandle {
        ops_tx,
        peer_joins: pj_tx,
        repl_joins: rj_tx,
        crash,
        stop,
        handle,
    }
}

/// The first warehouse the map places on `node`.
fn warehouse_on(map: &ShardMap, node: u32) -> i64 {
    (1..).find(|&w| map.node_of(w) == node).unwrap()
}

fn order(w: i64, supply: Vec<i64>) -> NewOrderParams {
    let lines = supply
        .iter()
        .enumerate()
        .map(|(i, _)| (100 + i as i64, 5))
        .collect();
    NewOrderParams {
        w_id: w,
        d_id: 1,
        c_id: 7,
        lines,
        supply,
        entry_date: 20_260_808,
        rollback: false,
    }
}

/// A mixed stream: orders alternate home nodes, every third order is
/// cross-shard (one remote supply line), the rest are local.
fn mixed_orders(map: &ShardMap, total: usize) -> Vec<NewOrderParams> {
    let w0 = warehouse_on(map, 0);
    let w1 = warehouse_on(map, 1);
    (0..total)
        .map(|i| {
            let (home, other) = if i % 2 == 0 { (w0, w1) } else { (w1, w0) };
            if i % 3 == 0 {
                order(home, vec![home, other])
            } else {
                order(home, vec![home, home])
            }
        })
        .collect()
}

/// The shared audit: no torn orders anywhere, every acked order fully
/// visible, stall bounded.
fn audit(
    stores: &[Arc<anydb_storage::Store>],
    map: &ShardMap,
    orders: &[NewOrderParams],
    stats: &anydb_core::replica::DriveStats,
) {
    assert_eq!(stats.failed, 0, "an order was acked as failed");
    for (i, p) in orders.iter().enumerate() {
        let o_id = i as i64 + 1;
        let vis = audit_order(stores, map, p, o_id);
        assert_ne!(
            vis,
            OrderVisibility::Torn,
            "order {o_id} half-applied across shards"
        );
        if stats.acked_ids.binary_search(&o_id).is_ok() {
            assert_eq!(vis, OrderVisibility::Full, "acked order {o_id} lost");
        }
    }
    assert!(
        stats.max_ack_gap < Duration::from_secs(20),
        "client stall {:?} unbounded",
        stats.max_ack_gap
    );
}

fn merged_snapshot(metrics: &[Arc<ShardMetrics>]) -> RobustSnapshot {
    metrics
        .iter()
        .fold(RobustSnapshot::default(), |mut acc, m| {
            acc.merge(&m.snapshot());
            acc
        })
}

/// Builds a 2-node cluster with `faults(from, to)` injected on each mesh
/// direction, runs `orders` to completion, and returns everything the
/// audit needs.
fn run_two_nodes_with_faults(
    cfg: ShardConfig,
    orders: &[NewOrderParams],
    faults: impl Fn(u32, u32) -> Option<FaultSpec>,
) -> (
    Vec<Arc<anydb_storage::Store>>,
    Vec<Arc<ShardMetrics>>,
    anydb_core::replica::DriveStats,
) {
    let map = ShardMap::new(2);
    let mut mesh = shard_mesh(2, 256);
    for (from, ends) in mesh.iter_mut().enumerate() {
        for end in ends.iter_mut() {
            if let Some(spec) = faults(from as u32, end.node) {
                end.tx.inject_faults(spec);
            }
        }
    }
    let mut stores = Vec::new();
    let mut metrics = Vec::new();
    let mut handles = Vec::new();
    let mut slots = Vec::new();
    for node in 0..2u32 {
        let store = Arc::new(shard_store());
        let m = Arc::new(ShardMetrics::default());
        stores.push(Arc::clone(&store));
        metrics.push(Arc::clone(&m));
        let sn = ShardNode::new(node, map, store, Arc::new(Wal::new()), cfg, m);
        let h = launch(sn, std::mem::take(&mut mesh[node as usize]));
        slots.push(h.ops_tx.clone());
        handles.push(h);
    }
    let router = ShardRouter::new(map, slots);
    let stats = drive_orders(
        &router,
        orders,
        12,
        Duration::from_millis(700),
        Duration::from_secs(90),
    );
    drop(router);
    for h in handles {
        drop(h.ops_tx);
        assert_eq!(h.handle.join().unwrap(), NodeExit::Stopped);
    }
    (stores, metrics, stats)
}

#[test]
fn cross_shard_orders_survive_frame_loss() {
    for (name, seed) in pinned_seeds() {
        let map = ShardMap::new(2);
        let orders = mixed_orders(&map, 120);
        // Every inter-shard direction loses 20% of its frames; only the
        // retransmission timers keep the protocol moving.
        let (stores, metrics, stats) = run_two_nodes_with_faults(
            ShardConfig {
                retransmit_every: Duration::from_millis(30),
                ..ShardConfig::default()
            },
            &orders,
            |from, to| {
                Some(FaultSpec::new(seed ^ (u64::from(from) << 8) ^ u64::from(to)).drop_prob(0.2))
            },
        );
        assert_eq!(
            stats.acked_ids.len(),
            orders.len(),
            "seed {name}: driver finished short"
        );
        audit(&stores, &map, &orders, &stats);
        let snap = merged_snapshot(&metrics);
        assert!(
            snap.frames_dropped > 0,
            "seed {name}: fault injection never fired"
        );
        assert!(
            snap.twopc_retransmits > 0,
            "seed {name}: loss was repaired without retransmission?"
        );
        assert!(!snap.report().is_empty(), "seed {name}: empty report");
    }
}

#[test]
fn delay_spikes_do_not_tear_orders() {
    for (name, seed) in pinned_seeds() {
        let map = ShardMap::new(2);
        let orders = mixed_orders(&map, 90);
        // 30% of frames arrive 40ms late — past the retransmission
        // cadence, so duplicates are routine and must stay idempotent.
        let (stores, metrics, stats) = run_two_nodes_with_faults(
            ShardConfig {
                retransmit_every: Duration::from_millis(25),
                ..ShardConfig::default()
            },
            &orders,
            |from, to| {
                Some(
                    FaultSpec::new(seed ^ (u64::from(from) << 16) ^ u64::from(to))
                        .delay(0.3, Duration::from_millis(40)),
                )
            },
        );
        assert_eq!(
            stats.acked_ids.len(),
            orders.len(),
            "seed {name}: driver finished short"
        );
        audit(&stores, &map, &orders, &stats);
        let snap = merged_snapshot(&metrics);
        assert!(
            snap.frames_delayed > 0,
            "seed {name}: delay injection never fired"
        );
    }
}

/// Coordinator crash at each protocol step: the configured node vanishes
/// on its first cross-shard order, a replacement recovers from the
/// durable log (presumed abort / re-apply / re-delivery as the step
/// demands), links are rebuilt, and the driver's re-submissions complete
/// the run with nothing lost and nothing torn.
#[test]
fn coordinator_crash_at_every_protocol_step_recovers() {
    for point in [
        CrashPoint::BeforePrepare,
        CrashPoint::AfterPrepareSent,
        CrashPoint::AfterDecideLogged,
        CrashPoint::AfterDecideSent,
    ] {
        let map = ShardMap::new(2);
        let w0 = warehouse_on(&map, 0);
        let w1 = warehouse_on(&map, 1);
        // Every order homes on node 0 and carries one remote line: the
        // very first order trips the crash point.
        let orders: Vec<_> = (0..40).map(|_| order(w0, vec![w0, w1])).collect();

        let mut mesh = shard_mesh(2, 256);
        let store0 = Arc::new(shard_store());
        let wal0 = Arc::new(Wal::new());
        let m0 = Arc::new(ShardMetrics::default());
        let crash_cfg = ShardConfig {
            crash_at: Some(point),
            retransmit_every: Duration::from_millis(25),
            ..ShardConfig::default()
        };
        let n0 = launch(
            ShardNode::new(
                0,
                map,
                Arc::clone(&store0),
                Arc::clone(&wal0),
                crash_cfg,
                Arc::clone(&m0),
            ),
            std::mem::take(&mut mesh[0]),
        );
        let store1 = Arc::new(shard_store());
        let m1 = Arc::new(ShardMetrics::default());
        let n1 = launch(
            ShardNode::new(
                1,
                map,
                Arc::clone(&store1),
                Arc::new(Wal::new()),
                ShardConfig {
                    retransmit_every: Duration::from_millis(25),
                    ..ShardConfig::default()
                },
                Arc::clone(&m1),
            ),
            std::mem::take(&mut mesh[1]),
        );

        let router = Arc::new(ShardRouter::new(
            map,
            vec![n0.ops_tx.clone(), n1.ops_tx.clone()],
        ));
        let driver = {
            let router = Arc::clone(&router);
            let orders = orders.clone();
            thread::spawn(move || {
                drive_orders(
                    &router,
                    &orders,
                    8,
                    Duration::from_millis(400),
                    Duration::from_secs(60),
                )
            })
        };

        // The coordinator vanishes on order #1.
        assert_eq!(
            n0.handle.join().unwrap(),
            NodeExit::Crashed,
            "{point:?}: crash point never fired"
        );
        drop(n0.ops_tx);

        // Replacement: fresh store, the durable log, full recovery.
        let records = Wal::deserialize(wal0.serialize()).unwrap();
        let store0b = Arc::new(shard_store());
        let wal0b = Arc::new(Wal::new());
        wal0b.extend_shipped(&records);
        let m0b = Arc::new(ShardMetrics::default());
        let recovered = ShardNode::recover(
            0,
            map,
            Arc::clone(&store0b),
            wal0b,
            ShardConfig {
                retransmit_every: Duration::from_millis(25),
                ..ShardConfig::default()
            },
            Arc::clone(&m0b),
        )
        .unwrap();
        let (end0, end1) = peer_pair(LinkSpec::instant(), 256, 0, 1);
        assert!(n1.peer_joins.send(end1).is_ok());
        let n0b = launch(recovered, vec![end0]);
        router.reroute(0, n0b.ops_tx.clone());

        let stats = driver.join().unwrap();
        assert_eq!(
            stats.acked_ids.len(),
            orders.len(),
            "{point:?}: driver finished short (resubmits={})",
            stats.resubmits
        );
        assert!(
            stats.resubmits > 0,
            "{point:?}: the crashed window should force re-submission"
        );

        drop(router);
        drop(n0b.ops_tx);
        drop(n1.ops_tx);
        assert_eq!(n0b.handle.join().unwrap(), NodeExit::Stopped);
        assert_eq!(n1.handle.join().unwrap(), NodeExit::Stopped);

        let stores = vec![Arc::clone(&store0b), Arc::clone(&store1)];
        audit(&stores, &map, &orders, &stats);

        // Step-specific recovery evidence.
        let snap = {
            let mut s = merged_snapshot(&[m0, m0b, m1]);
            s.twopc_corrupt_frames = 0; // not under test here
            s
        };
        match point {
            CrashPoint::AfterPrepareSent => assert!(
                snap.twopc_presumed_aborts > 0,
                "{point:?}: an undecided staged txn must presume abort"
            ),
            CrashPoint::AfterDecideLogged | CrashPoint::AfterDecideSent => assert!(
                snap.twopc_commits > 0,
                "{point:?}: the decided txn must survive recovery"
            ),
            CrashPoint::BeforePrepare => {}
        }
    }
}

/// Participant failover under load, shared by the clean-link and
/// lagging-follower scenarios: node 1 runs with a sync follower (its
/// WAL-shipping direction optionally fault-injected); it crashes
/// mid-load, the follower promotes (lease expiry), a replacement node
/// adopts the mirrored store/WAL, rebuilds its peer link, and the
/// cluster finishes the run with every acked order intact. Returns the
/// merged snapshot for scenario-specific assertions.
fn run_participant_failover(tag: &str, ship_fault: Option<FaultSpec>) -> RobustSnapshot {
    let map = ShardMap::new(2);
    let orders = mixed_orders(&map, 150);

    let repl = ReplConfig {
        mode: ReplMode::Sync,
        batch_ops: 32,
        heartbeat_every: Duration::from_millis(10),
        lease: Duration::from_millis(200),
    };
    let cfg = ShardConfig {
        retransmit_every: Duration::from_millis(30),
        repl,
        ..ShardConfig::default()
    };

    let mut mesh = shard_mesh(2, 256);
    let store0 = Arc::new(shard_store());
    let m0 = Arc::new(ShardMetrics::default());
    let n0 = launch(
        ShardNode::new(
            0,
            map,
            Arc::clone(&store0),
            Arc::new(Wal::new()),
            cfg,
            Arc::clone(&m0),
        ),
        std::mem::take(&mut mesh[0]),
    );

    let store1 = Arc::new(shard_store());
    let wal1 = Arc::new(Wal::new());
    let m1 = Arc::new(ShardMetrics::default());
    let n1 = launch(
        ShardNode::new(
            1,
            map,
            Arc::clone(&store1),
            Arc::clone(&wal1),
            cfg,
            Arc::clone(&m1),
        ),
        std::mem::take(&mut mesh[1]),
    );

    // Node 1's sync follower: a storage AC mirroring the shard WAL, 2PC
    // records included. Faults on the shipping direction make the
    // follower trail the primary, so Votes/DecideAcks/client acks sit
    // behind the durability gate until catch-up repairs the holes.
    let (mut p_end, f_end) = repl_connection(LinkSpec::instant(), 256);
    if let Some(spec) = ship_fault {
        p_end.tx.inject_faults(spec);
    }
    assert!(n1.repl_joins.send(p_end).is_ok());
    let store_f = Arc::new(shard_store());
    let wal_f = Arc::new(Wal::new());
    let stop_f = Arc::new(AtomicBool::new(false));
    let follower = {
        let (store, wal, m, stop) = (
            Arc::clone(&store_f),
            Arc::clone(&wal_f),
            Arc::clone(&m1),
            Arc::clone(&stop_f),
        );
        thread::spawn(move || run_follower(&store, &wal, f_end, &repl, &m.repl, &stop))
    };

    let router = Arc::new(ShardRouter::new(
        map,
        vec![n0.ops_tx.clone(), n1.ops_tx.clone()],
    ));
    let driver = {
        let router = Arc::clone(&router);
        let orders = orders.clone();
        thread::spawn(move || {
            drive_orders(
                &router,
                &orders,
                12,
                Duration::from_millis(700),
                Duration::from_secs(90),
            )
        })
    };

    // Crash node 1 once a healthy chunk of its commits acked.
    let deadline = Instant::now() + Duration::from_secs(30);
    while m1.local_commits.get() + m1.cross_commits.get() < 20 {
        assert!(
            Instant::now() < deadline,
            "{tag}: node 1 never reached mid-load"
        );
        thread::sleep(Duration::from_millis(1));
    }
    n1.crash.store(true, Ordering::Relaxed);
    assert_eq!(n1.handle.join().unwrap(), NodeExit::Crashed);
    drop(n1.ops_tx);

    // The follower's lease expires and it promotes; the replacement
    // shard node adopts the mirrored store/WAL.
    assert_eq!(follower.join().unwrap(), FollowerExit::Promoted);
    let m1b = Arc::new(ShardMetrics::default());
    let recovered = ShardNode::recover(
        1,
        map,
        Arc::clone(&store_f),
        Arc::clone(&wal_f),
        ShardConfig {
            retransmit_every: Duration::from_millis(30),
            ..ShardConfig::default()
        },
        Arc::clone(&m1b),
    )
    .unwrap();
    let (end1, end0) = peer_pair(LinkSpec::instant(), 256, 1, 0);
    assert!(n0.peer_joins.send(end0).is_ok());
    let n1b = launch(recovered, vec![end1]);
    router.reroute(1, n1b.ops_tx.clone());

    let stats = driver.join().unwrap();
    assert_eq!(
        stats.acked_ids.len(),
        orders.len(),
        "{tag}: driver finished short (resubmits={})",
        stats.resubmits
    );

    drop(router);
    drop(n0.ops_tx);
    drop(n1b.ops_tx);
    assert_eq!(n0.handle.join().unwrap(), NodeExit::Stopped);
    assert_eq!(n1b.handle.join().unwrap(), NodeExit::Stopped);

    // Audit against the *promoted* store: acked orders homed or supplied
    // on node 1 must have survived through the replication gate.
    let stores = vec![Arc::clone(&store0), Arc::clone(&store_f)];
    audit(&stores, &map, &orders, &stats);

    let snap = merged_snapshot(&[m0, m1, m1b]);
    assert!(
        snap.repl_batches_shipped > 0,
        "{tag}: the follower never fed"
    );
    assert!(
        snap.repl_acks > 0,
        "{tag}: sync gating needs follower acks to have flowed"
    );
    assert!(!snap.report().is_empty());
    snap
}

/// Participant failover over a clean replication link: the baseline
/// scenario — crash, lease promotion, replacement, nothing lost.
#[test]
fn participant_failover_under_load_loses_no_acked_order() {
    run_participant_failover("clean-link", None);
}

/// Participant failover while the sync follower *trails*: loss and delay
/// spikes on the WAL-shipping direction hold the ack watermark behind
/// the ask timer, so staged participants fire DecideQueries while their
/// Votes are still gated — the coordinator must answer those queries
/// with a re-sent Prepare (never count them as votes) or a promoted
/// follower could miss a Prepare the decision relied on.
#[test]
fn participant_failover_with_lagging_follower_keeps_votes_durable() {
    for (name, seed) in pinned_seeds() {
        let snap = run_participant_failover(
            name,
            Some(
                FaultSpec::new(seed ^ 0x0F01_0000)
                    .drop_prob(0.2)
                    .delay(0.3, Duration::from_millis(25)),
            ),
        );
        assert!(
            snap.repl_catchups > 0,
            "seed {name}: the lagging follower never needed catch-up repair"
        );
    }
}
