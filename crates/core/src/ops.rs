//! Executing transaction operations against the storage substrate.
//!
//! No locks appear anywhere in this module: in the architecture-less
//! engine, consistency of conflicting operations comes entirely from the
//! *order* in which events reach the executing ACs (§3.3). The functions
//! here are therefore plain storage mutations; the component layer
//! guarantees they run in stamp order per conflict domain.

use anydb_common::{DbError, DbResult, Rid, Tuple, TxnId, Value};
use anydb_txn::history::History;
use anydb_workload::tpcc::cols::{customer, district, stock, warehouse};
use anydb_workload::tpcc::gen::{NewOrderParams, PaymentParams, TxnRequest};
use anydb_workload::tpcc::{CustomerSelector, TpccDb};

use crate::event::TxnOp;

/// Resolves a payment customer RID (by id, or middle-by-first-name for
/// last-name selection — the long range scan of Figure 4 (d)).
pub fn resolve_customer(db: &TpccDb, w: i64, d: i64, selector: &CustomerSelector) -> DbResult<Rid> {
    match selector {
        CustomerSelector::ById(c) => db.customer_rid(w, d, *c),
        CustomerSelector::ByLastName(name) => {
            let rids = db.customers_by_last_name(w, d, name)?;
            if rids.is_empty() {
                return Err(DbError::KeyNotFound(db.customer.id()));
            }
            // Sort candidates by C_FIRST without materializing owned
            // `String`s: string values are `Arc<str>`, so cloning the
            // `Value` out of the row is a refcount bump, not a copy.
            let mut named: Vec<(Value, Rid)> = rids
                .into_iter()
                .map(|rid| {
                    let first = db
                        .customer
                        .read_with(rid, |t, _| t.get(customer::C_FIRST).clone())
                        .unwrap_or(Value::Null);
                    (first, rid)
                })
                .collect();
            named.sort_by(|(a, _), (b, _)| a.as_str().unwrap_or("").cmp(b.as_str().unwrap_or("")));
            Ok(named[named.len() / 2].1)
        }
    }
}

/// Executes one decomposed operation. Returns `Ok` on success; errors are
/// engine bugs (ordered execution cannot conflict-abort).
pub fn exec_op(db: &TpccDb, txn: TxnId, op: &TxnOp, history: Option<&History>) -> DbResult<()> {
    match op {
        TxnOp::Skip => Ok(()),
        TxnOp::PayWarehouse { w, amount } => {
            let rid = db.warehouse_rid(*w)?;
            let ((), v) = db.warehouse.update(rid, |t| {
                let ytd = t.get(warehouse::W_YTD).as_float().unwrap_or(0.0);
                t.set(warehouse::W_YTD, Value::Float(ytd + amount));
            })?;
            if let Some(h) = history {
                h.record_write(txn, rid, v);
            }
            Ok(())
        }
        TxnOp::PayDistrict { w, d, amount } => {
            let rid = db.district_rid(*w, *d)?;
            let ((), v) = db.district.update(rid, |t| {
                let ytd = t.get(district::D_YTD).as_float().unwrap_or(0.0);
                t.set(district::D_YTD, Value::Float(ytd + amount));
            })?;
            if let Some(h) = history {
                h.record_write(txn, rid, v);
            }
            Ok(())
        }
        TxnOp::PayCustomer {
            w,
            d,
            selector,
            amount,
            date,
        } => {
            let rid = resolve_customer(db, *w, *d, selector)?;
            let (c_id, v) = db.customer.update(rid, |t| {
                let bal = t.get(customer::C_BALANCE).as_float().unwrap_or(0.0);
                t.set(customer::C_BALANCE, Value::Float(bal - amount));
                let ytd = t.get(customer::C_YTD_PAYMENT).as_float().unwrap_or(0.0);
                t.set(customer::C_YTD_PAYMENT, Value::Float(ytd + amount));
                let cnt = t.get(customer::C_PAYMENT_CNT).as_int().unwrap_or(0);
                t.set(customer::C_PAYMENT_CNT, Value::Int(cnt + 1));
                t.get(customer::C_ID).as_int().unwrap_or(0)
            })?;
            if let Some(h) = history {
                h.record_write(txn, rid, v);
            }
            db.history.insert(Tuple::new(vec![
                Value::Int(*w),
                Value::Int(db.next_history_id()),
                Value::Int(*d),
                Value::Int(c_id),
                Value::Int(*date),
                Value::Float(*amount),
            ]))?;
            Ok(())
        }
    }
}

/// Executes a whole transaction at one AC (physically aggregated
/// execution, Figure 4 (b)). Returns `Ok(false)` for the TPC-C §2.4.1.4
/// user rollback of new-order (a completed business outcome).
pub fn exec_whole_txn(
    db: &TpccDb,
    txn: TxnId,
    req: &TxnRequest,
    history: Option<&History>,
) -> DbResult<bool> {
    match req {
        TxnRequest::Payment(p) => {
            exec_whole_payment(db, txn, p, history)?;
            Ok(true)
        }
        TxnRequest::NewOrder(n) => exec_whole_new_order(db, txn, n, history),
    }
}

fn exec_whole_payment(
    db: &TpccDb,
    txn: TxnId,
    p: &PaymentParams,
    history: Option<&History>,
) -> DbResult<()> {
    for op in crate::strategy::payment_ops(p) {
        exec_op(db, txn, &op, history)?;
    }
    Ok(())
}

fn exec_whole_new_order(
    db: &TpccDb,
    txn: TxnId,
    p: &NewOrderParams,
    history: Option<&History>,
) -> DbResult<bool> {
    if p.rollback {
        // Nothing written yet: the invalid item is discovered while
        // assembling the order.
        return Ok(false);
    }
    let d_rid = db.district_rid(p.w_id, p.d_id)?;
    let (o_id, dv) = db.district.update(d_rid, |t| {
        let next = t.get(district::D_NEXT_O_ID).as_int().unwrap_or(1);
        t.set(district::D_NEXT_O_ID, Value::Int(next + 1));
        next
    })?;
    if let Some(h) = history {
        h.record_write(txn, d_rid, dv);
    }
    let c_rid = db.customer_rid(p.w_id, p.d_id, p.c_id)?;
    let cv = db.customer.read_with(c_rid, |_, v| v)?;
    if let Some(h) = history {
        h.record_read(txn, c_rid, cv);
    }
    for (item_id, qty) in &p.lines {
        let s_rid = db
            .stock
            .get_rid(&anydb_storage::key::int_keys(&[p.w_id, *item_id]))?;
        let ((), sv) = db.stock.update(s_rid, |t| {
            let q = t.get(stock::S_QUANTITY).as_int().unwrap_or(0);
            let newq = if q - qty >= 10 { q - qty } else { q - qty + 91 };
            t.set(stock::S_QUANTITY, Value::Int(newq));
            let ytd = t.get(stock::S_YTD).as_int().unwrap_or(0);
            t.set(stock::S_YTD, Value::Int(ytd + qty));
        })?;
        if let Some(h) = history {
            h.record_write(txn, s_rid, sv);
        }
    }
    db.orders.insert(Tuple::new(vec![
        Value::Int(p.w_id),
        Value::Int(p.d_id),
        Value::Int(o_id),
        Value::Int(p.c_id),
        Value::Int(p.entry_date),
        Value::Null,
        Value::Int(p.lines.len() as i64),
    ]))?;
    db.neworder.insert(Tuple::new(vec![
        Value::Int(p.w_id),
        Value::Int(p.d_id),
        Value::Int(o_id),
    ]))?;
    for (i, (item_id, qty)) in p.lines.iter().enumerate() {
        db.orderline.insert(Tuple::new(vec![
            Value::Int(p.w_id),
            Value::Int(p.d_id),
            Value::Int(o_id),
            Value::Int(i as i64 + 1),
            Value::Int(*item_id),
            Value::Int(*qty),
            Value::Float(1.0 * *qty as f64),
        ]))?;
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anydb_workload::tpcc::TpccConfig;

    fn db() -> TpccDb {
        TpccDb::load(TpccConfig::small(), 31).unwrap()
    }

    #[test]
    fn pay_warehouse_applies_delta() {
        let db = db();
        exec_op(
            &db,
            TxnId(1),
            &TxnOp::PayWarehouse { w: 1, amount: 50.0 },
            None,
        )
        .unwrap();
        let ytd = db
            .warehouse
            .read(db.warehouse_rid(1).unwrap())
            .unwrap()
            .0
            .get(warehouse::W_YTD)
            .as_float()
            .unwrap();
        assert!((ytd - 300_050.0).abs() < 1e-9);
    }

    #[test]
    fn pay_customer_inserts_history() {
        let db = db();
        exec_op(
            &db,
            TxnId(1),
            &TxnOp::PayCustomer {
                w: 1,
                d: 1,
                selector: CustomerSelector::ById(2),
                amount: 10.0,
                date: 20_200_101,
            },
            None,
        )
        .unwrap();
        assert_eq!(db.history.row_count(), 1);
        let bal = db
            .customer
            .read(db.customer_rid(1, 1, 2).unwrap())
            .unwrap()
            .0
            .get(customer::C_BALANCE)
            .as_float()
            .unwrap();
        assert!((bal - (-20.0)).abs() < 1e-9);
    }

    #[test]
    fn skip_is_a_noop() {
        let db = db();
        exec_op(&db, TxnId(1), &TxnOp::Skip, None).unwrap();
        assert_eq!(db.history.row_count(), 0);
    }

    #[test]
    fn whole_new_order_commits_and_rolls_back() {
        let db = db();
        let committed = exec_whole_txn(
            &db,
            TxnId(1),
            &TxnRequest::NewOrder(NewOrderParams {
                w_id: 1,
                d_id: 1,
                c_id: 1,
                lines: vec![(1, 1)],
                supply: vec![1],
                entry_date: 20_200_101,
                rollback: false,
            }),
            None,
        )
        .unwrap();
        assert!(committed);
        let rolled = exec_whole_txn(
            &db,
            TxnId(2),
            &TxnRequest::NewOrder(NewOrderParams {
                w_id: 1,
                d_id: 1,
                c_id: 1,
                lines: vec![(1, 1)],
                supply: vec![1],
                entry_date: 20_200_101,
                rollback: true,
            }),
            None,
        )
        .unwrap();
        assert!(!rolled);
    }

    #[test]
    fn history_records_versions() {
        let db = db();
        let h = History::new();
        exec_op(
            &db,
            TxnId(1),
            &TxnOp::PayWarehouse { w: 1, amount: 1.0 },
            Some(&h),
        )
        .unwrap();
        exec_op(
            &db,
            TxnId(2),
            &TxnOp::PayWarehouse { w: 1, amount: 1.0 },
            Some(&h),
        )
        .unwrap();
        assert_eq!(h.len(), 2);
        assert!(h.is_serializable());
    }
}
