//! The event algebra.
//!
//! Figure 4 (a) of the paper disaggregates a transaction into events such
//! as `Index.lookup`, `Lock.acquire`, `Record.update`. We group the lock
//! events out (streaming CC replaces them with order stamps, §3.3) and
//! carry the remaining operations as [`TxnOp`]s. Events also cover OLAP
//! operator instantiation (§4) and engine control.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

use anydb_common::{QueryId, TxnId};
use anydb_txn::sequencer::SeqNo;
use anydb_workload::chbench::Q3Spec;
use anydb_workload::tpcc::gen::TxnRequest;
use anydb_workload::tpcc::CustomerSelector;
use crossbeam::channel::Sender;

/// One storage operation of a decomposed transaction.
///
/// Operations are *self-contained*: everything needed to execute them
/// arrives with the event (the data-stream role of §2.1 — for OLTP the
/// state is small enough to ride along with the event itself).
#[derive(Debug, Clone, PartialEq)]
pub enum TxnOp {
    /// Payment: `W_YTD += amount`.
    PayWarehouse {
        /// Warehouse id.
        w: i64,
        /// Payment amount.
        amount: f64,
    },
    /// Payment: `D_YTD += amount`.
    PayDistrict {
        /// Warehouse id.
        w: i64,
        /// District id.
        d: i64,
        /// Payment amount.
        amount: f64,
    },
    /// Payment: resolve customer (possibly a last-name range scan),
    /// update balance/ytd/count, and insert the history row.
    PayCustomer {
        /// Customer warehouse.
        w: i64,
        /// Customer district.
        d: i64,
        /// Customer selection (id or last name).
        selector: CustomerSelector,
        /// Payment amount.
        amount: f64,
        /// Payment date (yyyymmdd).
        date: i64,
    },
    /// No-op used to keep order gates dense when a transaction does not
    /// touch a stage (§3.3: events of conflicting transactions must flow
    /// through all involved ACs in one consistent order).
    Skip,
}

impl TxnOp {
    /// The conflict domain (warehouse, 1-based) of the operation; `None`
    /// for `Skip`.
    pub fn warehouse(&self) -> Option<i64> {
        match self {
            TxnOp::PayWarehouse { w, .. }
            | TxnOp::PayDistrict { w, .. }
            | TxnOp::PayCustomer { w, .. } => Some(*w),
            TxnOp::Skip => None,
        }
    }
}

/// Completion notice for a transaction (all its op groups finished).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpDone {
    /// The finished transaction.
    pub txn: TxnId,
    /// False if any op failed (engine treats this as fatal — ordered
    /// execution has no CC aborts).
    pub ok: bool,
}

/// One completion notice on the batched done channel: transaction and
/// OLAP-query completions share the protocol, so HTAP query results ride
/// the same per-chunk `DoneBatch` sends as transaction notices instead of
/// taking a singleton side channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// A transaction's op groups all finished.
    Txn(OpDone),
    /// An OLAP query finished.
    Query {
        /// The finished query.
        query: QueryId,
        /// Its result (qualifying row count).
        rows: usize,
    },
}

/// A group of completion notices delivered as one channel message — the
/// batched completion protocol: an AC emits one `DoneBatch` per drained
/// event chunk (per driver channel) instead of one `done` send per
/// transaction or query, collapsing the last per-completion channel
/// crossing into a per-chunk cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DoneBatch(pub Vec<Completion>);

/// The channel completion notices travel on.
pub type DoneSender = Sender<DoneBatch>;

/// Tracks outstanding op groups of one transaction; the AC finishing the
/// last group *collects* the completion notice (it does not send it —
/// notices are grouped per drained chunk by [`CompletionBatcher`]).
pub struct TxnTracker {
    txn: TxnId,
    remaining: AtomicU32,
    failed: AtomicBool,
    done: DoneSender,
}

impl TxnTracker {
    /// Tracker expecting `groups` op-group completions.
    pub fn new(txn: TxnId, groups: u32, done: DoneSender) -> Arc<Self> {
        assert!(groups > 0);
        Arc::new(Self {
            txn,
            remaining: AtomicU32::new(groups),
            failed: AtomicBool::new(false),
            done,
        })
    }

    /// Marks one op group complete. The last completion *returns* the
    /// notice instead of sending it; the caller owes it to a
    /// [`CompletionBatcher`] (or a direct [`DoneBatch`] send) before it
    /// next blocks — a collected-but-unflushed notice is a stalled driver.
    #[must_use = "the final notice must be flushed to the done channel"]
    pub fn group_done(&self, ok: bool) -> Option<OpDone> {
        if !ok {
            self.failed.store(true, Ordering::Release);
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let ok = !self.failed.load(Ordering::Acquire);
            Some(OpDone { txn: self.txn, ok })
        } else {
            None
        }
    }

    /// The channel the completion notice must be delivered on.
    pub fn done_sender(&self) -> &DoneSender {
        &self.done
    }

    /// The transaction being tracked.
    pub fn txn(&self) -> TxnId {
        self.txn
    }
}

/// Groups completion notices per driver channel while an AC works through
/// one drained event chunk; `flush` ships each group as a single
/// [`DoneBatch`] send.
///
/// Keyed by channel identity ([`Sender::same_channel`]) with a linear
/// scan: the number of distinct driver channels per chunk is the number
/// of driver threads, i.e. tiny.
#[derive(Default)]
pub struct CompletionBatcher {
    slots: Vec<(DoneSender, Vec<Completion>)>,
}

impl CompletionBatcher {
    /// Empty batcher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues `done` for delivery on `sender`'s channel.
    pub fn push(&mut self, sender: &DoneSender, done: Completion) {
        match self.slots.iter_mut().find(|(s, _)| s.same_channel(sender)) {
            Some((_, batch)) => batch.push(done),
            None => self.slots.push((sender.clone(), vec![done])),
        }
    }

    /// Ships every held notice, one `DoneBatch` send per channel. Must be
    /// called before the owning AC blocks or shuts down.
    pub fn flush(&mut self) {
        for (sender, batch) in self.slots.drain(..) {
            // Receiver may be gone during shutdown; that is fine.
            let _ = sender.send(DoneBatch(batch));
        }
    }

    /// Notices currently held (all channels).
    pub fn pending(&self) -> usize {
        self.slots.iter().map(|(_, b)| b.len()).sum()
    }
}

/// One stamped op group addressed to a stage AC — the payload of both the
/// single [`Event::OpGroup`] and the grouped [`Event::OpBatch`].
pub struct OpEnvelope {
    /// Transaction id.
    pub txn: TxnId,
    /// Stage discriminator: gates are per `(stage, domain)` so one AC can
    /// host several stages without confusing their orders.
    pub stage: u32,
    /// Conflict domain (warehouse index, 0-based).
    pub domain: u32,
    /// Order stamp within the domain.
    pub seq: SeqNo,
    /// The operations to apply (possibly just `Skip`).
    pub ops: Vec<TxnOp>,
    /// Group tracker.
    pub tracker: Arc<TxnTracker>,
}

impl OpEnvelope {
    /// The AC-private gate this envelope is admitted through.
    #[inline]
    pub fn gate_key(&self) -> (u32, u32) {
        (self.stage, self.domain)
    }
}

impl std::fmt::Debug for OpEnvelope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "OpEnvelope(txn={} stage={} domain={} seq={:?} ops={})",
            self.txn,
            self.stage,
            self.domain,
            self.seq,
            self.ops.len()
        )
    }
}

/// One member of a shared-execution admission window: a `QueryQ3` event an
/// AC has buffered while draining a chunk, waiting to be executed together
/// with every other Q3 request of the same chunk via one shared pipeline.
pub struct Q3Member {
    /// Query id.
    pub query: QueryId,
    /// The member's exact parameters (the shared pipeline scans with the
    /// *hull* of all member predicates and refines back to these).
    pub spec: Q3Spec,
    /// Completion channel for this member's `Completion::Query`.
    pub done: DoneSender,
}

/// An event consumed by an AnyComponent.
pub enum Event {
    /// Execute a whole transaction at the receiving AC (the *physically
    /// aggregated* execution of Figure 4 (b): shared-nothing locality,
    /// no locks, serial per partition).
    ExecuteTxn {
        /// Transaction id.
        txn: TxnId,
        /// Full request parameters.
        req: TxnRequest,
        /// Completion notification (batched per drained chunk, like op
        /// groups).
        done: DoneSender,
    },
    /// Execute a group of operations of a decomposed transaction at the
    /// receiving AC, in streaming-CC stamp order (Figure 4 (c)/(d)).
    OpGroup(OpEnvelope),
    /// A group of op groups shipped as one event: the batched form the
    /// drivers emit when several transactions' ops target the same AC.
    /// One event-stream crossing and one dispatch cover every envelope;
    /// admission order is still governed entirely by the stamps inside.
    OpBatch(Vec<OpEnvelope>),
    /// Act as an OLAP worker: execute CH-Q3 locally (used by the HTAP
    /// phases where AnyDB routes analytics to dedicated ACs).
    QueryQ3 {
        /// Query id.
        query: QueryId,
        /// Query parameters.
        spec: Q3Spec,
        /// Completion notification — a [`Completion::Query`] on the
        /// batched done channel, like every other completion.
        done: DoneSender,
    },
    /// Stop the component after draining already-admitted work.
    Shutdown,
}

impl std::fmt::Debug for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Event::ExecuteTxn { txn, .. } => write!(f, "ExecuteTxn({txn})"),
            Event::OpGroup(env) => write!(f, "OpGroup({env:?})"),
            Event::OpBatch(envs) => write!(f, "OpBatch(len={})", envs.len()),
            Event::QueryQ3 { query, .. } => write!(f, "QueryQ3({query})"),
            Event::Shutdown => write!(f, "Shutdown"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[test]
    fn txn_op_warehouse() {
        assert_eq!(
            TxnOp::PayWarehouse { w: 3, amount: 1.0 }.warehouse(),
            Some(3)
        );
        assert_eq!(TxnOp::Skip.warehouse(), None);
    }

    #[test]
    fn tracker_yields_notice_after_all_groups() {
        let (tx, _rx) = unbounded();
        let t = TxnTracker::new(TxnId(7), 3, tx);
        assert_eq!(t.group_done(true), None);
        assert_eq!(t.group_done(true), None);
        assert_eq!(
            t.group_done(true),
            Some(OpDone {
                txn: TxnId(7),
                ok: true
            })
        );
    }

    #[test]
    fn tracker_propagates_failure() {
        let (tx, _rx) = unbounded();
        let t = TxnTracker::new(TxnId(1), 2, tx);
        assert_eq!(t.group_done(false), None);
        assert_eq!(
            t.group_done(true),
            Some(OpDone {
                txn: TxnId(1),
                ok: false
            })
        );
    }

    #[test]
    fn completion_batcher_groups_per_channel() {
        let (tx_a, rx_a) = unbounded();
        let (tx_b, rx_b) = unbounded();
        let mut batcher = CompletionBatcher::new();
        batcher.push(
            &tx_a,
            Completion::Txn(OpDone {
                txn: TxnId(1),
                ok: true,
            }),
        );
        batcher.push(
            &tx_b,
            Completion::Txn(OpDone {
                txn: TxnId(2),
                ok: true,
            }),
        );
        batcher.push(
            &tx_a,
            Completion::Query {
                query: QueryId(7),
                rows: 41,
            },
        );
        assert_eq!(batcher.pending(), 3);
        // Nothing crosses a channel until flush.
        assert!(rx_a.try_recv().is_err());
        batcher.flush();
        assert_eq!(batcher.pending(), 0);
        let a = rx_a.try_recv().unwrap();
        // Transaction and query completions share one batch.
        assert_eq!(
            a.0,
            vec![
                Completion::Txn(OpDone {
                    txn: TxnId(1),
                    ok: true
                }),
                Completion::Query {
                    query: QueryId(7),
                    rows: 41
                }
            ]
        );
        assert_eq!(rx_b.try_recv().unwrap().0.len(), 1);
        // One message per channel, not per notice.
        assert!(rx_a.try_recv().is_err());
    }

    #[test]
    fn tracker_exposes_its_channel() {
        let (tx, rx) = unbounded();
        let t = TxnTracker::new(TxnId(9), 1, tx);
        let mut batcher = CompletionBatcher::new();
        let notice = t.group_done(true).expect("last group");
        batcher.push(t.done_sender(), Completion::Txn(notice));
        batcher.flush();
        assert_eq!(
            rx.try_recv().unwrap().0,
            vec![Completion::Txn(OpDone {
                txn: TxnId(9),
                ok: true
            })]
        );
    }

    #[test]
    fn event_debug_formats() {
        let (tx, _rx) = unbounded();
        let tracker = TxnTracker::new(TxnId(1), 1, tx);
        let e = Event::OpGroup(OpEnvelope {
            txn: TxnId(1),
            stage: 2,
            domain: 0,
            seq: SeqNo(5),
            ops: vec![TxnOp::Skip],
            tracker,
        });
        let s = format!("{e:?}");
        assert!(s.contains("stage=2"));
        assert!(s.contains("ops=1"));
        let b = Event::OpBatch(Vec::new());
        assert!(format!("{b:?}").contains("len=0"));
    }
}
