//! Replicated storage ACs: WAL shipping, failure detection, and
//! promotion (DESIGN.md §9).
//!
//! §2.3 of the paper sketches fault tolerance for an architecture-less
//! DBMS: storage ACs stream log events; a replacement component replays
//! them. This module makes that concrete as primary/follower pairs of
//! storage ACs connected by modeled links:
//!
//! * the **primary** ([`run_primary`]) applies client inserts, appends
//!   `Insert`+`Commit` [`LogRecord`]s, and ships them to every follower
//!   as [`ReplMsg::Records`] batches — encoded once, one frame per
//!   drained op chunk, exactly the batched-completion cadence the rest
//!   of the engine uses;
//! * the **follower** ([`run_follower`]) mirrors the records into its
//!   own [`Wal`] verbatim ([`Wal::extend_shipped`]) and applies them via
//!   the idempotent [`replay_records`], acking its replicated LSN;
//! * commit acks are **sync** (released only once every follower's ack
//!   covers the commit's LSN — durable on the follower) or **async**
//!   (acked at local append) per [`ReplMode`], delivered through the
//!   batched completion protocol ([`CompletionBatcher`]);
//! * failure detection is a **lease** over modeled time: the primary
//!   heartbeats every [`ReplConfig::heartbeat_every`]; a follower that
//!   hears nothing for [`ReplConfig::lease`] promotes itself and starts
//!   its own [`run_primary`] term. The [`Router`] lets drivers re-route
//!   in-flight and new ops to the promoted node;
//! * a crashed ex-primary rejoins via [`recover_replica`]: replay its
//!   serialized log *truncated at the replicated watermark* (its
//!   unreplicated tail never happened — the acks for it were never
//!   released), then catch up from the new primary's WAL tail with
//!   [`ReplMsg::CatchupFrom`].
//!
//! Lost record batches need no dedicated repair path: a follower that
//! sees a batch (or heartbeat) starting past its own `next_lsn` asks
//! `CatchupFrom { its next_lsn }`, and the primary answers with the WAL
//! tail — retransmission *is* the catch-up path, which is what makes the
//! shipping protocol safe over lossy links. Batches always end on a
//! transaction boundary (the primary appends `Insert`+`Commit` together),
//! so per-batch replay never sees a torn transaction.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use anydb_common::metrics::{Counter, RobustSnapshot};
use anydb_common::repl::ReplMsg;
use anydb_common::{ColumnDef, DataType, Schema};
use anydb_common::{DbError, DbResult, TableId, Tuple, TxnId, Value};
use anydb_storage::catalog::TableSpec;
use anydb_storage::recovery::{replay_records, RecoveryStats};
use anydb_storage::store::Partitioner;
use anydb_storage::wal::{LogOp, LogRecord};
use anydb_storage::{Store, Wal};
use anydb_stream::link::{DeadlineRecv, LinkReceiver, LinkSender, LinkSpec, SimLink};
use bytes::Bytes;
use crossbeam::channel::Sender as ChanSender;
use crossbeam::channel::{Receiver, TryRecvError};

use crate::event::{Completion, CompletionBatcher, DoneSender, OpDone};

/// When the primary releases a commit ack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplMode {
    /// Ack only once every follower's replicated LSN covers the commit —
    /// the commit is durable on the follower before the client hears
    /// "yes".
    Sync,
    /// Ack at local WAL append; replication trails behind. A crash can
    /// lose acked commits (the unreplicated tail) — that is the mode's
    /// documented bargain.
    Async,
}

/// Tunables for one replicated storage-AC group.
#[derive(Debug, Clone, Copy)]
pub struct ReplConfig {
    /// Commit-ack rule.
    pub mode: ReplMode,
    /// Max client ops folded into one shipped record batch (one frame,
    /// one fault decision, one ring crossing).
    pub batch_ops: usize,
    /// Primary heartbeat cadence.
    pub heartbeat_every: Duration,
    /// Follower lease: silence longer than this means the primary is
    /// dead and the follower promotes. Must comfortably exceed
    /// `heartbeat_every` plus link latency.
    pub lease: Duration,
}

impl Default for ReplConfig {
    fn default() -> Self {
        Self {
            mode: ReplMode::Sync,
            batch_ops: 64,
            heartbeat_every: Duration::from_millis(20),
            // Generous default: a loaded 1-core CI host can starve a
            // healthy primary thread for tens of milliseconds.
            lease: Duration::from_millis(500),
        }
    }
}

/// Counters for one replication group, including the follower's
/// [`RecoveryStats`] surfaced per applied batch (catch-up observability:
/// `replay_redundant_inserts` climbing while `replay_inserts` stays flat
/// is a retransmitted-tail signature, not data loss).
#[derive(Debug, Default)]
pub struct ReplMetrics {
    /// Commits acked to clients.
    pub commits: Counter,
    /// Record batches shipped by the primary (per follower).
    pub batches_shipped: Counter,
    /// Acks received by the primary.
    pub acks: Counter,
    /// Heartbeats shipped by the primary (per follower).
    pub heartbeats: Counter,
    /// Catch-up requests served by the primary.
    pub catchups: Counter,
    /// Gaps a follower detected (batch or heartbeat past its tail).
    pub gaps: Counter,
    /// Frames a follower rejected (torn bytes, failed replay) — counted,
    /// skipped, never acked, never a panic.
    pub corrupt_frames: Counter,
    /// Lease expiries that promoted a follower.
    pub promotions: Counter,
    /// Replication watermark: every LSN below this is applied on a
    /// follower. The rejoin truncation point.
    pub replicated_lsn: AtomicU64,
    /// Committed transactions replayed on the follower.
    pub replay_committed: Counter,
    /// Transactions skipped by follower replay (in-flight at a cut).
    pub replay_skipped: Counter,
    /// Inserts applied by follower replay.
    pub replay_inserts: Counter,
    /// Inserts the follower already had (retransmitted/overlapping tail).
    pub replay_redundant_inserts: Counter,
    /// Updates applied by follower replay.
    pub replay_updates: Counter,
}

impl ReplMetrics {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one replay's [`RecoveryStats`] into the counters.
    pub fn record_replay(&self, stats: &RecoveryStats) {
        self.replay_committed.add(stats.committed as u64);
        self.replay_skipped.add(stats.skipped as u64);
        self.replay_inserts.add(stats.inserts as u64);
        self.replay_redundant_inserts
            .add(stats.redundant_inserts as u64);
        self.replay_updates.add(stats.updates as u64);
    }

    /// The replication watermark (see [`ReplMetrics::replicated_lsn`]).
    pub fn watermark(&self) -> u64 {
        self.replicated_lsn.load(Ordering::Relaxed)
    }

    /// This group's contribution to the unified robustness snapshot.
    pub fn snapshot(&self) -> RobustSnapshot {
        RobustSnapshot {
            repl_commits: self.commits.get(),
            repl_batches_shipped: self.batches_shipped.get(),
            repl_acks: self.acks.get(),
            repl_heartbeats: self.heartbeats.get(),
            repl_catchups: self.catchups.get(),
            repl_gaps: self.gaps.get(),
            repl_corrupt_frames: self.corrupt_frames.get(),
            repl_promotions: self.promotions.get(),
            ..Default::default()
        }
    }
}

/// One client operation: insert `tuple` into `table`, answer on `done`
/// via the batched completion protocol. Re-submitting the same op after
/// an ack timeout is safe: a duplicate insert is recognized at its
/// primary key and acked without re-applying.
pub struct ClientOp {
    /// Transaction id (drivers derive it from the row key so re-submits
    /// carry the same id).
    pub txn: TxnId,
    /// Target table.
    pub table: TableId,
    /// The row.
    pub tuple: Tuple,
    /// Completion channel.
    pub done: DoneSender,
}

/// The primary's end of one replication connection: records/heartbeats
/// out, acks/catch-up requests in.
pub struct PrimaryEnd {
    /// Records and heartbeats toward the follower.
    pub tx: LinkSender<Bytes>,
    /// Acks and catch-up requests from the follower.
    pub rx: LinkReceiver<Bytes>,
}

/// The follower's end of one replication connection.
pub struct FollowerEnd {
    /// Records and heartbeats from the primary.
    pub rx: LinkReceiver<Bytes>,
    /// Acks and catch-up requests toward the primary.
    pub tx: LinkSender<Bytes>,
}

/// Opens one primary↔follower replication connection over `spec` (both
/// directions the same link class) with `ring` slots per direction.
pub fn repl_connection(spec: LinkSpec, ring: usize) -> (PrimaryEnd, FollowerEnd) {
    let (ship_tx, ship_rx) = SimLink::channel::<Bytes>(spec, ring);
    let (ack_tx, ack_rx) = SimLink::channel::<Bytes>(spec, ring);
    (
        PrimaryEnd {
            tx: ship_tx,
            rx: ack_rx,
        },
        FollowerEnd {
            rx: ship_rx,
            tx: ack_tx,
        },
    )
}

/// Routes client ops to whichever node is currently primary. Drivers
/// submit through this; promotion swaps the target channel, and a failed
/// submit (the old primary's channel died with it) tells the driver to
/// back off and retry — the reroute is coming.
pub struct Router {
    tx: Mutex<ChanSender<ClientOp>>,
}

impl Router {
    /// Routes to `tx` (the boot primary's op channel).
    pub fn new(tx: ChanSender<ClientOp>) -> Self {
        Self { tx: Mutex::new(tx) }
    }

    /// Re-points the router at a promoted node's op channel.
    pub fn reroute(&self, tx: ChanSender<ClientOp>) {
        *self.tx.lock().unwrap_or_else(|e| e.into_inner()) = tx;
    }

    /// Submits one op to the current primary. `Err(op)` hands the op
    /// back when the target channel is dead (primary crashed, reroute
    /// pending) — retry after a backoff.
    pub fn submit(&self, op: ClientOp) -> Result<(), ClientOp> {
        self.tx
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .send(op)
            .map_err(|e| e.0)
    }
}

/// Why [`run_primary`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrimaryExit {
    /// The injected crash switch flipped: the node stopped mid-stride —
    /// links dropped, pending acks never released.
    Crashed,
    /// The op channel closed and all pending acks were resolved.
    Stopped,
}

/// Why [`run_follower`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FollowerExit {
    /// The lease expired (or the primary's link died): this node is now
    /// primary — the caller starts its [`run_primary`] term.
    Promoted,
    /// The stop switch flipped: clean shutdown, no promotion.
    Stopped,
}

pub(crate) struct FollowerSlot {
    pub(crate) tx: LinkSender<Bytes>,
    pub(crate) rx: LinkReceiver<Bytes>,
    pub(crate) acked: u64,
    pub(crate) dead: bool,
}

/// Ships `records` to one follower as [`ReplMsg::Records`] frames,
/// chunked at transaction boundaries so every frame replays standalone.
/// Returns `false` if the link died. Shared with the shard tier, whose
/// nodes ship their WALs (2PC records included) the same way.
pub(crate) fn ship_records(
    slot: &mut FollowerSlot,
    records: &[LogRecord],
    chunk_ops: usize,
    metrics: &ReplMetrics,
) -> bool {
    let mut start = 0usize;
    while start < records.len() {
        // Take at least `chunk_ops` records, then extend to the next
        // Commit/Abort so the chunk is transaction-closed.
        let mut end = start.saturating_add(chunk_ops.max(1)).min(records.len());
        while end < records.len() && !matches!(records[end - 1].op, LogOp::Commit | LogOp::Abort) {
            end += 1;
        }
        let frame = ReplMsg::Records(records[start..end].to_vec()).encode();
        let len = frame.len();
        if slot.tx.send_blocking(frame, len).is_err() {
            slot.dead = true;
            return false;
        }
        metrics.batches_shipped.incr();
        start = end;
    }
    true
}

/// Runs one primary storage-AC term: applies client inserts, logs and
/// ships them, releases commit acks per [`ReplMode`], heartbeats, and
/// serves follower catch-up. Returns when the crash switch flips
/// ([`PrimaryExit::Crashed`] — mid-stride, nothing flushed) or when the
/// op channel closes and every pending ack is resolved
/// ([`PrimaryExit::Stopped`]).
///
/// `joins` delivers new followers mid-term (a rejoining ex-primary). In
/// sync mode with **zero** live followers the primary runs *degraded*:
/// commits ack at local append, exactly async — a deliberate
/// availability-over-durability rule, visible in the metrics as commits
/// acked while `replicated_lsn` stands still.
#[allow(clippy::too_many_arguments)]
pub fn run_primary(
    store: &Store,
    wal: &Wal,
    ops: &Receiver<ClientOp>,
    joins: &Receiver<PrimaryEnd>,
    cfg: &ReplConfig,
    crash: &AtomicBool,
    metrics: &ReplMetrics,
    term: u64,
) -> PrimaryExit {
    let mut followers: Vec<FollowerSlot> = Vec::new();
    // (commit lsn, txn, done): released once every follower acks past it.
    let mut pending: VecDeque<(u64, TxnId, DoneSender)> = VecDeque::new();
    let mut batcher = CompletionBatcher::new();
    let mut last_beat = Instant::now();
    let mut ops_open = true;
    loop {
        if crash.load(Ordering::Relaxed) {
            // Crash semantics: vanish mid-stride. Pending acks are never
            // released; links drop when `followers` goes out of scope.
            return PrimaryExit::Crashed;
        }
        let mut progressed = false;

        while let Ok(end) = joins.try_recv() {
            followers.push(FollowerSlot {
                tx: end.tx,
                rx: end.rx,
                acked: 0,
                dead: false,
            });
            progressed = true;
        }

        // Drain follower messages: acks move the watermark, catch-up
        // requests get the WAL tail.
        for slot in followers.iter_mut() {
            while let Ok(frame) = slot.rx.try_recv() {
                progressed = true;
                match ReplMsg::decode(&frame) {
                    Ok(ReplMsg::Ack { lsn }) => {
                        slot.acked = slot.acked.max(lsn);
                        metrics.acks.incr();
                    }
                    Ok(ReplMsg::CatchupFrom { lsn }) => {
                        metrics.catchups.incr();
                        let tail = wal.tail_from(lsn);
                        ship_records(slot, &tail, cfg.batch_ops * 2, metrics);
                    }
                    // A follower never sends anything else; torn frames
                    // are dropped like any other corrupt message.
                    _ => {}
                }
            }
        }
        followers.retain(|s| !s.dead);

        // Release sync acks covered by every follower's watermark. With
        // no followers the group is degraded: everything releases.
        let quorum = followers.iter().map(|s| s.acked).min();
        if let Some(q) = quorum {
            metrics.replicated_lsn.fetch_max(q, Ordering::Relaxed);
        }
        while let Some(front) = pending.front() {
            let covered = quorum.map(|q| q > front.0).unwrap_or(true);
            if !covered {
                break;
            }
            let (_, txn, done) = pending.pop_front().unwrap();
            metrics.commits.incr();
            batcher.push(&done, Completion::Txn(OpDone { txn, ok: true }));
            progressed = true;
        }

        // Drain and apply up to one chunk of client ops.
        let mut shipped: Vec<LogRecord> = Vec::new();
        for _ in 0..cfg.batch_ops {
            let op = match ops.try_recv() {
                Ok(op) => op,
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    ops_open = false;
                    break;
                }
            };
            progressed = true;
            let applied = store
                .table(op.table)
                .and_then(|t| t.insert(op.tuple.clone()));
            match applied {
                Ok(rid) => {
                    let ins = LogOp::Insert {
                        table: op.table,
                        partition: rid.partition,
                        slot: rid.slot,
                        tuple: op.tuple.clone(),
                    };
                    let ins_lsn = wal.append(op.txn, ins.clone());
                    let commit_lsn = wal.append(op.txn, LogOp::Commit);
                    shipped.push(LogRecord {
                        lsn: ins_lsn,
                        txn: op.txn,
                        op: ins,
                    });
                    shipped.push(LogRecord {
                        lsn: commit_lsn,
                        txn: op.txn,
                        op: LogOp::Commit,
                    });
                    if cfg.mode == ReplMode::Sync && !followers.is_empty() {
                        pending.push_back((commit_lsn, op.txn, op.done));
                    } else {
                        metrics.commits.incr();
                        batcher.push(
                            &op.done,
                            Completion::Txn(OpDone {
                                txn: op.txn,
                                ok: true,
                            }),
                        );
                    }
                }
                // A re-submitted op whose first run already applied: the
                // row is in the store and the WAL. Ack it — but under
                // sync, only once the *whole current log* is replicated
                // (we no longer know the original commit LSN; the tail
                // bound is conservative and correct).
                Err(DbError::DuplicateKey(_)) => {
                    let tail = wal.next_lsn().saturating_sub(1);
                    if cfg.mode == ReplMode::Sync && !followers.is_empty() {
                        pending.push_back((tail, op.txn, op.done));
                    } else {
                        batcher.push(
                            &op.done,
                            Completion::Txn(OpDone {
                                txn: op.txn,
                                ok: true,
                            }),
                        );
                    }
                }
                Err(_) => {
                    batcher.push(
                        &op.done,
                        Completion::Txn(OpDone {
                            txn: op.txn,
                            ok: false,
                        }),
                    );
                }
            }
        }

        // Ship this chunk's records: encoded per follower link, one
        // frame (transaction-closed by construction).
        if !shipped.is_empty() {
            for slot in followers.iter_mut() {
                ship_records(slot, &shipped, usize::MAX, metrics);
            }
            followers.retain(|s| !s.dead);
        }

        if last_beat.elapsed() >= cfg.heartbeat_every {
            last_beat = Instant::now();
            let beat = ReplMsg::Heartbeat {
                term,
                next_lsn: wal.next_lsn(),
            }
            .encode();
            for slot in followers.iter_mut() {
                let len = beat.len();
                if slot.tx.send_blocking(beat.clone(), len).is_err() {
                    slot.dead = true;
                } else {
                    metrics.heartbeats.incr();
                }
            }
            followers.retain(|s| !s.dead);
        }

        batcher.flush();

        if !ops_open && pending.is_empty() {
            return PrimaryExit::Stopped;
        }
        if !progressed {
            // Nothing to do: nap well under the heartbeat cadence.
            std::thread::sleep(cfg.heartbeat_every / 8);
        }
    }
}

/// Runs one follower storage-AC: mirrors shipped records into its WAL,
/// applies them with the idempotent [`replay_records`], acks its
/// replicated LSN, and watches the lease. Returns
/// [`FollowerExit::Promoted`] when the primary goes silent past
/// [`ReplConfig::lease`] (or its link drops) — the caller then starts a
/// [`run_primary`] term on the same store/WAL — or
/// [`FollowerExit::Stopped`] when `stop` flips.
///
/// The first message out is `CatchupFrom { local next_lsn }`: joining
/// and crash-recovering followers are the same code path, and a fresh
/// boot (LSN 0) just catches up from the beginning.
pub fn run_follower(
    store: &Store,
    wal: &Wal,
    end: FollowerEnd,
    cfg: &ReplConfig,
    metrics: &ReplMetrics,
    stop: &AtomicBool,
) -> FollowerExit {
    let FollowerEnd { mut rx, mut tx } = end;
    let promote = |metrics: &ReplMetrics| {
        metrics.promotions.incr();
        FollowerExit::Promoted
    };
    let hello = ReplMsg::CatchupFrom {
        lsn: wal.next_lsn(),
    }
    .encode();
    let len = hello.len();
    if tx.send_blocking(hello, len).is_err() {
        return promote(metrics);
    }
    let mut last_heard = Instant::now();
    loop {
        if stop.load(Ordering::Relaxed) {
            return FollowerExit::Stopped;
        }
        match rx.recv_deadline(last_heard + cfg.lease) {
            DeadlineRecv::Msg(frame) => {
                last_heard = Instant::now();
                match ReplMsg::decode(&frame) {
                    Ok(ReplMsg::Records(batch)) => {
                        let first = batch.first().map(|r| r.lsn).unwrap_or(0);
                        if first > wal.next_lsn() {
                            // Hole between our tail and this batch: ask
                            // for retransmission instead of applying out
                            // of order. The batch itself will come again
                            // as part of the tail.
                            metrics.gaps.incr();
                            let ask = ReplMsg::CatchupFrom {
                                lsn: wal.next_lsn(),
                            }
                            .encode();
                            let len = ask.len();
                            if tx.send_blocking(ask, len).is_err() {
                                return promote(metrics);
                            }
                            continue;
                        }
                        match replay_records(&batch, store) {
                            Ok(stats) => {
                                wal.extend_shipped(&batch);
                                metrics.record_replay(&stats);
                            }
                            Err(_) => {
                                // Semantically corrupt batch (e.g. slot
                                // mismatch): count, skip, never ack —
                                // the primary's watermark stalls and the
                                // operator sees it here.
                                metrics.corrupt_frames.incr();
                                continue;
                            }
                        }
                        let ack = ReplMsg::Ack {
                            lsn: wal.next_lsn(),
                        }
                        .encode();
                        let len = ack.len();
                        if tx.send_blocking(ack, len).is_err() {
                            return promote(metrics);
                        }
                    }
                    Ok(ReplMsg::Heartbeat { next_lsn, .. }) => {
                        if next_lsn > wal.next_lsn() {
                            // The heartbeat proves records we never saw.
                            metrics.gaps.incr();
                            let ask = ReplMsg::CatchupFrom {
                                lsn: wal.next_lsn(),
                            }
                            .encode();
                            let len = ask.len();
                            if tx.send_blocking(ask, len).is_err() {
                                return promote(metrics);
                            }
                        }
                    }
                    // Torn bytes or a message a primary never sends:
                    // reject with a counter, never a panic, never an ack.
                    _ => metrics.corrupt_frames.incr(),
                }
            }
            DeadlineRecv::TimedOut => {
                if stop.load(Ordering::Relaxed) {
                    return FollowerExit::Stopped;
                }
                return promote(metrics);
            }
            DeadlineRecv::Disconnected => {
                if stop.load(Ordering::Relaxed) {
                    return FollowerExit::Stopped;
                }
                return promote(metrics);
            }
        }
    }
}

/// Rebuilds a crashed replica from its serialized log, truncated at the
/// replicated `watermark`: records at or past it were never acked as
/// replicated, so on rejoin they *never happened* — the new primary's
/// history wins, and the survivor's divergent tail is discarded exactly
/// like a Raft log truncation. The kept prefix replays into `store` and
/// mirrors into `wal` (so the follower's first `CatchupFrom` asks from
/// the right LSN). Returns the replay stats (also folded into
/// `metrics`).
pub fn recover_replica(
    log: Bytes,
    watermark: u64,
    store: &Store,
    wal: &Wal,
    metrics: &ReplMetrics,
) -> DbResult<RecoveryStats> {
    let mut records = Wal::deserialize(log)?;
    records.retain(|r| r.lsn < watermark);
    let stats = replay_records(&records, store)?;
    wal.extend_shipped(&records);
    metrics.record_replay(&stats);
    Ok(stats)
}

/// The table every replication test and ablation drives: `(id Int pk,
/// v Int)`, one partition.
pub const REPL_TABLE: TableId = TableId(0);

/// A store holding just [`REPL_TABLE`].
pub fn repl_store() -> Store {
    let store = Store::new();
    store
        .create_table(TableSpec::new(
            Schema::new(
                "repl",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("v", DataType::Int),
                ],
                &["id"],
            ),
            1,
            Partitioner::Single,
        ))
        .expect("fresh store");
    store
}

/// The deterministic row for `id` (drivers and audits agree on it).
pub fn repl_tuple(id: i64) -> Tuple {
    Tuple::new(vec![Value::Int(id), Value::Int(id.wrapping_mul(3))])
}

/// What one driver run observed.
#[derive(Debug, Default, Clone)]
pub struct DriveStats {
    /// Ids whose commits were acked ok — the audit set: every one of
    /// these must survive a failover.
    pub acked_ids: Vec<i64>,
    /// Ops re-submitted after an ack timeout.
    pub resubmits: usize,
    /// Ops acked as failed.
    pub failed: usize,
    /// Longest gap between consecutive acks — the client-visible stall
    /// (failover = lease expiry + promotion + catch-up, all in here).
    pub max_ack_gap: Duration,
}

/// Drives `ids.len()` single-row insert transactions through `router`
/// with a bounded in-flight window, re-submitting ops unacked after
/// `ack_timeout` (same txn id — the primary recognizes duplicates), and
/// retrying submits while the router's target is dead mid-promotion.
/// Returns when every id is resolved or `overall` expires.
pub fn drive_inserts(
    router: &Router,
    ids: std::ops::Range<i64>,
    window: usize,
    ack_timeout: Duration,
    overall: Duration,
) -> DriveStats {
    let (done_tx, done_rx) = crossbeam::channel::unbounded();
    let mut stats = DriveStats::default();
    let started = Instant::now();
    let mut last_ack = Instant::now();
    let mut next = ids.start;
    // id -> last submit time, for timeout-driven re-submission.
    let mut in_flight: Vec<(i64, Instant)> = Vec::new();
    let make_op = |id: i64| ClientOp {
        txn: TxnId(id as u64),
        table: REPL_TABLE,
        tuple: repl_tuple(id),
        done: done_tx.clone(),
    };
    let submit = |op: ClientOp, stats: &mut DriveStats| -> bool {
        let mut op = op;
        loop {
            match router.submit(op) {
                Ok(()) => return true,
                Err(back) => {
                    // Primary down, reroute pending: back off and retry
                    // unless the whole run is out of time.
                    if started.elapsed() > overall {
                        let _ = stats;
                        return false;
                    }
                    op = back;
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    };
    while (!in_flight.is_empty() || next < ids.end) && started.elapsed() <= overall {
        // Top up the window.
        while in_flight.len() < window && next < ids.end {
            let id = next;
            next += 1;
            if !submit(make_op(id), &mut stats) {
                return stats;
            }
            in_flight.push((id, Instant::now()));
        }
        // Collect completions.
        let wait = Duration::from_millis(1);
        if let Ok(batch) = done_rx.recv_timeout(wait) {
            let mut drain = vec![batch];
            while let Ok(more) = done_rx.try_recv() {
                drain.push(more);
            }
            for batch in drain {
                for c in batch.0 {
                    let Completion::Txn(OpDone { txn, ok }) = c else {
                        continue;
                    };
                    let id = txn.0 as i64;
                    let Some(pos) = in_flight.iter().position(|&(i, _)| i == id) else {
                        continue; // late duplicate ack
                    };
                    in_flight.swap_remove(pos);
                    let now = Instant::now();
                    stats.max_ack_gap = stats.max_ack_gap.max(now - last_ack);
                    last_ack = now;
                    if ok {
                        stats.acked_ids.push(id);
                    } else {
                        stats.failed += 1;
                    }
                }
            }
        }
        // Re-submit anything the (possibly dead) primary never answered.
        for (id, submitted_at) in in_flight.iter_mut() {
            if submitted_at.elapsed() > ack_timeout {
                stats.resubmits += 1;
                if !submit(make_op(*id), &mut stats) {
                    return stats;
                }
                *submitted_at = Instant::now();
            }
        }
    }
    stats.acked_ids.sort_unstable();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use anydb_common::Rid;

    #[test]
    fn recover_replica_truncates_at_the_watermark() {
        // A log with three committed inserts, watermark covering two:
        // the third (unreplicated) insert never happened.
        let wal = Wal::new();
        let store = repl_store();
        let t = store.table(REPL_TABLE).unwrap();
        for id in 0..3i64 {
            let rid = t.insert(repl_tuple(id)).unwrap();
            wal.append(
                TxnId(id as u64),
                LogOp::Insert {
                    table: REPL_TABLE,
                    partition: rid.partition,
                    slot: rid.slot,
                    tuple: repl_tuple(id),
                },
            );
            wal.append(TxnId(id as u64), LogOp::Commit);
        }
        let watermark = 4; // lsns 0..=3: first two transactions
        let fresh = repl_store();
        let fresh_wal = Wal::new();
        let metrics = ReplMetrics::new();
        let stats =
            recover_replica(wal.serialize(), watermark, &fresh, &fresh_wal, &metrics).unwrap();
        assert_eq!(stats.committed, 2);
        assert_eq!(stats.inserts, 2);
        let t = fresh.table(REPL_TABLE).unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(fresh_wal.next_lsn(), 4);
        // The truncated tail is gone: slot 2 is free for the new
        // primary's history.
        assert!(t
            .read(Rid::new(REPL_TABLE, anydb_common::PartitionId(0), 2))
            .is_err());
        assert_eq!(metrics.replay_committed.get(), 2);
        assert_eq!(metrics.replay_inserts.get(), 2);
    }

    #[test]
    fn router_hands_back_ops_on_dead_channels_until_reroute() {
        let (tx, rx) = crossbeam::channel::unbounded::<ClientOp>();
        let (done, _keep) = crossbeam::channel::unbounded();
        let router = Router::new(tx);
        drop(rx); // primary crashed
        let op = ClientOp {
            txn: TxnId(1),
            table: REPL_TABLE,
            tuple: repl_tuple(1),
            done: done.clone(),
        };
        let op = router.submit(op).expect_err("dead channel hands back");
        let (tx2, rx2) = crossbeam::channel::unbounded::<ClientOp>();
        router.reroute(tx2);
        assert!(router.submit(op).is_ok(), "rerouted channel accepts");
        assert_eq!(rx2.try_recv().unwrap().txn, TxnId(1));
    }

    #[test]
    fn ship_records_chunks_on_txn_boundaries() {
        let wal = Wal::new();
        for t in 0..6u64 {
            wal.append(
                TxnId(t),
                LogOp::Insert {
                    table: REPL_TABLE,
                    partition: anydb_common::PartitionId(0),
                    slot: t as u32,
                    tuple: repl_tuple(t as i64),
                },
            );
            wal.append(TxnId(t), LogOp::Commit);
        }
        let (ptx, mut frx) = SimLink::channel::<Bytes>(LinkSpec::instant(), 64);
        let (_ftx, prx) = SimLink::channel::<Bytes>(LinkSpec::instant(), 64);
        let mut slot = FollowerSlot {
            tx: ptx,
            rx: prx,
            acked: 0,
            dead: false,
        };
        let metrics = ReplMetrics::new();
        // Chunk size 3 lands mid-transaction; chunks must extend to the
        // next Commit so each frame replays standalone.
        assert!(ship_records(&mut slot, &wal.snapshot(), 3, &metrics));
        let mut frames = Vec::new();
        while let Ok(f) = frx.try_recv() {
            frames.push(f);
        }
        assert!(frames.len() > 1, "chunking never split");
        let store = repl_store();
        let follower_wal = Wal::new();
        for f in &frames {
            let Ok(ReplMsg::Records(batch)) = ReplMsg::decode(f) else {
                panic!("not a records frame");
            };
            assert!(
                matches!(batch.last().unwrap().op, LogOp::Commit | LogOp::Abort),
                "frame not transaction-closed"
            );
            replay_records(&batch, &store).unwrap();
            follower_wal.extend_shipped(&batch);
        }
        assert_eq!(store.table(REPL_TABLE).unwrap().row_count(), 6);
        assert_eq!(follower_wal.next_lsn(), wal.next_lsn());
    }
}
