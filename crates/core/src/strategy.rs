//! Transaction decomposition per execution strategy (§3.2, Figure 4).
//!
//! The same payment transaction can be executed:
//!
//! * **aggregated** (Figure 4 b): the whole event stream at one AC,
//! * **static intra-transaction** (Figure 4 c): every operation farmed
//!   out to a different AC, with a round trip per operation — the naive
//!   parallelization whose overhead dominates in Figure 5,
//! * **precise intra-transaction** (Figure 4 d): two *balanced*
//!   sub-sequences — the brief updates (warehouse + district) and the
//!   long customer range scan — each on its own AC,
//! * **streaming CC** (§3.3): per-stage ACs consuming ops of all
//!   transactions in one consistent stamp order, forming a pipeline.

use anydb_workload::tpcc::gen::PaymentParams;

use crate::event::TxnOp;

/// The four execution strategies the engine supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Whole transaction at the AC owning the home warehouse; no
    /// decomposition, no locks (serial per partition).
    SharedNothing,
    /// Each operation dispatched to its stage AC *sequentially*, waiting
    /// for the ack before sending the next (naive intra-txn parallelism).
    StaticIntra,
    /// Two balanced sub-sequences dispatched in parallel.
    PreciseIntra,
    /// All stage ops dispatched at once; stages pipeline independently in
    /// stamp order (coordination-free streaming CC).
    StreamingCc,
}

impl Strategy {
    /// Label used by the figure harnesses (matches the paper's legend).
    pub fn label(self) -> &'static str {
        match self {
            Strategy::SharedNothing => "AnyDB Shared-Nothing",
            Strategy::StaticIntra => "AnyDB Static Intra-Txn",
            Strategy::PreciseIntra => "AnyDB Precise Intra-Txn",
            Strategy::StreamingCc => "AnyDB Streaming CC",
        }
    }
}

/// The ordered operations of one payment transaction (Figure 4 a).
pub fn payment_ops(p: &PaymentParams) -> Vec<TxnOp> {
    vec![
        TxnOp::PayWarehouse {
            w: p.w_id,
            amount: p.amount,
        },
        TxnOp::PayDistrict {
            w: p.w_id,
            d: p.d_id,
            amount: p.amount,
        },
        TxnOp::PayCustomer {
            w: p.c_w_id,
            d: p.c_d_id,
            selector: p.customer.clone(),
            amount: p.amount,
            date: p.date,
        },
    ]
}

/// Stage ids used by the decomposed strategies. Stages are logical; the
/// engine maps them onto however many ACs it has.
pub mod stages {
    /// Warehouse-update stage.
    pub const WAREHOUSE: u32 = 0;
    /// District-update stage.
    pub const DISTRICT: u32 = 1;
    /// Customer-resolve/update (+history) stage.
    pub const CUSTOMER: u32 = 2;
    /// Number of stages.
    pub const COUNT: u32 = 3;
}

/// Groups payment ops by stage: `(stage, ops)`, one entry per stage, in
/// stage order. Every stage appears (with `Skip` if untouched) so order
/// gates stay dense.
pub fn payment_stage_groups(p: &PaymentParams) -> Vec<(u32, Vec<TxnOp>)> {
    vec![
        (
            stages::WAREHOUSE,
            vec![TxnOp::PayWarehouse {
                w: p.w_id,
                amount: p.amount,
            }],
        ),
        (
            stages::DISTRICT,
            vec![TxnOp::PayDistrict {
                w: p.w_id,
                d: p.d_id,
                amount: p.amount,
            }],
        ),
        (
            stages::CUSTOMER,
            vec![TxnOp::PayCustomer {
                w: p.c_w_id,
                d: p.c_d_id,
                selector: p.customer.clone(),
                amount: p.amount,
                date: p.date,
            }],
        ),
    ]
}

/// The two balanced sub-sequences of Figure 4 (d): brief updates
/// (warehouse + district) on one AC, the customer scan on another. Both
/// groups are expressed as stage groups so the same gate machinery
/// applies; `PreciseIntra` maps the first two stages to one AC.
pub fn payment_precise_groups(p: &PaymentParams) -> [(u32, Vec<TxnOp>); 2] {
    [
        (
            stages::WAREHOUSE,
            vec![
                TxnOp::PayWarehouse {
                    w: p.w_id,
                    amount: p.amount,
                },
                TxnOp::PayDistrict {
                    w: p.w_id,
                    d: p.d_id,
                    amount: p.amount,
                },
            ],
        ),
        (
            stages::CUSTOMER,
            vec![TxnOp::PayCustomer {
                w: p.c_w_id,
                d: p.c_d_id,
                selector: p.customer.clone(),
                amount: p.amount,
                date: p.date,
            }],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use anydb_workload::tpcc::CustomerSelector;

    fn p() -> PaymentParams {
        PaymentParams {
            w_id: 2,
            d_id: 3,
            c_w_id: 2,
            c_d_id: 3,
            customer: CustomerSelector::ById(7),
            amount: 42.0,
            date: 2020_01_01,
        }
    }

    #[test]
    fn payment_ops_order_matches_figure_4a() {
        let ops = payment_ops(&p());
        assert_eq!(ops.len(), 3);
        assert!(matches!(ops[0], TxnOp::PayWarehouse { w: 2, .. }));
        assert!(matches!(ops[1], TxnOp::PayDistrict { w: 2, d: 3, .. }));
        assert!(matches!(ops[2], TxnOp::PayCustomer { .. }));
    }

    #[test]
    fn stage_groups_cover_all_stages() {
        let groups = payment_stage_groups(&p());
        assert_eq!(groups.len(), stages::COUNT as usize);
        let stages_seen: Vec<u32> = groups.iter().map(|(s, _)| *s).collect();
        assert_eq!(stages_seen, vec![0, 1, 2]);
        assert!(groups.iter().all(|(_, ops)| !ops.is_empty()));
    }

    #[test]
    fn precise_groups_balance_updates_vs_scan() {
        let [a, b] = payment_precise_groups(&p());
        assert_eq!(a.1.len(), 2); // brief updates
        assert_eq!(b.1.len(), 1); // long scan
        assert!(matches!(b.1[0], TxnOp::PayCustomer { .. }));
    }

    #[test]
    fn labels_match_paper_legend() {
        assert_eq!(Strategy::StreamingCc.label(), "AnyDB Streaming CC");
        assert_eq!(Strategy::SharedNothing.label(), "AnyDB Shared-Nothing");
    }
}
