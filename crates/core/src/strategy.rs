//! Transaction decomposition per execution strategy (§3.2, Figure 4).
//!
//! The same payment transaction can be executed:
//!
//! * **aggregated** (Figure 4 b): the whole event stream at one AC,
//! * **static intra-transaction** (Figure 4 c): every operation farmed
//!   out to a different AC, with a round trip per operation — the naive
//!   parallelization whose overhead dominates in Figure 5,
//! * **precise intra-transaction** (Figure 4 d): two *balanced*
//!   sub-sequences — the brief updates (warehouse + district) and the
//!   long customer range scan — each on its own AC,
//! * **streaming CC** (§3.3): per-stage ACs consuming ops of all
//!   transactions in one consistent stamp order, forming a pipeline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

pub use anydb_stream::adaptive::AdaptiveBatch;
use anydb_stream::inbox::InboxSender;
use anydb_workload::tpcc::gen::PaymentParams;

use crate::event::{Event, OpEnvelope, TxnOp};

/// The four execution strategies the engine supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Whole transaction at the AC owning the home warehouse; no
    /// decomposition, no locks (serial per partition).
    SharedNothing,
    /// Each operation dispatched to its stage AC *sequentially*, waiting
    /// for the ack before sending the next (naive intra-txn parallelism).
    StaticIntra,
    /// Two balanced sub-sequences dispatched in parallel.
    PreciseIntra,
    /// All stage ops dispatched at once; stages pipeline independently in
    /// stamp order (coordination-free streaming CC).
    StreamingCc,
}

impl Strategy {
    /// Every strategy, in discriminant order.
    pub const ALL: [Strategy; 4] = [
        Strategy::SharedNothing,
        Strategy::StaticIntra,
        Strategy::PreciseIntra,
        Strategy::StreamingCc,
    ];

    /// Label used by the figure harnesses (matches the paper's legend).
    pub fn label(self) -> &'static str {
        match self {
            Strategy::SharedNothing => "AnyDB Shared-Nothing",
            Strategy::StaticIntra => "AnyDB Static Intra-Txn",
            Strategy::PreciseIntra => "AnyDB Precise Intra-Txn",
            Strategy::StreamingCc => "AnyDB Streaming CC",
        }
    }

    /// The plan-cell code (fits in [`DispatchPlan`]'s low byte).
    fn code(self) -> u64 {
        match self {
            Strategy::SharedNothing => 0,
            Strategy::StaticIntra => 1,
            Strategy::PreciseIntra => 2,
            Strategy::StreamingCc => 3,
        }
    }

    /// Inverse of [`Strategy::code`].
    fn from_code(code: u64) -> Strategy {
        match code {
            0 => Strategy::SharedNothing,
            1 => Strategy::StaticIntra,
            2 => Strategy::PreciseIntra,
            3 => Strategy::StreamingCc,
            other => unreachable!("corrupt plan cell: strategy code {other}"),
        }
    }
}

/// The live, swappable routing decision: which [`Strategy`] drivers use
/// to decompose and route the *next* transactions they admit.
///
/// The plan packs `(epoch << 8) | strategy code` into one `AtomicU64`, so
/// consulting it at a transaction-window boundary is a single acquire
/// load — no lock on the admission path. [`install`] bumps the epoch
/// under an internal mutex (serializing concurrent controllers and
/// keeping the install history consistent) and publishes the new word
/// with a release store.
///
/// The epoch is the swap protocol's token: a driver that reads a *newer*
/// epoch than the one it admitted its in-flight transactions under must
/// first drain those to zero (their completions are tracked on the same
/// done channel regardless of epoch), then rendezvous with the other
/// drivers, and only then admit under the new strategy — so the system
/// never executes two strategies' decompositions against the same data
/// concurrently (no torn routing; see `engine.rs` and DESIGN.md §11).
///
/// A static run is the degenerate case: one epoch, never reinstalled.
///
/// [`install`]: DispatchPlan::install
#[derive(Debug)]
pub struct DispatchPlan {
    cell: AtomicU64,
    /// Every strategy ever installed, in order (the executed sequence
    /// [`crate::engine::PhaseResult`] reports).
    installs: Mutex<Vec<Strategy>>,
}

impl DispatchPlan {
    /// A plan starting at `initial`, epoch 0.
    pub fn new(initial: Strategy) -> Self {
        Self {
            cell: AtomicU64::new(initial.code()),
            installs: Mutex::new(vec![initial]),
        }
    }

    /// The current `(epoch, strategy)` pair — one atomic load.
    #[inline]
    pub fn current(&self) -> (u64, Strategy) {
        let word = self.cell.load(Ordering::Acquire);
        (word >> 8, Strategy::from_code(word & 0xFF))
    }

    /// The strategy currently in effect.
    pub fn strategy(&self) -> Strategy {
        self.current().1
    }

    /// The current epoch (bumped once per effective [`install`]).
    ///
    /// [`install`]: DispatchPlan::install
    pub fn epoch(&self) -> u64 {
        self.current().0
    }

    /// Installs `next` as the live strategy, bumping the epoch. Returns
    /// `false` (and leaves the epoch alone) when `next` is already the
    /// current strategy — re-affirming a plan is not a swap and must not
    /// force drivers through a drain barrier.
    pub fn install(&self, next: Strategy) -> bool {
        let mut installs = self.installs.lock().expect("plan history poisoned");
        let (epoch, cur) = self.current();
        if cur == next {
            return false;
        }
        self.cell
            .store(((epoch + 1) << 8) | next.code(), Ordering::Release);
        installs.push(next);
        true
    }

    /// Every strategy installed so far, in execution order (the first
    /// entry is the initial strategy).
    pub fn history(&self) -> Vec<Strategy> {
        self.installs.lock().expect("plan history poisoned").clone()
    }

    /// Number of strategy swaps performed (installs after the first).
    pub fn switches(&self) -> u64 {
        (self.installs.lock().expect("plan history poisoned").len() - 1) as u64
    }
}

/// The ordered operations of one payment transaction (Figure 4 a).
pub fn payment_ops(p: &PaymentParams) -> Vec<TxnOp> {
    vec![
        TxnOp::PayWarehouse {
            w: p.w_id,
            amount: p.amount,
        },
        TxnOp::PayDistrict {
            w: p.w_id,
            d: p.d_id,
            amount: p.amount,
        },
        TxnOp::PayCustomer {
            w: p.c_w_id,
            d: p.c_d_id,
            selector: p.customer.clone(),
            amount: p.amount,
            date: p.date,
        },
    ]
}

/// Stage ids used by the decomposed strategies. Stages are logical; the
/// engine maps them onto however many ACs it has.
pub mod stages {
    /// Warehouse-update stage.
    pub const WAREHOUSE: u32 = 0;
    /// District-update stage.
    pub const DISTRICT: u32 = 1;
    /// Customer-resolve/update (+history) stage.
    pub const CUSTOMER: u32 = 2;
    /// Number of stages.
    pub const COUNT: u32 = 3;
}

/// Groups payment ops by stage: `(stage, ops)`, one entry per stage, in
/// stage order. Every stage appears (with `Skip` if untouched) so order
/// gates stay dense.
pub fn payment_stage_groups(p: &PaymentParams) -> Vec<(u32, Vec<TxnOp>)> {
    vec![
        (
            stages::WAREHOUSE,
            vec![TxnOp::PayWarehouse {
                w: p.w_id,
                amount: p.amount,
            }],
        ),
        (
            stages::DISTRICT,
            vec![TxnOp::PayDistrict {
                w: p.w_id,
                d: p.d_id,
                amount: p.amount,
            }],
        ),
        (
            stages::CUSTOMER,
            vec![TxnOp::PayCustomer {
                w: p.c_w_id,
                d: p.c_d_id,
                selector: p.customer.clone(),
                amount: p.amount,
                date: p.date,
            }],
        ),
    ]
}

/// The two balanced sub-sequences of Figure 4 (d): brief updates
/// (warehouse + district) on one AC, the customer scan on another. Both
/// groups are expressed as stage groups so the same gate machinery
/// applies; `PreciseIntra` maps the first two stages to one AC.
pub fn payment_precise_groups(p: &PaymentParams) -> [(u32, Vec<TxnOp>); 2] {
    [
        (
            stages::WAREHOUSE,
            vec![
                TxnOp::PayWarehouse {
                    w: p.w_id,
                    amount: p.amount,
                },
                TxnOp::PayDistrict {
                    w: p.w_id,
                    d: p.d_id,
                    amount: p.amount,
                },
            ],
        ),
        (
            stages::CUSTOMER,
            vec![TxnOp::PayCustomer {
                w: p.c_w_id,
                d: p.c_d_id,
                selector: p.customer.clone(),
                amount: p.amount,
                date: p.date,
            }],
        ),
    ]
}

/// Maps a logical stage onto one of `n_acs` workers — the routing rule
/// every decomposed strategy shares.
#[inline]
pub fn stage_ac(stage: u32, n_acs: usize) -> usize {
    stage as usize % n_acs
}

/// How event batches are sized: pinned, or adapted online from backlog.
///
/// This replaces the old static `EngineConfig::batch` knob. `Static(n)`
/// reproduces it exactly (`Static(1)` is the per-event path); `Adaptive`
/// sizes batches from the depth mirrors the streams maintain — deep
/// queues grow the batch toward `max` (throughput), empty queues decay it
/// toward `min` (latency) — so one configuration serves both a loaded and
/// an idle system, the workload-adaptivity the paper's routing argument
/// extends to every knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchMode {
    /// Fixed batch size for the whole run.
    Static(usize),
    /// Depth-driven batch size ranging over `[min, max]`.
    Adaptive {
        /// Idle-side floor (1 = per-event dispatch when the queue drains).
        min: usize,
        /// Loaded-side cap.
        max: usize,
    },
    /// Latency-target batch size: grow the batch until the measured p99
    /// queueing delay reaches `budget`, shed it the moment the budget is
    /// blown. Drivers feed the controller their window drain time (the
    /// delay a newly admitted event experiences) through
    /// [`DispatchBatcher::observe_delay`]; consumers that only see
    /// backlog (the AC drain loop) keep steering the same controller by
    /// depth over `[1, max]`. This gives the morph controller a real SLO
    /// knob instead of a size range.
    Slo {
        /// p99 queueing-delay budget.
        budget: Duration,
        /// Loaded-side cap.
        max: usize,
    },
}

impl BatchMode {
    /// The default adaptive range: per-event when idle, up to the old
    /// static default of 64 under load.
    pub const fn adaptive() -> Self {
        BatchMode::Adaptive { min: 1, max: 64 }
    }

    /// Builds the controller realizing this mode.
    pub fn controller(self) -> AdaptiveBatch {
        match self {
            BatchMode::Static(n) => AdaptiveBatch::fixed(n),
            BatchMode::Adaptive { min, max } => AdaptiveBatch::new(min, max),
            BatchMode::Slo { budget, max } => AdaptiveBatch::with_slo(1, max, budget),
        }
    }

    /// Largest batch this mode can produce (what to pre-allocate for).
    pub fn max(self) -> usize {
        match self {
            BatchMode::Static(n) => n,
            BatchMode::Adaptive { max, .. } | BatchMode::Slo { max, .. } => max,
        }
    }
}

impl Default for BatchMode {
    fn default() -> Self {
        Self::adaptive()
    }
}

/// Groups op events per destination AC before sending.
///
/// Drivers push envelopes as transactions decompose; the batcher holds
/// them per AC and ships a whole group as one [`Event::OpBatch`] when the
/// current batch size is reached (or on [`DispatchBatcher::flush_all`],
/// which drivers MUST call before blocking on completions — an envelope
/// held here is invisible to the gates, and stamps only advance when every
/// envelope eventually arrives). While the current batch size is 1 every
/// envelope is sent immediately as a plain [`Event::OpGroup`], which is
/// exactly the pre-batching behavior — that end of the knob trades
/// throughput back for minimum latency.
///
/// The batch size comes from an [`AdaptiveBatch`] controller; drivers
/// feed it destination backlog via [`DispatchBatcher::observe`] once per
/// dispatch window, so the flush threshold deepens under load and decays
/// to per-event dispatch when the ACs are keeping up.
pub struct DispatchBatcher {
    pending: Vec<Vec<OpEnvelope>>,
    ctrl: AdaptiveBatch,
}

impl DispatchBatcher {
    /// Batcher over `n_acs` destinations sized by `mode`.
    pub fn new(n_acs: usize, mode: BatchMode) -> Self {
        Self {
            pending: (0..n_acs).map(|_| Vec::new()).collect(),
            ctrl: mode.controller(),
        }
    }

    /// Feeds the controller one backlog sample (deepest destination
    /// queue); returns the batch size now in effect.
    pub fn observe(&mut self, depth: usize) -> usize {
        self.ctrl.observe(depth)
    }

    /// Feeds the controller one measured p99 queueing delay (SLO modes
    /// only; a no-op otherwise). Returns the batch size now in effect.
    pub fn observe_delay(&mut self, p99: Duration) -> usize {
        self.ctrl.observe_delay(p99)
    }

    /// The flush threshold currently in effect.
    pub fn batch(&self) -> usize {
        self.ctrl.current()
    }

    /// Queues an envelope for `ac`, flushing that AC's group if full.
    pub fn push(&mut self, ac: usize, env: OpEnvelope, senders: &[InboxSender<Event>]) {
        let batch = self.ctrl.current();
        if batch <= 1 {
            senders[ac].send(Event::OpGroup(env));
            return;
        }
        let slot = &mut self.pending[ac];
        slot.push(env);
        if slot.len() >= batch {
            senders[ac].send(Event::OpBatch(std::mem::take(slot)));
        }
    }

    /// Ships every held envelope. Call before waiting on completions.
    pub fn flush_all(&mut self, senders: &[InboxSender<Event>]) {
        for (ac, slot) in self.pending.iter_mut().enumerate() {
            match slot.len() {
                0 => {}
                1 => senders[ac].send(Event::OpGroup(slot.pop().expect("len 1"))),
                _ => senders[ac].send(Event::OpBatch(std::mem::take(slot))),
            }
        }
    }

    /// Envelopes currently held (all ACs).
    pub fn held(&self) -> usize {
        self.pending.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anydb_workload::tpcc::CustomerSelector;

    fn p() -> PaymentParams {
        PaymentParams {
            w_id: 2,
            d_id: 3,
            c_w_id: 2,
            c_d_id: 3,
            customer: CustomerSelector::ById(7),
            amount: 42.0,
            date: 20_200_101,
        }
    }

    #[test]
    fn payment_ops_order_matches_figure_4a() {
        let ops = payment_ops(&p());
        assert_eq!(ops.len(), 3);
        assert!(matches!(ops[0], TxnOp::PayWarehouse { w: 2, .. }));
        assert!(matches!(ops[1], TxnOp::PayDistrict { w: 2, d: 3, .. }));
        assert!(matches!(ops[2], TxnOp::PayCustomer { .. }));
    }

    #[test]
    fn stage_groups_cover_all_stages() {
        let groups = payment_stage_groups(&p());
        assert_eq!(groups.len(), stages::COUNT as usize);
        let stages_seen: Vec<u32> = groups.iter().map(|(s, _)| *s).collect();
        assert_eq!(stages_seen, vec![0, 1, 2]);
        assert!(groups.iter().all(|(_, ops)| !ops.is_empty()));
    }

    #[test]
    fn precise_groups_balance_updates_vs_scan() {
        let [a, b] = payment_precise_groups(&p());
        assert_eq!(a.1.len(), 2); // brief updates
        assert_eq!(b.1.len(), 1); // long scan
        assert!(matches!(b.1[0], TxnOp::PayCustomer { .. }));
    }

    #[test]
    fn labels_match_paper_legend() {
        assert_eq!(Strategy::StreamingCc.label(), "AnyDB Streaming CC");
        assert_eq!(Strategy::SharedNothing.label(), "AnyDB Shared-Nothing");
    }

    #[test]
    fn dispatch_batcher_groups_per_destination() {
        use crate::event::TxnTracker;
        use anydb_common::TxnId;
        use anydb_stream::inbox::Inbox;
        use anydb_txn::sequencer::SeqNo;
        use crossbeam::channel::unbounded;

        let (tx0, rx0) = Inbox::new();
        let (tx1, rx1) = Inbox::new();
        let senders = vec![tx0, tx1];
        let (done_tx, _done_rx) = unbounded();
        let env = |txn: u64, stage: u32| OpEnvelope {
            txn: TxnId(txn),
            stage,
            domain: 0,
            seq: SeqNo(txn),
            ops: vec![TxnOp::Skip],
            tracker: TxnTracker::new(TxnId(txn), 1, done_tx.clone()),
        };

        let mut b = DispatchBatcher::new(2, BatchMode::Static(2));
        b.push(stage_ac(0, 2), env(0, 0), &senders);
        b.push(stage_ac(1, 2), env(1, 1), &senders);
        assert_eq!(b.held(), 2);
        // Second envelope for AC 0 hits the batch size and flushes.
        b.push(stage_ac(2, 2), env(2, 2), &senders);
        assert_eq!(b.held(), 1);
        assert!(matches!(rx0.pop(), Ok(Event::OpBatch(envs)) if envs.len() == 2));
        // AC 1 still held; flush_all ships the single leftover as OpGroup.
        b.flush_all(&senders);
        assert_eq!(b.held(), 0);
        assert!(matches!(rx1.pop(), Ok(Event::OpGroup(_))));

        // batch <= 1 bypasses grouping entirely.
        let mut unbatched = DispatchBatcher::new(2, BatchMode::Static(1));
        unbatched.push(0, env(9, 0), &senders);
        assert_eq!(unbatched.held(), 0);
        assert!(matches!(rx0.pop(), Ok(Event::OpGroup(_))));
    }

    #[test]
    fn batch_mode_builds_matching_controllers() {
        let pinned = BatchMode::Static(8).controller();
        assert_eq!((pinned.min(), pinned.max()), (8, 8));
        assert!(!pinned.is_adaptive());
        let adaptive = BatchMode::default().controller();
        assert_eq!((adaptive.min(), adaptive.max()), (1, 64));
        assert_eq!(BatchMode::default().max(), 64);
        let slo = BatchMode::Slo {
            budget: Duration::from_millis(2),
            max: 128,
        };
        let ctrl = slo.controller();
        assert_eq!((ctrl.min(), ctrl.max()), (1, 128));
        assert_eq!(ctrl.slo(), Some(Duration::from_millis(2)));
        assert_eq!(slo.max(), 128);
    }

    #[test]
    fn plan_codes_roundtrip_every_strategy() {
        for s in Strategy::ALL {
            assert_eq!(Strategy::from_code(s.code()), s);
        }
    }

    #[test]
    fn plan_install_bumps_epoch_and_records_history() {
        let plan = DispatchPlan::new(Strategy::SharedNothing);
        assert_eq!(plan.current(), (0, Strategy::SharedNothing));
        assert_eq!(plan.switches(), 0);

        // Re-affirming the current strategy is not a swap.
        assert!(!plan.install(Strategy::SharedNothing));
        assert_eq!(plan.epoch(), 0);

        assert!(plan.install(Strategy::StreamingCc));
        assert_eq!(plan.current(), (1, Strategy::StreamingCc));
        assert!(plan.install(Strategy::SharedNothing));
        assert_eq!(plan.current(), (2, Strategy::SharedNothing));
        assert_eq!(
            plan.history(),
            vec![
                Strategy::SharedNothing,
                Strategy::StreamingCc,
                Strategy::SharedNothing
            ]
        );
        assert_eq!(plan.switches(), 2);
    }

    #[test]
    fn plan_reads_are_consistent_under_concurrent_installs() {
        use std::sync::Arc;
        let plan = Arc::new(DispatchPlan::new(Strategy::SharedNothing));
        let reader = {
            let plan = plan.clone();
            std::thread::spawn(move || {
                for _ in 0..10_000 {
                    // The packed word always unpacks to a valid strategy
                    // (from_code would panic on a torn read).
                    let (_, s) = plan.current();
                    assert!(Strategy::ALL.contains(&s));
                }
            })
        };
        for i in 0..1000u64 {
            plan.install(Strategy::ALL[(i % 4) as usize]);
        }
        reader.join().unwrap();
        assert_eq!(plan.epoch(), plan.switches());
    }

    #[test]
    fn adaptive_batcher_follows_backlog() {
        use crate::event::TxnTracker;
        use anydb_common::TxnId;
        use anydb_stream::inbox::Inbox;
        use anydb_txn::sequencer::SeqNo;
        use crossbeam::channel::unbounded;

        let (tx0, rx0) = Inbox::new();
        let senders = vec![tx0];
        let (done_tx, _done_rx) = unbounded();
        let env = |txn: u64| OpEnvelope {
            txn: TxnId(txn),
            stage: 0,
            domain: 0,
            seq: SeqNo(txn),
            ops: vec![TxnOp::Skip],
            tracker: TxnTracker::new(TxnId(txn), 1, done_tx.clone()),
        };

        let mut b = DispatchBatcher::new(1, BatchMode::Adaptive { min: 1, max: 4 });
        // Idle destination: per-event dispatch.
        assert_eq!(b.observe(0), 1);
        b.push(0, env(0), &senders);
        assert_eq!(b.held(), 0);
        assert!(matches!(rx0.pop(), Ok(Event::OpGroup(_))));
        // Deep destination: threshold grows (doubling, capped at max) and
        // envelopes group.
        assert_eq!(b.observe(100), 2);
        assert_eq!(b.observe(100), 4);
        assert_eq!(b.observe(100), 4);
        for t in 1..=4 {
            b.push(0, env(t), &senders);
        }
        assert_eq!(b.held(), 0);
        assert!(matches!(rx0.pop(), Ok(Event::OpBatch(envs)) if envs.len() == 4));
        // Drained again: decays back toward 1.
        b.observe(0);
        b.observe(0);
        assert_eq!(b.batch(), 1);
    }
}
