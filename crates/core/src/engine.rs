//! The AnyDB engine: boots AnyComponents and drives OLTP phases.
//!
//! The engine realizes the paper's per-query architecture freedom in its
//! simplest honest form: the *routing decision* — which AC an event goes
//! to, whole transactions vs. op groups, pipelined vs. per-op round trips
//! — is taken per transaction according to the configured
//! [`Strategy`], over one shared pool of generic ACs. Switching strategy
//! requires no reconfiguration of the components themselves; they just
//! receive different events (§2.1: "shift its architecture just in an
//! instant").

use std::sync::Arc;
use std::time::{Duration, Instant};

use anydb_common::metrics::Counter;
use anydb_common::{AcId, QueryId};
use anydb_stream::inbox::InboxSender;
use anydb_txn::history::History;
use anydb_txn::sequencer::Sequencer;
use anydb_txn::ts::TxnIdGen;
use anydb_workload::chbench::Q3Spec;
use anydb_workload::phases::{Phase, PhaseKind, PhaseSchedule};
use anydb_workload::tpcc::gen::{MixGen, PaymentGen};
use anydb_workload::tpcc::TpccDb;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, TryRecvError};

use crate::component::AnyComponent;
use crate::event::{Completion, DoneBatch, Event, OpEnvelope, TxnTracker};
use crate::strategy::{
    payment_precise_groups, payment_stage_groups, stage_ac, BatchMode, DispatchBatcher, Strategy,
};

/// Completion groups pulled per `try_recv_many` crossing when a driver
/// bulk-drains its done channel.
const COMPLETION_CHUNK: usize = 32;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Execution strategy for this run.
    pub strategy: Strategy,
    /// Number of worker ACs (the paper's precise intra-txn result uses 2).
    pub acs: u32,
    /// Client driver threads.
    pub drivers: u32,
    /// Outstanding transactions per driver for pipelined strategies.
    pub window: usize,
    /// Outstanding OLAP queries during HTAP phases: the driver keeps this
    /// many Q3 requests (with rotating date windows) in flight against
    /// the OLAP AC, whose drain chunk groups them into shared admission
    /// windows — one hull-predicate scan plus per-member refinement
    /// instead of N independent pipelines (DESIGN.md §7).
    pub olap_window: usize,
    /// Payment fraction for the shared-nothing mix; decomposed strategies
    /// are payment-only (the paper's Figure 5 workload).
    pub payment_fraction: f64,
    /// Event batch sizing: how many events the drivers group per
    /// destination AC before sending (as one [`Event::OpBatch`] / bulk
    /// inbox insert) and how many events an AC drains and dispatches per
    /// wakeup.
    ///
    /// This is the throughput/latency knob of the batched event streams.
    /// [`BatchMode::Static`]`(1)` restores per-event dispatch (lowest
    /// latency, highest per-event overhead); larger static values
    /// amortize the queue handshake and gate lookups over the group. The
    /// default, [`BatchMode::Adaptive`], sizes batches online from the
    /// queues' depth mirrors — deep under load, per-event when idle — so
    /// the knob no longer has to be tuned per workload phase at all,
    /// which is the workload-management adaptation the paper's routing
    /// argument extends to execution parameters.
    pub batch: BatchMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            strategy: Strategy::SharedNothing,
            acs: 2,
            drivers: 1,
            window: 32,
            olap_window: 8,
            payment_fraction: 1.0,
            batch: BatchMode::default(),
        }
    }
}

/// Result of one phase run (same shape as the baseline's).
#[derive(Debug, Clone, Default)]
pub struct PhaseResult {
    /// Completed transactions.
    pub committed: u64,
    /// OLAP queries completed by dedicated ACs during the phase.
    pub olap_queries: u64,
    /// Wall-clock duration.
    pub elapsed: Duration,
}

impl PhaseResult {
    /// OLTP throughput.
    pub fn tx_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.committed as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// Applies one completion group to a driver's window accounting. OLTP
/// driver channels only ever carry transaction notices; a query
/// completion here would mean a channel mix-up.
fn absorb_completions(batch: DoneBatch, inflight: &mut usize, committed: &Counter) {
    for c in batch.0 {
        match c {
            Completion::Txn(done) => {
                *inflight -= 1;
                if done.ok {
                    committed.incr();
                }
            }
            Completion::Query { .. } => {
                debug_assert!(false, "query completion on an OLTP driver channel");
            }
        }
    }
}

/// Q3 parameters for the windowed OLAP driver: every member shares the
/// "since 2007" lower bound but rotates among four upper bounds, so a
/// window of concurrent queries carries genuinely different predicates —
/// the shared pipeline has to hull-scan and refine per member, not just
/// deduplicate identical requests.
fn windowed_q3_spec(qid: u64) -> Q3Spec {
    const YEAR_ENDS: [i64; 4] = [20081231, 20101231, 20121231, i64::MAX];
    Q3Spec {
        entry_date_max: YEAR_ENDS[(qid % 4) as usize],
        ..Q3Spec::default()
    }
}

/// The architecture-less engine.
pub struct AnyDbEngine {
    db: Arc<TpccDb>,
    cfg: EngineConfig,
    history: Option<Arc<History>>,
    ids: Arc<TxnIdGen>,
}

impl AnyDbEngine {
    /// Creates an engine over a loaded database.
    pub fn new(db: Arc<TpccDb>, cfg: EngineConfig) -> Self {
        assert!(cfg.acs > 0 && cfg.drivers > 0 && cfg.window > 0 && cfg.olap_window > 0);
        // Validate the batch range eagerly (the controller asserts it).
        let _ = cfg.batch.controller();
        Self {
            db,
            cfg,
            history: None,
            ids: Arc::new(TxnIdGen::new()),
        }
    }

    /// Attaches an operation history for serializability checking.
    pub fn with_history(mut self, history: Arc<History>) -> Self {
        self.history = Some(history);
        self
    }

    /// The loaded database.
    pub fn db(&self) -> &Arc<TpccDb> {
        &self.db
    }

    /// Runs one phase for `duration`.
    pub fn run_phase(&self, kind: PhaseKind, duration: Duration, seed: u64) -> PhaseResult {
        let started = Instant::now();
        let committed = Arc::new(Counter::new());
        let olap_done = Arc::new(Counter::new());

        // Boot the worker ACs.
        let n_acs = self.cfg.acs as usize;
        let mut senders: Vec<InboxSender<Event>> = Vec::with_capacity(n_acs);
        let mut handles = Vec::with_capacity(n_acs);
        for i in 0..n_acs {
            let (tx, handle) = AnyComponent::spawn_with_ctrl(
                AcId(i as u32),
                self.db.clone(),
                self.history.clone(),
                Arc::new(Counter::new()),
                self.cfg.batch.controller(),
            );
            senders.push(tx);
            handles.push(handle);
        }
        // HTAP: one extra AC acting as the OLAP worker — analytics are
        // *routed away* from the transaction ACs (§4: "route data
        // intensive analytical queries to additional compute resources").
        let olap = if kind.has_olap() {
            let (tx, handle) = AnyComponent::spawn(
                AcId(n_acs as u32),
                self.db.clone(),
                None,
                Arc::new(Counter::new()),
            );
            Some((tx, handle))
        } else {
            None
        };

        let sequencer = Arc::new(Sequencer::new(self.db.cfg.warehouses as usize));

        std::thread::scope(|scope| {
            for d in 0..self.cfg.drivers {
                let senders = &senders;
                let committed = &committed;
                let sequencer = &sequencer;
                let seed = seed ^ (d as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                scope.spawn(move || {
                    self.drive(kind, duration, seed, senders, committed, sequencer);
                });
            }
            if let Some((olap_tx, _)) = &olap {
                let olap_done = &olap_done;
                let olap_window = self.cfg.olap_window;
                scope.spawn(move || {
                    let deadline = Instant::now() + duration;
                    let (done_tx, done_rx) = unbounded();
                    let mut qid = 0u64;
                    let mut inflight = 0usize;
                    let absorb = |batch: DoneBatch, inflight: &mut usize| {
                        for c in batch.0 {
                            if matches!(c, Completion::Query { .. }) {
                                olap_done.incr();
                                *inflight -= 1;
                            }
                        }
                    };
                    while Instant::now() < deadline {
                        // Keep a window of concurrent Q3 requests with
                        // rotating date windows in flight; whatever slice
                        // of them lands in one AC drain chunk executes as
                        // a shared pipeline. One burst send per refill —
                        // the grouping itself happens at the AC.
                        if inflight < olap_window {
                            olap_tx.send_many((inflight..olap_window).map(|_| {
                                let e = Event::QueryQ3 {
                                    query: QueryId(qid),
                                    spec: windowed_q3_spec(qid),
                                    done: done_tx.clone(),
                                };
                                qid += 1;
                                e
                            }));
                            inflight = olap_window;
                        }
                        // Query completions arrive on the batched done
                        // channel like transaction notices: one DoneBatch
                        // per admission window per chunk.
                        match done_rx.recv() {
                            Ok(batch) => absorb(batch, &mut inflight),
                            Err(_) => return,
                        }
                    }
                    // Wait out the window still in flight (the AC answers
                    // every admitted query before it shuts down).
                    while inflight > 0 {
                        match done_rx.recv() {
                            Ok(batch) => absorb(batch, &mut inflight),
                            Err(_) => break,
                        }
                    }
                });
            }
        });

        // Drivers are done and have drained their in-flight work; stop ACs.
        for tx in &senders {
            tx.send(Event::Shutdown);
        }
        if let Some((tx, handle)) = olap {
            tx.send(Event::Shutdown);
            drop(tx);
            handle.join().expect("olap AC");
        }
        drop(senders);
        for handle in handles {
            handle.join().expect("AC thread");
        }

        PhaseResult {
            committed: committed.get(),
            olap_queries: olap_done.get(),
            elapsed: started.elapsed(),
        }
    }

    /// Runs a schedule, one result per phase.
    pub fn run_schedule(
        &self,
        schedule: &PhaseSchedule,
        phase_duration: Duration,
        seed: u64,
    ) -> Vec<(Phase, PhaseResult)> {
        schedule
            .phases()
            .iter()
            .map(|phase| {
                (
                    *phase,
                    self.run_phase(phase.kind, phase_duration, seed ^ phase.index as u64),
                )
            })
            .collect()
    }

    fn drive(
        &self,
        kind: PhaseKind,
        duration: Duration,
        seed: u64,
        senders: &[InboxSender<Event>],
        committed: &Counter,
        sequencer: &Sequencer,
    ) {
        match self.cfg.strategy {
            Strategy::SharedNothing => {
                self.drive_shared_nothing(kind, duration, seed, senders, committed)
            }
            Strategy::StreamingCc | Strategy::PreciseIntra => {
                self.drive_pipelined(kind, duration, seed, senders, committed, sequencer)
            }
            Strategy::StaticIntra => {
                self.drive_static(kind, duration, seed, senders, committed, sequencer)
            }
        }
    }

    /// Whole transactions routed to the AC owning the home warehouse.
    fn drive_shared_nothing(
        &self,
        kind: PhaseKind,
        duration: Duration,
        seed: u64,
        senders: &[InboxSender<Event>],
        committed: &Counter,
    ) {
        let n_acs = senders.len() as i64;
        let mut gen = MixGen::new(
            self.db.cfg.clone(),
            kind.warehouse_dist(self.db.cfg.warehouses),
            self.cfg.payment_fraction,
            seed,
        );
        let (done_tx, done_rx) = unbounded();
        let deadline = Instant::now() + duration;
        let mut inflight = 0usize;
        let mut ctrl = self.cfg.batch.controller();
        let mut ready: Vec<DoneBatch> = Vec::new();
        // Whole-transaction events grouped per home-warehouse AC; each
        // group crosses the event stream as one bulk inbox insert.
        let mut pending: Vec<Vec<Event>> = (0..n_acs).map(|_| Vec::new()).collect();
        while Instant::now() < deadline {
            // Deepest destination backlog is the batch-size signal: ACs
            // that are behind justify bigger groups, idle ACs do not.
            ctrl.observe(senders.iter().map(InboxSender::len).max().unwrap_or(0));
            while inflight < self.cfg.window {
                let w = gen.next_warehouse();
                let req = gen.next_for_warehouse(w);
                let ac = ((w - 1).rem_euclid(n_acs)) as usize;
                pending[ac].push(Event::ExecuteTxn {
                    txn: self.ids.next(),
                    req,
                    done: done_tx.clone(),
                });
                if pending[ac].len() >= ctrl.current() {
                    senders[ac].send_many(pending[ac].drain(..));
                }
                inflight += 1;
            }
            // Everything buffered must be visible before we wait, or the
            // window never drains.
            for (ac, events) in pending.iter_mut().enumerate() {
                if !events.is_empty() {
                    senders[ac].send_many(events.drain(..));
                }
            }
            if !self.wait_completions(&done_rx, &mut ready, &mut inflight, committed) {
                return;
            }
        }
        self.drain_completions(&done_rx, &mut inflight, committed);
    }

    /// Blocks briefly for completions, then bulk-drains whatever else is
    /// queued. Returns `false` if the channel disconnected.
    fn wait_completions(
        &self,
        done_rx: &Receiver<DoneBatch>,
        ready: &mut Vec<DoneBatch>,
        inflight: &mut usize,
        committed: &Counter,
    ) -> bool {
        match done_rx.recv_timeout(Duration::from_millis(1)) {
            Ok(batch) => absorb_completions(batch, inflight, committed),
            Err(RecvTimeoutError::Timeout) => return true,
            Err(RecvTimeoutError::Disconnected) => return false,
        }
        // The ACs batch completions per drained chunk; mirror that here
        // with one bulk channel crossing per group of DoneBatches instead
        // of one try_recv handshake per notice.
        loop {
            match done_rx.try_recv_many(ready, COMPLETION_CHUNK) {
                Ok(_) => {
                    for batch in ready.drain(..) {
                        absorb_completions(batch, inflight, committed);
                    }
                }
                Err(TryRecvError::Empty) => return true,
                Err(TryRecvError::Disconnected) => return false,
            }
        }
    }

    /// Final drain after the deadline: waits out every in-flight txn.
    fn drain_completions(
        &self,
        done_rx: &Receiver<DoneBatch>,
        inflight: &mut usize,
        committed: &Counter,
    ) {
        while *inflight > 0 {
            match done_rx.recv() {
                Ok(batch) => absorb_completions(batch, inflight, committed),
                Err(_) => break,
            }
        }
    }

    /// Streaming CC / precise intra-txn: all op groups dispatched at
    /// once; stage ACs pipeline in stamp order.
    fn drive_pipelined(
        &self,
        kind: PhaseKind,
        duration: Duration,
        seed: u64,
        senders: &[InboxSender<Event>],
        committed: &Counter,
        sequencer: &Sequencer,
    ) {
        let mut gen = PaymentGen::new(
            self.db.cfg.clone(),
            kind.warehouse_dist(self.db.cfg.warehouses),
            seed,
        );
        let (done_tx, done_rx) = unbounded();
        let deadline = Instant::now() + duration;
        let mut inflight = 0usize;
        let mut ready: Vec<DoneBatch> = Vec::new();
        let mut batcher = DispatchBatcher::new(senders.len(), self.cfg.batch);
        while Instant::now() < deadline {
            // Feed the dispatch batcher the deepest stage backlog once
            // per window: group size follows load.
            batcher.observe(senders.iter().map(InboxSender::len).max().unwrap_or(0));
            while inflight < self.cfg.window {
                let p = gen.next();
                let domain = (p.w_id - 1) as u32;
                let groups: Vec<(u32, Vec<crate::event::TxnOp>)> = match self.cfg.strategy {
                    Strategy::StreamingCc => payment_stage_groups(&p),
                    Strategy::PreciseIntra => payment_precise_groups(&p).to_vec(),
                    _ => unreachable!("drive_pipelined handles pipelined strategies"),
                };
                let txn = self.ids.next();
                // Stamp-then-send must not be interleaved with anything
                // blocking: gate density depends on every stamp's events
                // reaching the stage ACs. Buffering in the batcher is safe
                // — it never blocks and is fully flushed before we wait.
                let seq = sequencer.stamp(domain as usize);
                let tracker = TxnTracker::new(txn, groups.len() as u32, done_tx.clone());
                for (stage, ops) in groups {
                    batcher.push(
                        stage_ac(stage, senders.len()),
                        OpEnvelope {
                            txn,
                            stage,
                            domain,
                            seq,
                            ops,
                            tracker: tracker.clone(),
                        },
                        senders,
                    );
                }
                inflight += 1;
            }
            batcher.flush_all(senders);
            if !self.wait_completions(&done_rx, &mut ready, &mut inflight, committed) {
                return;
            }
        }
        self.drain_completions(&done_rx, &mut inflight, committed);
    }

    /// Naive static intra-txn parallelism: one round trip per op group —
    /// the overhead the paper shows dominating in Figure 5.
    fn drive_static(
        &self,
        kind: PhaseKind,
        duration: Duration,
        seed: u64,
        senders: &[InboxSender<Event>],
        committed: &Counter,
        sequencer: &Sequencer,
    ) {
        let mut gen = PaymentGen::new(
            self.db.cfg.clone(),
            kind.warehouse_dist(self.db.cfg.warehouses),
            seed,
        );
        let (done_tx, done_rx) = unbounded();
        let deadline = Instant::now() + duration;
        while Instant::now() < deadline {
            let p = gen.next();
            let domain = (p.w_id - 1) as u32;
            let txn = self.ids.next();
            let seq = sequencer.stamp(domain as usize);
            let mut ok = true;
            for (stage, ops) in payment_stage_groups(&p) {
                let tracker = TxnTracker::new(txn, 1, done_tx.clone());
                let ac = stage_ac(stage, senders.len());
                senders[ac].send(Event::OpGroup(OpEnvelope {
                    txn,
                    stage,
                    domain,
                    seq,
                    ops,
                    tracker,
                }));
                // One round trip per op group (the naive strategy being
                // measured): the batch protocol degenerates to singleton
                // DoneBatches here.
                match done_rx.recv() {
                    Ok(batch) => {
                        ok &= batch.0.iter().all(|c| match c {
                            Completion::Txn(done) => done.ok,
                            Completion::Query { .. } => true,
                        })
                    }
                    Err(_) => return,
                }
            }
            if ok {
                committed.incr();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anydb_workload::tpcc::cols::warehouse;
    use anydb_workload::tpcc::TpccConfig;

    fn engine(strategy: Strategy) -> AnyDbEngine {
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 61).unwrap());
        AnyDbEngine::new(
            db,
            EngineConfig {
                strategy,
                acs: 2,
                ..Default::default()
            },
        )
    }

    fn run_short(strategy: Strategy, kind: PhaseKind) -> (AnyDbEngine, PhaseResult) {
        let e = engine(strategy);
        let r = e.run_phase(kind, Duration::from_millis(100), 1);
        (e, r)
    }

    #[test]
    fn shared_nothing_commits() {
        let (_, r) = run_short(Strategy::SharedNothing, PhaseKind::OltpPartitionable);
        assert!(r.committed > 100, "committed {}", r.committed);
        assert_eq!(r.olap_queries, 0);
    }

    #[test]
    fn streaming_cc_commits_under_skew() {
        let (_, r) = run_short(Strategy::StreamingCc, PhaseKind::OltpSkewed);
        assert!(r.committed > 100, "committed {}", r.committed);
    }

    #[test]
    fn precise_intra_commits_under_skew() {
        let (_, r) = run_short(Strategy::PreciseIntra, PhaseKind::OltpSkewed);
        assert!(r.committed > 100, "committed {}", r.committed);
    }

    #[test]
    fn static_intra_commits_under_skew() {
        let (_, r) = run_short(Strategy::StaticIntra, PhaseKind::OltpSkewed);
        assert!(r.committed > 50, "committed {}", r.committed);
    }

    #[test]
    fn htap_phase_serves_olap_on_separate_acs() {
        let (_, r) = run_short(Strategy::SharedNothing, PhaseKind::HtapSkewed);
        assert!(r.olap_queries > 0);
        assert!(r.committed > 0);
    }

    #[test]
    fn money_invariant_holds_after_streaming_cc() {
        // Σ(W_YTD deltas) must equal the number of committed payments
        // times their amounts; with the shared counter we check the
        // weaker but sharp invariant: total YTD delta == Σ amounts of
        // committed txns. Since amounts vary, check conservation:
        // warehouse + district YTD deltas must match exactly (every
        // payment adds the same amount to both).
        let e = engine(Strategy::StreamingCc);
        e.run_phase(PhaseKind::OltpSkewed, Duration::from_millis(150), 3);
        let db = e.db();
        let mut w_delta = 0.0;
        for w in 1..=db.cfg.warehouses as i64 {
            let ytd = db
                .warehouse
                .read(db.warehouse_rid(w).unwrap())
                .unwrap()
                .0
                .get(warehouse::W_YTD)
                .as_float()
                .unwrap();
            w_delta += ytd - 300_000.0;
        }
        let mut d_delta = 0.0;
        for w in 1..=db.cfg.warehouses as i64 {
            for d in 1..=db.cfg.districts_per_warehouse as i64 {
                let ytd = db
                    .district
                    .read(db.district_rid(w, d).unwrap())
                    .unwrap()
                    .0
                    .get(anydb_workload::tpcc::cols::district::D_YTD)
                    .as_float()
                    .unwrap();
                d_delta += ytd - 30_000.0;
            }
        }
        // Relative tolerance: fast runs push the sums past 1e8, where a
        // fixed 1e-6 is below f64 accumulation noise.
        let tol = (w_delta.abs() * 1e-12).max(1e-6);
        assert!(
            (w_delta - d_delta).abs() < tol,
            "warehouse delta {w_delta} != district delta {d_delta}"
        );
        assert!(w_delta > 0.0);
    }

    #[test]
    fn streaming_cc_history_is_serializable() {
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 62).unwrap());
        let hist = Arc::new(History::new());
        let e = AnyDbEngine::new(
            db,
            EngineConfig {
                strategy: Strategy::StreamingCc,
                acs: 2,
                drivers: 2,
                ..Default::default()
            },
        )
        .with_history(hist.clone());
        e.run_phase(PhaseKind::OltpSkewed, Duration::from_millis(150), 5);
        assert!(!hist.is_empty());
        assert!(
            hist.is_serializable(),
            "streaming CC produced a non-serializable history"
        );
    }

    #[test]
    fn precise_intra_history_is_serializable() {
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 63).unwrap());
        let hist = Arc::new(History::new());
        let e = AnyDbEngine::new(
            db,
            EngineConfig {
                strategy: Strategy::PreciseIntra,
                acs: 2,
                drivers: 2,
                ..Default::default()
            },
        )
        .with_history(hist.clone());
        e.run_phase(PhaseKind::OltpSkewed, Duration::from_millis(150), 6);
        assert!(hist.is_serializable());
    }

    #[test]
    fn unbatched_config_still_commits() {
        // batch = 1 is the pre-batching per-event path; it must stay
        // correct because it is the latency end of the tunable.
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 64).unwrap());
        let e = AnyDbEngine::new(
            db,
            EngineConfig {
                strategy: Strategy::StreamingCc,
                acs: 2,
                batch: BatchMode::Static(1),
                ..Default::default()
            },
        );
        let r = e.run_phase(PhaseKind::OltpSkewed, Duration::from_millis(100), 11);
        assert!(r.committed > 100, "committed {}", r.committed);
    }

    #[test]
    fn batched_streaming_cc_history_is_serializable() {
        // Large batches + several drivers: grouping must not leak events
        // past their stamps.
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 65).unwrap());
        let hist = Arc::new(History::new());
        let e = AnyDbEngine::new(
            db,
            EngineConfig {
                strategy: Strategy::StreamingCc,
                acs: 2,
                drivers: 2,
                batch: BatchMode::Static(256),
                ..Default::default()
            },
        )
        .with_history(hist.clone());
        e.run_phase(PhaseKind::OltpSkewed, Duration::from_millis(150), 12);
        assert!(!hist.is_empty());
        assert!(hist.is_serializable());
    }

    #[test]
    fn adaptive_batching_commits_and_is_serializable() {
        // The default mode: batch sizes move with backlog during the
        // run. Correctness must not depend on where the controller sits.
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 66).unwrap());
        let hist = Arc::new(History::new());
        let e = AnyDbEngine::new(
            db,
            EngineConfig {
                strategy: Strategy::StreamingCc,
                acs: 2,
                drivers: 2,
                batch: BatchMode::Adaptive { min: 1, max: 256 },
                ..Default::default()
            },
        )
        .with_history(hist.clone());
        let r = e.run_phase(PhaseKind::OltpSkewed, Duration::from_millis(150), 13);
        assert!(r.committed > 100, "committed {}", r.committed);
        assert!(!hist.is_empty());
        assert!(hist.is_serializable());
    }

    #[test]
    fn schedule_runs_all_phases() {
        let e = engine(Strategy::SharedNothing);
        let results = e.run_schedule(&PhaseSchedule::figure5(), Duration::from_millis(25), 9);
        assert_eq!(results.len(), 6);
        assert!(results.iter().all(|(_, r)| r.committed > 0));
    }
}
