//! The AnyDB engine: boots AnyComponents and drives OLTP phases.
//!
//! The engine realizes the paper's per-query architecture freedom in its
//! simplest honest form: the *routing decision* — which AC an event goes
//! to, whole transactions vs. op groups, pipelined vs. per-op round trips
//! — is taken per transaction window according to the
//! [`DispatchPlan`], over one shared pool of generic ACs. Switching
//! strategy requires no reconfiguration of the components themselves;
//! they just receive different events (§2.1: "shift its architecture
//! just in an instant").
//!
//! ## Live morphing
//!
//! With [`EngineConfig::morph`] set, the configured strategy is only the
//! *initial* plan: driver 0 runs a [`MorphController`] over the phase's
//! load telemetry and installs new strategies into the plan while the
//! phase runs. Plans are epoch-tagged and adopted only at transaction-
//! window boundaries, under a swap protocol that keeps mixed-mode
//! execution off the data (DESIGN.md §11):
//!
//! 1. A driver noticing a newer plan epoch first **drains** its own
//!    in-flight transactions — they finish under the plan that admitted
//!    them, and their completions count normally.
//! 2. It then **rendezvouses** with every other driver at a [`SwapSync`]
//!    barrier. Only when all drivers have drained does anyone admit under
//!    the new plan, so whole-transaction execution (no order gates) and
//!    decomposed stage execution (gate-ordered) never interleave on the
//!    same warehouses — that overlap is the one torn-routing schedule
//!    that could break serializability.
//! 3. Stamp density survives the gap: nothing stamps the sequencer while
//!    a shared-nothing plan runs, and every pipelined stamp's envelopes
//!    were fully consumed before the swap, so the order gates resume
//!    exactly where the sequencer does.
//!
//! Static strategies are the degenerate case: a plan that is never
//! re-installed, one epoch, `PhaseResult::strategies == [cfg.strategy]`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use anydb_common::metrics::{Counter, LoadSnapshot};
use anydb_common::{AcId, QueryId};
use anydb_stream::adaptive::AdaptiveBatch;
use anydb_stream::inbox::InboxSender;
use anydb_txn::history::History;
use anydb_txn::sequencer::Sequencer;
use anydb_txn::ts::TxnIdGen;
use anydb_workload::chbench::Q3Spec;
use anydb_workload::phases::{Phase, PhaseKind, PhaseSchedule};
use anydb_workload::tpcc::gen::{MixGen, PaymentGen};
use anydb_workload::tpcc::TpccDb;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};

use crate::component::AnyComponent;
use crate::event::{Completion, DoneBatch, Event, OpEnvelope, TxnTracker};
use crate::morph::{MorphConfig, MorphController};
use crate::strategy::{
    payment_precise_groups, payment_stage_groups, stage_ac, BatchMode, DispatchBatcher,
    DispatchPlan, Strategy,
};

/// Completion groups pulled per `try_recv_many` crossing when a driver
/// bulk-drains its done channel.
const COMPLETION_CHUNK: usize = 32;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Execution strategy for this run — the whole run's when [`morph`]
    /// is `None`, the initial plan otherwise.
    ///
    /// [`morph`]: EngineConfig::morph
    pub strategy: Strategy,
    /// Number of worker ACs (the paper's precise intra-txn result uses 2).
    pub acs: u32,
    /// Client driver threads.
    pub drivers: u32,
    /// Outstanding transactions per driver for pipelined strategies.
    pub window: usize,
    /// Outstanding OLAP queries during HTAP phases: the driver keeps this
    /// many Q3 requests (with rotating date windows) in flight against
    /// the OLAP AC, whose drain chunk groups them into shared admission
    /// windows — one hull-predicate scan plus per-member refinement
    /// instead of N independent pipelines (DESIGN.md §7).
    ///
    /// This is a *live* knob now, not a constant: the phase scales it by
    /// its OLAP stream count ([`PhaseKind::olap_streams`]), and when
    /// morphing is on the controller re-targets it every window from the
    /// observed OLTP/OLAP mix.
    pub olap_window: usize,
    /// Payment fraction for the shared-nothing mix; decomposed strategies
    /// are payment-only (the paper's Figure 5 workload).
    pub payment_fraction: f64,
    /// Event batch sizing: how many events the drivers group per
    /// destination AC before sending (as one [`Event::OpBatch`] / bulk
    /// inbox insert) and how many events an AC drains and dispatches per
    /// wakeup.
    ///
    /// This is the throughput/latency knob of the batched event streams.
    /// [`BatchMode::Static`]`(1)` restores per-event dispatch (lowest
    /// latency, highest per-event overhead); larger static values
    /// amortize the queue handshake and gate lookups over the group.
    /// [`BatchMode::Adaptive`], the default, sizes batches online from
    /// the queues' depth mirrors — deep under load, per-event when idle.
    /// [`BatchMode::Slo`] instead steers against a p99 queueing-delay
    /// budget, fed by each driver's measured per-window drain wait.
    pub batch: BatchMode,
    /// Live workload morphing: when set, driver 0 runs a
    /// [`MorphController`] over the phase's telemetry and re-installs the
    /// dispatch plan at window boundaries ([`acs`] in the morph config is
    /// overridden with the engine's real AC count). `None` pins the plan
    /// for the whole run.
    ///
    /// [`acs`]: MorphConfig::acs
    pub morph: Option<MorphConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            strategy: Strategy::SharedNothing,
            acs: 2,
            drivers: 1,
            window: 32,
            olap_window: 8,
            payment_fraction: 1.0,
            batch: BatchMode::default(),
            morph: None,
        }
    }
}

/// Result of one phase run (same shape as the baseline's).
#[derive(Debug, Clone, Default)]
pub struct PhaseResult {
    /// Completed transactions.
    pub committed: u64,
    /// OLAP queries completed by dedicated ACs during the phase.
    pub olap_queries: u64,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Every strategy the dispatch plan carried, in install order. A
    /// static run records exactly its configured strategy; a morphing run
    /// records the sequence the controller actually executed.
    pub strategies: Vec<Strategy>,
    /// Plan switches taken during the phase (`strategies.len() - 1`).
    pub switches: u64,
}

impl PhaseResult {
    /// OLTP throughput.
    pub fn tx_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.committed as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// Rendezvous for plan swaps: no driver admits under a new plan epoch
/// until every active driver has drained the transactions it admitted
/// under the old one. Without this, one driver could run whole
/// transactions at a home-warehouse AC while another still has the same
/// warehouses' ops decomposed across stage ACs — the gates order only the
/// decomposed side, so the interleaving would be unserializable.
///
/// At most one install can be gathering at a time: the installer (driver
/// 0) rendezvouses at its own install's barrier before it can install
/// again. Arrivals use a timed wait purely as a safety valve — a peer
/// that exits early retires and wakes everyone.
struct SwapSync {
    state: Mutex<SwapState>,
    cv: Condvar,
}

struct SwapState {
    /// Drivers still running (arrivals wait only for live peers).
    active: usize,
    /// Barrier generation currently gathering (= plan epoch).
    epoch: u64,
    /// Drivers arrived at `epoch`, drained.
    arrived: usize,
}

impl SwapSync {
    fn new(active: usize) -> Self {
        Self {
            state: Mutex::new(SwapState {
                active,
                epoch: 0,
                arrived: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Called by a driver that has drained its in-flight work and wants
    /// to admit under plan epoch `e`; blocks until every active driver
    /// has done the same.
    fn arrive(&self, e: u64) {
        let mut st = self.state.lock().unwrap();
        if e > st.epoch {
            st.epoch = e;
            st.arrived = 0;
        } else if e < st.epoch {
            // A barrier that already released; the drain this driver just
            // did is all the newer one needs from it.
            return;
        }
        st.arrived += 1;
        if st.arrived >= st.active {
            self.cv.notify_all();
            return;
        }
        while st.epoch == e && st.arrived < st.active {
            let (g, _) = self.cv.wait_timeout(st, Duration::from_millis(1)).unwrap();
            st = g;
        }
    }

    /// A driver leaving the phase stops counting toward the barrier.
    fn retire(&self) {
        let mut st = self.state.lock().unwrap();
        st.active = st.active.saturating_sub(1);
        self.cv.notify_all();
    }
}

/// Retires the driver on every exit path — deadline, channel disconnect,
/// or panic — so peers waiting at a swap barrier are never stranded.
struct Retire<'a>(&'a SwapSync);

impl Drop for Retire<'_> {
    fn drop(&mut self) {
        self.0.retire();
    }
}

/// Everything one phase's drivers share.
struct PhaseShared<'a> {
    senders: &'a [InboxSender<Event>],
    committed: &'a Counter,
    sequencer: &'a Sequencer,
    plan: &'a DispatchPlan,
    swap: &'a SwapSync,
    /// Live OLAP admission target, read by the query driver per refill
    /// and re-targeted by the morph controller.
    olap_window: &'a AtomicUsize,
    olap_done: &'a Counter,
    olap_admitted: &'a Counter,
}

/// Minimum admissions behind one skew-attribution sample. The admission
/// mix is an *estimate* of the home-partition distribution; below this
/// many observations it carries no signal (a handful of txns sharing a
/// home by chance would read as total skew against the whole backlog),
/// so counters accumulate across windows until the estimate is earned.
const MIX_SAMPLE_MIN: u64 = 64;

/// Per-driver state that survives plan swaps: the generators keep their
/// RNG positions, the batch controllers keep their levels, and the done
/// channel keeps collecting completions admitted under any epoch.
struct DriverState {
    mix: MixGen,
    pay: PaymentGen,
    done_tx: Sender<DoneBatch>,
    done_rx: Receiver<DoneBatch>,
    inflight: usize,
    ready: Vec<DoneBatch>,
    /// Whole-transaction batch controller (shared-nothing windows).
    ctrl: AdaptiveBatch,
    /// Envelope batcher (pipelined windows).
    batcher: DispatchBatcher,
    /// Per-AC whole-transaction buffers (shared-nothing windows).
    pending: Vec<Vec<Event>>,
    /// Admissions since the last attribution sample, bucketed by *home*
    /// AC (the AC the txn's warehouse would route to under
    /// shared-nothing) — the strategy-invariant skew signal. Accumulates
    /// across windows until [`MIX_SAMPLE_MIN`] admissions back the mix.
    admitted: Vec<u64>,
    /// Telemetry accumulated since the last controller observation:
    /// `(samples, hot, total)` per [`LoadSnapshot`]'s depth fields.
    depth: (u64, u64, u64),
}

impl DriverState {
    /// Folds one post-flush telemetry sample into the accumulators: real
    /// queued backlog from the AC depth mirrors, attributed to home
    /// partitions by this window's admission mix. Under shared-nothing
    /// routing the hot partition's backlog *is* the hot AC's queue;
    /// decomposed windows spread the same work over stage ACs, so the
    /// attribution keeps the skew signal comparable across strategies —
    /// without it the controller would see skew vanish the moment it
    /// decomposed, and ping-pong.
    fn sample_depths(&mut self, senders: &[InboxSender<Event>]) {
        let admitted: u64 = self.admitted.iter().sum();
        if admitted < MIX_SAMPLE_MIN {
            // Too few admissions to estimate a mix: a steady-state window
            // admits only what just completed, and three txns that happen
            // to share a home would read as total skew against the whole
            // backlog. Keep accumulating; stalled windows add nothing.
            return;
        }
        let hot_admitted = self.admitted.iter().copied().max().unwrap_or(0);
        self.admitted.iter_mut().for_each(|c| *c = 0);
        let total: u64 = senders.iter().map(|s| s.len() as u64).sum();
        let hot = (total as f64 * hot_admitted as f64 / admitted as f64).round() as u64;
        self.depth = (self.depth.0 + 1, self.depth.1 + hot, self.depth.2 + total);
    }
}

/// Applies one completion group to a driver's window accounting. OLTP
/// driver channels only ever carry transaction notices; a query
/// completion here would mean a channel mix-up.
fn absorb_completions(batch: DoneBatch, inflight: &mut usize, committed: &Counter) {
    for c in batch.0 {
        match c {
            Completion::Txn(done) => {
                *inflight -= 1;
                if done.ok {
                    committed.incr();
                }
            }
            Completion::Query { .. } => {
                debug_assert!(false, "query completion on an OLTP driver channel");
            }
        }
    }
}

/// Q3 parameters for the windowed OLAP driver: every member shares the
/// "since 2007" lower bound but rotates among four upper bounds, so a
/// window of concurrent queries carries genuinely different predicates —
/// the shared pipeline has to hull-scan and refine per member, not just
/// deduplicate identical requests.
fn windowed_q3_spec(qid: u64) -> Q3Spec {
    const YEAR_ENDS: [i64; 4] = [20081231, 20101231, 20121231, i64::MAX];
    Q3Spec {
        entry_date_max: YEAR_ENDS[(qid % 4) as usize],
        ..Q3Spec::default()
    }
}

/// The architecture-less engine.
pub struct AnyDbEngine {
    db: Arc<TpccDb>,
    cfg: EngineConfig,
    history: Option<Arc<History>>,
    ids: Arc<TxnIdGen>,
}

impl AnyDbEngine {
    /// Creates an engine over a loaded database.
    pub fn new(db: Arc<TpccDb>, cfg: EngineConfig) -> Self {
        assert!(cfg.acs > 0 && cfg.drivers > 0 && cfg.window > 0 && cfg.olap_window > 0);
        // Validate the batch range and morph config eagerly (their
        // constructors assert).
        let _ = cfg.batch.controller();
        if let Some(mc) = cfg.morph {
            let _ = MorphController::new(cfg.strategy, MorphConfig { acs: cfg.acs, ..mc });
        }
        Self {
            db,
            cfg,
            history: None,
            ids: Arc::new(TxnIdGen::new()),
        }
    }

    /// Attaches an operation history for serializability checking.
    pub fn with_history(mut self, history: Arc<History>) -> Self {
        self.history = Some(history);
        self
    }

    /// The loaded database.
    pub fn db(&self) -> &Arc<TpccDb> {
        &self.db
    }

    /// Runs one phase for `duration`.
    pub fn run_phase(&self, kind: PhaseKind, duration: Duration, seed: u64) -> PhaseResult {
        let started = Instant::now();
        let committed = Counter::new();
        let olap_done = Counter::new();
        let olap_admitted = Counter::new();

        // Boot the worker ACs.
        let n_acs = self.cfg.acs as usize;
        let mut senders: Vec<InboxSender<Event>> = Vec::with_capacity(n_acs);
        let mut handles = Vec::with_capacity(n_acs);
        for i in 0..n_acs {
            let (tx, handle) = AnyComponent::spawn_with_ctrl(
                AcId(i as u32),
                self.db.clone(),
                self.history.clone(),
                Arc::new(Counter::new()),
                self.cfg.batch.controller(),
            );
            senders.push(tx);
            handles.push(handle);
        }
        // HTAP: one extra AC acting as the OLAP worker — analytics are
        // *routed away* from the transaction ACs (§4: "route data
        // intensive analytical queries to additional compute resources").
        let olap = if kind.has_olap() {
            let (tx, handle) = AnyComponent::spawn(
                AcId(n_acs as u32),
                self.db.clone(),
                None,
                Arc::new(Counter::new()),
            );
            Some((tx, handle))
        } else {
            None
        };

        let sequencer = Sequencer::new(self.db.cfg.warehouses as usize);
        let plan = DispatchPlan::new(self.cfg.strategy);
        let swap = SwapSync::new(self.cfg.drivers as usize);
        // The OLAP admission knob starts from the config scaled by the
        // phase's stream count; the morph controller re-targets it live.
        let olap_window = AtomicUsize::new(self.cfg.olap_window * kind.olap_streams().max(1));

        let shared = PhaseShared {
            senders: &senders,
            committed: &committed,
            sequencer: &sequencer,
            plan: &plan,
            swap: &swap,
            olap_window: &olap_window,
            olap_done: &olap_done,
            olap_admitted: &olap_admitted,
        };
        std::thread::scope(|scope| {
            let shared = &shared;
            for d in 0..self.cfg.drivers {
                let seed = seed ^ (d as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                // Driver 0 hosts the controller; the others only follow
                // the plan it installs.
                let morph = if d == 0 { self.cfg.morph } else { None }.map(|mc| {
                    MorphController::new(
                        self.cfg.strategy,
                        MorphConfig {
                            acs: self.cfg.acs,
                            ..mc
                        },
                    )
                });
                scope.spawn(move || {
                    self.drive(kind, duration, seed, shared, morph);
                });
            }
            if let Some((olap_tx, _)) = &olap {
                scope.spawn(move || {
                    let deadline = Instant::now() + duration;
                    let (done_tx, done_rx) = unbounded();
                    let mut qid = 0u64;
                    let mut inflight = 0usize;
                    let absorb = |batch: DoneBatch, inflight: &mut usize| {
                        for c in batch.0 {
                            if matches!(c, Completion::Query { .. }) {
                                shared.olap_done.incr();
                                *inflight -= 1;
                            }
                        }
                    };
                    while Instant::now() < deadline {
                        // Keep a window of concurrent Q3 requests with
                        // rotating date windows in flight; whatever slice
                        // of them lands in one AC drain chunk executes as
                        // a shared pipeline. One burst send per refill —
                        // the grouping itself happens at the AC. The
                        // target is re-read every refill: it moves under
                        // the morph controller.
                        let target = shared.olap_window.load(Ordering::Relaxed).max(1);
                        if inflight < target {
                            shared.olap_admitted.add((target - inflight) as u64);
                            olap_tx.send_many((inflight..target).map(|_| {
                                let e = Event::QueryQ3 {
                                    query: QueryId(qid),
                                    spec: windowed_q3_spec(qid),
                                    done: done_tx.clone(),
                                };
                                qid += 1;
                                e
                            }));
                            inflight = target;
                        }
                        // Query completions arrive on the batched done
                        // channel like transaction notices: one DoneBatch
                        // per admission window per chunk.
                        match done_rx.recv() {
                            Ok(batch) => absorb(batch, &mut inflight),
                            Err(_) => return,
                        }
                    }
                    // Wait out the window still in flight (the AC answers
                    // every admitted query before it shuts down).
                    while inflight > 0 {
                        match done_rx.recv() {
                            Ok(batch) => absorb(batch, &mut inflight),
                            Err(_) => break,
                        }
                    }
                });
            }
        });

        // Drivers are done and have drained their in-flight work; stop ACs.
        for tx in &senders {
            tx.send(Event::Shutdown);
        }
        if let Some((tx, handle)) = olap {
            tx.send(Event::Shutdown);
            drop(tx);
            handle.join().expect("olap AC");
        }
        drop(senders);
        for handle in handles {
            handle.join().expect("AC thread");
        }

        PhaseResult {
            committed: committed.get(),
            olap_queries: olap_done.get(),
            elapsed: started.elapsed(),
            strategies: plan.history(),
            switches: plan.switches(),
        }
    }

    /// Runs a schedule, one result per phase.
    pub fn run_schedule(
        &self,
        schedule: &PhaseSchedule,
        phase_duration: Duration,
        seed: u64,
    ) -> Vec<(Phase, PhaseResult)> {
        schedule
            .phases()
            .iter()
            .map(|phase| {
                (
                    *phase,
                    self.run_phase(phase.kind, phase_duration, seed ^ phase.index as u64),
                )
            })
            .collect()
    }

    /// The unified driver loop: consult the plan at every transaction-
    /// window boundary, pump one admission window under the strategy it
    /// names, and (driver 0 only) feed the morph controller.
    fn drive(
        &self,
        kind: PhaseKind,
        duration: Duration,
        seed: u64,
        sh: &PhaseShared<'_>,
        mut morph: Option<MorphController>,
    ) {
        let _retire = Retire(sh.swap);
        let (done_tx, done_rx) = unbounded();
        let mut st = DriverState {
            mix: MixGen::new(
                self.db.cfg.clone(),
                kind.warehouse_dist(self.db.cfg.warehouses),
                self.cfg.payment_fraction,
                seed,
            ),
            pay: PaymentGen::new(
                self.db.cfg.clone(),
                kind.warehouse_dist(self.db.cfg.warehouses),
                seed,
            ),
            done_tx,
            done_rx,
            inflight: 0,
            ready: Vec::new(),
            ctrl: self.cfg.batch.controller(),
            batcher: DispatchBatcher::new(sh.senders.len(), self.cfg.batch),
            pending: (0..sh.senders.len()).map(|_| Vec::new()).collect(),
            admitted: vec![0; sh.senders.len()],
            depth: (0, 0, 0),
        };
        let started = Instant::now();
        let deadline = started + duration;
        let (mut epoch, mut strategy) = sh.plan.current();
        // Controller baselines for per-window counter deltas.
        let mut seen = (0u64, 0u64, 0u64);

        while Instant::now() < deadline {
            // Window boundary: adopt a newer plan if one was installed.
            // In-flight transactions admitted under the old plan drain
            // first (their completions count normally), then all drivers
            // rendezvous so decomposed and whole-transaction windows
            // never interleave on the same data.
            let (e, s) = sh.plan.current();
            if e != epoch {
                self.drain_completions(&st.done_rx, &mut st.inflight, sh.committed);
                sh.swap.arrive(e);
                (epoch, strategy) = (e, s);
            }
            // One admission window under the current plan.
            let alive = match strategy {
                Strategy::SharedNothing => self.pump_shared_nothing(&mut st, sh),
                Strategy::StreamingCc | Strategy::PreciseIntra => {
                    self.pump_pipelined(strategy, &mut st, sh)
                }
                Strategy::StaticIntra => self.pump_static(&mut st, sh),
            };
            if !alive {
                return;
            }
            // Driver 0: fold this window's telemetry into a LoadSnapshot
            // and let the controller re-target plan and OLAP window.
            if let Some(m) = morph.as_mut() {
                let now = (
                    sh.committed.get(),
                    sh.olap_done.get(),
                    sh.olap_admitted.get(),
                );
                let snap = LoadSnapshot {
                    oltp_committed: now.0 - seen.0,
                    olap_completed: now.1 - seen.1,
                    olap_admitted: now.2 - seen.2,
                    windows: 1,
                    depth_samples: st.depth.0,
                    depth_hot: st.depth.1,
                    depth_total: st.depth.2,
                };
                seen = now;
                st.depth = (0, 0, 0);
                let decision = m.observe(started.elapsed(), &snap);
                sh.olap_window
                    .store(decision.olap_window, Ordering::Relaxed);
                if let Some(next) = decision.switch_to {
                    sh.plan.install(next);
                }
            }
        }
        self.drain_completions(&st.done_rx, &mut st.inflight, sh.committed);
    }

    /// One shared-nothing admission window: whole transactions routed to
    /// the AC owning the home warehouse. Returns `false` if the done
    /// channel disconnected.
    fn pump_shared_nothing(&self, st: &mut DriverState, sh: &PhaseShared<'_>) -> bool {
        let n_acs = sh.senders.len() as i64;
        // Deepest destination backlog is the batch-size signal: ACs
        // that are behind justify bigger groups, idle ACs do not.
        st.ctrl
            .observe(sh.senders.iter().map(InboxSender::len).max().unwrap_or(0));
        while st.inflight < self.cfg.window {
            let w = st.mix.next_warehouse();
            let req = st.mix.next_for_warehouse(w);
            let ac = ((w - 1).rem_euclid(n_acs)) as usize;
            st.admitted[ac] += 1;
            st.pending[ac].push(Event::ExecuteTxn {
                txn: self.ids.next(),
                req,
                done: st.done_tx.clone(),
            });
            if st.pending[ac].len() >= st.ctrl.current() {
                sh.senders[ac].send_many(st.pending[ac].drain(..));
            }
            st.inflight += 1;
        }
        // Everything buffered must be visible before we wait, or the
        // window never drains.
        for (ac, events) in st.pending.iter_mut().enumerate() {
            if !events.is_empty() {
                sh.senders[ac].send_many(events.drain(..));
            }
        }
        st.sample_depths(sh.senders);
        let waited = Instant::now();
        let alive =
            self.wait_completions(&st.done_rx, &mut st.ready, &mut st.inflight, sh.committed);
        // The drain wait is the driver's observable bound on queueing
        // delay this window — what the SLO batch mode steers against.
        st.ctrl.observe_delay(waited.elapsed());
        alive
    }

    /// One pipelined admission window (streaming CC / precise intra-txn):
    /// all op groups dispatched at once; stage ACs pipeline in stamp
    /// order. Returns `false` if the done channel disconnected.
    fn pump_pipelined(
        &self,
        strategy: Strategy,
        st: &mut DriverState,
        sh: &PhaseShared<'_>,
    ) -> bool {
        // Feed the dispatch batcher the deepest stage backlog once per
        // window: group size follows load.
        st.batcher
            .observe(sh.senders.iter().map(InboxSender::len).max().unwrap_or(0));
        while st.inflight < self.cfg.window {
            let p = st.pay.next();
            let domain = (p.w_id - 1) as u32;
            let groups: Vec<(u32, Vec<crate::event::TxnOp>)> = match strategy {
                Strategy::StreamingCc => payment_stage_groups(&p),
                Strategy::PreciseIntra => payment_precise_groups(&p).to_vec(),
                _ => unreachable!("pump_pipelined handles pipelined strategies"),
            };
            let txn = self.ids.next();
            st.admitted[(domain as i64).rem_euclid(sh.senders.len() as i64) as usize] += 1;
            // Stamp-then-send must not be interleaved with anything
            // blocking: gate density depends on every stamp's events
            // reaching the stage ACs. Buffering in the batcher is safe
            // — it never blocks and is fully flushed before we wait.
            let seq = sh.sequencer.stamp(domain as usize);
            let tracker = TxnTracker::new(txn, groups.len() as u32, st.done_tx.clone());
            for (stage, ops) in groups {
                st.batcher.push(
                    stage_ac(stage, sh.senders.len()),
                    OpEnvelope {
                        txn,
                        stage,
                        domain,
                        seq,
                        ops,
                        tracker: tracker.clone(),
                    },
                    sh.senders,
                );
            }
            st.inflight += 1;
        }
        st.batcher.flush_all(sh.senders);
        st.sample_depths(sh.senders);
        let waited = Instant::now();
        let alive =
            self.wait_completions(&st.done_rx, &mut st.ready, &mut st.inflight, sh.committed);
        st.batcher.observe_delay(waited.elapsed());
        alive
    }

    /// One naive static intra-txn transaction: one round trip per op
    /// group — the overhead the paper shows dominating in Figure 5.
    /// Synchronous, so nothing is ever in flight across a plan swap.
    fn pump_static(&self, st: &mut DriverState, sh: &PhaseShared<'_>) -> bool {
        let p = st.pay.next();
        let domain = (p.w_id - 1) as u32;
        let txn = self.ids.next();
        st.admitted[(domain as i64).rem_euclid(sh.senders.len() as i64) as usize] += 1;
        let seq = sh.sequencer.stamp(domain as usize);
        let mut ok = true;
        for (stage, ops) in payment_stage_groups(&p) {
            let tracker = TxnTracker::new(txn, 1, st.done_tx.clone());
            let ac = stage_ac(stage, sh.senders.len());
            sh.senders[ac].send(Event::OpGroup(OpEnvelope {
                txn,
                stage,
                domain,
                seq,
                ops,
                tracker,
            }));
            // One round trip per op group (the naive strategy being
            // measured): the batch protocol degenerates to singleton
            // DoneBatches here.
            match st.done_rx.recv() {
                Ok(batch) => {
                    ok &= batch.0.iter().all(|c| match c {
                        Completion::Txn(done) => done.ok,
                        Completion::Query { .. } => true,
                    })
                }
                Err(_) => return false,
            }
        }
        if ok {
            sh.committed.incr();
        }
        st.sample_depths(sh.senders);
        true
    }

    /// Blocks briefly for completions, then bulk-drains whatever else is
    /// queued. Returns `false` if the channel disconnected.
    fn wait_completions(
        &self,
        done_rx: &Receiver<DoneBatch>,
        ready: &mut Vec<DoneBatch>,
        inflight: &mut usize,
        committed: &Counter,
    ) -> bool {
        match done_rx.recv_timeout(Duration::from_millis(1)) {
            Ok(batch) => absorb_completions(batch, inflight, committed),
            Err(RecvTimeoutError::Timeout) => return true,
            Err(RecvTimeoutError::Disconnected) => return false,
        }
        // The ACs batch completions per drained chunk; mirror that here
        // with one bulk channel crossing per group of DoneBatches instead
        // of one try_recv handshake per notice.
        loop {
            match done_rx.try_recv_many(ready, COMPLETION_CHUNK) {
                Ok(_) => {
                    for batch in ready.drain(..) {
                        absorb_completions(batch, inflight, committed);
                    }
                }
                Err(TryRecvError::Empty) => return true,
                Err(TryRecvError::Disconnected) => return false,
            }
        }
    }

    /// Final drain after the deadline or before a plan swap: waits out
    /// every in-flight txn.
    fn drain_completions(
        &self,
        done_rx: &Receiver<DoneBatch>,
        inflight: &mut usize,
        committed: &Counter,
    ) {
        while *inflight > 0 {
            match done_rx.recv() {
                Ok(batch) => absorb_completions(batch, inflight, committed),
                Err(_) => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anydb_workload::tpcc::cols::warehouse;
    use anydb_workload::tpcc::TpccConfig;

    fn engine(strategy: Strategy) -> AnyDbEngine {
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 61).unwrap());
        AnyDbEngine::new(
            db,
            EngineConfig {
                strategy,
                acs: 2,
                ..Default::default()
            },
        )
    }

    fn run_short(strategy: Strategy, kind: PhaseKind) -> (AnyDbEngine, PhaseResult) {
        let e = engine(strategy);
        let r = e.run_phase(kind, Duration::from_millis(100), 1);
        (e, r)
    }

    /// An eager morph config for short test phases: switch on the first
    /// qualified window, hold 5ms after each switch.
    fn eager_morph() -> MorphConfig {
        MorphConfig {
            dwell: Duration::from_millis(5),
            min_backlog: 8,
            improvement: 1.0,
            ..Default::default()
        }
    }

    #[test]
    fn shared_nothing_commits() {
        let (_, r) = run_short(Strategy::SharedNothing, PhaseKind::OltpPartitionable);
        assert!(r.committed > 100, "committed {}", r.committed);
        assert_eq!(r.olap_queries, 0);
    }

    #[test]
    fn streaming_cc_commits_under_skew() {
        let (_, r) = run_short(Strategy::StreamingCc, PhaseKind::OltpSkewed);
        assert!(r.committed > 100, "committed {}", r.committed);
    }

    #[test]
    fn precise_intra_commits_under_skew() {
        let (_, r) = run_short(Strategy::PreciseIntra, PhaseKind::OltpSkewed);
        assert!(r.committed > 100, "committed {}", r.committed);
    }

    #[test]
    fn static_intra_commits_under_skew() {
        let (_, r) = run_short(Strategy::StaticIntra, PhaseKind::OltpSkewed);
        assert!(r.committed > 50, "committed {}", r.committed);
    }

    #[test]
    fn htap_phase_serves_olap_on_separate_acs() {
        let (_, r) = run_short(Strategy::SharedNothing, PhaseKind::HtapSkewed);
        assert!(r.olap_queries > 0);
        assert!(r.committed > 0);
    }

    #[test]
    fn static_run_records_its_single_strategy() {
        let (_, r) = run_short(Strategy::PreciseIntra, PhaseKind::OltpSkewed);
        assert_eq!(r.strategies, vec![Strategy::PreciseIntra]);
        assert_eq!(r.switches, 0);
    }

    #[test]
    fn olap_heavy_phase_scales_admission() {
        let (_, r) = run_short(Strategy::SharedNothing, PhaseKind::OlapHeavy);
        assert!(r.olap_queries > 0, "olap {}", r.olap_queries);
        assert!(r.committed > 0);
    }

    #[test]
    fn morphing_escapes_shared_nothing_under_skew() {
        // Everything lands on warehouse 1's AC: the attributed hot share
        // is ~1.0, so the controller must decompose — and since the
        // admission mix stays skewed, it must not flap back.
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 70).unwrap());
        let e = AnyDbEngine::new(
            db,
            EngineConfig {
                strategy: Strategy::SharedNothing,
                acs: 2,
                window: 256,
                morph: Some(eager_morph()),
                ..Default::default()
            },
        );
        let r = e.run_phase(PhaseKind::OltpSkewed, Duration::from_millis(200), 21);
        assert!(r.switches >= 1, "no switch: {:?}", r.strategies);
        assert_eq!(r.strategies[0], Strategy::SharedNothing);
        assert_eq!(
            *r.strategies.last().unwrap(),
            Strategy::StreamingCc,
            "{:?}",
            r.strategies
        );
        assert!(r.committed > 100, "committed {}", r.committed);
    }

    #[test]
    fn morphing_reverts_to_shared_nothing_when_load_spreads() {
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 71).unwrap());
        let e = AnyDbEngine::new(
            db,
            EngineConfig {
                strategy: Strategy::StreamingCc,
                acs: 2,
                window: 256,
                morph: Some(eager_morph()),
                ..Default::default()
            },
        );
        let r = e.run_phase(PhaseKind::OltpPartitionable, Duration::from_millis(200), 22);
        assert!(r.switches >= 1, "no switch: {:?}", r.strategies);
        assert_eq!(
            *r.strategies.last().unwrap(),
            Strategy::SharedNothing,
            "{:?}",
            r.strategies
        );
        assert!(r.committed > 100, "committed {}", r.committed);
    }

    #[test]
    fn morphing_run_is_serializable_across_live_swaps() {
        // Two drivers crossing at least one plan swap: the drain + swap
        // barrier must keep whole-transaction and decomposed execution
        // from ever interleaving on the same warehouses.
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 72).unwrap());
        let hist = Arc::new(History::new());
        let e = AnyDbEngine::new(
            db,
            EngineConfig {
                strategy: Strategy::SharedNothing,
                acs: 2,
                drivers: 2,
                window: 128,
                morph: Some(eager_morph()),
                ..Default::default()
            },
        )
        .with_history(hist.clone());
        let r = e.run_phase(PhaseKind::OltpSkewed, Duration::from_millis(250), 23);
        assert!(r.switches >= 1, "no swap exercised: {:?}", r.strategies);
        assert!(!hist.is_empty());
        assert!(
            hist.is_serializable(),
            "live morphing produced a non-serializable history"
        );
    }

    #[test]
    fn money_invariant_holds_after_streaming_cc() {
        // Σ(W_YTD deltas) must equal the number of committed payments
        // times their amounts; with the shared counter we check the
        // weaker but sharp invariant: total YTD delta == Σ amounts of
        // committed txns. Since amounts vary, check conservation:
        // warehouse + district YTD deltas must match exactly (every
        // payment adds the same amount to both).
        let e = engine(Strategy::StreamingCc);
        e.run_phase(PhaseKind::OltpSkewed, Duration::from_millis(150), 3);
        let db = e.db();
        let mut w_delta = 0.0;
        for w in 1..=db.cfg.warehouses as i64 {
            let ytd = db
                .warehouse
                .read(db.warehouse_rid(w).unwrap())
                .unwrap()
                .0
                .get(warehouse::W_YTD)
                .as_float()
                .unwrap();
            w_delta += ytd - 300_000.0;
        }
        let mut d_delta = 0.0;
        for w in 1..=db.cfg.warehouses as i64 {
            for d in 1..=db.cfg.districts_per_warehouse as i64 {
                let ytd = db
                    .district
                    .read(db.district_rid(w, d).unwrap())
                    .unwrap()
                    .0
                    .get(anydb_workload::tpcc::cols::district::D_YTD)
                    .as_float()
                    .unwrap();
                d_delta += ytd - 30_000.0;
            }
        }
        // Relative tolerance: fast runs push the sums past 1e8, where a
        // fixed 1e-6 is below f64 accumulation noise.
        let tol = (w_delta.abs() * 1e-12).max(1e-6);
        assert!(
            (w_delta - d_delta).abs() < tol,
            "warehouse delta {w_delta} != district delta {d_delta}"
        );
        assert!(w_delta > 0.0);
    }

    #[test]
    fn money_invariant_holds_across_live_morphing() {
        // Same conservation law, but with the plan swapping mid-phase:
        // a transaction torn across the swap would break it.
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 73).unwrap());
        let e = AnyDbEngine::new(
            db,
            EngineConfig {
                strategy: Strategy::SharedNothing,
                acs: 2,
                window: 256,
                morph: Some(eager_morph()),
                ..Default::default()
            },
        );
        let r = e.run_phase(PhaseKind::OltpSkewed, Duration::from_millis(200), 24);
        assert!(r.switches >= 1);
        let db = e.db();
        let mut w_delta = 0.0;
        for w in 1..=db.cfg.warehouses as i64 {
            let ytd = db
                .warehouse
                .read(db.warehouse_rid(w).unwrap())
                .unwrap()
                .0
                .get(warehouse::W_YTD)
                .as_float()
                .unwrap();
            w_delta += ytd - 300_000.0;
        }
        let mut d_delta = 0.0;
        for w in 1..=db.cfg.warehouses as i64 {
            for d in 1..=db.cfg.districts_per_warehouse as i64 {
                let ytd = db
                    .district
                    .read(db.district_rid(w, d).unwrap())
                    .unwrap()
                    .0
                    .get(anydb_workload::tpcc::cols::district::D_YTD)
                    .as_float()
                    .unwrap();
                d_delta += ytd - 30_000.0;
            }
        }
        let tol = (w_delta.abs() * 1e-12).max(1e-6);
        assert!(
            (w_delta - d_delta).abs() < tol,
            "warehouse delta {w_delta} != district delta {d_delta}"
        );
        assert!(w_delta > 0.0);
    }

    #[test]
    fn streaming_cc_history_is_serializable() {
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 62).unwrap());
        let hist = Arc::new(History::new());
        let e = AnyDbEngine::new(
            db,
            EngineConfig {
                strategy: Strategy::StreamingCc,
                acs: 2,
                drivers: 2,
                ..Default::default()
            },
        )
        .with_history(hist.clone());
        e.run_phase(PhaseKind::OltpSkewed, Duration::from_millis(150), 5);
        assert!(!hist.is_empty());
        assert!(
            hist.is_serializable(),
            "streaming CC produced a non-serializable history"
        );
    }

    #[test]
    fn precise_intra_history_is_serializable() {
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 63).unwrap());
        let hist = Arc::new(History::new());
        let e = AnyDbEngine::new(
            db,
            EngineConfig {
                strategy: Strategy::PreciseIntra,
                acs: 2,
                drivers: 2,
                ..Default::default()
            },
        )
        .with_history(hist.clone());
        e.run_phase(PhaseKind::OltpSkewed, Duration::from_millis(150), 6);
        assert!(hist.is_serializable());
    }

    #[test]
    fn unbatched_config_still_commits() {
        // batch = 1 is the pre-batching per-event path; it must stay
        // correct because it is the latency end of the tunable.
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 64).unwrap());
        let e = AnyDbEngine::new(
            db,
            EngineConfig {
                strategy: Strategy::StreamingCc,
                acs: 2,
                batch: BatchMode::Static(1),
                ..Default::default()
            },
        );
        let r = e.run_phase(PhaseKind::OltpSkewed, Duration::from_millis(100), 11);
        assert!(r.committed > 100, "committed {}", r.committed);
    }

    #[test]
    fn batched_streaming_cc_history_is_serializable() {
        // Large batches + several drivers: grouping must not leak events
        // past their stamps.
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 65).unwrap());
        let hist = Arc::new(History::new());
        let e = AnyDbEngine::new(
            db,
            EngineConfig {
                strategy: Strategy::StreamingCc,
                acs: 2,
                drivers: 2,
                batch: BatchMode::Static(256),
                ..Default::default()
            },
        )
        .with_history(hist.clone());
        e.run_phase(PhaseKind::OltpSkewed, Duration::from_millis(150), 12);
        assert!(!hist.is_empty());
        assert!(hist.is_serializable());
    }

    #[test]
    fn adaptive_batching_commits_and_is_serializable() {
        // The default mode: batch sizes move with backlog during the
        // run. Correctness must not depend on where the controller sits.
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 66).unwrap());
        let hist = Arc::new(History::new());
        let e = AnyDbEngine::new(
            db,
            EngineConfig {
                strategy: Strategy::StreamingCc,
                acs: 2,
                drivers: 2,
                batch: BatchMode::Adaptive { min: 1, max: 256 },
                ..Default::default()
            },
        )
        .with_history(hist.clone());
        let r = e.run_phase(PhaseKind::OltpSkewed, Duration::from_millis(150), 13);
        assert!(r.committed > 100, "committed {}", r.committed);
        assert!(!hist.is_empty());
        assert!(hist.is_serializable());
    }

    #[test]
    fn slo_batching_commits_and_is_serializable() {
        // The SLO mode steers batch size against the measured per-window
        // drain wait; wherever it lands, execution must stay correct.
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 67).unwrap());
        let hist = Arc::new(History::new());
        let e = AnyDbEngine::new(
            db,
            EngineConfig {
                strategy: Strategy::StreamingCc,
                acs: 2,
                drivers: 2,
                batch: BatchMode::Slo {
                    budget: Duration::from_micros(500),
                    max: 256,
                },
                ..Default::default()
            },
        )
        .with_history(hist.clone());
        let r = e.run_phase(PhaseKind::OltpSkewed, Duration::from_millis(150), 14);
        assert!(r.committed > 100, "committed {}", r.committed);
        assert!(!hist.is_empty());
        assert!(hist.is_serializable());
    }

    #[test]
    fn schedule_runs_all_phases() {
        let e = engine(Strategy::SharedNothing);
        let results = e.run_schedule(&PhaseSchedule::figure5(), Duration::from_millis(25), 9);
        assert_eq!(results.len(), 6);
        assert!(results.iter().all(|(_, r)| r.committed > 0));
    }
}
