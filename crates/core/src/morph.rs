//! The workload-morphing controller: the paper's headline loop, closed.
//!
//! The engine has had four execution strategies and the telemetry to
//! choose between them (queue-depth mirrors, completion rates, the
//! OLTP/OLAP mix) since PR 2 — but the choice stayed a constructor
//! argument. [`MorphController`] watches that telemetry through
//! [`LoadSnapshot`] windows and decides, live, which strategy the
//! dispatch plan should carry and how wide the OLAP admission window
//! should be — §2.1's "shift its architecture just in an instant",
//! grounded in Evolutionary Data Systems and Database-Agnostic Workload
//! Management (PAPERS.md).
//!
//! ## Signals
//!
//! * **Skew** — the hottest home partition's share of the total queued
//!   backlog ([`LoadSnapshot::hot_share`]). Under shared-nothing routing
//!   a fully skewed workload parks every queued event on the one AC
//!   owning the hot warehouse (share → 1.0); a partitionable one spreads
//!   backlog evenly (share → 1/n). Decomposed strategies spread even a
//!   skewed workload across stage ACs, so samplers attribute backlog
//!   back to home partitions by admission mix — keeping the signal
//!   strategy-invariant (no feedback thrash). No backlog at all means
//!   the current plan is keeping up, which is evidence *for* it, not
//!   against it.
//! * **OLAP mix** — the analytical fraction of completed work
//!   ([`LoadSnapshot::olap_fraction`]) steers the query admission window
//!   between its configured bounds.
//!
//! ## Hysteresis (never thrash)
//!
//! Three guards keep the controller from oscillating:
//!
//! 1. **Dwell time** — after any switch, no further switch for
//!    [`MorphConfig::dwell`], however the signals move.
//! 2. **Deadband** — switching toward decomposition requires
//!    `hot_share >= skew_high`; switching back requires
//!    `hot_share <= skew_low`. Between the thresholds the controller
//!    holds, so a workload sitting *at* a threshold cannot flip-flop.
//! 3. **Improvement threshold** — decomposition must also predict a real
//!    gain: the hot AC owns `hot_share` of all queued work, so spreading
//!    it over the stage pipeline is worth about `hot_share × acs`; below
//!    [`MorphConfig::improvement`] the switch is not taken.
//!
//! Both hysteresis properties — at most one switch per dwell window, and
//! convergence (a constant workload switches at most once, ever) — are
//! property-tested in `tests/morph_props.rs`.

use std::time::Duration;

use anydb_common::metrics::LoadSnapshot;

use crate::strategy::Strategy;

/// Tuning for the morph controller. The defaults fit the engine's
/// default shape (2 ACs, OLAP window 8); [`AnyDbEngine::run_phase`]
/// overrides [`acs`] with the engine's real AC count so the improvement
/// model always prices the actual pipeline width.
///
/// [`AnyDbEngine::run_phase`]: crate::engine::AnyDbEngine::run_phase
/// [`acs`]: MorphConfig::acs
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MorphConfig {
    /// Minimum time between strategy switches.
    pub dwell: Duration,
    /// Hot-share at or above which decomposition becomes a candidate.
    pub skew_high: f64,
    /// Hot-share at or below which shared-nothing becomes a candidate.
    pub skew_low: f64,
    /// Predicted speedup (`hot_share × acs`) a switch to decomposition
    /// must clear.
    pub improvement: f64,
    /// Total queued backlog below which no switch is considered: an
    /// unloaded system is already served by whatever plan it runs.
    pub min_backlog: u64,
    /// Worker-AC count the improvement model prices the pipeline at.
    pub acs: u32,
    /// Bounds for the steered OLAP admission window `(narrow, wide)`.
    pub olap_window: (usize, usize),
}

impl Default for MorphConfig {
    fn default() -> Self {
        Self {
            dwell: Duration::from_millis(25),
            skew_high: 0.85,
            skew_low: 0.55,
            improvement: 1.5,
            min_backlog: 16,
            acs: 2,
            olap_window: (8, 32),
        }
    }
}

/// What the controller wants after one observation window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MorphDecision {
    /// `Some(next)` iff the controller switched strategy this window —
    /// the caller installs it into the dispatch plan.
    pub switch_to: Option<Strategy>,
    /// The OLAP admission window to run with (always valid, whether or
    /// not a switch happened).
    pub olap_window: usize,
}

/// The controller itself: current strategy, switch clock, and the
/// hysteresis state. Pure in `(now, snapshot)` — time is an argument,
/// not read from a clock — so the sim drives it in virtual time and the
/// property tests replay arbitrary histories deterministically.
#[derive(Debug, Clone)]
pub struct MorphController {
    cfg: MorphConfig,
    current: Strategy,
    /// When the last switch happened (elapsed time supplied by the
    /// caller); `None` until the first switch.
    last_switch: Option<Duration>,
    switches: u64,
}

impl MorphController {
    /// A controller starting from `initial` under `cfg`.
    ///
    /// # Panics
    /// Panics unless `0 < skew_low < skew_high <= 1` and the OLAP window
    /// bounds are ordered and positive — a controller with an inverted
    /// deadband could thrash by construction.
    pub fn new(initial: Strategy, cfg: MorphConfig) -> Self {
        assert!(
            0.0 < cfg.skew_low && cfg.skew_low < cfg.skew_high && cfg.skew_high <= 1.0,
            "deadband inverted: low {} high {}",
            cfg.skew_low,
            cfg.skew_high
        );
        assert!(
            0 < cfg.olap_window.0 && cfg.olap_window.0 <= cfg.olap_window.1,
            "olap window bounds inverted: {:?}",
            cfg.olap_window
        );
        assert!(cfg.acs > 0, "controller needs at least one AC");
        Self {
            cfg,
            current: initial,
            last_switch: None,
            switches: 0,
        }
    }

    /// The strategy the controller currently stands behind.
    pub fn current(&self) -> Strategy {
        self.current
    }

    /// Switches taken so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// The configuration in effect.
    pub fn config(&self) -> &MorphConfig {
        &self.cfg
    }

    /// Feeds one observation window taken at elapsed time `now` and
    /// returns the controller's decision. `now` values must be
    /// monotonically non-decreasing across calls.
    pub fn observe(&mut self, now: Duration, snap: &LoadSnapshot) -> MorphDecision {
        let olap_window = self.olap_window_for(snap);
        let mut switch_to = None;
        if let Some(target) = self.target(snap) {
            if target != self.current && self.dwell_elapsed(now) {
                self.current = target;
                self.last_switch = Some(now);
                self.switches += 1;
                switch_to = Some(target);
            }
        }
        MorphDecision {
            switch_to,
            olap_window,
        }
    }

    fn dwell_elapsed(&self, now: Duration) -> bool {
        match self.last_switch {
            None => true,
            Some(at) => now.saturating_sub(at) >= self.cfg.dwell,
        }
    }

    /// The strategy the signals argue for, or `None` to hold: too little
    /// backlog to justify anything, a hot-share inside the deadband, or a
    /// decomposition whose predicted gain is not worth a swap.
    fn target(&self, snap: &LoadSnapshot) -> Option<Strategy> {
        if snap.depth_total < self.cfg.min_backlog {
            return None;
        }
        let hot = snap.hot_share()?;
        if hot >= self.cfg.skew_high {
            let gain = hot * self.cfg.acs as f64;
            (gain >= self.cfg.improvement).then_some(Strategy::StreamingCc)
        } else if hot <= self.cfg.skew_low {
            Some(Strategy::SharedNothing)
        } else {
            None
        }
    }

    /// Linear interpolation of the admission window over the observed
    /// OLAP fraction: all-OLTP runs at the narrow bound, all-OLAP at the
    /// wide one.
    fn olap_window_for(&self, snap: &LoadSnapshot) -> usize {
        let (narrow, wide) = self.cfg.olap_window;
        narrow + ((wide - narrow) as f64 * snap.olap_fraction()).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed(backlog: u64) -> LoadSnapshot {
        LoadSnapshot {
            oltp_committed: 100,
            depth_samples: 1,
            depth_hot: backlog,
            depth_total: backlog,
            windows: 1,
            ..Default::default()
        }
    }

    fn uniform(backlog: u64, acs: u64) -> LoadSnapshot {
        LoadSnapshot {
            oltp_committed: 100,
            depth_samples: 1,
            depth_hot: backlog / acs,
            depth_total: backlog,
            windows: 1,
            ..Default::default()
        }
    }

    fn ctl() -> MorphController {
        MorphController::new(
            Strategy::SharedNothing,
            MorphConfig {
                acs: 4,
                ..Default::default()
            },
        )
    }

    const MS: Duration = Duration::from_millis(1);

    #[test]
    fn skew_triggers_decomposition_and_uniform_reverts() {
        let mut c = ctl();
        let d = c.observe(Duration::ZERO, &skewed(64));
        assert_eq!(d.switch_to, Some(Strategy::StreamingCc));
        assert_eq!(c.current(), Strategy::StreamingCc);
        // After the dwell, a uniform signal brings shared-nothing back.
        let d = c.observe(c.config().dwell + MS, &uniform(64, 4));
        assert_eq!(d.switch_to, Some(Strategy::SharedNothing));
        assert_eq!(c.switches(), 2);
    }

    #[test]
    fn dwell_blocks_an_immediate_flip() {
        let mut c = ctl();
        assert!(c.observe(Duration::ZERO, &skewed(64)).switch_to.is_some());
        // Signals reversed inside the dwell window: the controller holds.
        let d = c.observe(c.config().dwell - MS, &uniform(64, 4));
        assert_eq!(d.switch_to, None);
        assert_eq!(c.current(), Strategy::StreamingCc);
    }

    #[test]
    fn no_backlog_means_no_switch() {
        let mut c = ctl();
        // Deep skew but below min_backlog: the plan is keeping up.
        let d = c.observe(Duration::ZERO, &skewed(8));
        assert_eq!(d.switch_to, None);
        // And a snapshot with no depth data at all holds too.
        let d = c.observe(MS, &LoadSnapshot::default());
        assert_eq!(d.switch_to, None);
        assert_eq!(c.current(), Strategy::SharedNothing);
    }

    #[test]
    fn deadband_holds_between_thresholds() {
        let mut c = ctl();
        let mid = LoadSnapshot {
            depth_samples: 1,
            depth_hot: 70,
            depth_total: 100,
            ..Default::default()
        };
        for i in 0..20u64 {
            let d = c.observe(Duration::from_millis(i * 10), &mid);
            assert_eq!(d.switch_to, None);
        }
        assert_eq!(c.switches(), 0);
    }

    #[test]
    fn improvement_threshold_vetoes_pointless_decomposition() {
        // One AC: decomposing cannot help (gain = hot × 1 < threshold).
        let mut c = MorphController::new(
            Strategy::SharedNothing,
            MorphConfig {
                acs: 1,
                ..Default::default()
            },
        );
        let d = c.observe(Duration::ZERO, &skewed(64));
        assert_eq!(d.switch_to, None);
        assert_eq!(c.current(), Strategy::SharedNothing);
    }

    #[test]
    fn olap_window_tracks_the_mix() {
        let mut c = ctl();
        let (narrow, wide) = c.config().olap_window;
        // Pure OLTP: narrow.
        assert_eq!(c.observe(Duration::ZERO, &skewed(8)).olap_window, narrow);
        // All-OLAP completions: wide.
        let olap = LoadSnapshot {
            olap_completed: 50,
            olap_admitted: 50,
            ..Default::default()
        };
        assert_eq!(c.observe(MS, &olap).olap_window, wide);
        // An even mix lands in between.
        let mixed = LoadSnapshot {
            oltp_committed: 50,
            olap_completed: 50,
            ..Default::default()
        };
        let w = c.observe(2 * MS, &mixed).olap_window;
        assert!(w > narrow && w < wide, "mixed window {w}");
    }

    #[test]
    #[should_panic(expected = "deadband inverted")]
    fn inverted_deadband_panics() {
        MorphController::new(
            Strategy::SharedNothing,
            MorphConfig {
                skew_low: 0.9,
                skew_high: 0.5,
                ..Default::default()
            },
        );
    }
}
