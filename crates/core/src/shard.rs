//! Sharded multi-node TPC-C: warehouse placement, cross-shard 2PC, and
//! crash recovery (DESIGN.md §10).
//!
//! §2.3/§4 of the paper scale the architecture-less engine by adding
//! servers; this module makes a multi-node deployment concrete.
//! Warehouses are placed on shard nodes by a jump consistent hash
//! ([`ShardMap`]); every inter-node byte crosses a modeled
//! [`SimLink`] derived from a [`Topology`] (Tcp class between servers),
//! so fault injection and latency modeling apply to the commit protocol
//! exactly as they do to scans and replication.
//!
//! A new-order whose supply warehouses all live on the home shard
//! commits locally. One with remote supply lines becomes a distributed
//! transaction under **two-phase commit with presumed abort**:
//!
//! * the coordinator (the home shard) logs [`LogOp::Prepare`] for its
//!   local slice, sends [`CommitMsg::Prepare`] to each remote
//!   participant, and collects [`CommitMsg::Vote`]s
//!   ([`CoordVotes`] keeps that pure and unit-testable);
//! * a participant logs its own `Prepare` (staged, durable) and votes —
//!   under sync replication only once the Prepare record is covered by
//!   its follower's ack watermark;
//! * on unanimous yes the coordinator logs [`LogOp::Decide`] **before**
//!   applying (log-then-apply, so [`twopc_scan`] can finish a crashed
//!   apply), applies its slice, and sends [`CommitMsg::Decide`];
//!   participants apply, log their own decision, and answer
//!   [`CommitMsg::DecideAck`];
//! * the client ack releases only after **every** participant acked and
//!   (with followers) the records are replicated — "zero lost acked
//!   commits" is enforced at this gate;
//! * every message may be lost: coordinators retransmit Prepare/Decide
//!   on a [`Retransmit`] timer, staged participants re-ask the outcome
//!   with [`CommitMsg::DecideQuery`] — retransmission *is* the repair
//!   path, as for replication catch-up. A query for a still-undecided
//!   transaction is answered with a fresh Prepare, never counted as a
//!   vote: queries are ungated, and only the watermark-gated Vote
//!   proves the participant's Prepare record is durable;
//! * a coordinator that recovers with a staged-but-undecided transaction
//!   **presumes abort** (it logs `Decide{commit: false}` so later
//!   queries get a consistent answer); a participant asked about a
//!   transaction the coordinator never heard of gets the same presumed
//!   abort. A client re-submission of a presumed-abort transaction is a
//!   fresh attempt: its new Prepare supersedes the old decision.
//!
//! Each node's storage tier can run replicated exactly like a PR-8
//! storage AC: followers join over [`PrimaryEnd`] links, WAL records
//! (2PC records included) ship via the shared [`ship_records`] path, and
//! Votes / DecideAcks / client acks gate on the follower watermark so a
//! promoted follower can always reconstruct staged state from its
//! mirrored log and re-ask the coordinator.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use anydb_common::commit::{CommitMsg, PrepOp};
use anydb_common::fxmap::{FxHashMap, FxHashSet};
use anydb_common::metrics::{Counter, RobustSnapshot};
use anydb_common::repl::ReplMsg;
use anydb_common::{ColumnDef, DataType, Schema, ServerId};
use anydb_common::{DbError, DbResult, TableId, Tuple, TxnId, Value};
use anydb_storage::catalog::TableSpec;
use anydb_storage::key::IndexKey;
use anydb_storage::recovery::{replay, twopc_scan};
use anydb_storage::store::Partitioner;
use anydb_storage::wal::LogOp;
use anydb_storage::{Store, Wal};
use anydb_stream::link::{LinkReceiver, LinkSender, LinkSpec, SimLink};
use anydb_stream::network::{LinkClass, Topology};
use anydb_txn::twopc::{CoordVotes, Retransmit};
use anydb_workload::tpcc::NewOrderParams;
use bytes::Bytes;
use crossbeam::channel::Sender as ChanSender;
use crossbeam::channel::{Receiver, TryRecvError};

use crate::event::{Completion, CompletionBatcher, DoneSender, OpDone};
use crate::replica::{ship_records, FollowerSlot, PrimaryEnd, ReplConfig, ReplMetrics};

/// Warehouse → shard-node placement by jump consistent hash
/// (Lamport/Veach): no table to ship around, even spread, and growing
/// the cluster only moves keys *to the new node* — never between
/// existing ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    nodes: u32,
}

impl ShardMap {
    /// A placement over `nodes` shard nodes.
    ///
    /// # Panics
    /// Panics if `nodes` is zero.
    pub fn new(nodes: u32) -> Self {
        assert!(nodes > 0, "a shard map needs at least one node");
        Self { nodes }
    }

    /// Number of shard nodes.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// The node that owns `warehouse` (and every row homed there).
    pub fn node_of(&self, warehouse: i64) -> u32 {
        jump_hash(warehouse as u64, self.nodes)
    }
}

/// Jump consistent hash: maps `key` to one of `buckets` with the
/// minimal-disruption property used by [`ShardMap`].
fn jump_hash(mut key: u64, buckets: u32) -> u32 {
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < i64::from(buckets) {
        b = j;
        key = key.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1);
        let r = ((key >> 33).wrapping_add(1)) as f64;
        j = (((b + 1) as f64) * ((1u64 << 31) as f64 / r)) as i64;
    }
    b as u32
}

/// The order-header table every shard node carries: `(o_id Int pk,
/// o_w Int, o_d Int, o_c Int)`, homed on the order's home warehouse.
pub const ORDERS_TABLE: TableId = TableId(0);
/// The order-line table: `(ol_key Int pk, ol_o Int, ol_supply Int,
/// ol_item Int, ol_qty Int)`, homed on the line's *supply* warehouse —
/// remote supply lines are what make a new-order cross-shard.
pub const LINES_TABLE: TableId = TableId(1);

/// A fresh shard-node store holding [`ORDERS_TABLE`] and
/// [`LINES_TABLE`].
pub fn shard_store() -> Store {
    let store = Store::new();
    store
        .create_table(TableSpec::new(
            Schema::new(
                "orders",
                vec![
                    ColumnDef::new("o_id", DataType::Int),
                    ColumnDef::new("o_w", DataType::Int),
                    ColumnDef::new("o_d", DataType::Int),
                    ColumnDef::new("o_c", DataType::Int),
                ],
                &["o_id"],
            ),
            1,
            Partitioner::Single,
        ))
        .expect("fresh store");
    store
        .create_table(TableSpec::new(
            Schema::new(
                "order_lines",
                vec![
                    ColumnDef::new("ol_key", DataType::Int),
                    ColumnDef::new("ol_o", DataType::Int),
                    ColumnDef::new("ol_supply", DataType::Int),
                    ColumnDef::new("ol_item", DataType::Int),
                    ColumnDef::new("ol_qty", DataType::Int),
                ],
                &["ol_key"],
            ),
            1,
            Partitioner::Single,
        ))
        .expect("fresh store");
    store
}

/// The deterministic order-header row for `o_id` (drivers and audits
/// agree on it).
pub fn order_tuple(o_id: i64, w: i64, d: i64, c: i64) -> Tuple {
    Tuple::new(vec![
        Value::Int(o_id),
        Value::Int(w),
        Value::Int(d),
        Value::Int(c),
    ])
}

/// Primary key of order `o_id`'s line `idx`. TPC-C orders carry at most
/// 15 lines, so packing into 16 slots per order keeps keys unique.
pub fn line_key(o_id: i64, idx: usize) -> i64 {
    debug_assert!(idx < 16, "TPC-C order lines are capped at 15");
    o_id * 16 + idx as i64
}

/// The deterministic order-line row for `(o_id, idx)`.
pub fn line_tuple(o_id: i64, idx: usize, supply: i64, item: i64, qty: i64) -> Tuple {
    Tuple::new(vec![
        Value::Int(line_key(o_id, idx)),
        Value::Int(o_id),
        Value::Int(supply),
        Value::Int(item),
        Value::Int(qty),
    ])
}

/// One direction-pair of modeled links between this node and `node`.
pub struct PeerEnd {
    /// The remote shard node's id.
    pub node: u32,
    /// Frames to the peer (inject faults here to break this direction).
    pub tx: LinkSender<Bytes>,
    /// Frames from the peer.
    pub rx: LinkReceiver<Bytes>,
}

/// Builds the full peer mesh for `nodes` shard nodes: one AC per server
/// in a [`Topology`] with Tcp-class inter-server links, a [`SimLink`]
/// pair per node pair. `ends[i]` is node `i`'s view of everyone else.
pub fn shard_mesh(nodes: u32, ring: usize) -> Vec<Vec<PeerEnd>> {
    let mut topo = Topology::new(nodes, 1, LinkClass::Tcp);
    let acs: Vec<_> = (0..nodes).map(|s| topo.place_ac(ServerId(s))).collect();
    let mut ends: Vec<Vec<PeerEnd>> = (0..nodes).map(|_| Vec::new()).collect();
    for i in 0..nodes as usize {
        for j in (i + 1)..nodes as usize {
            let spec = topo.link_spec(acs[i], acs[j]);
            let (a, b) = peer_pair(spec, ring, i as u32, j as u32);
            ends[i].push(a);
            ends[j].push(b);
        }
    }
    ends
}

/// One fresh link pair between nodes `a` and `b` (rejoin after a crash:
/// hand each end to its node via the `peer_joins` channel). Returns
/// `(a's end, b's end)`.
pub fn peer_pair(spec: LinkSpec, ring: usize, a: u32, b: u32) -> (PeerEnd, PeerEnd) {
    let (atx, brx) = SimLink::channel::<Bytes>(spec, ring);
    let (btx, arx) = SimLink::channel::<Bytes>(spec, ring);
    (
        PeerEnd {
            node: b,
            tx: atx,
            rx: arx,
        },
        PeerEnd {
            node: a,
            tx: btx,
            rx: brx,
        },
    )
}

/// Where a crash-point-configured coordinator vanishes, relative to the
/// first cross-shard transaction it coordinates. Together the four
/// points cover every distinct recovery obligation of the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Before logging anything: the op simply vanishes; recovery finds
    /// nothing and the client re-submission re-executes from scratch.
    BeforePrepare,
    /// Prepare logged and sent, no decision: recovery presumes abort and
    /// must answer participants' DecideQueries with that abort.
    AfterPrepareSent,
    /// Decide(commit) logged, nothing applied or sent: recovery must
    /// finish the apply and re-deliver the decision to `parts`.
    AfterDecideLogged,
    /// Decide applied and sent, client never acked: recovery answers the
    /// re-submission idempotently from the decided map.
    AfterDecideSent,
}

/// Tunables for one shard node.
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Max client ops drained per loop iteration.
    pub batch_ops: usize,
    /// Cadence for Prepare/Decide retransmission and participant
    /// DecideQuery re-asks. Generous values keep a loaded 1-core CI
    /// host from retransmitting into healthy links.
    pub retransmit_every: Duration,
    /// Modeled group-commit fsync: slept once per loop iteration that
    /// applied at least one commit. Zero disables it; benches set it to
    /// make throughput latency-bound so scale-out is measurable on one
    /// core.
    pub commit_latency: Duration,
    /// Replication knobs for follower shipping (used once followers
    /// join; an unreplicated node never consults the mode).
    pub repl: ReplConfig,
    /// Crash the node at this protocol step of its first cross-shard
    /// transaction (chaos harness; `None` in production paths).
    pub crash_at: Option<CrashPoint>,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            batch_ops: 32,
            retransmit_every: Duration::from_millis(25),
            commit_latency: Duration::ZERO,
            repl: ReplConfig::default(),
            crash_at: None,
        }
    }
}

/// Counters for one shard node. `repl` holds the node's replication-tier
/// counters when followers are attached.
#[derive(Debug, Default)]
pub struct ShardMetrics {
    /// Client acks for single-shard orders.
    pub local_commits: Counter,
    /// Client acks for cross-shard orders (the 2PC path end-to-end).
    pub cross_commits: Counter,
    /// Prepare frames sent to participants (first transmission only).
    pub prepares: Counter,
    /// No-votes recorded (a participant refused to stage).
    pub votes_no: Counter,
    /// Commit decisions logged at this coordinator.
    pub commits_decided: Counter,
    /// Abort decisions logged (presumed aborts included).
    pub aborts_decided: Counter,
    /// Retransmission timer firings that re-sent something.
    pub retransmits: Counter,
    /// DecideQueries received and answered.
    pub decide_queries: Counter,
    /// Outcomes invented by the presumed-abort rule.
    pub presumed_aborts: Counter,
    /// Commit frames that failed to decode (dropped, never applied).
    pub corrupt_frames: Counter,
    /// Peer-link frames delivered (fault stats harvested at node exit).
    pub link_delivered: Counter,
    /// Peer-link frames lost to injected faults.
    pub link_dropped: Counter,
    /// Peer-link frames that took an injected delay spike.
    pub link_delayed: Counter,
    /// Peer-link sends refused by a cut link.
    pub link_refused: Counter,
    /// Replication-tier counters (WAL shipping to this node's followers).
    pub repl: ReplMetrics,
}

impl ShardMetrics {
    /// This node's counters as one mergeable [`RobustSnapshot`].
    pub fn snapshot(&self) -> RobustSnapshot {
        let mut s = self.repl.snapshot();
        s.frames_delivered = self.link_delivered.get();
        s.frames_dropped = self.link_dropped.get();
        s.frames_delayed = self.link_delayed.get();
        s.sends_refused = self.link_refused.get();
        s.twopc_prepares = self.prepares.get();
        s.twopc_votes_no = self.votes_no.get();
        s.twopc_commits = self.commits_decided.get();
        s.twopc_aborts = self.aborts_decided.get();
        s.twopc_retransmits = self.retransmits.get();
        s.twopc_decide_queries = self.decide_queries.get();
        s.twopc_presumed_aborts = self.presumed_aborts.get();
        s.twopc_corrupt_frames = self.corrupt_frames.get();
        s
    }
}

/// One client new-order submitted to its home shard. The `rollback`
/// flag on the params is ignored here: client-side rollback injection is
/// an engine-tier concern, the shard tier exercises the commit path.
pub struct ShardOp {
    /// Transaction id; doubles as the order id, so re-submissions after
    /// a lost ack are recognized and answered idempotently.
    pub txn: TxnId,
    /// The new-order to run.
    pub params: NewOrderParams,
    /// Where the commit/abort ack goes (batched completion protocol).
    pub done: DoneSender,
}

/// Routes client new-orders to their home shard by [`ShardMap`]
/// placement, surviving node replacement via [`ShardRouter::reroute`]
/// exactly like the replication tier's router.
pub struct ShardRouter {
    map: ShardMap,
    slots: Vec<Mutex<ChanSender<ShardOp>>>,
}

impl ShardRouter {
    /// A router over one op channel per shard node, indexed by node id.
    pub fn new(map: ShardMap, slots: Vec<ChanSender<ShardOp>>) -> Self {
        assert_eq!(slots.len(), map.nodes() as usize, "one slot per node");
        Self {
            map,
            slots: slots.into_iter().map(Mutex::new).collect(),
        }
    }

    /// The placement this router routes by.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Swaps `node`'s op channel (a recovered replacement took over).
    pub fn reroute(&self, node: u32, tx: ChanSender<ShardOp>) {
        *self.slots[node as usize]
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = tx;
    }

    /// Submits to the home shard of `op.params.w_id`. `Err` hands the op
    /// back when that node's channel is gone (mid-replacement): retry
    /// after a [`ShardRouter::reroute`].
    pub fn submit(&self, op: ShardOp) -> Result<(), ShardOp> {
        let node = self.map.node_of(op.params.w_id) as usize;
        self.slots[node]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .send(op)
            .map_err(|e| e.0)
    }
}

/// Why [`ShardNode::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeExit {
    /// The crash switch (or a configured [`CrashPoint`]) fired:
    /// vanished mid-stride, nothing flushed, links dropped.
    Crashed,
    /// The stop switch flipped, or the op channel closed with every
    /// client-owed transaction resolved.
    Stopped,
}

/// A participant-side staged transaction awaiting the outcome.
struct Staged {
    coord: u32,
    ops: Vec<PrepOp>,
    /// LSN of the Prepare record (votes gate on it under sync).
    lsn: u64,
    /// Re-ask timer for [`CommitMsg::DecideQuery`].
    ask: Retransmit,
}

/// A coordinator-side transaction: in flight, or decided and owed to
/// participants/the client.
struct CoordTxn {
    votes: CoordVotes,
    /// Per-participant Prepare payloads for retransmission.
    remote_ops: FxHashMap<u32, Vec<PrepOp>>,
    /// The coordinator's own staged slice (applied on commit).
    local_ops: Vec<PrepOp>,
    /// Client ack channel; `None` on recovered re-delivery entries.
    done: Option<DoneSender>,
    decided: Option<bool>,
    acked_by: FxHashSet<u32>,
    /// Highest LSN of the decision + apply records: Decide frames and
    /// the client ack gate on it when followers are attached.
    final_lsn: u64,
    /// Whether this transaction had remote participants.
    cross: bool,
    retx: Retransmit,
}

/// Per-iteration scratch: sends and acks produced by message handlers,
/// merged into the gated queues by the run loop (keeps handler borrows
/// simple and makes send ordering explicit).
#[derive(Default)]
struct Ctx {
    /// Sends that need no durability gate.
    out_now: Vec<(u32, Bytes)>,
    /// Sends gated on the follower watermark covering an LSN.
    out_gated: Vec<(u32, u64, Bytes)>,
    /// Client acks gated the same way.
    acks: Vec<(u64, TxnId, bool, DoneSender)>,
    /// At least one commit applied (triggers the modeled group fsync).
    applied: bool,
    /// A configured crash point fired: vanish before sending anything.
    crash: bool,
    /// [`CrashPoint::AfterDecideSent`]: vanish after this iteration's
    /// send phase.
    crash_after_send: bool,
}

/// One shard node: a store + WAL, 2PC state, and the single-threaded
/// [`ShardNode::run`] loop that drives links, timers, and followers.
pub struct ShardNode {
    node: u32,
    map: ShardMap,
    store: Arc<Store>,
    wal: Arc<Wal>,
    cfg: ShardConfig,
    metrics: Arc<ShardMetrics>,
    staged: FxHashMap<TxnId, Staged>,
    /// Every outcome this node knows, as coordinator or participant —
    /// the answer book for DecideQueries and idempotent re-submissions.
    /// Commit outcomes are retained for the node's lifetime (they
    /// answer client re-submissions after a lost ack — intentional for
    /// the modeled harness); abort outcomes are dropped once settled,
    /// since the presumed-abort rule re-derives them on demand.
    decided: FxHashMap<TxnId, bool>,
    coord: FxHashMap<TxnId, CoordTxn>,
}

impl ShardNode {
    /// A fresh node over an empty store/WAL.
    pub fn new(
        node: u32,
        map: ShardMap,
        store: Arc<Store>,
        wal: Arc<Wal>,
        cfg: ShardConfig,
        metrics: Arc<ShardMetrics>,
    ) -> Self {
        Self {
            node,
            map,
            store,
            wal,
            cfg,
            metrics,
            staged: FxHashMap::default(),
            decided: FxHashMap::default(),
            coord: FxHashMap::default(),
        }
    }

    /// Rebuilds a node from a durable WAL (crash restart, or a promoted
    /// follower adopting its mirrored log): replays the log into the
    /// store (idempotent), then reconstructs 2PC state with
    /// [`twopc_scan`] —
    ///
    /// * staged, undecided, **coordinated here** → presumed abort,
    ///   logged so later queries get the same answer;
    /// * staged, undecided, coordinated elsewhere → in doubt; re-ask on
    ///   the query timer;
    /// * decided commit but not applied → finish the apply now;
    /// * decided here with remote participants → re-deliver the decision
    ///   until every participant acks.
    pub fn recover(
        node: u32,
        map: ShardMap,
        store: Arc<Store>,
        wal: Arc<Wal>,
        cfg: ShardConfig,
        metrics: Arc<ShardMetrics>,
    ) -> DbResult<Self> {
        let stats = replay(&wal, &store)?;
        metrics.repl.record_replay(&stats);
        let mut me = Self::new(node, map, store, wal, cfg, metrics);
        let now = Instant::now();
        for pc in twopc_scan(&me.wal.snapshot()) {
            match pc.decision {
                None if pc.coord == node => {
                    me.wal.append(
                        pc.txn,
                        LogOp::Decide {
                            commit: false,
                            parts: Vec::new(),
                        },
                    );
                    me.decided.insert(pc.txn, false);
                    me.metrics.presumed_aborts.incr();
                    me.metrics.aborts_decided.incr();
                }
                None => {
                    me.staged.insert(
                        pc.txn,
                        Staged {
                            coord: pc.coord,
                            ops: pc.ops,
                            lsn: me.wal.next_lsn().saturating_sub(1),
                            ask: Retransmit::new(cfg.retransmit_every, now),
                        },
                    );
                }
                Some(commit) => {
                    me.decided.insert(pc.txn, commit);
                    if commit && !pc.applied {
                        me.apply_ops(pc.txn, &pc.ops);
                    }
                    if pc.coord == node && !pc.parts.is_empty() {
                        // The decision is owed to these participants
                        // until they ack; the gate LSN is conservative
                        // (whole recovered log) like a re-submitted op.
                        me.coord.insert(
                            pc.txn,
                            CoordTxn {
                                votes: CoordVotes::new(pc.parts.clone()),
                                remote_ops: FxHashMap::default(),
                                local_ops: Vec::new(),
                                done: None,
                                decided: Some(commit),
                                acked_by: FxHashSet::default(),
                                final_lsn: me.wal.next_lsn().saturating_sub(1),
                                cross: true,
                                retx: Retransmit::new(cfg.retransmit_every, now),
                            },
                        );
                    }
                }
            }
        }
        Ok(me)
    }

    /// This node's id.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// This node's store (audits read through it after the run).
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// This node's WAL (recovery hands it to a replacement).
    pub fn wal(&self) -> &Arc<Wal> {
        &self.wal
    }

    /// Splits a new-order into the coordinator's local slice (order
    /// header + home-shard lines) and per-participant remote slices
    /// (lines homed on other shards' supply warehouses).
    fn decompose(
        &self,
        txn: TxnId,
        p: &NewOrderParams,
    ) -> (Vec<PrepOp>, FxHashMap<u32, Vec<PrepOp>>) {
        let o_id = txn.0 as i64;
        let mut local = vec![PrepOp {
            table: ORDERS_TABLE,
            tuple: order_tuple(o_id, p.w_id, p.d_id, p.c_id),
        }];
        let mut remote: FxHashMap<u32, Vec<PrepOp>> = FxHashMap::default();
        for (i, &(item, qty)) in p.lines.iter().enumerate() {
            let supply = p.supply[i];
            let op = PrepOp {
                table: LINES_TABLE,
                tuple: line_tuple(o_id, i, supply, item, qty),
            };
            let home = self.map.node_of(supply);
            if home == self.node {
                local.push(op);
            } else {
                remote.entry(home).or_default().push(op);
            }
        }
        (local, remote)
    }

    /// Applies staged ops: inserts each row and logs `Insert` + one
    /// closing `Commit` (which is what marks the transaction applied for
    /// [`twopc_scan`]). Duplicate keys are recovery overlap — the row is
    /// already durable — and are skipped.
    fn apply_ops(&mut self, txn: TxnId, ops: &[PrepOp]) -> u64 {
        for op in ops {
            let table = self.store.table(op.table).expect("shard schema table");
            match table.insert(op.tuple.clone()) {
                Ok(rid) => {
                    self.wal.append(
                        txn,
                        LogOp::Insert {
                            table: op.table,
                            partition: rid.partition,
                            slot: rid.slot,
                            tuple: op.tuple.clone(),
                        },
                    );
                }
                Err(DbError::DuplicateKey(_)) => {}
                Err(e) => unreachable!("staged shard insert cannot fail: {e:?}"),
            }
        }
        self.wal.append(txn, LogOp::Commit)
    }

    /// Handles one client new-order at its home shard (the coordinator).
    fn handle_client(&mut self, op: ShardOp, ctx: &mut Ctx) {
        let ShardOp { txn, params, done } = op;
        if let Some(&out) = self.decided.get(&txn) {
            if out {
                // Re-submission of a committed transaction (the ack was
                // lost): idempotent ok, gated on the current tail since
                // the original commit LSN is no longer tracked.
                ctx.acks
                    .push((self.wal.next_lsn().saturating_sub(1), txn, true, done));
                return;
            }
            // Presumed abort of an earlier attempt: the client never saw
            // an ack, so this re-submission is a fresh attempt and its
            // new Prepare supersedes the old decision.
            self.decided.remove(&txn);
        }
        if let Some(c) = self.coord.get_mut(&txn) {
            // First attempt still in flight; just refresh the ack
            // channel (the driver may have recreated it).
            c.done = Some(done);
            return;
        }
        let (local_ops, remote) = self.decompose(txn, &params);
        let cross = !remote.is_empty();
        if cross && self.cfg.crash_at == Some(CrashPoint::BeforePrepare) {
            ctx.crash = true;
            return;
        }
        self.wal.append(
            txn,
            LogOp::Prepare {
                coord: self.node,
                ops: local_ops.clone(),
            },
        );
        let parts: Vec<u32> = remote.keys().copied().collect();
        for (&p, ops) in &remote {
            self.metrics.prepares.incr();
            ctx.out_now.push((
                p,
                CommitMsg::Prepare {
                    txn,
                    coord: self.node,
                    ops: ops.clone(),
                }
                .encode(),
            ));
        }
        self.coord.insert(
            txn,
            CoordTxn {
                votes: CoordVotes::new(parts),
                remote_ops: remote,
                local_ops,
                done: Some(done),
                decided: None,
                acked_by: FxHashSet::default(),
                final_lsn: 0,
                cross,
                retx: Retransmit::new(self.cfg.retransmit_every, Instant::now()),
            },
        );
        if cross && self.cfg.crash_at == Some(CrashPoint::AfterPrepareSent) {
            ctx.crash = true;
            return;
        }
        // A purely local order decides right here (no votes to wait on).
        self.try_decide(txn, ctx);
    }

    /// Decides if the votes force an outcome: log-then-apply, then send
    /// the decision (gated on replication when followers are attached).
    fn try_decide(&mut self, txn: TxnId, ctx: &mut Ctx) {
        let (outcome, parts, local_ops, cross) = {
            let Some(c) = self.coord.get_mut(&txn) else {
                return;
            };
            if c.decided.is_some() {
                return;
            }
            let Some(outcome) = c.votes.decision() else {
                return;
            };
            (
                outcome,
                c.votes.participants().to_vec(),
                std::mem::take(&mut c.local_ops),
                c.cross,
            )
        };
        let dlsn = self.wal.append(
            txn,
            LogOp::Decide {
                commit: outcome,
                parts: parts.clone(),
            },
        );
        self.decided.insert(txn, outcome);
        if outcome {
            self.metrics.commits_decided.incr();
        } else {
            self.metrics.aborts_decided.incr();
        }
        if cross && self.cfg.crash_at == Some(CrashPoint::AfterDecideLogged) {
            ctx.crash = true;
            return;
        }
        let mut last = dlsn;
        if outcome {
            last = self.apply_ops(txn, &local_ops);
            ctx.applied = true;
        }
        for &p in &parts {
            ctx.out_gated.push((
                p,
                last,
                CommitMsg::Decide {
                    txn,
                    commit: outcome,
                }
                .encode(),
            ));
        }
        if let Some(c) = self.coord.get_mut(&txn) {
            c.decided = Some(outcome);
            c.final_lsn = last;
        }
        if cross && self.cfg.crash_at == Some(CrashPoint::AfterDecideSent) {
            ctx.crash_after_send = true;
        }
    }

    /// Stages a participant slice: log Prepare, remember it, gate the
    /// yes-vote on the record's replication.
    fn stage(&mut self, txn: TxnId, coord: u32, ops: Vec<PrepOp>, ctx: &mut Ctx) {
        let lsn = self.wal.append(
            txn,
            LogOp::Prepare {
                coord,
                ops: ops.clone(),
            },
        );
        self.staged.insert(
            txn,
            Staged {
                coord,
                ops,
                lsn,
                ask: Retransmit::new(self.cfg.retransmit_every, Instant::now()),
            },
        );
        ctx.out_gated
            .push((coord, lsn, CommitMsg::Vote { txn, yes: true }.encode()));
    }

    fn on_prepare(&mut self, from: u32, txn: TxnId, coord: u32, ops: Vec<PrepOp>, ctx: &mut Ctx) {
        match self.decided.get(&txn).copied() {
            // Already decided commit: the coordinator counted our vote
            // long ago; a stray duplicate gets a harmless re-vote.
            Some(true) => ctx
                .out_now
                .push((from, CommitMsg::Vote { txn, yes: true }.encode())),
            // A Prepare after an abort decision is a fresh attempt (the
            // re-submission path) — it supersedes the old outcome.
            Some(false) => {
                self.decided.remove(&txn);
                self.stage(txn, coord, ops, ctx);
            }
            None => {
                if let Some(s) = self.staged.get(&txn) {
                    // Duplicate (retransmitted) Prepare: re-vote, still
                    // gated on the original record's replication.
                    let lsn = s.lsn;
                    ctx.out_gated
                        .push((from, lsn, CommitMsg::Vote { txn, yes: true }.encode()));
                } else if !self.coord.contains_key(&txn) {
                    self.stage(txn, coord, ops, ctx);
                }
                // A Prepare for a transaction we coordinate is a routing
                // error; drop it.
            }
        }
    }

    fn on_vote(&mut self, from: u32, txn: TxnId, yes: bool, ctx: &mut Ctx) {
        let in_flight = match self.coord.get_mut(&txn) {
            Some(c) if c.decided.is_none() => {
                c.votes.record(from, yes);
                true
            }
            _ => false,
        };
        if in_flight {
            if !yes {
                self.metrics.votes_no.incr();
            }
            self.try_decide(txn, ctx);
        } else if let Some(&out) = self.decided.get(&txn) {
            // Stray vote for a settled transaction: answer with the
            // decision so the voter can resolve its staged state.
            ctx.out_now
                .push((from, CommitMsg::Decide { txn, commit: out }.encode()));
        }
    }

    fn on_decide(&mut self, from: u32, txn: TxnId, commit: bool, ctx: &mut Ctx) {
        if self.decided.contains_key(&txn) {
            // Durable already; the coordinator lost our ack.
            ctx.out_now
                .push((from, CommitMsg::DecideAck { txn }.encode()));
            return;
        }
        let Some(s) = self.staged.remove(&txn) else {
            if !commit {
                // Abort for a transaction we never staged (the Prepare
                // was lost): nothing to undo, just let the coordinator
                // stop re-delivering.
                ctx.out_now
                    .push((from, CommitMsg::DecideAck { txn }.encode()));
            }
            // A commit decision without staged state cannot happen (the
            // coordinator counted our durable vote); dropping the frame
            // is safer than acking rows we do not have.
            return;
        };
        let dlsn = self.wal.append(
            txn,
            LogOp::Decide {
                commit,
                parts: Vec::new(),
            },
        );
        // Commit outcomes must be remembered (they dedupe retransmitted
        // Decides and back idempotent re-acks); an abort needs no map
        // entry — a duplicate abort-Decide is acked via the no-staged
        // path, and presumed abort answers any later question.
        let mut last = dlsn;
        if commit {
            self.decided.insert(txn, commit);
            last = self.apply_ops(txn, &s.ops);
            ctx.applied = true;
        }
        ctx.out_gated
            .push((from, last, CommitMsg::DecideAck { txn }.encode()));
    }

    fn on_query(&mut self, from: u32, txn: TxnId, ctx: &mut Ctx) {
        self.metrics.decide_queries.incr();
        if let Some(&out) = self.decided.get(&txn) {
            ctx.out_now
                .push((from, CommitMsg::Decide { txn, commit: out }.encode()));
        } else if let Some(c) = self.coord.get(&txn) {
            // Still collecting votes. The query is NOT a vote: queries
            // are sent ungated while Votes gate on the participant's
            // follower watermark, so counting it would let a commit
            // decision rest on a Prepare record a promoted follower
            // might not hold. Re-send the Prepare instead — the
            // participant re-votes through its durability gate.
            if c.votes.participants().contains(&from) {
                let ops = c.remote_ops.get(&from).cloned().unwrap_or_default();
                ctx.out_now.push((
                    from,
                    CommitMsg::Prepare {
                        txn,
                        coord: self.node,
                        ops,
                    }
                    .encode(),
                ));
                self.metrics.retransmits.incr();
            }
        } else {
            // Never heard of it: presumed abort, logged so every later
            // query gets the same answer.
            self.wal.append(
                txn,
                LogOp::Decide {
                    commit: false,
                    parts: Vec::new(),
                },
            );
            self.decided.insert(txn, false);
            self.metrics.presumed_aborts.incr();
            self.metrics.aborts_decided.incr();
            ctx.out_now
                .push((from, CommitMsg::Decide { txn, commit: false }.encode()));
        }
    }

    fn handle_msg(&mut self, from: u32, msg: CommitMsg, ctx: &mut Ctx) {
        match msg {
            CommitMsg::Prepare { txn, coord, ops } => self.on_prepare(from, txn, coord, ops, ctx),
            CommitMsg::Vote { txn, yes } => self.on_vote(from, txn, yes, ctx),
            CommitMsg::Decide { txn, commit } => self.on_decide(from, txn, commit, ctx),
            CommitMsg::DecideAck { txn } => {
                if let Some(c) = self.coord.get_mut(&txn) {
                    c.acked_by.insert(from);
                }
            }
            CommitMsg::DecideQuery { txn } => self.on_query(from, txn, ctx),
        }
    }

    /// Fires retransmission timers: unvoted Prepares and un-acked
    /// Decides at coordinators, DecideQueries at staged participants.
    fn retransmit(&mut self, now: Instant, ctx: &mut Ctx) {
        for (&txn, c) in self.coord.iter_mut() {
            if !c.retx.due(now) {
                continue;
            }
            match c.decided {
                None => {
                    for p in c.votes.unvoted() {
                        let ops = c.remote_ops.get(&p).cloned().unwrap_or_default();
                        ctx.out_now.push((
                            p,
                            CommitMsg::Prepare {
                                txn,
                                coord: self.node,
                                ops,
                            }
                            .encode(),
                        ));
                        self.metrics.retransmits.incr();
                    }
                }
                Some(out) => {
                    for &p in c.votes.participants() {
                        if !c.acked_by.contains(&p) {
                            ctx.out_gated.push((
                                p,
                                c.final_lsn,
                                CommitMsg::Decide { txn, commit: out }.encode(),
                            ));
                            self.metrics.retransmits.incr();
                        }
                    }
                }
            }
        }
        for (&txn, s) in self.staged.iter_mut() {
            if s.ask.due(now) {
                ctx.out_now
                    .push((s.coord, CommitMsg::DecideQuery { txn }.encode()));
                self.metrics.retransmits.incr();
            }
        }
    }

    /// Runs the node until a crash/stop switch flips (or a configured
    /// [`CrashPoint`] fires), or the op channel closes with every
    /// client-owed transaction resolved.
    ///
    /// `peer_joins` delivers fresh links to replaced peers mid-run;
    /// `repl_joins` attaches WAL-shipping followers exactly like a
    /// replicated storage AC's primary.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &mut self,
        ops: &Receiver<ShardOp>,
        mut peers: Vec<PeerEnd>,
        peer_joins: &Receiver<PeerEnd>,
        repl_joins: &Receiver<PrimaryEnd>,
        crash: &AtomicBool,
        stop: &AtomicBool,
    ) -> NodeExit {
        let mut followers: Vec<FollowerSlot> = Vec::new();
        let mut gated: Vec<(u32, u64, Bytes)> = Vec::new();
        let mut pending_acks: Vec<(u64, TxnId, bool, DoneSender)> = Vec::new();
        let mut batcher = CompletionBatcher::new();
        let mut shipped_upto = self.wal.next_lsn();
        let mut last_beat = Instant::now();
        let mut ops_open = true;
        let nap = (self.cfg.retransmit_every / 8)
            .min(self.cfg.repl.heartbeat_every / 8)
            .max(Duration::from_micros(100));
        let exit = 'term: loop {
            if crash.load(Ordering::Relaxed) {
                // Crash semantics: vanish mid-stride. Gated sends and
                // pending acks are never released; links drop here.
                break 'term NodeExit::Crashed;
            }
            if stop.load(Ordering::Relaxed) {
                batcher.flush();
                break 'term NodeExit::Stopped;
            }
            let mut progressed = false;

            while let Ok(end) = peer_joins.try_recv() {
                progressed = true;
                match peers.iter_mut().position(|p| p.node == end.node) {
                    Some(i) => peers[i] = end,
                    None => peers.push(end),
                }
            }
            while let Ok(end) = repl_joins.try_recv() {
                progressed = true;
                followers.push(FollowerSlot {
                    tx: end.tx,
                    rx: end.rx,
                    acked: 0,
                    dead: false,
                });
            }

            // Follower frames: acks move the watermark, catch-up
            // requests get the WAL tail (same protocol as run_primary).
            for slot in followers.iter_mut() {
                while let Ok(frame) = slot.rx.try_recv() {
                    progressed = true;
                    match ReplMsg::decode(&frame) {
                        Ok(ReplMsg::Ack { lsn }) => {
                            slot.acked = slot.acked.max(lsn);
                            self.metrics.repl.acks.incr();
                        }
                        Ok(ReplMsg::CatchupFrom { lsn }) => {
                            self.metrics.repl.catchups.incr();
                            let tail = self.wal.tail_from(lsn);
                            ship_records(
                                slot,
                                &tail,
                                self.cfg.repl.batch_ops * 2,
                                &self.metrics.repl,
                            );
                        }
                        _ => {}
                    }
                }
            }
            followers.retain(|s| !s.dead);
            let quorum = followers.iter().map(|s| s.acked).min();
            if let Some(q) = quorum {
                self.metrics
                    .repl
                    .replicated_lsn
                    .fetch_max(q, Ordering::Relaxed);
            }
            // With no followers every gate is open (degraded, exactly
            // like an unreplicated storage AC).
            let covered = |lsn: u64| quorum.map(|q| q > lsn).unwrap_or(true);

            let mut ctx = Ctx::default();

            // Peer frames. Corrupt frames are counted and dropped — the
            // sender's retransmission timer repairs the loss.
            for peer in peers.iter_mut() {
                let from = peer.node;
                while let Ok(frame) = peer.rx.try_recv() {
                    progressed = true;
                    match CommitMsg::decode(&frame) {
                        Ok(msg) => self.handle_msg(from, msg, &mut ctx),
                        Err(_) => self.metrics.corrupt_frames.incr(),
                    }
                }
                if ctx.crash {
                    break 'term NodeExit::Crashed;
                }
            }

            // Client ops.
            for _ in 0..self.cfg.batch_ops {
                match ops.try_recv() {
                    Ok(op) => {
                        progressed = true;
                        self.handle_client(op, &mut ctx);
                        if ctx.crash {
                            break 'term NodeExit::Crashed;
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        ops_open = false;
                        break;
                    }
                }
            }

            self.retransmit(Instant::now(), &mut ctx);

            // Modeled group-commit fsync: one per applied batch.
            if ctx.applied && !self.cfg.commit_latency.is_zero() {
                std::thread::sleep(self.cfg.commit_latency);
            }

            // Send phase: ungated first, then whatever the watermark
            // covers. Failed sends are deliberate losses — timers repair.
            for (to, frame) in ctx.out_now.drain(..) {
                send_to(&mut peers, to, frame);
            }
            // Merge this iteration's gated sends, skipping frames
            // already queued for the same peer: retransmission while
            // the watermark lags would otherwise accumulate identical
            // (participant, txn) Decides unboundedly.
            for send in ctx.out_gated.drain(..) {
                if !gated.iter().any(|(to, _, f)| *to == send.0 && *f == send.2) {
                    gated.push(send);
                }
            }
            gated.retain(|(to, lsn, frame)| {
                if covered(*lsn) {
                    send_to(&mut peers, *to, frame.clone());
                    false
                } else {
                    true
                }
            });

            // Client acks: the watermark-gated ones, then completed
            // coordinator transactions (all participants acked).
            pending_acks.append(&mut ctx.acks);
            let mut kept = Vec::new();
            for (lsn, txn, ok, done) in pending_acks.drain(..) {
                if covered(lsn) {
                    progressed = true;
                    batcher.push(&done, Completion::Txn(OpDone { txn, ok }));
                } else {
                    kept.push((lsn, txn, ok, done));
                }
            }
            pending_acks = kept;
            let finished: Vec<TxnId> = self
                .coord
                .iter()
                .filter(|(_, c)| {
                    c.decided.is_some()
                        && covered(c.final_lsn)
                        && c.votes
                            .participants()
                            .iter()
                            .all(|p| c.acked_by.contains(p))
                })
                .map(|(&t, _)| t)
                .collect();
            for txn in finished {
                progressed = true;
                let mut c = self.coord.remove(&txn).expect("listed above");
                let ok = c.decided.unwrap_or(false);
                if !ok {
                    // Settled abort: every participant acked, so nobody
                    // re-asks with staged state — drop the entry and let
                    // presumed abort re-derive the answer if a straggler
                    // ever queries. Keeps the decided map from growing
                    // with every aborted transaction forever.
                    self.decided.remove(&txn);
                }
                if let Some(done) = c.done.take() {
                    if ok {
                        if c.cross {
                            self.metrics.cross_commits.incr();
                        } else {
                            self.metrics.local_commits.incr();
                        }
                    }
                    batcher.push(&done, Completion::Txn(OpDone { txn, ok }));
                }
            }

            if ctx.crash_after_send {
                break 'term NodeExit::Crashed;
            }

            // Ship new WAL records to followers (2PC records included).
            let tail = self.wal.tail_from(shipped_upto);
            if !tail.is_empty() {
                progressed = true;
                for slot in followers.iter_mut() {
                    ship_records(slot, &tail, usize::MAX, &self.metrics.repl);
                }
                shipped_upto = self.wal.next_lsn();
                followers.retain(|s| !s.dead);
            }
            if last_beat.elapsed() >= self.cfg.repl.heartbeat_every && !followers.is_empty() {
                last_beat = Instant::now();
                let beat = ReplMsg::Heartbeat {
                    term: u64::from(self.node),
                    next_lsn: self.wal.next_lsn(),
                }
                .encode();
                for slot in followers.iter_mut() {
                    let len = beat.len();
                    if slot.tx.send_blocking(beat.clone(), len).is_err() {
                        slot.dead = true;
                    } else {
                        self.metrics.repl.heartbeats.incr();
                    }
                }
                followers.retain(|s| !s.dead);
            }

            batcher.flush();

            if !ops_open && pending_acks.is_empty() && self.coord.values().all(|c| c.done.is_none())
            {
                break 'term NodeExit::Stopped;
            }
            if !progressed {
                std::thread::sleep(nap);
            }
        };
        // Harvest each outbound link's fault stats into the node's
        // counters so scenario audits see injected loss/delay even after
        // the links drop with this frame.
        for p in &peers {
            let s = p.tx.fault_stats();
            self.metrics.link_delivered.add(s.delivered);
            self.metrics.link_dropped.add(s.dropped);
            self.metrics.link_delayed.add(s.delayed);
            self.metrics.link_refused.add(s.refused);
        }
        exit
    }
}

/// Best-effort frame send to a peer; a dead or cut link loses the frame,
/// which the protocol's retransmission timers repair.
fn send_to(peers: &mut [PeerEnd], to: u32, frame: Bytes) {
    if let Some(p) = peers.iter_mut().find(|p| p.node == to) {
        let len = frame.len();
        let _ = p.tx.send(frame, len);
    }
}

/// What an audit sees of one order across the shard stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderVisibility {
    /// Header and every line present — a committed order.
    Full,
    /// Nothing present — an aborted or never-run order.
    Absent,
    /// Some rows present, some missing: a half-applied cross-shard
    /// transaction. Must never survive recovery.
    Torn,
}

/// Audits one order's atomicity across `stores` (indexed by node id):
/// the header at the home shard, each line at its supply shard —
/// both-or-neither, never torn.
pub fn audit_order(
    stores: &[Arc<Store>],
    map: &ShardMap,
    p: &NewOrderParams,
    o_id: i64,
) -> OrderVisibility {
    let mut present = 0usize;
    let mut total = 1usize;
    if pk_present(&stores[map.node_of(p.w_id) as usize], ORDERS_TABLE, o_id) {
        present += 1;
    }
    for i in 0..p.lines.len() {
        total += 1;
        let shard = map.node_of(p.supply[i]) as usize;
        if pk_present(&stores[shard], LINES_TABLE, line_key(o_id, i)) {
            present += 1;
        }
    }
    if present == 0 {
        OrderVisibility::Absent
    } else if present == total {
        OrderVisibility::Full
    } else {
        OrderVisibility::Torn
    }
}

fn pk_present(store: &Store, table: TableId, key: i64) -> bool {
    let Ok(t) = store.table(table) else {
        return false;
    };
    let Ok(pk) = IndexKey::from_values(&[Value::Int(key)], &[0]) else {
        return false;
    };
    t.get_rid(&pk).is_ok()
}

/// Drives `orders` through `router` with a bounded in-flight window,
/// re-submitting unacked orders after `ack_timeout` (same txn id — the
/// coordinator answers idempotently) and retrying submits while a node
/// is down mid-replacement. Order `i` runs as txn/o_id `i + 1`. Returns
/// the same audit-ready [`DriveStats`] as the replication driver.
pub fn drive_orders(
    router: &ShardRouter,
    orders: &[NewOrderParams],
    window: usize,
    ack_timeout: Duration,
    overall: Duration,
) -> crate::replica::DriveStats {
    let (done_tx, done_rx) = crossbeam::channel::unbounded();
    let mut stats = crate::replica::DriveStats::default();
    let started = Instant::now();
    let mut last_ack = Instant::now();
    let mut next = 0usize;
    let mut in_flight: Vec<(i64, Instant)> = Vec::new();
    let make_op = |id: i64| ShardOp {
        txn: TxnId(id as u64),
        params: orders[(id - 1) as usize].clone(),
        done: done_tx.clone(),
    };
    let submit = |op: ShardOp| -> bool {
        let mut op = op;
        loop {
            match router.submit(op) {
                Ok(()) => return true,
                Err(back) => {
                    if started.elapsed() > overall {
                        return false;
                    }
                    op = back;
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    };
    while (!in_flight.is_empty() || next < orders.len()) && started.elapsed() <= overall {
        while in_flight.len() < window && next < orders.len() {
            next += 1;
            let id = next as i64;
            if !submit(make_op(id)) {
                return stats;
            }
            in_flight.push((id, Instant::now()));
        }
        if let Ok(batch) = done_rx.recv_timeout(Duration::from_millis(1)) {
            let mut drain = vec![batch];
            while let Ok(more) = done_rx.try_recv() {
                drain.push(more);
            }
            for batch in drain {
                for c in batch.0 {
                    let Completion::Txn(OpDone { txn, ok }) = c else {
                        continue;
                    };
                    let id = txn.0 as i64;
                    let Some(pos) = in_flight.iter().position(|&(i, _)| i == id) else {
                        continue; // late duplicate ack
                    };
                    in_flight.swap_remove(pos);
                    let now = Instant::now();
                    stats.max_ack_gap = stats.max_ack_gap.max(now - last_ack);
                    last_ack = now;
                    if ok {
                        stats.acked_ids.push(id);
                    } else {
                        stats.failed += 1;
                    }
                }
            }
        }
        // Re-submit what timed out (lost op, crashed coordinator, or a
        // slow failover): same txn id, answered idempotently.
        let now = Instant::now();
        for (id, sent) in in_flight.iter_mut() {
            if now.duration_since(*sent) > ack_timeout {
                stats.resubmits += 1;
                *sent = now;
                if !submit(make_op(*id)) {
                    return stats;
                }
            }
        }
    }
    stats.acked_ids.sort_unstable();
    stats.acked_ids.dedup();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    fn order(w: i64, supply: Vec<i64>) -> NewOrderParams {
        let lines = supply
            .iter()
            .enumerate()
            .map(|(i, _)| (100 + i as i64, 5))
            .collect();
        NewOrderParams {
            w_id: w,
            d_id: 1,
            c_id: 7,
            lines,
            supply,
            entry_date: 20_260_808,
            rollback: false,
        }
    }

    /// Spawns `nodes` shard nodes wired through a full mesh; returns the
    /// router, per-node stores/metrics, switches, and join handles.
    #[allow(clippy::type_complexity)]
    fn cluster(
        nodes: u32,
        cfg: ShardConfig,
    ) -> (
        ShardRouter,
        Vec<Arc<Store>>,
        Vec<Arc<ShardMetrics>>,
        Vec<Arc<AtomicBool>>,
        Vec<thread::JoinHandle<NodeExit>>,
    ) {
        let map = ShardMap::new(nodes);
        let mut mesh = shard_mesh(nodes, 64);
        let mut txs = Vec::new();
        let mut stores = Vec::new();
        let mut metrics = Vec::new();
        let mut stops = Vec::new();
        let mut handles = Vec::new();
        for node in 0..nodes {
            let (tx, rx) = crossbeam::channel::unbounded::<ShardOp>();
            txs.push(tx);
            let store = Arc::new(shard_store());
            let m = Arc::new(ShardMetrics::default());
            stores.push(Arc::clone(&store));
            metrics.push(Arc::clone(&m));
            let stop = Arc::new(AtomicBool::new(false));
            stops.push(Arc::clone(&stop));
            let peers = std::mem::take(&mut mesh[node as usize]);
            let mut sn = ShardNode::new(node, map, store, Arc::new(Wal::new()), cfg, m);
            handles.push(thread::spawn(move || {
                let (_pj_tx, pj_rx) = crossbeam::channel::unbounded();
                let (_rj_tx, rj_rx) = crossbeam::channel::unbounded();
                let crash = AtomicBool::new(false);
                sn.run(&rx, peers, &pj_rx, &rj_rx, &crash, &stop)
            }));
        }
        (ShardRouter::new(map, txs), stores, metrics, stops, handles)
    }

    #[test]
    fn placement_is_stable_and_even() {
        let map = ShardMap::new(4);
        let mut counts = [0usize; 4];
        for w in 1..=64 {
            let n = map.node_of(w);
            assert_eq!(n, map.node_of(w), "placement must be deterministic");
            counts[n as usize] += 1;
        }
        for (node, &c) in counts.iter().enumerate() {
            assert!(c >= 8, "node {node} got only {c}/64 warehouses");
        }
    }

    #[test]
    fn growing_the_cluster_only_moves_keys_to_the_new_node() {
        let old = ShardMap::new(3);
        let new = ShardMap::new(4);
        for w in 1..=200 {
            let (a, b) = (old.node_of(w), new.node_of(w));
            assert!(
                b == a || b == 3,
                "warehouse {w} moved {a} -> {b}, not to the new node"
            );
        }
    }

    #[test]
    fn decompose_splits_lines_by_supply_shard() {
        let map = ShardMap::new(2);
        let home_w = (1..).find(|&w| map.node_of(w) == 0).unwrap();
        let remote_w = (1..).find(|&w| map.node_of(w) == 1).unwrap();
        let node = ShardNode::new(
            0,
            map,
            Arc::new(shard_store()),
            Arc::new(Wal::new()),
            ShardConfig::default(),
            Arc::new(ShardMetrics::default()),
        );
        let p = order(home_w, vec![home_w, remote_w, home_w]);
        let (local, remote) = node.decompose(TxnId(9), &p);
        // Header + two home lines local; one line for node 1.
        assert_eq!(local.len(), 3);
        assert_eq!(local[0].table, ORDERS_TABLE);
        assert_eq!(remote.len(), 1);
        assert_eq!(remote[&1].len(), 1);
        assert_eq!(remote[&1][0].table, LINES_TABLE);
    }

    #[test]
    fn single_node_orders_commit_locally() {
        let (router, stores, metrics, _stops, handles) = cluster(1, ShardConfig::default());
        let orders: Vec<_> = (0..20).map(|_| order(1, vec![1, 1])).collect();
        let stats = drive_orders(
            &router,
            &orders,
            8,
            Duration::from_millis(500),
            Duration::from_secs(20),
        );
        drop(router);
        for h in handles {
            assert_eq!(h.join().unwrap(), NodeExit::Stopped);
        }
        assert_eq!(stats.acked_ids.len(), 20, "failed={}", stats.failed);
        let map = ShardMap::new(1);
        for (i, p) in orders.iter().enumerate() {
            let vis = audit_order(&stores, &map, p, i as i64 + 1);
            assert_eq!(vis, OrderVisibility::Full, "order {}", i + 1);
        }
        assert_eq!(metrics[0].local_commits.get(), 20);
        assert_eq!(metrics[0].cross_commits.get(), 0);
    }

    #[test]
    fn two_nodes_commit_cross_shard_orders() {
        let map = ShardMap::new(2);
        let w0 = (1..).find(|&w| map.node_of(w) == 0).unwrap();
        let w1 = (1..).find(|&w| map.node_of(w) == 1).unwrap();
        let (router, stores, metrics, _stops, handles) = cluster(2, ShardConfig::default());
        // Half the orders home on each node; every order has one remote
        // supply line, so every order is a 2PC transaction.
        let orders: Vec<_> = (0..30)
            .map(|i| {
                if i % 2 == 0 {
                    order(w0, vec![w0, w1])
                } else {
                    order(w1, vec![w1, w0])
                }
            })
            .collect();
        let stats = drive_orders(
            &router,
            &orders,
            8,
            Duration::from_millis(500),
            Duration::from_secs(30),
        );
        drop(router);
        for h in handles {
            assert_eq!(h.join().unwrap(), NodeExit::Stopped);
        }
        assert_eq!(stats.acked_ids.len(), 30, "failed={}", stats.failed);
        for (i, p) in orders.iter().enumerate() {
            let vis = audit_order(&stores, &map, p, i as i64 + 1);
            assert_eq!(vis, OrderVisibility::Full, "order {}", i + 1);
        }
        let merged = metrics
            .iter()
            .fold(RobustSnapshot::default(), |mut acc, m| {
                acc.merge(&m.snapshot());
                acc
            });
        assert_eq!(merged.twopc_commits, 30);
        assert!(merged.twopc_prepares >= 30);
        assert_eq!(merged.twopc_aborts, 0);
    }

    #[test]
    fn recovery_presumes_abort_and_keeps_in_doubt_participants() {
        let map = ShardMap::new(2);
        let wal = Arc::new(Wal::new());
        // Txn 1: staged here as coordinator, never decided → presumed
        // abort. Txn 2: staged here for coordinator 1 → in doubt.
        let ops = vec![PrepOp {
            table: ORDERS_TABLE,
            tuple: order_tuple(1, 1, 1, 1),
        }];
        wal.append(
            TxnId(1),
            LogOp::Prepare {
                coord: 0,
                ops: ops.clone(),
            },
        );
        wal.append(TxnId(2), LogOp::Prepare { coord: 1, ops });
        let metrics = Arc::new(ShardMetrics::default());
        let node = ShardNode::recover(
            0,
            map,
            Arc::new(shard_store()),
            wal,
            ShardConfig::default(),
            Arc::clone(&metrics),
        )
        .unwrap();
        assert_eq!(node.decided.get(&TxnId(1)), Some(&false));
        assert!(node.staged.contains_key(&TxnId(2)));
        assert_eq!(metrics.presumed_aborts.get(), 1);
        // The presumed abort is durable: a second recovery of the same
        // log reaches the same answer without inventing a new one.
        let again = ShardNode::recover(
            0,
            map,
            Arc::new(shard_store()),
            Arc::clone(&node.wal),
            ShardConfig::default(),
            Arc::new(ShardMetrics::default()),
        )
        .unwrap();
        assert_eq!(again.decided.get(&TxnId(1)), Some(&false));
    }

    #[test]
    fn recovery_finishes_a_decided_but_unapplied_commit() {
        let map = ShardMap::new(1);
        let wal = Arc::new(Wal::new());
        let ops = vec![PrepOp {
            table: ORDERS_TABLE,
            tuple: order_tuple(7, 1, 1, 1),
        }];
        wal.append(TxnId(7), LogOp::Prepare { coord: 0, ops });
        wal.append(
            TxnId(7),
            LogOp::Decide {
                commit: true,
                parts: vec![1],
            },
        );
        let store = Arc::new(shard_store());
        let node = ShardNode::recover(
            0,
            map,
            Arc::clone(&store),
            wal,
            ShardConfig::default(),
            Arc::new(ShardMetrics::default()),
        )
        .unwrap();
        assert!(pk_present(&store, ORDERS_TABLE, 7), "apply must finish");
        // The decision is still owed to participant 1.
        assert!(node.coord.contains_key(&TxnId(7)));
    }
}
