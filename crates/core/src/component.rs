//! The AnyComponent (AC): one generic component, any database function.
//!
//! An AC is a thread draining an event inbox. What the AC *is* at any
//! moment is decided by the events it receives (Figure 2): a transaction
//! executor for `ExecuteTxn`, a pipeline stage for `OpGroup`, an OLAP
//! worker for `QueryQ3`. The loop is non-blocking in the paper's sense
//! (§2.1): an event whose turn has not come (streaming-CC order stamp not
//! yet admissible) is *parked*, and the AC keeps processing other events;
//! when nothing is runnable the AC backs off instead of spinning so it
//! never starves collocated components on small hosts.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::thread::JoinHandle;

use anydb_common::backoff::Backoff;
use anydb_common::fxmap::FxHashMap;
use anydb_common::metrics::Counter;
use anydb_common::{AcId, TxnId};
use anydb_txn::history::History;
use anydb_txn::sequencer::SeqNo;
use anydb_workload::tpcc::TpccDb;
use anydb_stream::inbox::{Inbox, InboxSender};
use anydb_stream::spsc::PopState;

use crate::event::{Event, TxnOp, TxnTracker};
use crate::olap::exec_q3_local;
use crate::ops::{exec_op, exec_whole_txn};

/// A parked op group waiting for its stamp's turn.
struct Parked {
    txn: TxnId,
    ops: Vec<TxnOp>,
    tracker: Arc<TxnTracker>,
}

/// Heap entry ordered by sequence number (min-heap via `Reverse`).
struct ParkedEntry(u64, Parked);

impl PartialEq for ParkedEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for ParkedEntry {}
impl PartialOrd for ParkedEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ParkedEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

/// One running AnyComponent.
pub struct AnyComponent {
    id: AcId,
    db: Arc<TpccDb>,
    history: Option<Arc<History>>,
    inbox: Inbox<Event>,
    /// Next admissible stamp per `(stage, domain)`. Gates are AC-private:
    /// a stage of a domain is owned by exactly one AC at a time.
    gates: FxHashMap<(u32, u32), u64>,
    parked: FxHashMap<(u32, u32), BinaryHeap<Reverse<ParkedEntry>>>,
    /// Transactions completed at this AC (aggregated execution).
    committed: Arc<Counter>,
}

impl AnyComponent {
    /// Spawns an AC thread; returns its event-stream sender and handle.
    pub fn spawn(
        id: AcId,
        db: Arc<TpccDb>,
        history: Option<Arc<History>>,
        committed: Arc<Counter>,
    ) -> (InboxSender<Event>, JoinHandle<()>) {
        let (tx, inbox) = Inbox::new();
        let handle = std::thread::Builder::new()
            .name(format!("ac-{id}"))
            .spawn(move || {
                let mut ac = AnyComponent {
                    id,
                    db,
                    history,
                    inbox,
                    gates: FxHashMap::default(),
                    parked: FxHashMap::default(),
                    committed,
                };
                ac.run();
            })
            .expect("spawn AC thread");
        (tx, handle)
    }

    fn run(&mut self) {
        let mut backoff = Backoff::new();
        loop {
            match self.inbox.pop() {
                Ok(event) => {
                    backoff.reset();
                    if self.handle(event) {
                        break;
                    }
                }
                Err(PopState::Empty) => backoff.wait(),
                Err(PopState::Disconnected) => break,
            }
        }
        debug_assert!(
            self.parked.values().all(BinaryHeap::is_empty),
            "AC {} shut down with parked events",
            self.id
        );
    }

    /// Handles one event; returns `true` on shutdown.
    fn handle(&mut self, event: Event) -> bool {
        match event {
            Event::Shutdown => return true,
            Event::ExecuteTxn { txn, req, done } => {
                let ok = exec_whole_txn(&self.db, txn, &req, self.history.as_deref()).is_ok();
                if ok {
                    self.committed.incr();
                }
                let _ = done.send(crate::event::OpDone { txn, ok });
            }
            Event::OpGroup {
                txn,
                stage,
                domain,
                seq,
                ops,
                tracker,
            } => {
                self.admit_or_park(txn, stage, domain, seq, ops, tracker);
            }
            Event::QueryQ3 { query, spec, done } => {
                let rows = exec_q3_local(&self.db, &spec);
                let _ = done.send((query, rows));
            }
        }
        false
    }

    fn admit_or_park(
        &mut self,
        txn: TxnId,
        stage: u32,
        domain: u32,
        seq: SeqNo,
        ops: Vec<TxnOp>,
        tracker: Arc<TxnTracker>,
    ) {
        let key = (stage, domain);
        let next = *self.gates.entry(key).or_insert(0);
        if seq.0 == next {
            self.exec_group(txn, &ops, &tracker);
            *self.gates.get_mut(&key).expect("gate exists") = next + 1;
            self.drain_parked(key);
        } else {
            debug_assert!(seq.0 > next, "stamp {seq:?} executed twice at {key:?}");
            self.parked
                .entry(key)
                .or_default()
                .push(Reverse(ParkedEntry(seq.0, Parked { txn, ops, tracker })));
        }
    }

    fn drain_parked(&mut self, key: (u32, u32)) {
        loop {
            let next = *self.gates.get(&key).expect("gate exists");
            let popped = self.parked.get_mut(&key).and_then(|heap| {
                if heap
                    .peek()
                    .is_some_and(|Reverse(ParkedEntry(seq, _))| *seq == next)
                {
                    heap.pop()
                } else {
                    None
                }
            });
            match popped {
                Some(Reverse(ParkedEntry(_, parked))) => {
                    self.exec_group(parked.txn, &parked.ops, &parked.tracker);
                    *self.gates.get_mut(&key).expect("gate exists") += 1;
                }
                None => return,
            }
        }
    }

    fn exec_group(&self, txn: TxnId, ops: &[TxnOp], tracker: &TxnTracker) {
        let mut ok = true;
        for op in ops {
            if let Err(e) = exec_op(&self.db, txn, op, self.history.as_deref()) {
                // Ordered execution has no CC aborts: any failure is an
                // engine bug surfaced to the driver.
                debug_assert!(false, "op failed under ordered execution: {e}");
                ok = false;
                break;
            }
        }
        tracker.group_done(ok);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OpDone;
    use anydb_workload::tpcc::gen::TxnRequest;
    use anydb_workload::tpcc::{CustomerSelector, PaymentParams, TpccConfig};
    use crossbeam::channel::unbounded;

    fn payment(w: i64, amount: f64) -> TxnRequest {
        TxnRequest::Payment(PaymentParams {
            w_id: w,
            d_id: 1,
            c_w_id: w,
            c_d_id: 1,
            customer: CustomerSelector::ById(1),
            amount,
            date: 2020_01_01,
        })
    }

    #[test]
    fn executes_whole_txn_and_acks() {
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 41).unwrap());
        let committed = Arc::new(Counter::new());
        let (tx, handle) = AnyComponent::spawn(AcId(0), db, None, committed.clone());
        let (done_tx, done_rx) = unbounded();
        tx.send(Event::ExecuteTxn {
            txn: TxnId(1),
            req: payment(1, 10.0),
            done: done_tx,
        });
        let done = done_rx.recv().unwrap();
        assert_eq!(done, OpDone { txn: TxnId(1), ok: true });
        assert_eq!(committed.get(), 1);
        tx.send(Event::Shutdown);
        handle.join().unwrap();
    }

    #[test]
    fn op_groups_execute_in_stamp_order_even_when_reversed() {
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 42).unwrap());
        let committed = Arc::new(Counter::new());
        let (tx, handle) = AnyComponent::spawn(AcId(0), db.clone(), None, committed);
        let (done_tx, done_rx) = unbounded();

        // Send stamps 2, 1, 0 — they must apply as 0, 1, 2. Use district
        // YTD deltas that only produce the right total when ordered
        // additively (any order works for addition), so instead verify
        // completion order via the done channel.
        for seq in [2u64, 1, 0] {
            let tracker = TxnTracker::new(TxnId(seq), 1, done_tx.clone());
            tx.send(Event::OpGroup {
                txn: TxnId(seq),
                stage: 0,
                domain: 0,
                seq: SeqNo(seq),
                ops: vec![TxnOp::PayWarehouse { w: 1, amount: 1.0 }],
                tracker,
            });
        }
        let order: Vec<u64> = (0..3).map(|_| done_rx.recv().unwrap().txn.raw()).collect();
        assert_eq!(order, vec![0, 1, 2]);
        tx.send(Event::Shutdown);
        handle.join().unwrap();
    }

    #[test]
    fn stages_are_independent_gates() {
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 43).unwrap());
        let committed = Arc::new(Counter::new());
        let (tx, handle) = AnyComponent::spawn(AcId(0), db, None, committed);
        let (done_tx, done_rx) = unbounded();
        // Stage 1 seq 0 must run even though stage 0 waits for seq 0.
        let t1 = TxnTracker::new(TxnId(10), 1, done_tx.clone());
        tx.send(Event::OpGroup {
            txn: TxnId(10),
            stage: 0,
            domain: 0,
            seq: SeqNo(1), // parked: stage 0 expects 0
            ops: vec![TxnOp::Skip],
            tracker: t1,
        });
        let t2 = TxnTracker::new(TxnId(11), 1, done_tx.clone());
        tx.send(Event::OpGroup {
            txn: TxnId(11),
            stage: 1,
            domain: 0,
            seq: SeqNo(0),
            ops: vec![TxnOp::Skip],
            tracker: t2,
        });
        assert_eq!(done_rx.recv().unwrap().txn, TxnId(11));
        // Unblock stage 0.
        let t3 = TxnTracker::new(TxnId(12), 1, done_tx);
        tx.send(Event::OpGroup {
            txn: TxnId(12),
            stage: 0,
            domain: 0,
            seq: SeqNo(0),
            ops: vec![TxnOp::Skip],
            tracker: t3,
        });
        let mut rest: Vec<u64> = (0..2).map(|_| done_rx.recv().unwrap().txn.raw()).collect();
        rest.sort();
        assert_eq!(rest, vec![10, 12]);
        tx.send(Event::Shutdown);
        handle.join().unwrap();
    }

    #[test]
    fn acts_as_olap_worker() {
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 44).unwrap());
        let committed = Arc::new(Counter::new());
        let (tx, handle) = AnyComponent::spawn(AcId(0), db, None, committed);
        let (done_tx, done_rx) = unbounded();
        tx.send(Event::QueryQ3 {
            query: anydb_common::QueryId(1),
            spec: anydb_workload::chbench::Q3Spec::default(),
            done: done_tx,
        });
        let (qid, rows) = done_rx.recv().unwrap();
        assert_eq!(qid, anydb_common::QueryId(1));
        assert!(rows > 0);
        tx.send(Event::Shutdown);
        handle.join().unwrap();
    }
}
