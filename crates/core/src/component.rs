//! The AnyComponent (AC): one generic component, any database function.
//!
//! An AC is a thread draining an event inbox. What the AC *is* at any
//! moment is decided by the events it receives (Figure 2): a transaction
//! executor for `ExecuteTxn`, a pipeline stage for `OpGroup`, an OLAP
//! worker for `QueryQ3`. The loop is non-blocking in the paper's sense
//! (§2.1): an event whose turn has not come (streaming-CC order stamp not
//! yet admissible) is *parked*, and the AC keeps processing other events;
//! when nothing is runnable the AC backs off instead of spinning so it
//! never starves collocated components on small hosts.
//!
//! ## Batched wakeups
//!
//! The loop drains a *chunk* of events per wakeup
//! ([`Inbox::drain_into`]) instead of popping one at a time, and executes
//! every op group in the chunk through one amortized dispatch: envelopes
//! are ordered by `(stage, domain, seq)` so each gate and parked-heap is
//! looked up once per run of same-key envelopes, not once per event. With
//! the drivers shipping [`Event::OpBatch`] groups, the per-transaction
//! queue handshake and hash lookups of the unbatched path collapse into
//! per-chunk costs (see DESIGN.md on the batching design).
//!
//! The chunk size itself is adaptive: an [`AdaptiveBatch`] controller fed
//! with the inbox backlog left after each drain grows the chunk when the
//! AC is behind and decays it toward one when the inbox runs dry, so an
//! idle AC never holds a wakeup's worth of latency hostage to a static
//! setting.
//!
//! ## Batched completions
//!
//! Completion notices produced while working through one chunk are not
//! sent per transaction: they collect in a [`CompletionBatcher`] and ship
//! as one [`crate::event::DoneBatch`] per driver channel per wakeup —
//! flushed before the loop blocks, so a waiting driver observes every
//! completion its events produced.
//!
//! ## Query admission windows
//!
//! `QueryQ3` events are the OLAP analogue of the op-group coalescing
//! above: every Q3 request found in one drained chunk is buffered into an
//! *admission window* and executed as ONE shared pipeline
//! ([`exec_q3_shared`]) at the end of the chunk — a single hull-predicate
//! scan per table, one shared build side, per-member refinement at the
//! probe — with each member still receiving its own
//! [`Completion::Query`]. The window is the drain chunk, so sharing needs
//! no global queue, no timers, and no cross-AC coordination: when queries
//! arrive faster than the AC can execute them the backlog itself grows
//! the window (the same mechanism that grows op batches), and an idle AC
//! degrades to singleton windows with the latency of the unshared path.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::thread::JoinHandle;

use anydb_common::backoff::Backoff;
use anydb_common::fxmap::FxHashMap;
use anydb_common::metrics::Counter;
use anydb_common::{AcId, TxnId};
use anydb_stream::adaptive::AdaptiveBatch;
use anydb_stream::inbox::{Inbox, InboxSender};
use anydb_stream::spsc::PopState;
use anydb_txn::history::History;
use anydb_workload::tpcc::TpccDb;

use crate::event::{Completion, CompletionBatcher, Event, OpEnvelope, Q3Member, TxnOp, TxnTracker};
use crate::olap::exec_q3_shared;
use crate::ops::{exec_op, exec_whole_txn};

/// Default number of events drained per wakeup when using
/// [`AnyComponent::spawn`]; engines tune it via
/// [`AnyComponent::spawn_with_chunk`].
pub const DEFAULT_DRAIN_CHUNK: usize = 64;

/// A parked op group waiting for its stamp's turn.
struct Parked {
    txn: TxnId,
    ops: Vec<TxnOp>,
    tracker: Arc<TxnTracker>,
}

/// Heap entry ordered by sequence number (min-heap via `Reverse`).
struct ParkedEntry(u64, Parked);

impl PartialEq for ParkedEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for ParkedEntry {}
impl PartialOrd for ParkedEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ParkedEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

/// One running AnyComponent.
pub struct AnyComponent {
    id: AcId,
    db: Arc<TpccDb>,
    history: Option<Arc<History>>,
    inbox: Inbox<Event>,
    /// Next admissible stamp per `(stage, domain)`. Gates are AC-private:
    /// a stage of a domain is owned by exactly one AC at a time.
    gates: FxHashMap<(u32, u32), u64>,
    parked: FxHashMap<(u32, u32), BinaryHeap<Reverse<ParkedEntry>>>,
    /// Transactions completed at this AC (aggregated execution).
    committed: Arc<Counter>,
    /// Controller sizing the per-wakeup drain chunk.
    ctrl: AdaptiveBatch,
}

impl AnyComponent {
    /// Spawns an AC thread with the default (static) drain chunk; returns
    /// its event-stream sender and handle.
    pub fn spawn(
        id: AcId,
        db: Arc<TpccDb>,
        history: Option<Arc<History>>,
        committed: Arc<Counter>,
    ) -> (InboxSender<Event>, JoinHandle<()>) {
        Self::spawn_with_chunk(id, db, history, committed, DEFAULT_DRAIN_CHUNK)
    }

    /// Spawns an AC thread draining a fixed `drain_chunk` events per
    /// wakeup (the static end of the knob; engines pass a controller via
    /// [`AnyComponent::spawn_with_ctrl`]).
    pub fn spawn_with_chunk(
        id: AcId,
        db: Arc<TpccDb>,
        history: Option<Arc<History>>,
        committed: Arc<Counter>,
        drain_chunk: usize,
    ) -> (InboxSender<Event>, JoinHandle<()>) {
        Self::spawn_with_ctrl(
            id,
            db,
            history,
            committed,
            AdaptiveBatch::fixed(drain_chunk),
        )
    }

    /// Spawns an AC thread whose drain chunk is sized by `ctrl`, fed with
    /// the inbox backlog remaining after each drain.
    pub fn spawn_with_ctrl(
        id: AcId,
        db: Arc<TpccDb>,
        history: Option<Arc<History>>,
        committed: Arc<Counter>,
        ctrl: AdaptiveBatch,
    ) -> (InboxSender<Event>, JoinHandle<()>) {
        let (tx, inbox) = Inbox::new();
        let handle = std::thread::Builder::new()
            .name(format!("ac-{id}"))
            .spawn(move || {
                let mut ac = AnyComponent {
                    id,
                    db,
                    history,
                    inbox,
                    gates: FxHashMap::default(),
                    parked: FxHashMap::default(),
                    committed,
                    ctrl,
                };
                ac.run();
            })
            .expect("spawn AC thread");
        (tx, handle)
    }

    fn run(&mut self) {
        let mut backoff = Backoff::new();
        let mut chunk: Vec<Event> = Vec::with_capacity(self.ctrl.max());
        let mut envelopes: Vec<OpEnvelope> = Vec::new();
        let mut queries: Vec<Q3Member> = Vec::new();
        let mut completions = CompletionBatcher::new();
        'outer: loop {
            chunk.clear();
            match self.inbox.drain_into(&mut chunk, self.ctrl.current()) {
                Ok(_) => {
                    backoff.reset();
                    // Coalesce runs of consecutive op-group events into one
                    // amortized dispatch, and Q3 requests into one shared
                    // admission window; handle other events in place so
                    // chunking never reorders them relative to op groups.
                    let mut events = chunk.drain(..);
                    for event in events.by_ref() {
                        match event {
                            Event::OpGroup(env) => envelopes.push(env),
                            Event::OpBatch(mut envs) => envelopes.append(&mut envs),
                            Event::QueryQ3 { query, spec, done } => {
                                queries.push(Q3Member { query, spec, done })
                            }
                            other => {
                                if !envelopes.is_empty() {
                                    self.dispatch_envelopes(&mut envelopes, &mut completions);
                                }
                                if matches!(other, Event::Shutdown) && !queries.is_empty() {
                                    // Queries admitted ahead of the
                                    // shutdown still owe results.
                                    self.exec_query_window(&mut queries, &mut completions);
                                }
                                if self.handle(other, &mut completions) {
                                    // Shutdown: events behind it are
                                    // dropped, as with one-at-a-time
                                    // dispatch.
                                    drop(events);
                                    break 'outer;
                                }
                            }
                        }
                    }
                    if !envelopes.is_empty() {
                        self.dispatch_envelopes(&mut envelopes, &mut completions);
                    }
                    if !queries.is_empty() {
                        self.exec_query_window(&mut queries, &mut completions);
                    }
                    // One DoneBatch per driver channel for the whole
                    // chunk; must precede any wait, or drivers blocked on
                    // these completions would deadlock against us.
                    completions.flush();
                    // Backlog left behind is the depth signal: still deep
                    // means drain more per wakeup, drained dry means decay
                    // toward per-event latency.
                    self.ctrl.observe(self.inbox.len());
                }
                Err(PopState::Empty) => {
                    self.ctrl.observe(0);
                    backoff.wait();
                }
                Err(PopState::Disconnected) => break,
            }
        }
        // Shutdown mid-chunk may have completed work after the last
        // flush; deliver it before the thread exits.
        completions.flush();
        debug_assert!(
            self.parked.values().all(BinaryHeap::is_empty),
            "AC {} shut down with parked events",
            self.id
        );
    }

    /// Handles one non-op-group event; returns `true` on shutdown.
    fn handle(&mut self, event: Event, completions: &mut CompletionBatcher) -> bool {
        match event {
            Event::Shutdown => return true,
            Event::ExecuteTxn { txn, req, done } => {
                let ok = exec_whole_txn(&self.db, txn, &req, self.history.as_deref()).is_ok();
                if ok {
                    self.committed.incr();
                }
                completions.push(&done, Completion::Txn(crate::event::OpDone { txn, ok }));
            }
            Event::OpGroup(..) | Event::OpBatch(..) => {
                unreachable!("op groups are dispatched in batches by run()")
            }
            Event::QueryQ3 { .. } => {
                unreachable!("Q3 queries are grouped into admission windows by run()")
            }
        }
        false
    }

    /// Executes one query admission window: every Q3 request buffered
    /// while draining the current chunk runs as a single shared pipeline,
    /// and each member's result joins the batched completion protocol.
    fn exec_query_window(&self, queries: &mut Vec<Q3Member>, completions: &mut CompletionBatcher) {
        // The pipeline below can run for milliseconds: ship every
        // already-collected completion first so drivers blocked on them
        // do not wait out an OLAP window. (Cheap events like ExecuteTxn
        // deliberately do NOT flush — that would degrade the batched
        // protocol to per-txn sends.)
        completions.flush();
        // One hull-predicate scan per table, one shared build side,
        // per-member refinement at the probe (DESIGN.md §7); a singleton
        // window degrades to the plain columnar path of DESIGN.md §5.
        let specs: Vec<_> = queries.iter().map(|m| m.spec).collect();
        let rows = exec_q3_shared(&self.db, &specs);
        for (member, rows) in queries.drain(..).zip(rows) {
            let Q3Member { query, done, .. } = member;
            // The result joins the batched protocol like any other
            // completion: grouped into this chunk's DoneBatch.
            completions.push(&done, Completion::Query { query, rows });
        }
    }

    /// Admits or parks every envelope, amortizing gate and parked-heap
    /// lookups over runs of same-`(stage, domain)` envelopes. Sorting by
    /// `(stage, domain, seq)` groups the runs and maximizes in-order
    /// admission; it cannot violate correctness because admission order is
    /// defined by the stamps alone.
    fn dispatch_envelopes(
        &mut self,
        envelopes: &mut Vec<OpEnvelope>,
        completions: &mut CompletionBatcher,
    ) {
        envelopes.sort_by_key(|e| (e.stage, e.domain, e.seq.0));
        // (key, next-admissible-stamp) for the run being executed; written
        // back when the run ends.
        let mut run: Option<((u32, u32), u64)> = None;
        for env in envelopes.drain(..) {
            let key = env.gate_key();
            let next = match &mut run {
                Some((k, next)) if *k == key => next,
                _ => {
                    if let Some((k, next)) = run.take() {
                        self.close_run(k, next, completions);
                    }
                    let next = *self.gates.entry(key).or_insert(0);
                    &mut run.insert((key, next)).1
                }
            };
            if env.seq.0 == *next {
                self.exec_group(env.txn, &env.ops, &env.tracker, completions);
                *next += 1;
            } else {
                debug_assert!(
                    env.seq.0 > *next,
                    "stamp {:?} executed twice at {key:?}",
                    env.seq
                );
                self.parked
                    .entry(key)
                    .or_default()
                    .push(Reverse(ParkedEntry(
                        env.seq.0,
                        Parked {
                            txn: env.txn,
                            ops: env.ops,
                            tracker: env.tracker,
                        },
                    )));
            }
        }
        if let Some((k, next)) = run {
            self.close_run(k, next, completions);
        }
    }

    /// Publishes a run's advanced gate and unparks whatever became
    /// admissible behind it.
    fn close_run(&mut self, key: (u32, u32), next: u64, completions: &mut CompletionBatcher) {
        *self.gates.get_mut(&key).expect("gate exists") = next;
        self.drain_parked(key, completions);
    }

    fn drain_parked(&mut self, key: (u32, u32), completions: &mut CompletionBatcher) {
        loop {
            let next = *self.gates.get(&key).expect("gate exists");
            let popped = self.parked.get_mut(&key).and_then(|heap| {
                if heap
                    .peek()
                    .is_some_and(|Reverse(ParkedEntry(seq, _))| *seq == next)
                {
                    heap.pop()
                } else {
                    None
                }
            });
            match popped {
                Some(Reverse(ParkedEntry(_, parked))) => {
                    self.exec_group(parked.txn, &parked.ops, &parked.tracker, completions);
                    *self.gates.get_mut(&key).expect("gate exists") += 1;
                }
                None => return,
            }
        }
    }

    fn exec_group(
        &self,
        txn: TxnId,
        ops: &[TxnOp],
        tracker: &TxnTracker,
        completions: &mut CompletionBatcher,
    ) {
        let mut ok = true;
        for op in ops {
            if let Err(e) = exec_op(&self.db, txn, op, self.history.as_deref()) {
                // Ordered execution has no CC aborts: any failure is an
                // engine bug surfaced to the driver.
                debug_assert!(false, "op failed under ordered execution: {e}");
                ok = false;
                break;
            }
        }
        if let Some(done) = tracker.group_done(ok) {
            completions.push(tracker.done_sender(), Completion::Txn(done));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DoneBatch, OpDone};
    use anydb_txn::sequencer::SeqNo;
    use anydb_workload::tpcc::gen::TxnRequest;
    use anydb_workload::tpcc::{CustomerSelector, PaymentParams, TpccConfig};
    use crossbeam::channel::{unbounded, Receiver};

    /// Collects `n` transaction completion notices, flattening the batched
    /// protocol (one `DoneBatch` per drained chunk per channel) back into
    /// the per-transaction order the assertions reason about.
    fn recv_flat(rx: &Receiver<DoneBatch>, n: usize) -> Vec<OpDone> {
        let mut out = Vec::new();
        while out.len() < n {
            for c in rx.recv().expect("completion channel open").0 {
                match c {
                    Completion::Txn(done) => out.push(done),
                    Completion::Query { .. } => panic!("unexpected query completion"),
                }
            }
        }
        assert_eq!(out.len(), n, "more completions than expected");
        out
    }

    fn payment(w: i64, amount: f64) -> TxnRequest {
        TxnRequest::Payment(PaymentParams {
            w_id: w,
            d_id: 1,
            c_w_id: w,
            c_d_id: 1,
            customer: CustomerSelector::ById(1),
            amount,
            date: 20_200_101,
        })
    }

    fn env(txn: u64, stage: u32, seq: u64, tracker: Arc<TxnTracker>) -> OpEnvelope {
        OpEnvelope {
            txn: TxnId(txn),
            stage,
            domain: 0,
            seq: SeqNo(seq),
            ops: vec![TxnOp::Skip],
            tracker,
        }
    }

    #[test]
    fn executes_whole_txn_and_acks() {
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 41).unwrap());
        let committed = Arc::new(Counter::new());
        let (tx, handle) = AnyComponent::spawn(AcId(0), db, None, committed.clone());
        let (done_tx, done_rx) = unbounded();
        tx.send(Event::ExecuteTxn {
            txn: TxnId(1),
            req: payment(1, 10.0),
            done: done_tx,
        });
        let done = recv_flat(&done_rx, 1);
        assert_eq!(
            done,
            vec![OpDone {
                txn: TxnId(1),
                ok: true
            }]
        );
        assert_eq!(committed.get(), 1);
        tx.send(Event::Shutdown);
        handle.join().unwrap();
    }

    #[test]
    fn op_groups_execute_in_stamp_order_even_when_reversed() {
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 42).unwrap());
        let committed = Arc::new(Counter::new());
        let (tx, handle) = AnyComponent::spawn(AcId(0), db.clone(), None, committed);
        let (done_tx, done_rx) = unbounded();

        // Send stamps 2, 1, 0 — they must apply as 0, 1, 2. Use district
        // YTD deltas that only produce the right total when ordered
        // additively (any order works for addition), so instead verify
        // completion order via the done channel.
        for seq in [2u64, 1, 0] {
            let tracker = TxnTracker::new(TxnId(seq), 1, done_tx.clone());
            tx.send(Event::OpGroup(OpEnvelope {
                txn: TxnId(seq),
                stage: 0,
                domain: 0,
                seq: SeqNo(seq),
                ops: vec![TxnOp::PayWarehouse { w: 1, amount: 1.0 }],
                tracker,
            }));
        }
        let order: Vec<u64> = recv_flat(&done_rx, 3).iter().map(|d| d.txn.raw()).collect();
        assert_eq!(order, vec![0, 1, 2]);
        tx.send(Event::Shutdown);
        handle.join().unwrap();
    }

    #[test]
    fn stages_are_independent_gates() {
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 43).unwrap());
        let committed = Arc::new(Counter::new());
        let (tx, handle) = AnyComponent::spawn(AcId(0), db, None, committed);
        let (done_tx, done_rx) = unbounded();
        // Stage 1 seq 0 must run even though stage 0 waits for seq 0.
        let t1 = TxnTracker::new(TxnId(10), 1, done_tx.clone());
        tx.send(Event::OpGroup(env(10, 0, 1, t1))); // parked: stage 0 expects 0
        let t2 = TxnTracker::new(TxnId(11), 1, done_tx.clone());
        tx.send(Event::OpGroup(env(11, 1, 0, t2)));
        assert_eq!(recv_flat(&done_rx, 1)[0].txn, TxnId(11));
        // Unblock stage 0.
        let t3 = TxnTracker::new(TxnId(12), 1, done_tx);
        tx.send(Event::OpGroup(env(12, 0, 0, t3)));
        let mut rest: Vec<u64> = recv_flat(&done_rx, 2).iter().map(|d| d.txn.raw()).collect();
        rest.sort();
        assert_eq!(rest, vec![10, 12]);
        tx.send(Event::Shutdown);
        handle.join().unwrap();
    }

    #[test]
    fn op_batch_executes_all_envelopes_in_stamp_order() {
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 45).unwrap());
        let committed = Arc::new(Counter::new());
        let (tx, handle) = AnyComponent::spawn_with_chunk(AcId(0), db, None, committed, 8);
        let (done_tx, done_rx) = unbounded();
        // One batch carrying stamps 3,1,2,0 out of order across two
        // stages: all must complete, each stage in stamp order.
        let mut batch = Vec::new();
        for (txn, stage, seq) in [(3u64, 0u32, 1u64), (1, 1, 1), (2, 0, 0), (0, 1, 0)] {
            let tracker = TxnTracker::new(TxnId(txn), 1, done_tx.clone());
            batch.push(env(txn, stage, seq, tracker));
        }
        tx.send(Event::OpBatch(batch));
        let mut done: Vec<u64> = recv_flat(&done_rx, 4).iter().map(|d| d.txn.raw()).collect();
        done.sort();
        assert_eq!(done, vec![0, 1, 2, 3]);
        tx.send(Event::Shutdown);
        handle.join().unwrap();
    }

    #[test]
    fn batched_chunks_interleave_with_whole_txns() {
        // A chunk mixing ExecuteTxn and op groups must run both kinds.
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 46).unwrap());
        let committed = Arc::new(Counter::new());
        let (tx, handle) = AnyComponent::spawn_with_chunk(AcId(0), db, None, committed.clone(), 16);
        let (done_tx, done_rx) = unbounded();
        let tracker = TxnTracker::new(TxnId(5), 1, done_tx.clone());
        tx.send_many([
            Event::OpGroup(env(5, 0, 0, tracker)),
            Event::ExecuteTxn {
                txn: TxnId(6),
                req: payment(1, 1.0),
                done: done_tx.clone(),
            },
            Event::OpGroup(env(7, 0, 1, TxnTracker::new(TxnId(7), 1, done_tx))),
        ]);
        let mut done: Vec<u64> = recv_flat(&done_rx, 3).iter().map(|d| d.txn.raw()).collect();
        done.sort();
        assert_eq!(done, vec![5, 6, 7]);
        assert_eq!(committed.get(), 1);
        tx.send(Event::Shutdown);
        handle.join().unwrap();
    }

    #[test]
    fn one_done_batch_per_drained_chunk() {
        // An OpBatch of four single-group transactions arrives as one
        // event, so the AC processes it in one wakeup and must emit
        // exactly ONE DoneBatch carrying all four notices — the batched
        // completion protocol.
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 47).unwrap());
        let committed = Arc::new(Counter::new());
        let (tx, handle) = AnyComponent::spawn_with_chunk(AcId(0), db, None, committed, 8);
        let (done_tx, done_rx) = unbounded();
        let batch: Vec<OpEnvelope> = (0..4u64)
            .map(|i| env(i, 0, i, TxnTracker::new(TxnId(i), 1, done_tx.clone())))
            .collect();
        tx.send(Event::OpBatch(batch));
        let first = done_rx.recv().unwrap();
        assert_eq!(first.0.len(), 4, "completions were not batched: {first:?}");
        assert!(first
            .0
            .iter()
            .all(|c| matches!(c, Completion::Txn(d) if d.ok)));
        tx.send(Event::Shutdown);
        handle.join().unwrap();
    }

    #[test]
    fn completions_flush_before_olap_queries_run() {
        // A chunk carrying [OpGroup, QueryQ3] on separate channels: the
        // op group's completion must be shipped BEFORE the (expensive) Q3
        // scan runs, so by the time the query result arrives the notice
        // is already waiting.
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 48).unwrap());
        let committed = Arc::new(Counter::new());
        let (tx, handle) = AnyComponent::spawn_with_chunk(AcId(0), db, None, committed, 8);
        let (done_tx, done_rx) = unbounded();
        let (q3_tx, q3_rx) = unbounded();
        tx.send_many([
            Event::OpGroup(env(1, 0, 0, TxnTracker::new(TxnId(1), 1, done_tx))),
            Event::QueryQ3 {
                query: anydb_common::QueryId(9),
                spec: anydb_workload::chbench::Q3Spec::default(),
                done: q3_tx,
            },
        ]);
        let batch = q3_rx.recv().unwrap();
        assert!(matches!(
            batch.0.as_slice(),
            [Completion::Query {
                query: anydb_common::QueryId(9),
                rows: _
            }]
        ));
        // Happens-before: the flush preceded the scan, so this cannot
        // block (and must not be Empty).
        assert_eq!(
            done_rx.try_recv().unwrap().0,
            vec![Completion::Txn(OpDone {
                txn: TxnId(1),
                ok: true
            })]
        );
        tx.send(Event::Shutdown);
        handle.join().unwrap();
    }

    #[test]
    fn olap_and_txn_completions_share_one_batch_per_channel() {
        // A chunk carrying [OpGroup, QueryQ3] on the SAME channel: the op
        // group's notice flushes before the scan, the query completion
        // ships in the end-of-chunk batch — both on the one done channel,
        // no singleton side path anywhere.
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 49).unwrap());
        let committed = Arc::new(Counter::new());
        let (tx, handle) = AnyComponent::spawn_with_chunk(AcId(0), db, None, committed, 8);
        let (done_tx, done_rx) = unbounded();
        tx.send_many([
            Event::OpGroup(env(1, 0, 0, TxnTracker::new(TxnId(1), 1, done_tx.clone()))),
            Event::QueryQ3 {
                query: anydb_common::QueryId(5),
                spec: anydb_workload::chbench::Q3Spec::default(),
                done: done_tx,
            },
        ]);
        let mut got = Vec::new();
        while got.len() < 2 {
            got.extend(done_rx.recv().unwrap().0);
        }
        assert_eq!(
            got[0],
            Completion::Txn(OpDone {
                txn: TxnId(1),
                ok: true
            })
        );
        assert!(matches!(
            got[1],
            Completion::Query {
                query: anydb_common::QueryId(5),
                rows: _
            }
        ));
        tx.send(Event::Shutdown);
        handle.join().unwrap();
    }

    #[test]
    fn query_window_members_each_get_their_own_result() {
        // Several concurrent Q3 requests with different predicates land in
        // one chunk: the AC executes them as ONE shared admission window,
        // and every member must receive the result its exact spec demands
        // (not the hull's).
        use anydb_common::QueryId;
        use anydb_workload::chbench::Q3Spec;
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 50).unwrap());
        let committed = Arc::new(Counter::new());
        let (tx, handle) = AnyComponent::spawn_with_chunk(AcId(0), db.clone(), None, committed, 8);
        let (done_tx, done_rx) = unbounded();
        let specs = [
            Q3Spec::default(),
            Q3Spec {
                entry_date_max: 20081231,
                ..Q3Spec::default()
            },
            Q3Spec {
                entry_date_max: 20101231,
                ..Q3Spec::default()
            },
            Q3Spec {
                state_prefix: 'C',
                ..Q3Spec::default()
            },
        ];
        tx.send_many(specs.iter().enumerate().map(|(i, spec)| Event::QueryQ3 {
            query: QueryId(i as u64),
            spec: *spec,
            done: done_tx.clone(),
        }));
        let mut got = Vec::new();
        while got.len() < specs.len() {
            got.extend(done_rx.recv().unwrap().0);
        }
        for c in got {
            match c {
                Completion::Query {
                    query: QueryId(i),
                    rows,
                } => {
                    let want = crate::olap::exec_q3_local(&db, &specs[i as usize]);
                    assert_eq!(rows, want, "window member {i} diverged");
                }
                other => panic!("expected query completion, got {other:?}"),
            }
        }
        tx.send(Event::Shutdown);
        handle.join().unwrap();
    }

    #[test]
    fn queries_ahead_of_shutdown_still_answer() {
        // A chunk carrying [QueryQ3, Shutdown]: the buffered window must
        // execute before the AC exits.
        use anydb_common::QueryId;
        use anydb_workload::chbench::Q3Spec;
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 51).unwrap());
        let committed = Arc::new(Counter::new());
        let (tx, handle) = AnyComponent::spawn_with_chunk(AcId(0), db, None, committed, 8);
        let (done_tx, done_rx) = unbounded();
        tx.send_many([
            Event::QueryQ3 {
                query: QueryId(3),
                spec: Q3Spec::default(),
                done: done_tx,
            },
            Event::Shutdown,
        ]);
        handle.join().unwrap();
        let batch = done_rx.try_recv().expect("query answered before exit");
        assert!(matches!(
            batch.0.as_slice(),
            [Completion::Query {
                query: QueryId(3),
                rows: _
            }]
        ));
    }

    #[test]
    fn acts_as_olap_worker() {
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 44).unwrap());
        let committed = Arc::new(Counter::new());
        let (tx, handle) = AnyComponent::spawn(AcId(0), db, None, committed);
        let (done_tx, done_rx) = unbounded();
        tx.send(Event::QueryQ3 {
            query: anydb_common::QueryId(1),
            spec: anydb_workload::chbench::Q3Spec::default(),
            done: done_tx,
        });
        let batch = done_rx.recv().unwrap();
        match batch.0.as_slice() {
            [Completion::Query { query, rows }] => {
                assert_eq!(*query, anydb_common::QueryId(1));
                assert!(*rows > 0);
            }
            other => panic!("expected one query completion, got {other:?}"),
        }
        tx.send(Event::Shutdown);
        handle.join().unwrap();
    }
}
