//! Streaming OLAP operators for CH-benCHmark Q3.
//!
//! §4 of the paper: OLAP operations are data-intensive, so data streams
//! must bring data to wherever events execute. This module provides both
//! sides of that flow, in two representations:
//!
//! * [`stream_scan`] — the row-path producer: scan a table partition
//!   range, batch the tuples, and push them through a [`FlowSender`]
//!   (which may filter/project en route, possibly offloaded à la DPI),
//! * [`stream_scan_columns`] — the vectorized producer: scan straight
//!   into [`ColumnBatch`] column vectors with projection and filter
//!   **pushdown at the scan** (no per-row `Tuple` clone, no post-hoc
//!   flow pass over already-copied rows), shipped in the columnar wire
//!   encoding,
//! * [`Q3Compute`] — the compute-side consumer: builds hash sets from the
//!   customer and new-order streams, then probes the orders stream —
//!   3 filtered scans and 2 joins, as the paper describes. [`Q3Compute::run`]
//!   consumes row batches; [`Q3Compute::run_columns`] consumes column
//!   batches, building keys straight from `(w, d, id)` column slices and
//!   probing without materializing a single row,
//! * [`exec_q3_local`] — the fully aggregated (single-AC) execution used
//!   by HTAP OLAP workers: snapshot-consistent columnar scans
//!   (`scan_columns_snapshot`, filters pushed down) feeding dense-bitmap
//!   or hash joins over zipped key slices. [`exec_q3_local_rows`] is the
//!   retired row-at-a-time version, kept as the `abl_htap` baseline arm
//!   and as an independent oracle.
//!
//! ## The columnar stream protocol
//!
//! Columnar Q3 streams ship exactly the join-key projections
//! ([`Q3Spec::CUSTOMER_KEY_PROJ`] / [`Q3Spec::ORDER_KEY_PROJ`] /
//! [`Q3Spec::NEWORDER_KEY_PROJ`]) with the spec's filters pushed down to
//! the scan. The compute side therefore does not (and cannot) re-apply
//! filters — the filter columns never cross the wire. This is the late-
//! materialization contract: predicates run where the data lives, keys
//! travel as packed columns, and rows exist only as the final count.

use std::time::{Duration, Instant};

use anydb_common::backoff::Backoff;
use anydb_common::fxmap::{FxHashMap, FxHashSet};
use anydb_common::metrics::{Counter, RobustSnapshot};
use anydb_common::scan::MSG_SCAN_ERROR;
use anydb_common::{
    bitmap_ones, ColPredicate, ColumnBatch, DbError, DbResult, PartitionId, ScanError, ScanReply,
    ScanRequest, Tuple,
};
use anydb_storage::Table;
use anydb_stream::batch::Batch;
use anydb_stream::flow::{ColFlowSender, Flow, FlowSender, FlowStage};
use anydb_stream::link::{DeadlineRecv, LinkReceiver, RecvState};
use anydb_stream::remote::{ScanRequester, ScanResponder};
use anydb_workload::chbench::Q3Spec;
use anydb_workload::tpcc::TpccDb;
use bytes::{Buf, Bytes, BytesMut};

/// Scans every partition of `table`, batches rows (`batch_rows` each) and
/// pushes them through the flow. Closes the stream by dropping the sender.
/// Returns the number of tuples scanned (pre-flow).
///
/// Batches are built *during* the scan with an incrementally-maintained
/// byte count (each tuple is measured exactly once, as it is cloned), and
/// each partition's worth ships through the bulk flow path
/// ([`FlowSender::send_batches_blocking`]): one clock read and bulk ring
/// crossings per partition, while every batch keeps its own serialized
/// wire transfer so consumers overlap compute with the in-flight
/// remainder.
pub fn stream_scan(table: &Table, mut flow: FlowSender, batch_rows: usize) -> usize {
    let mut scanned = 0usize;
    for p in 0..table.partition_count() {
        let Ok(part) = table.partition(PartitionId(p)) else {
            continue;
        };
        let mut batches: Vec<Batch> = Vec::new();
        let mut cur = Batch::empty();
        part.scan(|_, row| {
            cur.push(row.tuple().clone());
            scanned += 1;
            if cur.len() == batch_rows {
                batches.push(std::mem::replace(&mut cur, Batch::empty()));
            }
        });
        if !cur.is_empty() {
            batches.push(cur);
        }
        if flow.send_batches_blocking(batches).is_err() {
            return scanned; // consumer gone
        }
    }
    flow.finish();
    scanned
}

/// Vectorized scan producer: materializes each partition straight into
/// [`ColumnBatch`] column vectors with `proj`ection and `pred` filter
/// pushdown (rows failing the predicate are skipped before any value is
/// copied; non-projected columns are never touched), then ships
/// `batch_rows`-row column batches through the flow, pipelined per
/// partition. Returns rows scanned (pre-filter).
pub fn stream_scan_columns(
    table: &Table,
    mut flow: ColFlowSender,
    batch_rows: usize,
    proj: &[usize],
    pred: Option<&ColPredicate>,
) -> usize {
    let mut scanned = 0usize;
    for p in 0..table.partition_count() {
        let mut out = table.column_batch(proj);
        match table.scan_columns(PartitionId(p), proj, pred, &mut out) {
            Ok(n) => scanned += n,
            Err(_) => continue,
        }
        if flow.send_split_blocking(out, batch_rows).is_err() {
            return scanned; // consumer gone
        }
    }
    flow.finish();
    scanned
}

/// A join key: `(w, d, id)` for customers, `(w, d, o)` for orders.
type JoinKey = (i64, i64, i64);

/// Compute-side Q3: consumes three data streams and reports phase timings.
pub struct Q3Compute {
    spec: Q3Spec,
}

/// Result of a compute-side Q3 execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Q3ComputeResult {
    /// Qualifying open orders.
    pub rows: usize,
    /// Time to consume both build-side streams and build the hash sets.
    pub build: Duration,
    /// Time to consume and probe the orders stream.
    pub probe: Duration,
    /// Modeled wire bytes received per stream
    /// `[customers, neworders, orders]` — what the link-transfer model
    /// charged for this execution.
    pub stream_bytes: [usize; 3],
}

/// Which of the three Q3 input streams a batch arrived on. Indexes
/// [`Q3ComputeResult::stream_bytes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Q3Stream {
    /// Build side 1 (customer keys).
    Customers = 0,
    /// Build side 2 (open-order keys).
    Neworders = 1,
    /// Probe side.
    Orders = 2,
}

/// A batch consumer plugged into the shared three-stream round-robin
/// loop ([`consume_streams`]); implemented once over row batches and once
/// over column batches.
trait Q3Sink<T> {
    /// Absorbs one batch. `builds_closed` is true once both build-side
    /// streams have finished (probe directly instead of staging).
    fn absorb(&mut self, stream: Q3Stream, batch: T, builds_closed: bool);
    /// Both build streams just closed: probe everything staged.
    fn close_builds(&mut self);
}

/// Outcome of one non-blocking visit to a stream.
enum Pull {
    /// Batches were drained into the scratch buffer.
    Got,
    /// Nothing queued (producer still working).
    Idle,
    /// Next message is in flight until the given instant.
    InFlight(Instant),
    /// Producer gone and everything consumed.
    Done,
}

fn pull<T>(rx: &mut LinkReceiver<T>, scratch: &mut Vec<T>, chunk: usize) -> Pull {
    if rx.drain_ready_max(scratch, chunk) > 0 {
        return Pull::Got;
    }
    // Nothing deliverable: classify why via a peeking receive.
    match rx.try_recv() {
        Ok(batch) => {
            // Race: became deliverable between the two calls.
            scratch.push(batch);
            Pull::Got
        }
        Err(RecvState::NotReady(at)) => Pull::InFlight(at),
        Err(RecvState::Empty) => Pull::Idle,
        Err(RecvState::Disconnected) => Pull::Done,
    }
}

/// The shared consumption loop: all three streams are drained
/// **round-robin** with [`LinkReceiver::drain_ready_max`] (one clock read
/// per drained chunk), so build and probe transfers overlap instead of
/// serializing — both build sides fill their hash sets concurrently, and
/// order batches arriving early are absorbed immediately (the sinks
/// pre-filter and stage only join keys, so staging is small) until the
/// builds close. A sequential consumer would instead leave two producers
/// blocked on ring backpressure while it worked through the first stream.
/// Returns `(build, probe)` phase durations.
fn consume_streams<T, S: Q3Sink<T>>(
    sink: &mut S,
    mut customers: LinkReceiver<T>,
    mut neworders: LinkReceiver<T>,
    mut orders: LinkReceiver<T>,
) -> (Duration, Duration) {
    /// Chunk of one round-robin visit; bounds per-stream bias.
    const CHUNK: usize = 64;

    let build_start = Instant::now();
    let (mut cust_done, mut no_done, mut ord_done) = (false, false, false);
    let mut build: Option<Duration> = None;
    let mut scratch: Vec<T> = Vec::new();
    let mut backoff = Backoff::new();

    while !(cust_done && no_done && ord_done) {
        let mut progressed = false;
        let mut idle_seen = false;
        // Earliest in-flight delivery this round, to sleep precisely.
        let mut wake: Option<Instant> = None;
        let mut note = |p: &Pull, done: &mut bool, progressed: &mut bool| match p {
            Pull::Got => *progressed = true,
            Pull::Done => {
                *done = true;
                *progressed = true;
            }
            Pull::InFlight(at) => wake = Some(wake.map_or(*at, |w| w.min(*at))),
            Pull::Idle => idle_seen = true,
        };

        let builds_closed = build.is_some();
        if !cust_done {
            let p = pull(&mut customers, &mut scratch, CHUNK);
            note(&p, &mut cust_done, &mut progressed);
            for batch in scratch.drain(..) {
                sink.absorb(Q3Stream::Customers, batch, builds_closed);
            }
        }
        if !no_done {
            let p = pull(&mut neworders, &mut scratch, CHUNK);
            note(&p, &mut no_done, &mut progressed);
            for batch in scratch.drain(..) {
                sink.absorb(Q3Stream::Neworders, batch, builds_closed);
            }
        }
        if !ord_done {
            let p = pull(&mut orders, &mut scratch, CHUNK);
            note(&p, &mut ord_done, &mut progressed);
            for batch in scratch.drain(..) {
                sink.absorb(Q3Stream::Orders, batch, builds_closed);
            }
        }

        if cust_done && no_done && build.is_none() {
            build = Some(build_start.elapsed());
            sink.close_builds();
        }

        if progressed {
            backoff.reset();
        } else if let (Some(at), false) = (wake, idle_seen) {
            // Every unfinished stream has a message in flight: sleep
            // until the earliest modeled delivery. (With an idle
            // stream in the mix its producer could deliver sooner, so
            // fall through to the short backoff instead.)
            let now = Instant::now();
            if at > now {
                std::thread::sleep(at - now);
            }
        } else {
            backoff.wait();
        }
    }

    let build = build.unwrap_or_else(|| build_start.elapsed());
    let probe = build_start.elapsed().saturating_sub(build);
    (build, probe)
}

/// Shared join state of both sinks: the two build-side key sets, the
/// early-arrival staging area, and the result counter.
#[derive(Default)]
struct JoinState {
    cust_keys: FxHashSet<JoinKey>,
    open_keys: FxHashSet<JoinKey>,
    /// Probe keys of order rows that passed the filter before both
    /// builds closed — only the two join keys are staged, not the
    /// rows, so early-arrival buffering costs 48 bytes per row.
    staged: Vec<(JoinKey, JoinKey)>,
    rows: usize,
    bytes: [usize; 3],
}

impl JoinState {
    #[inline]
    fn probe(&mut self, cust_key: JoinKey, order_key: JoinKey) {
        if self.cust_keys.contains(&cust_key) && self.open_keys.contains(&order_key) {
            self.rows += 1;
        }
    }

    fn close_builds(&mut self) {
        let staged = std::mem::take(&mut self.staged);
        for (cust_key, order_key) in staged {
            self.probe(cust_key, order_key);
        }
    }
}

/// Row-batch sink: applies the spec's filters defensively (idempotent —
/// producers may or may not have pre-filtered) and extracts keys tuple
/// by tuple.
struct RowSink {
    spec: Q3Spec,
    join: JoinState,
}

impl Q3Sink<Batch> for RowSink {
    fn absorb(&mut self, stream: Q3Stream, batch: Batch, builds_closed: bool) {
        self.join.bytes[stream as usize] += batch.bytes();
        match stream {
            Q3Stream::Customers => {
                for t in batch.tuples() {
                    if self.spec.customer_filter(t) {
                        self.join.cust_keys.insert(Q3Spec::customer_join_key(t));
                    }
                }
            }
            Q3Stream::Neworders => {
                for t in batch.tuples() {
                    self.join.open_keys.insert(Q3Spec::neworder_key(t));
                }
            }
            Q3Stream::Orders => {
                for t in batch.tuples() {
                    if !self.spec.order_filter(t) {
                        continue;
                    }
                    let keys = (Q3Spec::order_customer_key(t), Q3Spec::order_key(t));
                    if builds_closed {
                        self.join.probe(keys.0, keys.1);
                    } else {
                        self.join.staged.push(keys);
                    }
                }
            }
        }
    }

    fn close_builds(&mut self) {
        self.join.close_builds();
    }
}

/// Column-batch sink: builds keys straight from `(w, d, id)` column
/// slices and probes by zipping the key columns — no tuple is ever
/// materialized. Relies on the columnar stream protocol (filters pushed
/// down at the scan, key projections only; see the module docs).
#[derive(Default)]
struct ColSink {
    join: JoinState,
}

/// Borrows the int column at `i`, `None` if absent or mistyped — so a
/// protocol-violating batch degrades to the guarded skip path instead of
/// panicking in the consumer thread.
fn int_column(batch: &ColumnBatch, i: usize) -> Option<&[i64]> {
    batch.columns().get(i)?.ints()
}

/// Borrows the three key columns of a protocol-conforming batch.
fn key_columns(batch: &ColumnBatch) -> Option<(&[i64], &[i64], &[i64])> {
    Some((
        int_column(batch, 0)?,
        int_column(batch, 1)?,
        int_column(batch, 2)?,
    ))
}

impl ColSink {
    /// The join work of [`Q3Sink::absorb`], without the byte accounting —
    /// shared with [`WireSink`], which charges the *encoded frame* length
    /// instead of the in-memory batch estimate.
    fn absorb_cols(&mut self, stream: Q3Stream, batch: ColumnBatch, builds_closed: bool) {
        if batch.is_empty() {
            return;
        }
        // Key columns ship in (w, d, id) order on every stream; orders
        // additionally carry o_c_id as column 3 (ORDER_KEY_PROJ).
        let Some((w, d, id)) = key_columns(&batch) else {
            debug_assert!(false, "columnar Q3 stream violated the key protocol");
            return;
        };
        // Zipped slice iteration: no per-row bounds checks in the hot
        // build/probe loops.
        match stream {
            Q3Stream::Customers => {
                self.join
                    .cust_keys
                    .extend(w.iter().zip(d).zip(id).map(|((&w, &d), &id)| (w, d, id)));
            }
            Q3Stream::Neworders => {
                self.join
                    .open_keys
                    .extend(w.iter().zip(d).zip(id).map(|((&w, &d), &id)| (w, d, id)));
            }
            Q3Stream::Orders => {
                let Some(c) = int_column(&batch, 3) else {
                    debug_assert!(false, "orders stream missing o_c_id column");
                    return;
                };
                let keys = w
                    .iter()
                    .zip(d)
                    .zip(id)
                    .zip(c)
                    .map(|(((&w, &d), &id), &c)| ((w, d, c), (w, d, id)));
                if builds_closed {
                    for (cust_key, order_key) in keys {
                        self.join.probe(cust_key, order_key);
                    }
                } else {
                    self.join.staged.extend(keys);
                }
            }
        }
    }
}

impl Q3Sink<ColumnBatch> for ColSink {
    fn absorb(&mut self, stream: Q3Stream, batch: ColumnBatch, builds_closed: bool) {
        self.join.bytes[stream as usize] += batch.bytes();
        self.absorb_cols(stream, batch, builds_closed);
    }

    fn close_builds(&mut self) {
        self.join.close_builds();
    }
}

/// Wire-frame sink: the consumer end of the remote scan protocol
/// (DESIGN.md §8). Each frame is one encoded [`ScanReply`]; the sink
/// charges the stream its **encoded length** (the bytes the link
/// actually carried), decodes, and feeds the batch through the shared
/// columnar join. The reply's [`anydb_common::ScanSnapshot`] certificate
/// is where a consistency policy would plug in; Q3's monotone counters
/// accept any certified prefix (read-committed or point-in-time), so no
/// reply is ever rejected here.
#[derive(Default)]
struct WireSink {
    inner: ColSink,
}

impl Q3Sink<Bytes> for WireSink {
    fn absorb(&mut self, stream: Q3Stream, frame: Bytes, builds_closed: bool) {
        self.inner.join.bytes[stream as usize] += frame.len();
        match ScanReply::decode(&frame) {
            Ok(reply) => self.inner.absorb_cols(stream, reply.batch, builds_closed),
            Err(_) => {
                // A garbled frame off a modeled link is a protocol bug,
                // not an input condition; skip it in release builds.
                debug_assert!(false, "undecodable scan reply on Q3 stream");
            }
        }
    }

    fn close_builds(&mut self) {
        self.inner.join.close_builds();
    }
}

impl Q3Compute {
    /// New executor for the given spec.
    pub fn new(spec: Q3Spec) -> Self {
        Self { spec }
    }

    /// Runs the row-batch pipeline: build from `customers` and
    /// `neworders`, probe `orders`. Filters are applied defensively on
    /// the compute side too (idempotent), so producers may or may not
    /// pre-filter (beamed flows filter at the source / on the NIC).
    pub fn run(
        &self,
        customers: LinkReceiver<Batch>,
        neworders: LinkReceiver<Batch>,
        orders: LinkReceiver<Batch>,
    ) -> Q3ComputeResult {
        let mut sink = RowSink {
            spec: self.spec,
            join: JoinState::default(),
        };
        let (build, probe) = consume_streams(&mut sink, customers, neworders, orders);
        Q3ComputeResult {
            rows: sink.join.rows,
            build,
            probe,
            stream_bytes: sink.join.bytes,
        }
    }

    /// Runs the vectorized pipeline over columnar streams following the
    /// key protocol (see the module docs): hash sets are built from
    /// column slices and the probe zips the order key columns — filters
    /// already ran at the scans, and no row is materialized anywhere.
    pub fn run_columns(
        &self,
        customers: LinkReceiver<ColumnBatch>,
        neworders: LinkReceiver<ColumnBatch>,
        orders: LinkReceiver<ColumnBatch>,
    ) -> Q3ComputeResult {
        let mut sink = ColSink::default();
        let (build, probe) = consume_streams(&mut sink, customers, neworders, orders);
        Q3ComputeResult {
            rows: sink.join.rows,
            build,
            probe,
            stream_bytes: sink.join.bytes,
        }
    }

    /// Runs the vectorized pipeline over **remote scan protocol** reply
    /// streams: each frame is one encoded [`ScanReply`] (DESIGN.md §8),
    /// decoded here and joined exactly like [`Q3Compute::run_columns`].
    /// `stream_bytes` reports the encoded frame lengths — the bytes the
    /// modeled links actually carried.
    pub fn run_wire(
        &self,
        customers: LinkReceiver<Bytes>,
        neworders: LinkReceiver<Bytes>,
        orders: LinkReceiver<Bytes>,
    ) -> Q3ComputeResult {
        let mut sink = WireSink::default();
        let (build, probe) = consume_streams(&mut sink, customers, neworders, orders);
        Q3ComputeResult {
            rows: sink.inner.join.rows,
            build,
            probe,
            stream_bytes: sink.inner.join.bytes,
        }
    }
}

/// Encodes one remote scan call: the [`ScanRequest`] immediately followed
/// by an en-route [`Flow`] spec ([`Flow::identity`] for "none"). This is
/// the frame a compute AC ships to open a remote pushed-down scan; the
/// storage side splits it back apart with the same two codecs.
///
/// Fails only if `flow` contains a stage with no wire form (an opaque
/// closure filter).
pub fn encode_remote_scan(req: &ScanRequest, flow: &Flow) -> DbResult<Bytes> {
    let mut buf = BytesMut::new();
    req.encode_into(&mut buf);
    flow.encode_into(&mut buf)?;
    Ok(buf.freeze())
}

/// `true` iff every [`FlowStage::Project`] in `flow` stays in bounds when
/// the stages run over batches that start with `arity` columns. Decoded
/// flows come off a wire, and [`ColumnBatch::project`] panics on
/// out-of-range positions — the serve loop must reject, not crash.
fn flow_projections_in_bounds(flow: &Flow, mut arity: usize) -> bool {
    for stage in flow.stages() {
        if let FlowStage::Project(cols) = stage {
            if cols.iter().any(|&c| c >= arity) {
                return false;
            }
            arity = cols.len();
        }
    }
    true
}

/// Observability counters for one scan-serving loop. A garbled or
/// unserveable request used to vanish into a `debug_assert` (silent in
/// release, leaving the requester to hang on a reply that never comes);
/// now every rejection is counted here *and* answered with an encoded
/// [`anydb_common::scan::ScanError`] frame so the remote caller fails
/// with a reason.
#[derive(Debug, Default)]
pub struct ScanServeMetrics {
    /// Request frames that could not be decoded or validated.
    pub dropped_frames: Counter,
    /// [`anydb_common::scan::ScanError`] replies shipped back.
    pub error_replies: Counter,
    /// Requests served successfully.
    pub served: Counter,
}

impl ScanServeMetrics {
    /// Fresh zeroed counters.
    pub const fn new() -> Self {
        Self {
            dropped_frames: Counter::new(),
            error_replies: Counter::new(),
            served: Counter::new(),
        }
    }

    /// This serve loop's contribution to the unified robustness snapshot.
    pub fn snapshot(&self) -> RobustSnapshot {
        RobustSnapshot {
            scans_served: self.served.get(),
            scan_frames_dropped: self.dropped_frames.get(),
            scan_error_replies: self.error_replies.get(),
            ..Default::default()
        }
    }
}

/// The storage-AC side of the remote scan protocol: serves request
/// frames off `responder` until the requester hangs up. Each frame is
/// decoded ([`ScanRequest`] + en-route [`Flow`]), answered by the local
/// [`Table::serve_scan`] (mirror and shared-scan cache untouched by the
/// wire), the flow applied to every reply batch — this is the NIC-offload
/// stage: on an offload link nobody pays for it — and the surviving
/// encoded columns shipped back as one pipelined burst per request.
///
/// Returns total rows scanned pre-filter (producer accounting).
/// Malformed or unserveable frames are counted in `metrics` and answered
/// with a [`anydb_common::scan::ScanError`] frame — the remote caller
/// gets a reason instead of waiting forever on a reply stream that will
/// never produce its partition.
pub fn serve_scan_stream_metered(
    table: &Table,
    mut responder: ScanResponder,
    metrics: &ScanServeMetrics,
) -> usize {
    let mut scanned = 0usize;
    while let Some(frame) = responder.recv_request_blocking() {
        let mut buf = frame;
        let reject = |responder: &mut ScanResponder, reason: &str| {
            metrics.dropped_frames.incr();
            let err = ScanError::new(reason).encode();
            if responder.send_reply(err).is_ok() {
                metrics.error_replies.incr();
            }
        };
        let req = match ScanRequest::decode_from(&mut buf) {
            Ok(req) => req,
            Err(e) => {
                reject(&mut responder, &format!("undecodable scan request: {e}"));
                continue;
            }
        };
        let flow = match Flow::decode(&buf) {
            Ok(flow) if flow_projections_in_bounds(&flow, req.proj.len()) => flow,
            Ok(_) => {
                reject(&mut responder, "flow projection out of bounds");
                continue;
            }
            Err(e) => {
                reject(&mut responder, &format!("undecodable flow spec: {e}"));
                continue;
            }
        };
        let (replies, rows) = match table.serve_scan(&req) {
            Ok(ok) => ok,
            Err(e) => {
                reject(&mut responder, &format!("unserveable scan: {e}"));
                continue;
            }
        };
        scanned += rows;
        metrics.served.incr();
        let frames = replies.into_iter().map(|mut reply| {
            if !flow.is_empty() {
                reply.batch = flow.apply_columns(reply.batch);
            }
            reply.encode()
        });
        if responder.send_replies(frames).is_err() {
            break; // requester gone mid-burst
        }
    }
    scanned
}

/// [`serve_scan_stream_metered`] with throwaway counters, for callers
/// that only want the serve loop.
pub fn serve_scan_stream(table: &Table, responder: ScanResponder) -> usize {
    serve_scan_stream_metered(table, responder, &ScanServeMetrics::new())
}

/// Opens one remote pushed-down scan as a compute AC would: ships the
/// encoded `(request, flow)` frame, closes the request direction, and
/// returns the reply stream to drain plus the request bytes charged to
/// the wire. Panics on a flow with no wire form (caller bug).
pub fn request_remote_scan(
    mut requester: ScanRequester,
    req: &ScanRequest,
    flow: &Flow,
) -> (LinkReceiver<Bytes>, usize) {
    let frame = encode_remote_scan(req, flow).expect("flow has no wire form");
    // An Err means the storage side is already gone; the returned reply
    // receiver will report Disconnected, which consumers treat as
    // end-of-stream — no separate handling needed here.
    let _ = requester.send_request(frame);
    let bytes = requester.bytes_sent();
    (requester.finish_requests(), bytes)
}

/// Retry/timeout policy for [`request_scan_with_retry`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum attempts (first try included). At least 1.
    pub attempts: usize,
    /// Per-attempt deadline: an attempt whose reply stream has not
    /// completed by then is abandoned and re-issued.
    pub deadline: Duration,
    /// Upper bound on the deterministic jitter added before each retry.
    /// Zero disables jitter. Concurrent requesters sharing one deadline
    /// re-collide on a cut link forever without this — distinct seeds
    /// de-phase their retry storms.
    pub jitter: Duration,
    /// Seed for the jitter sequence (pick per requester).
    pub seed: u64,
}

impl RetryPolicy {
    /// One try, generous deadline — the "reliable link" policy.
    pub const fn single(deadline: Duration) -> Self {
        Self {
            attempts: 1,
            deadline,
            jitter: Duration::ZERO,
            seed: 0,
        }
    }

    /// The jitter slept before re-issuing after `attempt` failed
    /// attempts: a pure splitmix-style hash of `(seed, attempt)` scaled
    /// into `[0, jitter)`, so the sequence is reproducible per seed and
    /// two requesters with different seeds draw unrelated delays.
    pub fn jitter_before(&self, attempt: usize) -> Duration {
        if self.jitter.is_zero() {
            return Duration::ZERO;
        }
        let mut z = self
            .seed
            .wrapping_add((attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let frac = (z >> 11) as f64 / (1u64 << 53) as f64;
        self.jitter.mul_f64(frac)
    }
}

/// What a retried scan went through (for tests and scenario audits).
/// Passed *into* [`request_scan_with_retry`] by mutable reference so the
/// counters survive — and accumulate across — failed calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanRetryStats {
    /// Attempts issued (1 = first try succeeded).
    pub attempts: usize,
    /// Attempts abandoned on their deadline.
    pub timeouts: usize,
    /// Attempts whose reply stream ended incomplete (lost frames,
    /// storage-side disconnect mid-burst, torn reply bytes).
    pub incomplete: usize,
    /// Calls that ran out of attempts entirely.
    pub exhausted: usize,
}

impl ScanRetryStats {
    /// This requester's contribution to the unified robustness snapshot.
    pub fn snapshot(&self) -> RobustSnapshot {
        RobustSnapshot {
            retry_attempts: self.attempts as u64,
            retry_timeouts: self.timeouts as u64,
            retry_incomplete: self.incomplete as u64,
            retries_exhausted: self.exhausted as u64,
            ..Default::default()
        }
    }
}

/// Checks that a completed reply stream really is the whole answer: every
/// reply's batch rows must add up to its partition's certified
/// `snapshot.matched` count, and (when the caller knows the topology)
/// every expected partition must have reported in. This is what makes
/// re-issuing safe to *decide*: a stream that lost frames to a faulty
/// link is detectably short, never silently truncated.
fn scan_replies_complete(replies: &[ScanReply], expect_partitions: Option<usize>) -> bool {
    // Zero replies is indistinguishable from total loss: a served table
    // always answers with at least one certified (possibly empty) reply
    // per partition.
    if replies.is_empty() {
        return false;
    }
    let mut per_part: FxHashMap<PartitionId, (usize, usize)> = FxHashMap::default();
    for r in replies {
        let e = per_part
            .entry(r.partition)
            .or_insert((0, r.snapshot.matched));
        e.0 += r.batch.rows();
        e.1 = r.snapshot.matched;
    }
    if let Some(n) = expect_partitions {
        if per_part.len() != n {
            return false;
        }
    }
    per_part.values().all(|&(got, want)| got == want)
}

/// Issues a remote pushed-down scan with per-request deadlines and
/// bounded, backed-off retries (DESIGN.md §9.4).
///
/// `connect` opens a fresh requester per attempt (a retry must not trust
/// a connection that just timed out). Each attempt ships the encoded
/// request, then drains the reply stream under `policy.deadline`:
///
/// * a [`anydb_common::scan::ScanError`] frame fails the call
///   immediately with [`DbError::Remote`] — the storage AC answered; the
///   request itself is bad, and retrying it would get the same answer;
/// * a torn frame, deadline expiry, or an incomplete stream (fewer rows
///   than the [`ScanSnapshot`] certificates promise, or a missing
///   partition) abandons the attempt and re-issues after a backoff.
///
/// Re-issuing is safe because scans are read-only and every reply carries
/// its partition's certificate: the caller keeps only the last complete
/// attempt, so a duplicate execution changes nothing downstream.
///
/// [`ScanSnapshot`]: anydb_common::ScanSnapshot
pub fn request_scan_with_retry(
    mut connect: impl FnMut() -> ScanRequester,
    req: &ScanRequest,
    flow: &Flow,
    expect_partitions: Option<usize>,
    policy: RetryPolicy,
    stats: &mut ScanRetryStats,
) -> DbResult<Vec<ScanReply>> {
    let mut backoff = Backoff::new();
    for failed in 0..policy.attempts.max(1) {
        if failed > 0 {
            // De-phase concurrent requesters before re-issuing: without
            // jitter, callers that timed out together retry together and
            // re-collide on whatever cut them off.
            let j = policy.jitter_before(failed);
            if !j.is_zero() {
                std::thread::sleep(j);
            }
        }
        stats.attempts += 1;
        let (mut rx, _bytes) = request_remote_scan(connect(), req, flow);
        let deadline = Instant::now() + policy.deadline;
        let mut replies: Vec<ScanReply> = Vec::new();
        let outcome = loop {
            match rx.recv_deadline(deadline) {
                DeadlineRecv::Msg(frame) => {
                    if frame.chunk().first() == Some(&MSG_SCAN_ERROR) {
                        let reason = ScanError::decode(&frame)
                            .map(|e| e.reason)
                            .unwrap_or_else(|_| "torn scan error frame".to_string());
                        return Err(DbError::Remote(reason));
                    }
                    match ScanReply::decode(&frame) {
                        Ok(reply) => replies.push(reply),
                        // Torn reply bytes: this stream cannot be
                        // trusted; abandon the attempt.
                        Err(_) => break AttemptOutcome::Incomplete,
                    }
                }
                DeadlineRecv::TimedOut => break AttemptOutcome::TimedOut,
                DeadlineRecv::Disconnected => {
                    if scan_replies_complete(&replies, expect_partitions) {
                        break AttemptOutcome::Complete;
                    }
                    break AttemptOutcome::Incomplete;
                }
            }
        };
        match outcome {
            AttemptOutcome::Complete => return Ok(replies),
            AttemptOutcome::TimedOut => stats.timeouts += 1,
            AttemptOutcome::Incomplete => stats.incomplete += 1,
        }
        backoff.wait();
    }
    stats.exhausted += 1;
    Err(DbError::Timeout("remote scan retries exhausted"))
}

enum AttemptOutcome {
    Complete,
    TimedOut,
    Incomplete,
}

/// Cap on the dense-domain join bitmap, in bits (2 MiB of bitmap). TPC-C
/// key domains are tiny rectangles; anything past this cap falls back to
/// the hash join.
const KEY_BITMAP_MAX_BITS: u128 = 1 << 24;

/// Dense membership set over `(w, d, id)` join keys.
///
/// When the build side's key columns span a small rectangular domain
/// (always true for TPC-C warehouse/district/id keys), membership is one
/// bounds check plus one bit test in an L1/L2-resident bitmap instead of
/// a hash probe. This is the join-strategy upgrade the columnar rewrite
/// makes nearly free: the per-column min/max needed to pick the strategy
/// is one pass over packed `i64` slices, which the row path would have to
/// pay per-`Value` per-row.
struct KeyBitmap {
    w_min: i64,
    d_min: i64,
    id_min: i64,
    w_span: u64,
    d_span: u64,
    id_span: u64,
    bits: Vec<u64>,
}

impl KeyBitmap {
    /// Builds an empty set for the given per-column `[min, max]` ranges.
    /// `None` input (empty build side) yields a zero-size domain where
    /// every probe misses; a domain larger than [`KEY_BITMAP_MAX_BITS`]
    /// returns `None` and the caller falls back to the hash join.
    fn try_new(ranges: Option<[(i64, i64); 3]>) -> Option<KeyBitmap> {
        let Some([(w_min, w_max), (d_min, d_max), (id_min, id_max)]) = ranges else {
            return Some(KeyBitmap {
                w_min: 0,
                d_min: 0,
                id_min: 0,
                w_span: 0,
                d_span: 0,
                id_span: 0,
                bits: Vec::new(),
            });
        };
        let spans = [
            (w_max as i128 - w_min as i128 + 1) as u128,
            (d_max as i128 - d_min as i128 + 1) as u128,
            (id_max as i128 - id_min as i128 + 1) as u128,
        ];
        let total = spans[0].checked_mul(spans[1])?.checked_mul(spans[2])?;
        if total > KEY_BITMAP_MAX_BITS {
            return None;
        }
        Some(KeyBitmap {
            w_min,
            d_min,
            id_min,
            w_span: spans[0] as u64,
            d_span: spans[1] as u64,
            id_span: spans[2] as u64,
            bits: vec![0u64; (total as usize).div_ceil(64)],
        })
    }

    /// Bit index of a key, `None` when it lies outside the domain (then
    /// it cannot be a member). Wrapping subtraction is sound: any true
    /// distance that overflows `i64` lands at `>= 2^63` as `u64`, far
    /// beyond the capped spans.
    #[inline]
    fn index(&self, w: i64, d: i64, id: i64) -> Option<usize> {
        let w = w.wrapping_sub(self.w_min) as u64;
        let d = d.wrapping_sub(self.d_min) as u64;
        let id = id.wrapping_sub(self.id_min) as u64;
        if w >= self.w_span || d >= self.d_span || id >= self.id_span {
            return None;
        }
        Some(((w * self.d_span + d) * self.id_span + id) as usize)
    }

    /// Marks a key as member. Build keys are always inside the domain
    /// (it was derived from them).
    #[inline]
    fn insert(&mut self, w: i64, d: i64, id: i64) {
        let i = self
            .index(w, d, id)
            .expect("build key inside its own domain");
        self.bits[i / 64] |= 1 << (i % 64);
    }

    /// Membership test.
    #[inline]
    fn contains(&self, w: i64, d: i64, id: i64) -> bool {
        self.index(w, d, id)
            .is_some_and(|i| self.bits[i / 64] & (1 << (i % 64)) != 0)
    }
}

/// Per-column `[min, max]` over the `(w, d, id)` key columns of a batch
/// list; `None` when there are no rows.
fn key_ranges(batches: &[ColumnBatch]) -> Option<[(i64, i64); 3]> {
    let mut out: Option<[(i64, i64); 3]> = None;
    for b in batches {
        let Some((w, d, id)) = key_columns(b) else {
            continue;
        };
        for (i, col) in [w, d, id].into_iter().enumerate() {
            for &v in col {
                let r = out.get_or_insert([(v, v); 3]);
                r[i].0 = r[i].0.min(v);
                r[i].1 = r[i].1.max(v);
            }
        }
    }
    out
}

/// The dense-domain arm of the local columnar join: build two key
/// bitmaps, probe the orders key columns. `None` when either build
/// domain exceeds the bitmap cap (caller falls back to [`join_hash`]).
fn join_bitmap(cust: &[ColumnBatch], no: &[ColumnBatch], ord: &[ColumnBatch]) -> Option<usize> {
    let mut cust_bits = KeyBitmap::try_new(key_ranges(cust))?;
    let mut open_bits = KeyBitmap::try_new(key_ranges(no))?;
    for b in cust {
        let Some((w, d, id)) = key_columns(b) else {
            continue;
        };
        for ((&w, &d), &id) in w.iter().zip(d).zip(id) {
            cust_bits.insert(w, d, id);
        }
    }
    for b in no {
        let Some((w, d, id)) = key_columns(b) else {
            continue;
        };
        for ((&w, &d), &id) in w.iter().zip(d).zip(id) {
            open_bits.insert(w, d, id);
        }
    }
    let mut rows = 0usize;
    for b in ord {
        let Some((w, d, id)) = key_columns(b) else {
            debug_assert!(b.is_empty(), "orders key batch violated the protocol");
            continue;
        };
        let Some(c) = int_column(b, 3) else {
            debug_assert!(false, "orders key batch missing o_c_id");
            continue;
        };
        for (((&w, &d), &id), &c) in w.iter().zip(d).zip(id).zip(c) {
            if cust_bits.contains(w, d, c) && open_bits.contains(w, d, id) {
                rows += 1;
            }
        }
    }
    Some(rows)
}

/// Hash-join fallback over `(w, d, id)` tuple keys — exact for any key
/// distribution; used when the dense domains are too large to bitmap.
fn join_hash(cust: &[ColumnBatch], no: &[ColumnBatch], ord: &[ColumnBatch]) -> usize {
    let mut cust_keys: FxHashSet<JoinKey> = FxHashSet::default();
    for b in cust {
        let Some((w, d, id)) = key_columns(b) else {
            continue;
        };
        cust_keys.extend(w.iter().zip(d).zip(id).map(|((&w, &d), &id)| (w, d, id)));
    }
    let mut open_keys: FxHashSet<JoinKey> = FxHashSet::default();
    for b in no {
        let Some((w, d, id)) = key_columns(b) else {
            continue;
        };
        open_keys.extend(w.iter().zip(d).zip(id).map(|((&w, &d), &id)| (w, d, id)));
    }
    let mut rows = 0usize;
    for b in ord {
        let Some((w, d, id)) = key_columns(b) else {
            debug_assert!(b.is_empty(), "orders key batch violated the protocol");
            continue;
        };
        let Some(c) = int_column(b, 3) else {
            debug_assert!(false, "orders key batch missing o_c_id");
            continue;
        };
        for (((&w, &d), &id), &c) in w.iter().zip(d).zip(id).zip(c) {
            if cust_keys.contains(&(w, d, c)) && open_keys.contains(&(w, d, id)) {
                rows += 1;
            }
        }
    }
    rows
}

/// Materializes the key projection of every partition of `table` through
/// the **shared** snapshot-consistent columnar scan (filter pushed to the
/// scan), one batch per partition. Cached scans are revalidated against
/// **column-level** epochs: a partition is served zero-copy unless a
/// write actually changed one of the projected or filtered columns (or
/// appended a row) since its last materialization — OLTP writes to
/// unrelated columns (payments rewriting balances) leave the Q3 caches
/// untouched. Re-materialization copies from the partition's per-column
/// storage mirror, not the tuple heap.
fn snapshot_key_batches(
    table: &Table,
    proj: &[usize],
    pred: Option<&ColPredicate>,
) -> Vec<ColumnBatch> {
    let mut out = Vec::with_capacity(table.partition_count() as usize);
    for p in 0..table.partition_count() {
        if let Ok((batch, _snap)) = table.scan_columns_snapshot_shared(PartitionId(p), proj, pred) {
            out.push(batch);
        }
    }
    out
}

/// Fully local Q3 (one AC acting as the whole pipeline), columnar: the
/// execution behind `Event::QueryQ3` on HTAP OLAP workers.
///
/// Each table's join-key projection is materialized per partition via
/// [`anydb_storage::Table::scan_columns_snapshot_shared`] — a
/// consistent-prefix pass over the partition's per-column storage mirror
/// with the spec's filters pushed to the scan, cached per partition and
/// revalidated against **column-level** write epochs, so repeated
/// queries ride one shared scan (SharedDB-style) at zero copy cost as
/// long as no OLTP write touches the projected ∪ filtered columns. The
/// two joins then run over
/// packed key slices: bitmap membership when the key domains are dense
/// (the TPC-C case), hash sets otherwise. [`exec_q3_local_rows`] keeps
/// the row-at-a-time execution as the baseline arm of `abl_htap`, and
/// `reference_q3` remains the row-level oracle both are tested against.
pub fn exec_q3_local(db: &TpccDb, spec: &Q3Spec) -> usize {
    let cust = snapshot_key_batches(
        &db.customer,
        &Q3Spec::CUSTOMER_KEY_PROJ,
        Some(&spec.customer_pred()),
    );
    let no = snapshot_key_batches(&db.neworder, &Q3Spec::NEWORDER_KEY_PROJ, None);
    let ord = snapshot_key_batches(
        &db.orders,
        &Q3Spec::ORDER_KEY_PROJ,
        Some(&spec.order_pred()),
    );
    join_bitmap(&cust, &no, &ord).unwrap_or_else(|| join_hash(&cust, &no, &ord))
}

/// A shared join build side: dense key bitmap when the domains allow
/// (the TPC-C case), hash set otherwise — the same strategy split as
/// [`join_bitmap`] / [`join_hash`], packaged so the shared pipeline can
/// build it **once** and probe it for every member query.
enum KeySet {
    Dense(KeyBitmap),
    Hash(FxHashSet<JoinKey>),
}

impl KeySet {
    /// Empty set over the given per-column key ranges: dense bitmap when
    /// the domain fits [`KEY_BITMAP_MAX_BITS`], hash set otherwise.
    /// Inserted keys must lie inside `ranges` (dense indexing relies on
    /// it), which holds for any key drawn from the batches the ranges
    /// were computed over.
    fn empty_for(ranges: Option<[(i64, i64); 3]>) -> KeySet {
        match KeyBitmap::try_new(ranges) {
            Some(bits) => KeySet::Dense(bits),
            None => KeySet::Hash(FxHashSet::default()),
        }
    }

    fn from_batches(batches: &[ColumnBatch]) -> KeySet {
        let mut set = KeySet::empty_for(key_ranges(batches));
        for b in batches {
            let Some((w, d, id)) = key_columns(b) else {
                continue;
            };
            for ((&w, &d), &id) in w.iter().zip(d).zip(id) {
                set.insert(w, d, id);
            }
        }
        set
    }

    #[inline]
    fn insert(&mut self, w: i64, d: i64, id: i64) {
        match self {
            KeySet::Dense(b) => b.insert(w, d, id),
            KeySet::Hash(h) => {
                h.insert((w, d, id));
            }
        }
    }

    #[inline]
    fn contains(&self, w: i64, d: i64, id: i64) -> bool {
        match self {
            KeySet::Dense(b) => b.contains(w, d, id),
            KeySet::Hash(h) => h.contains(&(w, d, id)),
        }
    }
}

/// **Shared multi-query execution** (SharedDB's "one stone"): answers
/// every spec in `specs` from ONE scan→build→probe pipeline, returning
/// one Q3 count per spec, each provably equal to what
/// [`exec_q3_local`] would return for that spec alone.
///
/// The sharing plan, per the tentpole:
///
/// 1. **Predicate hulls** — per scanned table, the member predicates
///    fold into one [`ColPredicate::union_hull`] (e.g. N date windows →
///    one spanning window). The hull matches every row any member
///    matches, so one hull scan feeds all members.
/// 2. **One shared scan per table** — via the superset-keyed
///    [`anydb_storage::Table::scan_columns_snapshot_shared`], under the
///    *shared* projections ([`Q3Spec::CUSTOMER_SHARED_PROJ`] /
///    [`Q3Spec::ORDER_SHARED_PROJ`]) that carry the filter columns, so
///    exact member predicates can be re-checked downstream. This widens
///    the wire by one column in exchange for replacing N scans with 1.
/// 3. **One shared build side** — the open-order key set has no
///    per-member predicate, so one [`KeySet`] (dense bitmap or hash)
///    serves every member's join-2 probe.
/// 4. **Selection-vector fan-out at the probe** — each member refines
///    the hull-scanned batches with its exact predicate via the
///    branchless [`ColPredicate::select_bitmap`] evaluator, and probes
///    only its own selected rows.
///
/// Total pipeline cost is therefore ~flat in the member count: the
/// scans and the build are paid once, and only the refinement bitmaps
/// and probes scale with N — the `abl_shared` ablation gates this.
///
/// A single-member group degrades to [`exec_q3_local`] exactly (same
/// key projections, same cache shapes), so the standing-HTAP singleton
/// path is byte-identical to the unshared one.
pub fn exec_q3_shared(db: &TpccDb, specs: &[Q3Spec]) -> Vec<usize> {
    if specs.is_empty() {
        return Vec::new();
    }
    if specs.len() == 1 {
        return vec![exec_q3_local(db, &specs[0])];
    }
    let cust_hull = specs[1..].iter().fold(specs[0].customer_pred(), |h, s| {
        h.union_hull(&s.customer_pred())
    });
    let ord_hull = specs[1..]
        .iter()
        .fold(specs[0].order_pred(), |h, s| h.union_hull(&s.order_pred()));
    let cust = snapshot_key_batches(
        &db.customer,
        &Q3Spec::CUSTOMER_SHARED_PROJ,
        Some(&cust_hull),
    );
    let no = snapshot_key_batches(&db.neworder, &Q3Spec::NEWORDER_KEY_PROJ, None);
    let ord = snapshot_key_batches(&db.orders, &Q3Spec::ORDER_SHARED_PROJ, Some(&ord_hull));

    // One shared build side for join 2 — predicate-free, member-agnostic.
    let open = KeySet::from_batches(&no);

    // Member predicates, re-addressed to the shared projections' column
    // order (the filter columns ride at the tail by construction).
    let cust_preds: Vec<ColPredicate> = specs
        .iter()
        .map(|s| {
            s.customer_pred()
                .project_columns(&Q3Spec::CUSTOMER_SHARED_PROJ)
                .expect("shared customer projection carries the filter column")
        })
        .collect();
    let ord_preds: Vec<ColPredicate> = specs
        .iter()
        .map(|s| {
            s.order_pred()
                .project_columns(&Q3Spec::ORDER_SHARED_PROJ)
                .expect("shared orders projection carries the filter column")
        })
        .collect();

    // Members with *identical* predicates collapse into one group before
    // any fan-out (PR 6's noted headroom: N identical windows used to
    // pay N selection-vector passes and N key-set builds for the same
    // answer). `ColPredicate` is `Eq + Hash`, so grouping is one map
    // pass per side.
    let (cust_group_of, cust_group_preds) = dedup_predicates(&cust_preds);
    let (ord_group_of, ord_group_preds) = dedup_predicates(&ord_preds);

    // Join-1 build fan-out: each *distinct* customer predicate's exact
    // key set, refined from the hull-scanned batches by bitmap select.
    // The sets share the hull batches' key ranges, so in the dense
    // (TPC-C) case each is a small bitmap — probe membership stays a bit
    // test even at large member counts.
    let cust_ranges = key_ranges(&cust);
    let mut cust_keys: Vec<KeySet> = cust_group_preds
        .iter()
        .map(|_| KeySet::empty_for(cust_ranges))
        .collect();
    let mut bits = Vec::new();
    let mut sel = Vec::new();
    for b in &cust {
        let Some((w, d, id)) = key_columns(b) else {
            debug_assert!(b.is_empty(), "customer batch violated the key protocol");
            continue;
        };
        for (member, &pred) in cust_keys.iter_mut().zip(&cust_group_preds) {
            pred.select_bitmap(b, &mut bits);
            sel.clear();
            bitmap_ones(&bits, &mut sel);
            for &i in &sel {
                let i = i as usize;
                member.insert(w[i], d[i], id[i]);
            }
        }
    }

    // Probe fan-out runs once per distinct `(order window, customer
    // set)` pair — members identical on both sides share the entire
    // probe, not just the selection pass. Pairs are bucketed under
    // their order group so each distinct order predicate pays exactly
    // one selection-vector pass per batch.
    let mut pair_of = vec![0usize; specs.len()];
    let mut pairs_by_ord_group: Vec<Vec<(usize, usize)>> = vec![Vec::new(); ord_group_preds.len()];
    let mut npairs = 0usize;
    {
        let mut index: FxHashMap<(usize, usize), usize> = FxHashMap::default();
        for (m, (&og, &cg)) in ord_group_of.iter().zip(&cust_group_of).enumerate() {
            pair_of[m] = *index.entry((og, cg)).or_insert_with(|| {
                pairs_by_ord_group[og].push((npairs, cg));
                npairs += 1;
                npairs - 1
            });
        }
    }
    let mut pair_rows = vec![0usize; npairs];
    for b in &ord {
        let Some((w, d, id)) = key_columns(b) else {
            debug_assert!(b.is_empty(), "orders batch violated the key protocol");
            continue;
        };
        let Some(c) = int_column(b, 3) else {
            debug_assert!(false, "orders batch missing o_c_id");
            continue;
        };
        for (pred, pairs) in ord_group_preds.iter().zip(&pairs_by_ord_group) {
            pred.select_bitmap(b, &mut bits);
            sel.clear();
            bitmap_ones(&bits, &mut sel);
            for &(pair, cg) in pairs {
                let member = &cust_keys[cg];
                let count = &mut pair_rows[pair];
                for &i in &sel {
                    let i = i as usize;
                    if member.contains(w[i], d[i], c[i]) && open.contains(w[i], d[i], id[i]) {
                        *count += 1;
                    }
                }
            }
        }
    }
    pair_of.into_iter().map(|p| pair_rows[p]).collect()
}

/// Groups equal predicates: returns, per input position, the index of
/// its group, plus one representative reference per group (first
/// occurrence order). The fan-out loops of [`exec_q3_shared`] then run
/// per *group* instead of per member.
fn dedup_predicates(preds: &[ColPredicate]) -> (Vec<usize>, Vec<&ColPredicate>) {
    let mut group_of = Vec::with_capacity(preds.len());
    let mut reps: Vec<&ColPredicate> = Vec::new();
    let mut index: FxHashMap<&ColPredicate, usize> = FxHashMap::default();
    for pred in preds {
        group_of.push(*index.entry(pred).or_insert_with(|| {
            reps.push(pred);
            reps.len() - 1
        }));
    }
    (group_of, reps)
}

/// Row-at-a-time local Q3 under per-row latches — the pre-columnar HTAP
/// execution, kept as the row-path baseline (`abl_htap`'s slow arm) and
/// as an independent oracle for the columnar rewrite.
pub fn exec_q3_local_rows(db: &TpccDb, spec: &Q3Spec) -> usize {
    let mut cust_keys: FxHashSet<(i64, i64, i64)> = FxHashSet::default();
    for p in 0..db.customer.partition_count() {
        if let Ok(part) = db.customer.partition(PartitionId(p)) {
            part.scan(|_, row| {
                if spec.customer_filter(row.tuple()) {
                    cust_keys.insert(Q3Spec::customer_join_key(row.tuple()));
                }
            });
        }
    }
    let mut open_keys: FxHashSet<(i64, i64, i64)> = FxHashSet::default();
    for p in 0..db.neworder.partition_count() {
        if let Ok(part) = db.neworder.partition(PartitionId(p)) {
            part.scan(|_, row| {
                open_keys.insert(Q3Spec::neworder_key(row.tuple()));
            });
        }
    }
    let mut rows = 0usize;
    for p in 0..db.orders.partition_count() {
        if let Ok(part) = db.orders.partition(PartitionId(p)) {
            part.scan(|_, row| {
                let t = row.tuple();
                if spec.order_filter(t)
                    && cust_keys.contains(&Q3Spec::order_customer_key(t))
                    && open_keys.contains(&Q3Spec::order_key(t))
                {
                    rows += 1;
                }
            });
        }
    }
    rows
}

/// Collects all tuples of a table (test/diagnostic helper).
pub fn collect_table(table: &Table) -> Vec<Tuple> {
    let mut out = Vec::with_capacity(table.row_count());
    for p in 0..table.partition_count() {
        if let Ok(part) = table.partition(PartitionId(p)) {
            part.scan(|_, row| out.push(row.tuple().clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use anydb_stream::fault::FaultSpec;
    use anydb_stream::flow::Flow;
    use anydb_stream::link::{LinkSpec, SimLink};
    use anydb_stream::remote::{scan_connection, scan_connection_faulty};
    use anydb_workload::chbench::reference_q3;
    use anydb_workload::tpcc::TpccConfig;

    #[test]
    fn local_matches_reference() {
        let db = TpccDb::load(TpccConfig::small(), 51).unwrap();
        let spec = Q3Spec::default();
        let expected = reference_q3(
            &spec,
            &collect_table(&db.customer),
            &collect_table(&db.orders),
            &collect_table(&db.neworder),
        );
        assert_eq!(exec_q3_local(&db, &spec), expected, "columnar local path");
        assert_eq!(exec_q3_local_rows(&db, &spec), expected, "row local path");
    }

    #[test]
    fn windowed_spec_agrees_across_all_paths() {
        // A bounded date window pushes down as IntBetween; the columnar
        // local execution, the row execution, the reference oracle, and
        // the streamed columnar pipeline must all agree on it.
        let db = std::sync::Arc::new(TpccDb::load(TpccConfig::small(), 59).unwrap());
        let spec = Q3Spec {
            entry_date_max: 20091231,
            ..Q3Spec::default()
        };
        let expected = reference_q3(
            &spec,
            &collect_table(&db.customer),
            &collect_table(&db.orders),
            &collect_table(&db.neworder),
        );
        assert!(expected > 0, "window keeps some orders at this seed");
        assert_eq!(exec_q3_local(&db, &spec), expected);
        assert_eq!(exec_q3_local_rows(&db, &spec), expected);
        let (crx, nrx, orx, producers) = columnar_streams(&db, spec, 128);
        let streamed = Q3Compute::new(spec).run_columns(crx, nrx, orx);
        producers.join().unwrap();
        assert_eq!(streamed.rows, expected);
    }

    #[test]
    fn shared_execution_matches_independent_execution() {
        let db = TpccDb::load(TpccConfig::small(), 61).unwrap();
        // Mixed member shapes: different state prefixes, bounded and
        // open-ended date windows, and a duplicate member.
        let specs = vec![
            Q3Spec::default(),
            Q3Spec {
                entry_date_max: 20091231,
                ..Q3Spec::default()
            },
            Q3Spec {
                state_prefix: 'C',
                entry_date_min: 20050101,
                entry_date_max: 20081231,
            },
            Q3Spec {
                state_prefix: 'T',
                ..Q3Spec::default()
            },
            Q3Spec {
                entry_date_max: 20091231,
                ..Q3Spec::default()
            },
        ];
        let shared = exec_q3_shared(&db, &specs);
        assert_eq!(shared.len(), specs.len());
        let customers = collect_table(&db.customer);
        let orders = collect_table(&db.orders);
        let neworders = collect_table(&db.neworder);
        for (spec, &rows) in specs.iter().zip(&shared) {
            assert_eq!(
                rows,
                reference_q3(spec, &customers, &orders, &neworders),
                "shared member diverged from the oracle: {spec:?}"
            );
            assert_eq!(
                rows,
                exec_q3_local(&db, spec),
                "shared member diverged from independent execution: {spec:?}"
            );
        }
        assert!(shared.iter().any(|&r| r > 0), "degenerate scale");
        assert_eq!(shared[1], shared[4], "duplicate members must agree");
        // Degenerate groups: empty, and the singleton passthrough.
        assert!(exec_q3_shared(&db, &[]).is_empty());
        assert_eq!(exec_q3_shared(&db, &specs[..1]), vec![shared[0]]);
    }

    #[test]
    fn shared_pipeline_scans_each_table_once() {
        let db = TpccDb::load(TpccConfig::small(), 62).unwrap();
        let misses = |db: &TpccDb| {
            [&db.customer, &db.neworder, &db.orders]
                .iter()
                .map(|t| t.shared_scan_stats().misses)
                .sum::<u64>()
        };
        let specs: Vec<Q3Spec> = (0..8i64)
            .map(|i| Q3Spec {
                entry_date_max: 20071231 + i * 10_000,
                ..Q3Spec::default()
            })
            .collect();
        let parts = (db.customer.partition_count()
            + db.neworder.partition_count()
            + db.orders.partition_count()) as u64;
        let before = misses(&db);
        exec_q3_shared(&db, &specs);
        // 8 member queries cost ONE scan per table partition.
        assert_eq!(misses(&db) - before, parts);
        // A second group whose windows sit inside the first group's hull
        // is answered without any fresh scan at all: the customer and
        // new-order shapes hit exactly, the narrower orders hull is
        // served from the cached superset entry by refinement.
        let after_first = misses(&db);
        let narrower: Vec<Q3Spec> = (0..4i64)
            .map(|i| Q3Spec {
                entry_date_max: 20071231 + i * 10_000,
                ..Q3Spec::default()
            })
            .collect();
        let shared = exec_q3_shared(&db, &narrower);
        assert_eq!(misses(&db), after_first, "covered group paid a scan");
        // And the refined results are still exact.
        let customers = collect_table(&db.customer);
        let orders = collect_table(&db.orders);
        let neworders = collect_table(&db.neworder);
        for (spec, &rows) in narrower.iter().zip(&shared) {
            assert_eq!(rows, reference_q3(spec, &customers, &orders, &neworders));
        }
    }

    #[test]
    fn join_arms_agree_and_sparse_domains_fall_back() {
        use anydb_common::{DataType, Value};
        let int3 = [DataType::Int, DataType::Int, DataType::Int];
        let int4 = [DataType::Int; 4];
        // (w, d, id) build batches; orders carry (w, d, id, c).
        let mut cust = ColumnBatch::new(&int3);
        let mut no = ColumnBatch::new(&int3);
        let mut ord = ColumnBatch::new(&int4);
        for (w, d, id) in [(1i64, 1i64, 10i64), (1, 2, 20), (2, 1, 10)] {
            cust.push_row(&[Value::Int(w), Value::Int(d), Value::Int(id)])
                .unwrap();
        }
        for (w, d, o) in [(1i64, 1i64, 5i64), (1, 2, 6), (2, 1, 7)] {
            no.push_row(&[Value::Int(w), Value::Int(d), Value::Int(o)])
                .unwrap();
        }
        for (w, d, o, c) in [
            (1i64, 1i64, 5i64, 10i64), // matches both sides
            (1, 2, 6, 99),             // customer miss
            (2, 1, 9, 10),             // open-order miss
            (9, 9, 9, 9),              // outside every domain
        ] {
            ord.push_row(&[Value::Int(w), Value::Int(d), Value::Int(o), Value::Int(c)])
                .unwrap();
        }
        let (cust, no, ord) = (vec![cust], vec![no], vec![ord]);
        assert_eq!(join_bitmap(&cust, &no, &ord), Some(1));
        assert_eq!(join_hash(&cust, &no, &ord), 1);

        // A sparse key domain overflows the bitmap cap: the dense arm
        // refuses and the hash arm still answers.
        let mut sparse = ColumnBatch::new(&int3);
        for id in [0i64, 1 << 40] {
            sparse
                .push_row(&[Value::Int(1), Value::Int(1), Value::Int(id)])
                .unwrap();
        }
        let sparse = vec![sparse];
        assert_eq!(join_bitmap(&sparse, &no, &ord), None);
        assert_eq!(join_hash(&sparse, &no, &ord), 0);

        // Empty build sides: every probe misses, in both arms.
        let empty = vec![ColumnBatch::new(&int3)];
        assert_eq!(join_bitmap(&empty, &no, &ord), Some(0));
        assert_eq!(join_hash(&empty, &no, &ord), 0);
    }

    #[test]
    fn streamed_matches_local() {
        let db = std::sync::Arc::new(TpccDb::load(TpccConfig::small(), 52).unwrap());
        let spec = Q3Spec::default();
        let expected = exec_q3_local(&db, &spec);

        let (ctx, crx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
        let (ntx, nrx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
        let (otx, orx) = SimLink::channel(LinkSpec::instant(), 1 << 14);

        let producers = {
            let db = db.clone();
            std::thread::spawn(move || {
                stream_scan(&db.customer, FlowSender::new(ctx, Flow::identity()), 256);
                stream_scan(&db.neworder, FlowSender::new(ntx, Flow::identity()), 256);
                stream_scan(&db.orders, FlowSender::new(otx, Flow::identity()), 256);
            })
        };
        let result = Q3Compute::new(spec).run(crx, nrx, orx);
        producers.join().unwrap();
        assert_eq!(result.rows, expected);
        assert!(result.build > Duration::ZERO);
        assert!(result.stream_bytes.iter().all(|&b| b > 0));
    }

    /// Spawns the three columnar Q3 producers (key projections, filters
    /// pushed down) over instant links and returns the receivers.
    fn columnar_streams(
        db: &std::sync::Arc<TpccDb>,
        spec: Q3Spec,
        batch_rows: usize,
    ) -> (
        LinkReceiver<ColumnBatch>,
        LinkReceiver<ColumnBatch>,
        LinkReceiver<ColumnBatch>,
        std::thread::JoinHandle<()>,
    ) {
        let (ctx, crx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
        let (ntx, nrx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
        let (otx, orx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
        let db = db.clone();
        let producers = std::thread::spawn(move || {
            stream_scan_columns(
                &db.customer,
                ColFlowSender::new(ctx, Flow::identity()),
                batch_rows,
                &Q3Spec::CUSTOMER_KEY_PROJ,
                Some(&spec.customer_pred()),
            );
            stream_scan_columns(
                &db.neworder,
                ColFlowSender::new(ntx, Flow::identity()),
                batch_rows,
                &Q3Spec::NEWORDER_KEY_PROJ,
                None,
            );
            stream_scan_columns(
                &db.orders,
                ColFlowSender::new(otx, Flow::identity()),
                batch_rows,
                &Q3Spec::ORDER_KEY_PROJ,
                Some(&spec.order_pred()),
            );
        });
        (crx, nrx, orx, producers)
    }

    #[test]
    fn columnar_streams_match_local() {
        let db = std::sync::Arc::new(TpccDb::load(TpccConfig::small(), 56).unwrap());
        let spec = Q3Spec::default();
        let expected = exec_q3_local(&db, &spec);
        let (crx, nrx, orx, producers) = columnar_streams(&db, spec, 256);
        let result = Q3Compute::new(spec).run_columns(crx, nrx, orx);
        producers.join().unwrap();
        assert_eq!(result.rows, expected);
        assert!(result.stream_bytes.iter().all(|&b| b > 0));
    }

    #[test]
    fn columnar_wire_bytes_beat_row_wire_bytes_per_stream() {
        // Same database, both paths as beaming runs them (row path
        // pre-filters via flows, columnar pushes down filter+projection):
        // every stream must model fewer wire bytes columnar.
        let db = std::sync::Arc::new(TpccDb::load(TpccConfig::small(), 57).unwrap());
        let spec = Q3Spec::default();

        let (ctx, crx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
        let (ntx, nrx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
        let (otx, orx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
        stream_scan(
            &db.customer,
            FlowSender::new(
                ctx,
                Flow::identity().filter(move |t| spec.customer_filter(t)),
            ),
            256,
        );
        stream_scan(&db.neworder, FlowSender::new(ntx, Flow::identity()), 256);
        stream_scan(
            &db.orders,
            FlowSender::new(otx, Flow::identity().filter(move |t| spec.order_filter(t))),
            256,
        );
        let row = Q3Compute::new(spec).run(crx, nrx, orx);

        let (crx, nrx, orx, producers) = columnar_streams(&db, spec, 256);
        let col = Q3Compute::new(spec).run_columns(crx, nrx, orx);
        producers.join().unwrap();

        assert_eq!(row.rows, col.rows);
        for i in 0..3 {
            assert!(
                col.stream_bytes[i] < row.stream_bytes[i],
                "stream {i}: columnar {} !< row {}",
                col.stream_bytes[i],
                row.stream_bytes[i]
            );
        }
    }

    #[test]
    fn prefiltered_streams_give_same_answer() {
        // Producer-side filtering (what a DPI flow does) must not change
        // the result because compute-side filters are idempotent.
        let db = std::sync::Arc::new(TpccDb::load(TpccConfig::small(), 53).unwrap());
        let spec = Q3Spec::default();
        let expected = exec_q3_local(&db, &spec);

        let (ctx, crx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
        let (ntx, nrx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
        let (otx, orx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
        let producers = {
            let db = db.clone();
            std::thread::spawn(move || {
                stream_scan(
                    &db.customer,
                    FlowSender::new(
                        ctx,
                        Flow::identity().filter(move |t| spec.customer_filter(t)),
                    ),
                    256,
                );
                stream_scan(&db.neworder, FlowSender::new(ntx, Flow::identity()), 256);
                stream_scan(
                    &db.orders,
                    FlowSender::new(otx, Flow::identity().filter(move |t| spec.order_filter(t))),
                    256,
                );
            })
        };
        let result = Q3Compute::new(spec).run(crx, nrx, orx);
        producers.join().unwrap();
        assert_eq!(result.rows, expected);
    }

    #[test]
    fn early_order_arrivals_are_staged_and_probed() {
        // All three streams are fully delivered before the consumer
        // starts, so the first round-robin pass sees order batches while
        // both builds are still open: they must be filtered, staged, and
        // probed when the builds close — same answer as the oracle.
        let db = TpccDb::load(TpccConfig::small(), 55).unwrap();
        let spec = Q3Spec::default();
        let expected = exec_q3_local(&db, &spec);

        let (ctx, crx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
        let (ntx, nrx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
        let (otx, orx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
        stream_scan(&db.orders, FlowSender::new(otx, Flow::identity()), 256);
        stream_scan(&db.customer, FlowSender::new(ctx, Flow::identity()), 256);
        stream_scan(&db.neworder, FlowSender::new(ntx, Flow::identity()), 256);

        let result = Q3Compute::new(spec).run(crx, nrx, orx);
        assert_eq!(result.rows, expected);
    }

    #[test]
    fn early_columnar_order_arrivals_are_staged_and_probed() {
        // Columnar mirror of the staging test: orders fully delivered
        // before the consumer starts.
        let db = std::sync::Arc::new(TpccDb::load(TpccConfig::small(), 58).unwrap());
        let spec = Q3Spec::default();
        let expected = exec_q3_local(&db, &spec);
        let (crx, nrx, orx, producers) = columnar_streams(&db, spec, 256);
        producers.join().unwrap(); // everything buffered before consumption
        let result = Q3Compute::new(spec).run_columns(crx, nrx, orx);
        assert_eq!(result.rows, expected);
    }

    #[test]
    fn collect_table_sees_all_rows() {
        let db = TpccDb::load(TpccConfig::small(), 54).unwrap();
        assert_eq!(collect_table(&db.warehouse).len(), db.warehouse.row_count());
    }

    /// Opens a scan connection over an instant link, spawns the serve
    /// loop for `table`, ships one pushed-down request (the same shape
    /// the beaming layer's remote producer sends), and returns the reply
    /// stream plus the server handle.
    fn remote_stream(
        db: &std::sync::Arc<TpccDb>,
        table: fn(&TpccDb) -> &Table,
        proj: &'static [usize],
        pred: Option<ColPredicate>,
    ) -> (LinkReceiver<Bytes>, std::thread::JoinHandle<usize>) {
        let (requester, responder) = scan_connection(LinkSpec::instant(), 1 << 14);
        let db = db.clone();
        let server = std::thread::spawn(move || serve_scan_stream(table(&db), responder));
        let req = ScanRequest {
            partition: None,
            proj: proj.to_vec(),
            pred,
            batch_rows: 128,
            shared: false,
        };
        let (rx, request_bytes) = request_remote_scan(requester, &req, &Flow::identity());
        assert!(request_bytes > 0, "the cost of asking must be charged");
        (rx, server)
    }

    #[test]
    fn remote_wire_q3_matches_local() {
        // The full remote protocol — encode request, serve at the
        // storage side, decode replies — agrees with local execution.
        let db = std::sync::Arc::new(TpccDb::load(TpccConfig::small(), 63).unwrap());
        let spec = Q3Spec::default();
        let expected = exec_q3_local(&db, &spec);
        assert!(expected > 0, "degenerate scale");
        let (crx, ch) = remote_stream(
            &db,
            |db| &db.customer,
            &Q3Spec::CUSTOMER_KEY_PROJ,
            Some(spec.customer_pred()),
        );
        let (nrx, nh) = remote_stream(&db, |db| &db.neworder, &Q3Spec::NEWORDER_KEY_PROJ, None);
        let (orx, oh) = remote_stream(
            &db,
            |db| &db.orders,
            &Q3Spec::ORDER_KEY_PROJ,
            Some(spec.order_pred()),
        );
        let result = Q3Compute::new(spec).run_wire(crx, nrx, orx);
        assert_eq!(result.rows, expected);
        // Wire accounting is on encoded frames, so every stream paid.
        assert!(result.stream_bytes.iter().all(|&b| b > 0));
        // The serve side reports full pre-filter scan work.
        let scanned: usize = [ch, nh, oh].into_iter().map(|h| h.join().unwrap()).sum();
        let total = db.customer.row_count() + db.neworder.row_count() + db.orders.row_count();
        assert_eq!(scanned, total);
    }

    #[test]
    fn serve_scan_stream_applies_en_route_flows() {
        // A Project stage in the request's flow spec runs at the storage
        // side: replies come back already narrowed.
        let db = std::sync::Arc::new(TpccDb::load(TpccConfig::small(), 64).unwrap());
        let (requester, responder) = scan_connection(LinkSpec::instant(), 1 << 12);
        let server = {
            let db = db.clone();
            std::thread::spawn(move || serve_scan_stream(&db.orders, responder))
        };
        let req = ScanRequest {
            partition: None,
            proj: Q3Spec::ORDER_KEY_PROJ.to_vec(),
            pred: None,
            batch_rows: 0,
            shared: false,
        };
        // Keep only the last key column, en route.
        let flow = Flow::identity().project(vec![3]);
        let (mut rx, _) = request_remote_scan(requester, &req, &flow);
        let mut narrowed = Vec::new();
        while let Some(frame) = rx.recv_blocking() {
            let reply = ScanReply::decode(&frame).unwrap();
            assert_eq!(reply.batch.columns().len(), 1, "flow ran before encoding");
            narrowed.push(reply);
        }
        server.join().unwrap();
        // Same request served locally, projected after the fact, agrees
        // partition by partition.
        let (wide, _) = db.orders.serve_scan(&req).unwrap();
        assert_eq!(narrowed.len(), wide.len());
        for (got, want) in narrowed.iter().zip(&wide) {
            assert_eq!(got.partition, want.partition);
            assert_eq!(got.snapshot, want.snapshot);
            assert_eq!(got.batch, want.batch.project(&[3]));
        }
    }

    #[test]
    fn malformed_frames_get_error_replies_and_are_counted() {
        // A garbled request frame must not silently vanish: the serve
        // loop counts it and answers with an encoded ScanError so the
        // remote caller fails with a reason instead of hanging.
        let db = std::sync::Arc::new(TpccDb::load(TpccConfig::small(), 66).unwrap());
        let (mut requester, responder) = scan_connection(LinkSpec::instant(), 1 << 10);
        let metrics = std::sync::Arc::new(ScanServeMetrics::new());
        let server = {
            let db = db.clone();
            let metrics = metrics.clone();
            std::thread::spawn(move || serve_scan_stream_metered(&db.orders, responder, &metrics))
        };
        requester
            .send_request(Bytes::copy_from_slice(b"\xff garbage frame"))
            .unwrap();
        let mut rx = requester.finish_requests();
        let frame = rx.recv_blocking().expect("an error reply, not silence");
        assert_eq!(frame.chunk().first(), Some(&MSG_SCAN_ERROR));
        let err = anydb_common::ScanError::decode(&frame).unwrap();
        assert!(
            err.reason.contains("undecodable scan request"),
            "unhelpful reason: {}",
            err.reason
        );
        assert!(rx.recv_blocking().is_none());
        assert_eq!(server.join().unwrap(), 0);
        assert_eq!(metrics.dropped_frames.get(), 1);
        assert_eq!(metrics.error_replies.get(), 1);
        assert_eq!(metrics.served.get(), 0);
    }

    #[test]
    fn out_of_bounds_flow_is_rejected_with_a_reason() {
        let db = std::sync::Arc::new(TpccDb::load(TpccConfig::small(), 67).unwrap());
        let (requester, responder) = scan_connection(LinkSpec::instant(), 1 << 10);
        let metrics = std::sync::Arc::new(ScanServeMetrics::new());
        let server = {
            let db = db.clone();
            let metrics = metrics.clone();
            std::thread::spawn(move || serve_scan_stream_metered(&db.orders, responder, &metrics))
        };
        let req = ScanRequest {
            partition: None,
            proj: Q3Spec::ORDER_KEY_PROJ.to_vec(),
            pred: None,
            batch_rows: 0,
            shared: false,
        };
        // Projection position 99 is out of bounds for a 4-column reply.
        let flow = Flow::identity().project(vec![99]);
        let got = request_scan_with_retry(
            || {
                let (requester, _) = scan_connection(LinkSpec::instant(), 4);
                requester
            },
            &req,
            &flow,
            None,
            RetryPolicy::single(Duration::from_secs(5)),
            &mut ScanRetryStats::default(),
        );
        // That retry call used a throwaway connection (storage side
        // dropped): it must fail cleanly, not hang.
        assert!(got.is_err());
        // Now the real connection: the server answers with ScanError.
        let (mut rx, _) = request_remote_scan(requester, &req, &flow);
        let frame = rx.recv_blocking().expect("an error reply");
        let err = anydb_common::ScanError::decode(&frame).unwrap();
        assert!(err.reason.contains("projection out of bounds"));
        drop(rx);
        server.join().unwrap();
        assert_eq!(metrics.dropped_frames.get(), 1);
    }

    #[test]
    fn retry_reissues_until_a_complete_certified_stream() {
        // Attempt 1 rides a link that drops every reply frame; the
        // certificate audit detects the hole and the request is
        // re-issued over a healthy connection.
        let db = std::sync::Arc::new(TpccDb::load(TpccConfig::small(), 68).unwrap());
        let parts = db.orders.partition_count() as usize;
        let req = ScanRequest {
            partition: None,
            proj: Q3Spec::ORDER_KEY_PROJ.to_vec(),
            pred: None,
            batch_rows: 128,
            shared: false,
        };
        let attempt = std::cell::Cell::new(0usize);
        let connect = || {
            let lossy = attempt.get() == 0;
            attempt.set(attempt.get() + 1);
            let (requester, responder) = if lossy {
                scan_connection_faulty(
                    LinkSpec::instant(),
                    1 << 14,
                    FaultSpec::new(3).drop_prob(1.0),
                )
            } else {
                scan_connection(LinkSpec::instant(), 1 << 14)
            };
            let db = db.clone();
            std::thread::spawn(move || serve_scan_stream(&db.orders, responder));
            requester
        };
        let policy = RetryPolicy {
            attempts: 3,
            deadline: Duration::from_secs(10),
            jitter: Duration::from_millis(2),
            seed: 0xA11CE,
        };
        let mut stats = ScanRetryStats::default();
        let replies = request_scan_with_retry(
            connect,
            &req,
            &Flow::identity(),
            Some(parts),
            policy,
            &mut stats,
        )
        .expect("second attempt must complete");
        assert_eq!(stats.attempts, 2);
        assert_eq!(stats.incomplete, 1);
        assert_eq!(stats.timeouts, 0);
        assert_eq!(stats.exhausted, 0);
        // The retried answer is the full certified scan.
        let total: usize = replies.iter().map(|r| r.batch.rows()).sum();
        assert_eq!(total, db.orders.row_count());
    }

    #[test]
    fn retry_times_out_against_a_silent_server() {
        // The storage side receives requests but never answers (and
        // never hangs up): every attempt must expire on its deadline and
        // the call must surface a typed timeout, not block forever.
        let db = std::sync::Arc::new(TpccDb::load(TpccConfig::small(), 69).unwrap());
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut servers = Vec::new();
        let conns = std::cell::RefCell::new(Vec::new());
        let connect = || {
            let (requester, mut responder) = scan_connection(LinkSpec::instant(), 1 << 10);
            let stop = stop.clone();
            conns.borrow_mut().push(std::thread::spawn(move || {
                let _got = responder.recv_request_blocking();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(5));
                }
            }));
            requester
        };
        let req = ScanRequest {
            partition: None,
            proj: Q3Spec::ORDER_KEY_PROJ.to_vec(),
            pred: None,
            batch_rows: 0,
            shared: false,
        };
        let policy = RetryPolicy {
            attempts: 2,
            deadline: Duration::from_millis(50),
            jitter: Duration::from_millis(2),
            seed: 7,
        };
        let mut stats = ScanRetryStats::default();
        let got =
            request_scan_with_retry(connect, &req, &Flow::identity(), None, policy, &mut stats);
        assert_eq!(got, Err(DbError::Timeout("remote scan retries exhausted")));
        // The stats out-parameter survives the error path — this is why
        // it is an out-parameter: the old return-tuple shape lost every
        // counter exactly when a scenario audit needed them most.
        assert_eq!(stats.attempts, 2);
        assert_eq!(stats.timeouts, 2);
        assert_eq!(stats.exhausted, 1);
        assert_eq!(stats.snapshot().retries_exhausted, 1);
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        servers.append(&mut conns.borrow_mut());
        for s in servers {
            s.join().unwrap();
        }
        let _ = db; // table unused: nothing was ever served
    }

    #[test]
    fn retry_jitter_is_deterministic_per_seed_and_bounded() {
        let policy = |seed| RetryPolicy {
            attempts: 5,
            deadline: Duration::from_secs(1),
            jitter: Duration::from_millis(10),
            seed,
        };
        let a: Vec<_> = (1..5).map(|i| policy(1).jitter_before(i)).collect();
        let b: Vec<_> = (1..5).map(|i| policy(1).jitter_before(i)).collect();
        assert_eq!(a, b, "same seed, same jitter sequence");
        let c: Vec<_> = (1..5).map(|i| policy(2).jitter_before(i)).collect();
        assert_ne!(a, c, "different seeds must de-phase");
        for d in a {
            assert!(d < Duration::from_millis(10), "jitter {d:?} out of bound");
        }
        assert_eq!(
            RetryPolicy::single(Duration::from_secs(1)).jitter_before(3),
            Duration::ZERO
        );
    }

    #[test]
    fn shared_identical_members_collapse_to_one_fan_out() {
        // Duplicate members at every position: the dedup must map each
        // back to its group's single fan-out result, in member order.
        let db = TpccDb::load(TpccConfig::small(), 65).unwrap();
        let a = Q3Spec::default();
        let b = Q3Spec {
            entry_date_max: 20091231,
            ..Q3Spec::default()
        };
        let specs = vec![a, b, a, b, a, a];
        let shared = exec_q3_shared(&db, &specs);
        let ra = exec_q3_local(&db, &a);
        let rb = exec_q3_local(&db, &b);
        assert!(
            ra > 0 && rb > 0 && ra != rb,
            "seed keeps the specs distinct"
        );
        assert_eq!(shared, vec![ra, rb, ra, rb, ra, ra]);
    }
}
