//! Streaming OLAP operators for CH-benCHmark Q3.
//!
//! §4 of the paper: OLAP operations are data-intensive, so data streams
//! must bring data to wherever events execute. This module provides both
//! sides of that flow:
//!
//! * [`stream_scan`] — the storage-side producer: scan a table partition
//!   range, batch the tuples, and push them through a [`FlowSender`]
//!   (which may filter/project en route, possibly offloaded à la DPI),
//! * [`Q3Compute`] — the compute-side consumer: builds hash sets from the
//!   customer and new-order streams, then probes the orders stream —
//!   3 filtered scans and 2 joins, as the paper describes,
//! * [`exec_q3_local`] — the fully aggregated (single-AC) execution used
//!   by HTAP OLAP workers.

use std::time::{Duration, Instant};

use anydb_common::backoff::Backoff;
use anydb_common::fxmap::FxHashSet;
use anydb_common::{PartitionId, Tuple};
use anydb_storage::Table;
use anydb_stream::batch::Batch;
use anydb_stream::flow::FlowSender;
use anydb_stream::link::{LinkReceiver, RecvState};
use anydb_workload::chbench::Q3Spec;
use anydb_workload::tpcc::TpccDb;

/// Scans every partition of `table`, batches rows (`batch_rows` each) and
/// pushes them through the flow. Closes the stream by dropping the sender.
/// Returns the number of tuples scanned (pre-flow).
///
/// Each partition ships through the bulk flow path
/// ([`FlowSender::send_split_blocking`]): one clock read and bulk ring
/// crossings per partition's worth of batches, while every batch keeps
/// its own serialized wire transfer so consumers overlap compute with
/// the in-flight remainder.
pub fn stream_scan(table: &Table, mut flow: FlowSender, batch_rows: usize) -> usize {
    let mut scanned = 0usize;
    let mut batch = Vec::with_capacity(batch_rows);
    for p in 0..table.partition_count() {
        let Ok(part) = table.partition(PartitionId(p)) else {
            continue;
        };
        part.scan(|_, row| {
            batch.push(row.tuple().clone());
            scanned += 1;
        });
        if flow
            .send_split_blocking(std::mem::take(&mut batch), batch_rows)
            .is_err()
        {
            return scanned; // consumer gone
        }
    }
    flow.finish();
    scanned
}

/// A join key: `(w, d, id)` for customers, `(w, d, o)` for orders.
type JoinKey = (i64, i64, i64);

/// Compute-side Q3: consumes three data streams and reports phase timings.
pub struct Q3Compute {
    spec: Q3Spec,
}

/// Result of a compute-side Q3 execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Q3ComputeResult {
    /// Qualifying open orders.
    pub rows: usize,
    /// Time to consume both build-side streams and build the hash sets.
    pub build: Duration,
    /// Time to consume and probe the orders stream.
    pub probe: Duration,
}

impl Q3Compute {
    /// New executor for the given spec.
    pub fn new(spec: Q3Spec) -> Self {
        Self { spec }
    }

    /// Runs the pipeline: build from `customers` and `neworders`, probe
    /// `orders`. Filters are applied defensively on the compute side too
    /// (idempotent), so producers may or may not pre-filter (beamed flows
    /// filter at the source / on the NIC).
    ///
    /// All three streams are consumed **round-robin** with
    /// [`LinkReceiver::drain_ready_max`] (one clock read per drained
    /// chunk), so build and probe transfers overlap instead of
    /// serializing: both build sides fill their hash sets concurrently,
    /// and order batches arriving early are filtered immediately and
    /// staged (pre-filter, so staging is small) until the builds close —
    /// a sequential consumer would instead leave two producers blocked on
    /// ring backpressure while it worked through the first stream.
    pub fn run(
        &self,
        mut customers: LinkReceiver<Batch>,
        mut neworders: LinkReceiver<Batch>,
        mut orders: LinkReceiver<Batch>,
    ) -> Q3ComputeResult {
        /// Chunk of one round-robin visit; bounds per-stream bias.
        const CHUNK: usize = 64;

        /// Outcome of one non-blocking visit to a stream.
        enum Pull {
            /// Batches were drained into the scratch buffer.
            Got,
            /// Nothing queued (producer still working).
            Idle,
            /// Next message is in flight until the given instant.
            InFlight(Instant),
            /// Producer gone and everything consumed.
            Done,
        }

        fn pull(rx: &mut LinkReceiver<Batch>, scratch: &mut Vec<Batch>) -> Pull {
            if rx.drain_ready_max(scratch, CHUNK) > 0 {
                return Pull::Got;
            }
            // Nothing deliverable: classify why via a peeking receive.
            match rx.try_recv() {
                Ok(batch) => {
                    // Race: became deliverable between the two calls.
                    scratch.push(batch);
                    Pull::Got
                }
                Err(RecvState::NotReady(at)) => Pull::InFlight(at),
                Err(RecvState::Empty) => Pull::Idle,
                Err(RecvState::Disconnected) => Pull::Done,
            }
        }

        let spec = self.spec;
        let build_start = Instant::now();
        let mut cust_keys: FxHashSet<JoinKey> = FxHashSet::default();
        let mut open_keys: FxHashSet<JoinKey> = FxHashSet::default();
        // Probe keys of order rows that passed the filter before both
        // builds closed — only the two join keys are staged, not the
        // tuples, so early-arrival buffering costs 48 bytes per row.
        let mut staged: Vec<(JoinKey, JoinKey)> = Vec::new();
        let mut rows = 0usize;
        let (mut cust_done, mut no_done, mut ord_done) = (false, false, false);
        let mut build: Option<Duration> = None;
        let mut scratch: Vec<Batch> = Vec::new();
        let mut backoff = Backoff::new();

        while !(cust_done && no_done && ord_done) {
            let mut progressed = false;
            let mut idle_seen = false;
            // Earliest in-flight delivery this round, to sleep precisely.
            let mut wake: Option<Instant> = None;
            let mut note = |p: &Pull, done: &mut bool, progressed: &mut bool| match p {
                Pull::Got => *progressed = true,
                Pull::Done => {
                    *done = true;
                    *progressed = true;
                }
                Pull::InFlight(at) => wake = Some(wake.map_or(*at, |w| w.min(*at))),
                Pull::Idle => idle_seen = true,
            };

            if !cust_done {
                let p = pull(&mut customers, &mut scratch);
                note(&p, &mut cust_done, &mut progressed);
                for batch in scratch.drain(..) {
                    for t in batch.tuples() {
                        if spec.customer_filter(t) {
                            cust_keys.insert(Q3Spec::customer_join_key(t));
                        }
                    }
                }
            }
            if !no_done {
                let p = pull(&mut neworders, &mut scratch);
                note(&p, &mut no_done, &mut progressed);
                for batch in scratch.drain(..) {
                    for t in batch.tuples() {
                        open_keys.insert(Q3Spec::neworder_key(t));
                    }
                }
            }
            if !ord_done {
                let p = pull(&mut orders, &mut scratch);
                note(&p, &mut ord_done, &mut progressed);
                let builds_closed = build.is_some();
                for batch in scratch.drain(..) {
                    for t in batch.tuples() {
                        if !spec.order_filter(t) {
                            continue;
                        }
                        if builds_closed {
                            if cust_keys.contains(&Q3Spec::order_customer_key(t))
                                && open_keys.contains(&Q3Spec::order_key(t))
                            {
                                rows += 1;
                            }
                        } else {
                            staged.push((Q3Spec::order_customer_key(t), Q3Spec::order_key(t)));
                        }
                    }
                }
            }

            if cust_done && no_done && build.is_none() {
                build = Some(build_start.elapsed());
                // Builds closed: probe everything staged, then switch to
                // probing arrivals directly.
                for (cust_key, order_key) in staged.drain(..) {
                    if cust_keys.contains(&cust_key) && open_keys.contains(&order_key) {
                        rows += 1;
                    }
                }
                staged.shrink_to_fit();
            }

            if progressed {
                backoff.reset();
            } else if let (Some(at), false) = (wake, idle_seen) {
                // Every unfinished stream has a message in flight: sleep
                // until the earliest modeled delivery. (With an idle
                // stream in the mix its producer could deliver sooner, so
                // fall through to the short backoff instead.)
                let now = Instant::now();
                if at > now {
                    std::thread::sleep(at - now);
                }
            } else {
                backoff.wait();
            }
        }

        let build = build.unwrap_or_else(|| build_start.elapsed());
        let probe = build_start.elapsed().saturating_sub(build);
        Q3ComputeResult { rows, build, probe }
    }
}

/// Fully local Q3 (one AC acting as the whole pipeline): used by HTAP
/// OLAP workers and as the oracle for the streamed variant.
pub fn exec_q3_local(db: &TpccDb, spec: &Q3Spec) -> usize {
    let mut cust_keys: FxHashSet<(i64, i64, i64)> = FxHashSet::default();
    for p in 0..db.customer.partition_count() {
        if let Ok(part) = db.customer.partition(PartitionId(p)) {
            part.scan(|_, row| {
                if spec.customer_filter(row.tuple()) {
                    cust_keys.insert(Q3Spec::customer_join_key(row.tuple()));
                }
            });
        }
    }
    let mut open_keys: FxHashSet<(i64, i64, i64)> = FxHashSet::default();
    for p in 0..db.neworder.partition_count() {
        if let Ok(part) = db.neworder.partition(PartitionId(p)) {
            part.scan(|_, row| {
                open_keys.insert(Q3Spec::neworder_key(row.tuple()));
            });
        }
    }
    let mut rows = 0usize;
    for p in 0..db.orders.partition_count() {
        if let Ok(part) = db.orders.partition(PartitionId(p)) {
            part.scan(|_, row| {
                let t = row.tuple();
                if spec.order_filter(t)
                    && cust_keys.contains(&Q3Spec::order_customer_key(t))
                    && open_keys.contains(&Q3Spec::order_key(t))
                {
                    rows += 1;
                }
            });
        }
    }
    rows
}

/// Collects all tuples of a table (test/diagnostic helper).
pub fn collect_table(table: &Table) -> Vec<Tuple> {
    let mut out = Vec::with_capacity(table.row_count());
    for p in 0..table.partition_count() {
        if let Ok(part) = table.partition(PartitionId(p)) {
            part.scan(|_, row| out.push(row.tuple().clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use anydb_stream::flow::Flow;
    use anydb_stream::link::{LinkSpec, SimLink};
    use anydb_workload::chbench::reference_q3;
    use anydb_workload::tpcc::TpccConfig;

    #[test]
    fn local_matches_reference() {
        let db = TpccDb::load(TpccConfig::small(), 51).unwrap();
        let spec = Q3Spec::default();
        let expected = reference_q3(
            &spec,
            &collect_table(&db.customer),
            &collect_table(&db.orders),
            &collect_table(&db.neworder),
        );
        assert_eq!(exec_q3_local(&db, &spec), expected);
    }

    #[test]
    fn streamed_matches_local() {
        let db = std::sync::Arc::new(TpccDb::load(TpccConfig::small(), 52).unwrap());
        let spec = Q3Spec::default();
        let expected = exec_q3_local(&db, &spec);

        let (ctx, crx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
        let (ntx, nrx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
        let (otx, orx) = SimLink::channel(LinkSpec::instant(), 1 << 14);

        let producers = {
            let db = db.clone();
            std::thread::spawn(move || {
                stream_scan(&db.customer, FlowSender::new(ctx, Flow::identity()), 256);
                stream_scan(&db.neworder, FlowSender::new(ntx, Flow::identity()), 256);
                stream_scan(&db.orders, FlowSender::new(otx, Flow::identity()), 256);
            })
        };
        let result = Q3Compute::new(spec).run(crx, nrx, orx);
        producers.join().unwrap();
        assert_eq!(result.rows, expected);
        assert!(result.build > Duration::ZERO);
    }

    #[test]
    fn prefiltered_streams_give_same_answer() {
        // Producer-side filtering (what a DPI flow does) must not change
        // the result because compute-side filters are idempotent.
        let db = std::sync::Arc::new(TpccDb::load(TpccConfig::small(), 53).unwrap());
        let spec = Q3Spec::default();
        let expected = exec_q3_local(&db, &spec);

        let (ctx, crx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
        let (ntx, nrx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
        let (otx, orx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
        let producers = {
            let db = db.clone();
            std::thread::spawn(move || {
                stream_scan(
                    &db.customer,
                    FlowSender::new(
                        ctx,
                        Flow::identity().filter(move |t| spec.customer_filter(t)),
                    ),
                    256,
                );
                stream_scan(&db.neworder, FlowSender::new(ntx, Flow::identity()), 256);
                stream_scan(
                    &db.orders,
                    FlowSender::new(otx, Flow::identity().filter(move |t| spec.order_filter(t))),
                    256,
                );
            })
        };
        let result = Q3Compute::new(spec).run(crx, nrx, orx);
        producers.join().unwrap();
        assert_eq!(result.rows, expected);
    }

    #[test]
    fn early_order_arrivals_are_staged_and_probed() {
        // All three streams are fully delivered before the consumer
        // starts, so the first round-robin pass sees order batches while
        // both builds are still open: they must be filtered, staged, and
        // probed when the builds close — same answer as the oracle.
        let db = TpccDb::load(TpccConfig::small(), 55).unwrap();
        let spec = Q3Spec::default();
        let expected = exec_q3_local(&db, &spec);

        let (ctx, crx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
        let (ntx, nrx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
        let (otx, orx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
        stream_scan(&db.orders, FlowSender::new(otx, Flow::identity()), 256);
        stream_scan(&db.customer, FlowSender::new(ctx, Flow::identity()), 256);
        stream_scan(&db.neworder, FlowSender::new(ntx, Flow::identity()), 256);

        let result = Q3Compute::new(spec).run(crx, nrx, orx);
        assert_eq!(result.rows, expected);
    }

    #[test]
    fn collect_table_sees_all_rows() {
        let db = TpccDb::load(TpccConfig::small(), 54).unwrap();
        assert_eq!(collect_table(&db.warehouse).len(), db.warehouse.row_count());
    }
}
