//! Streaming OLAP operators for CH-benCHmark Q3.
//!
//! §4 of the paper: OLAP operations are data-intensive, so data streams
//! must bring data to wherever events execute. This module provides both
//! sides of that flow:
//!
//! * [`stream_scan`] — the storage-side producer: scan a table partition
//!   range, batch the tuples, and push them through a [`FlowSender`]
//!   (which may filter/project en route, possibly offloaded à la DPI),
//! * [`Q3Compute`] — the compute-side consumer: builds hash sets from the
//!   customer and new-order streams, then probes the orders stream —
//!   3 filtered scans and 2 joins, as the paper describes,
//! * [`exec_q3_local`] — the fully aggregated (single-AC) execution used
//!   by HTAP OLAP workers.

use std::time::{Duration, Instant};

use anydb_common::fxmap::FxHashSet;
use anydb_common::{PartitionId, Tuple};
use anydb_storage::Table;
use anydb_stream::batch::Batch;
use anydb_stream::beam::BeamReader;
use anydb_stream::flow::FlowSender;
use anydb_stream::link::LinkReceiver;
use anydb_workload::chbench::Q3Spec;
use anydb_workload::tpcc::TpccDb;

/// Scans every partition of `table`, batches rows (`batch_rows` each) and
/// pushes them through the flow. Closes the stream by dropping the sender.
/// Returns the number of tuples scanned (pre-flow).
///
/// Each partition ships through the bulk flow path
/// ([`FlowSender::send_split_blocking`]): one clock read and bulk ring
/// crossings per partition's worth of batches, while every batch keeps
/// its own serialized wire transfer so consumers overlap compute with
/// the in-flight remainder.
pub fn stream_scan(table: &Table, mut flow: FlowSender, batch_rows: usize) -> usize {
    let mut scanned = 0usize;
    let mut batch = Vec::with_capacity(batch_rows);
    for p in 0..table.partition_count() {
        let Ok(part) = table.partition(PartitionId(p)) else {
            continue;
        };
        part.scan(|_, row| {
            batch.push(row.tuple().clone());
            scanned += 1;
        });
        if flow
            .send_split_blocking(std::mem::take(&mut batch), batch_rows)
            .is_err()
        {
            return scanned; // consumer gone
        }
    }
    flow.finish();
    scanned
}

/// Compute-side Q3: consumes three data streams and reports phase timings.
pub struct Q3Compute {
    spec: Q3Spec,
}

/// Result of a compute-side Q3 execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Q3ComputeResult {
    /// Qualifying open orders.
    pub rows: usize,
    /// Time to consume both build-side streams and build the hash sets.
    pub build: Duration,
    /// Time to consume and probe the orders stream.
    pub probe: Duration,
}

impl Q3Compute {
    /// New executor for the given spec.
    pub fn new(spec: Q3Spec) -> Self {
        Self { spec }
    }

    /// Runs the pipeline: build from `customers` and `neworders`, probe
    /// `orders`. Filters are applied defensively on the compute side too
    /// (idempotent), so producers may or may not pre-filter (beamed flows
    /// filter at the source / on the NIC).
    ///
    /// Streams are consumed through [`BeamReader`]: each refill drains
    /// every delivered batch off the ring with one clock read, falling
    /// back to the waiting receive only when nothing is deliverable.
    pub fn run(
        &self,
        customers: LinkReceiver<Batch>,
        neworders: LinkReceiver<Batch>,
        orders: LinkReceiver<Batch>,
    ) -> Q3ComputeResult {
        fn for_each_batch(rx: LinkReceiver<Batch>, mut f: impl FnMut(&Batch)) {
            let mut reader = BeamReader::new(rx);
            while let Some(batch) = reader.next_batch() {
                f(&batch);
            }
        }

        let build_start = Instant::now();

        // Join-1 build: qualifying customers.
        let mut cust_keys: FxHashSet<(i64, i64, i64)> = FxHashSet::default();
        let spec = self.spec;
        for_each_batch(customers, |batch| {
            for t in batch.tuples() {
                if spec.customer_filter(t) {
                    cust_keys.insert(Q3Spec::customer_join_key(t));
                }
            }
        });
        // Join-2 build: open orders (new-order rows).
        let mut open_keys: FxHashSet<(i64, i64, i64)> = FxHashSet::default();
        for_each_batch(neworders, |batch| {
            for t in batch.tuples() {
                open_keys.insert(Q3Spec::neworder_key(t));
            }
        });
        let build = build_start.elapsed();

        // Probe: orders against both builds.
        let probe_start = Instant::now();
        let mut rows = 0usize;
        for_each_batch(orders, |batch| {
            for t in batch.tuples() {
                if spec.order_filter(t)
                    && cust_keys.contains(&Q3Spec::order_customer_key(t))
                    && open_keys.contains(&Q3Spec::order_key(t))
                {
                    rows += 1;
                }
            }
        });
        let probe = probe_start.elapsed();

        Q3ComputeResult { rows, build, probe }
    }
}

/// Fully local Q3 (one AC acting as the whole pipeline): used by HTAP
/// OLAP workers and as the oracle for the streamed variant.
pub fn exec_q3_local(db: &TpccDb, spec: &Q3Spec) -> usize {
    let mut cust_keys: FxHashSet<(i64, i64, i64)> = FxHashSet::default();
    for p in 0..db.customer.partition_count() {
        if let Ok(part) = db.customer.partition(PartitionId(p)) {
            part.scan(|_, row| {
                if spec.customer_filter(row.tuple()) {
                    cust_keys.insert(Q3Spec::customer_join_key(row.tuple()));
                }
            });
        }
    }
    let mut open_keys: FxHashSet<(i64, i64, i64)> = FxHashSet::default();
    for p in 0..db.neworder.partition_count() {
        if let Ok(part) = db.neworder.partition(PartitionId(p)) {
            part.scan(|_, row| {
                open_keys.insert(Q3Spec::neworder_key(row.tuple()));
            });
        }
    }
    let mut rows = 0usize;
    for p in 0..db.orders.partition_count() {
        if let Ok(part) = db.orders.partition(PartitionId(p)) {
            part.scan(|_, row| {
                let t = row.tuple();
                if spec.order_filter(t)
                    && cust_keys.contains(&Q3Spec::order_customer_key(t))
                    && open_keys.contains(&Q3Spec::order_key(t))
                {
                    rows += 1;
                }
            });
        }
    }
    rows
}

/// Collects all tuples of a table (test/diagnostic helper).
pub fn collect_table(table: &Table) -> Vec<Tuple> {
    let mut out = Vec::with_capacity(table.row_count());
    for p in 0..table.partition_count() {
        if let Ok(part) = table.partition(PartitionId(p)) {
            part.scan(|_, row| out.push(row.tuple().clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use anydb_stream::flow::Flow;
    use anydb_stream::link::{LinkSpec, SimLink};
    use anydb_workload::chbench::reference_q3;
    use anydb_workload::tpcc::TpccConfig;

    #[test]
    fn local_matches_reference() {
        let db = TpccDb::load(TpccConfig::small(), 51).unwrap();
        let spec = Q3Spec::default();
        let expected = reference_q3(
            &spec,
            &collect_table(&db.customer),
            &collect_table(&db.orders),
            &collect_table(&db.neworder),
        );
        assert_eq!(exec_q3_local(&db, &spec), expected);
    }

    #[test]
    fn streamed_matches_local() {
        let db = std::sync::Arc::new(TpccDb::load(TpccConfig::small(), 52).unwrap());
        let spec = Q3Spec::default();
        let expected = exec_q3_local(&db, &spec);

        let (ctx, crx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
        let (ntx, nrx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
        let (otx, orx) = SimLink::channel(LinkSpec::instant(), 1 << 14);

        let producers = {
            let db = db.clone();
            std::thread::spawn(move || {
                stream_scan(&db.customer, FlowSender::new(ctx, Flow::identity()), 256);
                stream_scan(&db.neworder, FlowSender::new(ntx, Flow::identity()), 256);
                stream_scan(&db.orders, FlowSender::new(otx, Flow::identity()), 256);
            })
        };
        let result = Q3Compute::new(spec).run(crx, nrx, orx);
        producers.join().unwrap();
        assert_eq!(result.rows, expected);
        assert!(result.build > Duration::ZERO);
    }

    #[test]
    fn prefiltered_streams_give_same_answer() {
        // Producer-side filtering (what a DPI flow does) must not change
        // the result because compute-side filters are idempotent.
        let db = std::sync::Arc::new(TpccDb::load(TpccConfig::small(), 53).unwrap());
        let spec = Q3Spec::default();
        let expected = exec_q3_local(&db, &spec);

        let (ctx, crx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
        let (ntx, nrx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
        let (otx, orx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
        let producers = {
            let db = db.clone();
            let spec = spec;
            std::thread::spawn(move || {
                stream_scan(
                    &db.customer,
                    FlowSender::new(ctx, Flow::identity().filter(move |t| spec.customer_filter(t))),
                    256,
                );
                stream_scan(&db.neworder, FlowSender::new(ntx, Flow::identity()), 256);
                stream_scan(
                    &db.orders,
                    FlowSender::new(otx, Flow::identity().filter(move |t| spec.order_filter(t))),
                    256,
                );
            })
        };
        let result = Q3Compute::new(spec).run(crx, nrx, orx);
        producers.join().unwrap();
        assert_eq!(result.rows, expected);
    }

    #[test]
    fn collect_table_sees_all_rows() {
        let db = TpccDb::load(TpccConfig::small(), 54).unwrap();
        assert_eq!(collect_table(&db.warehouse).len(), db.warehouse.row_count());
    }
}
