//! # anydb-core — the architecture-less DBMS
//!
//! This crate is the reproduction of the paper's primary contribution: a
//! DBMS composed of a single generic component type, the
//! **AnyComponent (AC)**, instrumented at runtime by an *event stream*
//! (what to do) and a *data stream* (the state needed to do it).
//!
//! * [`event`] — the event algebra of Figure 4: whole transactions,
//!   operation sub-sequences with streaming-CC order stamps, OLAP
//!   operator events, and control events,
//! * [`ops`] — execution of transaction operations against the storage
//!   substrate (no locks — consistency comes from event ordering),
//! * [`component`] — the AC run loop: non-blocking polling of the event
//!   inbox, order-gate admission, parking of early events (§2.1),
//! * [`engine`] — boots a set of ACs and drives OLTP phases under any of
//!   the four execution strategies of §3 (shared-nothing aggregated,
//!   static intra-transaction, precise intra-transaction, streaming CC),
//! * [`olap`] — streaming Q3 operators (filtered scans feeding data
//!   streams, hash joins consuming them),
//! * [`beaming`] — the data-beaming experiment of §4 / Figure 6,
//! * [`replica`] — replicated storage ACs: WAL shipping over modeled
//!   links, sync/async commit acks, lease-based failover, catch-up
//!   (§2.3's fault-tolerance sketch made concrete; DESIGN.md §9),
//! * [`shard`] — sharded multi-node TPC-C: jump-consistent warehouse
//!   placement, cross-shard new-orders under presumed-abort 2PC over
//!   modeled links, coordinator/participant crash recovery, and
//!   replicated per-shard storage (DESIGN.md §10),
//! * [`strategy`] — transaction decomposition per execution strategy, and
//!   the epoch-tagged [`strategy::DispatchPlan`] drivers route through,
//! * [`morph`] — the live-morphing controller: watches load telemetry and
//!   re-installs the dispatch plan at transaction-window boundaries with
//!   dwell/deadband hysteresis (DESIGN.md §11).
//!
//! The engine executes *for real* (threads, queues, storage mutations) and
//! is verified for serializability and TPC-C invariants; the companion
//! `anydb-sim` crate reproduces the paper's timing figures in virtual time
//! (see DESIGN.md §2 on why).

pub mod beaming;
pub mod component;
pub mod engine;
pub mod event;
pub mod morph;
pub mod olap;
pub mod ops;
pub mod replica;
pub mod shard;
pub mod strategy;

pub use engine::{AnyDbEngine, EngineConfig, PhaseResult};
pub use event::{Event, OpDone, OpEnvelope, Q3Member, TxnOp};
pub use morph::{MorphConfig, MorphController, MorphDecision};
pub use replica::{
    drive_inserts, recover_replica, repl_connection, run_follower, run_primary, ClientOp,
    DriveStats, FollowerExit, PrimaryExit, ReplConfig, ReplMetrics, ReplMode, Router,
};
pub use shard::{
    audit_order, drive_orders, peer_pair, shard_mesh, shard_store, CrashPoint, NodeExit,
    OrderVisibility, PeerEnd, ShardConfig, ShardMap, ShardMetrics, ShardNode, ShardOp, ShardRouter,
};
pub use strategy::{DispatchPlan, Strategy};
