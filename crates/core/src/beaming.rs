//! Data beaming (§4, Figure 6).
//!
//! "We propose data beaming, a technique initiating data streams early and
//! pushing data to ACs where events will be executed" — concretely: the
//! moment a query is admitted (before the optimizer has even compiled it),
//! the storage-side ACs start streaming the tables the query is known to
//! touch toward the AC that will execute the operators. By the time
//! compilation finishes, the data is already local and transfer latency is
//! hidden.
//!
//! The experiment reproduces Figure 6's three variants — no beaming
//! (baseline pull), beaming the build sides, beaming build *and* probe —
//! across the two architectures: **aggregated** (compute collocated with
//! storage, shared-memory/NUMA-class links, filtering costs host CPU) and
//! **disaggregated** (compute on another server behind a DPI-class link
//! that *offloads* the filter flows to the NIC). The DPI offload is why
//! disaggregated execution can beat aggregated execution, the paper's
//! §4 punchline.
//!
//! All three data streams run the **columnar path**: scans push the Q3
//! predicates down and ship only the join-key columns as
//! [`ColumnBatch`]es (one wire tag per column), and the consuming AC
//! builds and probes straight from the column slices
//! ([`Q3Compute::run_columns`]). See `crate::olap` for the stream
//! protocol and DESIGN.md §3 for why pushdown lives at the scan.
//!
//! ## Local vs remote dispatch
//!
//! The *architecture* decides how a scan's pushdown reaches storage
//! (DESIGN.md §8). **Aggregated** means compute and storage share a
//! server: the producer thread calls the scan in-process and hands
//! `ColumnBatch`es over a NUMA-class link — no serialization, because
//! none would happen on real hardware either. **Disaggregated** means
//! storage is a *remote* AC: the predicate and projection must actually
//! cross the wire, so each stream opens a scan connection, ships an
//! encoded [`anydb_common::ScanRequest`], and the storage side decodes,
//! scans locally (mirror and shared-scan cache unchanged), and streams
//! back encoded [`anydb_common::ScanReply`] frames that
//! [`Q3Compute::run_wire`] decodes and joins.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use anydb_common::{ColPredicate, ColumnBatch, ScanRequest};
use anydb_storage::Table;
use anydb_stream::flow::{ColFlowSender, Flow};
use anydb_stream::link::{LinkReceiver, LinkSpec, SimLink};
use anydb_stream::remote::scan_connection;
use anydb_workload::chbench::Q3Spec;
use anydb_workload::tpcc::TpccDb;
use bytes::Bytes;

use crate::olap::{
    request_remote_scan, serve_scan_stream, stream_scan_columns, Q3Compute, Q3ComputeResult,
};

/// Which streams are beamed ahead of query compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BeamVariant {
    /// No beaming: all streams start after compilation (passive pull).
    Baseline,
    /// Build sides (customer, new-order) beam at admission.
    BeamBuild,
    /// Build and probe (orders) sides beam at admission.
    BeamBuildProbe,
}

impl BeamVariant {
    /// Figure legend label.
    pub fn label(self) -> &'static str {
        match self {
            BeamVariant::Baseline => "Baseline",
            BeamVariant::BeamBuild => "Beam Build",
            BeamVariant::BeamBuildProbe => "Beam Build & Probe",
        }
    }
}

/// Where the consuming AC sits relative to storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchMode {
    /// Same server: NUMA-class links, filter flows run on host cores.
    Aggregated,
    /// Remote server: DPI-class links, filter flows offloaded to the NIC.
    Disaggregated,
}

impl ArchMode {
    /// Figure legend label.
    pub fn label(self) -> &'static str {
        match self {
            ArchMode::Aggregated => "Aggregated",
            ArchMode::Disaggregated => "Disaggregated",
        }
    }
}

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct BeamingConfig {
    /// Beaming variant.
    pub variant: BeamVariant,
    /// Architecture (link class + offload).
    pub arch: ArchMode,
    /// Modeled query-compilation time (the x-axis of Figure 6; the paper
    /// marks the commercial optimizer "DB-C" at 30 ms).
    pub compile_time: Duration,
    /// Link used by all three data streams.
    pub link: LinkSpec,
    /// Host-side flow processing rate (bytes/s) charged when the link
    /// does not offload; ignored for offload links.
    pub host_filter_bytes_per_sec: f64,
    /// Rows per stream batch.
    pub batch_rows: usize,
}

impl BeamingConfig {
    /// Paper-shaped defaults for a variant/arch/compile-time point.
    ///
    /// Bandwidths are scaled so that, with the Figure-6 database scale
    /// used by the bench harness, the baseline probe transfer sits around
    /// 30 ms — matching the paper's axis, not its hardware. (Re-scaled
    /// down ~2.5× when the streams went columnar: the probe stream now
    /// ships four packed key columns instead of filtered full rows, so
    /// the same axis point needs a proportionally slower modeled link.)
    pub fn paper_default(variant: BeamVariant, arch: ArchMode, compile_time: Duration) -> Self {
        let link = match arch {
            ArchMode::Aggregated => LinkSpec {
                latency: Duration::from_micros(1),
                bytes_per_sec: 12e6,
                offload: false,
            },
            ArchMode::Disaggregated => LinkSpec {
                latency: Duration::from_micros(20),
                bytes_per_sec: 14e6,
                offload: true,
            },
        };
        Self {
            variant,
            arch,
            compile_time,
            link,
            host_filter_bytes_per_sec: 300e6,
            batch_rows: 512,
        }
    }
}

/// Result of one Figure-6 run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeamingResult {
    /// End-to-end query time including compilation (Figure 6 a).
    pub total: Duration,
    /// Build-phase time after compilation (Figure 6 b).
    pub build: Duration,
    /// Probe-phase time after the build (Figure 6 c).
    pub probe: Duration,
    /// Qualifying open orders found.
    pub rows: usize,
}

/// Spawns a storage-side producer streaming `table` as columnar key
/// batches: the `proj`ection and `pred`icate are pushed down to the scan
/// (the stream ships only the join-key columns, in the one-tag-per-column
/// wire encoding). On an offload link the pushdown work is the NIC's —
/// free for the host; on a non-offload link the producer pays the
/// host-side processing cost (sleep proportional to pre-filter input
/// bytes, exactly as the row path charged its flows).
fn spawn_producer(
    db: &Arc<TpccDb>,
    table: fn(&TpccDb) -> &Table,
    proj: &'static [usize],
    pred: Option<ColPredicate>,
    cfg: &BeamingConfig,
    ring: usize,
) -> (LinkReceiver<ColumnBatch>, JoinHandle<usize>) {
    let link = cfg.link;
    let host_rate = cfg.host_filter_bytes_per_sec;
    let batch_rows = cfg.batch_rows;
    let (tx, rx) = SimLink::channel(link, ring);
    let db = db.clone();
    let handle = std::thread::spawn(move || {
        let sender = ColFlowSender::new(tx, Flow::identity());
        if link.offload {
            stream_scan_columns(table(&db), sender, batch_rows, proj, pred.as_ref())
        } else {
            // Charge host CPU for the pushdown: the scan thread throttles
            // to the host filter rate (it is the component doing the
            // work).
            stream_scan_columns_throttled(
                table(&db),
                sender,
                batch_rows,
                proj,
                pred.as_ref(),
                host_rate,
            )
        }
    });
    (rx, handle)
}

/// Like [`stream_scan_columns`] but throttled to `bytes_per_sec` of
/// *input* (pre-filter, full-row) data, modeling a host core applying the
/// pushdown. The throttle accumulates debt and sleeps in ≥1 ms quanta:
/// per-batch micro-sleeps oversleep massively on stock Linux timers and
/// would swamp the model with noise.
fn stream_scan_columns_throttled(
    table: &Table,
    mut flow: ColFlowSender,
    batch_rows: usize,
    proj: &[usize],
    pred: Option<&ColPredicate>,
    bytes_per_sec: f64,
) -> usize {
    use anydb_common::PartitionId;
    let mut scanned = 0usize;
    let mut debt = Duration::ZERO;
    for p in 0..table.partition_count() {
        let Ok(part) = table.partition(PartitionId(p)) else {
            continue;
        };
        // Materialize with pushdown while metering the input the host
        // "read" to do it: every scanned row's full wire size, matching
        // what the row path charged for its flow stages.
        let mut out = table.column_batch(proj);
        let mut input_bytes = 0usize;
        part.scan(|_, row| {
            let t = row.tuple();
            input_bytes += t.wire_size();
            scanned += 1;
            if pred.is_none_or(|p| p.matches(t.values())) {
                out.push_projected(t.values(), proj)
                    .expect("scan rows match the table schema");
            }
        });
        debt += Duration::from_secs_f64(input_bytes as f64 / bytes_per_sec);
        if debt >= Duration::from_millis(1) {
            std::thread::sleep(debt);
            debt = Duration::ZERO;
        }
        if flow.send_split_blocking(out, batch_rows).is_err() {
            return scanned;
        }
    }
    if !debt.is_zero() {
        std::thread::sleep(debt);
    }
    flow.finish();
    scanned
}

/// Spawns a **remote** storage AC serving `table` over the scan wire
/// protocol, and opens the pushed-down scan against it: the projection
/// and predicate travel as an encoded [`ScanRequest`] frame, the server
/// thread decodes and scans locally ([`serve_scan_stream`]), and only
/// surviving encoded columns come back. The en-route [`Flow`] slot of
/// the frame is the identity — Q3's filtering is already in the pushed
/// predicate, so there is nothing left for the NIC to do per batch.
///
/// No host-side throttle: the scan runs on the remote storage AC's
/// cores, which this model does not charge to the querying side (on the
/// paper's disaggregated links the pushdown is NIC-offloaded anyway).
fn spawn_remote_producer(
    db: &Arc<TpccDb>,
    table: fn(&TpccDb) -> &Table,
    proj: &'static [usize],
    pred: Option<ColPredicate>,
    cfg: &BeamingConfig,
    ring: usize,
) -> (LinkReceiver<Bytes>, JoinHandle<usize>) {
    let (requester, responder) = scan_connection(cfg.link, ring);
    let db = db.clone();
    let handle = std::thread::spawn(move || serve_scan_stream(table(&db), responder));
    let req = ScanRequest {
        partition: None,
        proj: proj.to_vec(),
        pred,
        batch_rows: cfg.batch_rows,
        // Beaming runs are private scans: every Figure-6 point meters
        // its own full transfer, never a cached image.
        shared: false,
    };
    let (rx, _request_bytes) = request_remote_scan(requester, &req, &Flow::identity());
    (rx, handle)
}

/// Runs one Figure-6 data point: admits Q3, beams per `cfg.variant`,
/// "compiles" for `cfg.compile_time`, executes, and reports timings.
///
/// Dispatch rule (DESIGN.md §8): collocated storage (aggregated) hands
/// batches over in-process; remote storage (disaggregated) goes through
/// the scan wire protocol.
pub fn run_q3(db: &Arc<TpccDb>, spec: Q3Spec, cfg: &BeamingConfig) -> BeamingResult {
    match cfg.arch {
        ArchMode::Aggregated => run_q3_streams(db, spec, cfg, spawn_producer, |spec, c, n, o| {
            Q3Compute::new(spec).run_columns(c, n, o)
        }),
        ArchMode::Disaggregated => {
            run_q3_streams(db, spec, cfg, spawn_remote_producer, |spec, c, n, o| {
                Q3Compute::new(spec).run_wire(c, n, o)
            })
        }
    }
}

/// How one Q3 producer stream comes to exist: table selector, key
/// projection, pushdown predicate, config, ring size → a receiver of
/// stream payloads plus the producer's rows-scanned handle. The two
/// implementations are [`spawn_producer`] (in-process batches) and
/// [`spawn_remote_producer`] (encoded wire frames).
type SpawnFn<T> = fn(
    &Arc<TpccDb>,
    fn(&TpccDb) -> &Table,
    &'static [usize],
    Option<ColPredicate>,
    &BeamingConfig,
    usize,
) -> (LinkReceiver<T>, JoinHandle<usize>);

/// The variant/compile-window orchestration, generic over how producers
/// are spawned and consumed (in-process `ColumnBatch` hand-off vs
/// encoded wire frames — same early/late beaming logic either way).
fn run_q3_streams<T: Send + 'static>(
    db: &Arc<TpccDb>,
    spec: Q3Spec,
    cfg: &BeamingConfig,
    spawn: SpawnFn<T>,
    compute: fn(Q3Spec, LinkReceiver<T>, LinkReceiver<T>, LinkReceiver<T>) -> Q3ComputeResult,
) -> BeamingResult {
    let ring = 1 << 13;
    let t0 = Instant::now();

    // Pushdown predicates: filters execute at the scan (on the NIC when
    // offloaded), so only the key projections ever cross the link — the
    // columnar stream protocol of `crate::olap`.
    let cust_pred = spec.customer_pred();
    let ord_pred = spec.order_pred();

    let beam_build = cfg.variant != BeamVariant::Baseline;
    let beam_probe = cfg.variant == BeamVariant::BeamBuildProbe;

    // Streams beamed at admission start now…
    let mut early: Vec<JoinHandle<usize>> = Vec::new();
    let mut cust_rx = None;
    let mut no_rx = None;
    let mut ord_rx = None;
    if beam_build {
        let (rx, h) = spawn(
            db,
            |db| &db.customer,
            &Q3Spec::CUSTOMER_KEY_PROJ,
            Some(cust_pred.clone()),
            cfg,
            ring,
        );
        cust_rx = Some(rx);
        early.push(h);
        let (rx, h) = spawn(
            db,
            |db| &db.neworder,
            &Q3Spec::NEWORDER_KEY_PROJ,
            None,
            cfg,
            ring,
        );
        no_rx = Some(rx);
        early.push(h);
    }
    if beam_probe {
        let (rx, h) = spawn(
            db,
            |db| &db.orders,
            &Q3Spec::ORDER_KEY_PROJ,
            Some(ord_pred.clone()),
            cfg,
            ring,
        );
        ord_rx = Some(rx);
        early.push(h);
    }

    // …while the QO compiles the query.
    std::thread::sleep(cfg.compile_time);

    // Compilation done: late (non-beamed) streams start now — this is the
    // "passively pull data when needed" baseline behavior.
    let mut late: Vec<JoinHandle<usize>> = Vec::new();
    if cust_rx.is_none() {
        let (rx, h) = spawn(
            db,
            |db| &db.customer,
            &Q3Spec::CUSTOMER_KEY_PROJ,
            Some(cust_pred),
            cfg,
            ring,
        );
        cust_rx = Some(rx);
        late.push(h);
        let (rx, h) = spawn(
            db,
            |db| &db.neworder,
            &Q3Spec::NEWORDER_KEY_PROJ,
            None,
            cfg,
            ring,
        );
        no_rx = Some(rx);
        late.push(h);
    }
    if ord_rx.is_none() {
        let (rx, h) = spawn(
            db,
            |db| &db.orders,
            &Q3Spec::ORDER_KEY_PROJ,
            Some(ord_pred),
            cfg,
            ring,
        );
        ord_rx = Some(rx);
        late.push(h);
    }

    // The consuming AC executes the two joins, vectorized over the key
    // columns.
    let result = compute(
        spec,
        cust_rx.expect("customer stream"),
        no_rx.expect("neworder stream"),
        ord_rx.expect("orders stream"),
    );

    for h in early.into_iter().chain(late) {
        let _ = h.join();
    }

    BeamingResult {
        total: t0.elapsed(),
        build: result.build,
        probe: result.probe,
        rows: result.rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::olap::exec_q3_local;
    use anydb_workload::tpcc::TpccConfig;

    fn db() -> Arc<TpccDb> {
        Arc::new(TpccDb::load(TpccConfig::small(), 71).unwrap())
    }

    fn fast_cfg(variant: BeamVariant, compile_ms: u64) -> BeamingConfig {
        BeamingConfig {
            variant,
            arch: ArchMode::Disaggregated,
            compile_time: Duration::from_millis(compile_ms),
            link: LinkSpec::instant(),
            host_filter_bytes_per_sec: f64::INFINITY,
            batch_rows: 128,
        }
    }

    #[test]
    fn all_variants_agree_on_the_answer() {
        let db = db();
        let spec = Q3Spec::default();
        let expected = exec_q3_local(&db, &spec);
        for variant in [
            BeamVariant::Baseline,
            BeamVariant::BeamBuild,
            BeamVariant::BeamBuildProbe,
        ] {
            let r = run_q3(&db, spec, &fast_cfg(variant, 0));
            assert_eq!(r.rows, expected, "variant {variant:?}");
        }
    }

    #[test]
    fn total_includes_compile_time() {
        let db = db();
        let r = run_q3(&db, Q3Spec::default(), &fast_cfg(BeamVariant::Baseline, 20));
        assert!(r.total >= Duration::from_millis(20));
    }

    #[test]
    fn beaming_hides_transfer_latency() {
        // With a slow link and a compile window longer than the transfer,
        // the beamed variant's post-compile work is much cheaper than the
        // baseline's. The link must be slow enough that transfer time
        // (tens of ms) dominates scheduler noise on a loaded 2-core host.
        let db = db();
        let slow_link = LinkSpec {
            latency: Duration::from_micros(10),
            bytes_per_sec: 1e6,
            offload: true,
        };
        let mk = |variant| BeamingConfig {
            variant,
            arch: ArchMode::Disaggregated,
            compile_time: Duration::from_millis(60),
            link: slow_link,
            host_filter_bytes_per_sec: f64::INFINITY,
            batch_rows: 128,
        };
        let spec = Q3Spec::default();
        let baseline = run_q3(&db, spec, &mk(BeamVariant::Baseline));
        let beamed = run_q3(&db, spec, &mk(BeamVariant::BeamBuildProbe));
        // Post-compile work: baseline pays the full transfer (tens of ms),
        // the beamed variant only the compute floor.
        assert!(
            (beamed.build + beamed.probe).as_secs_f64()
                < (baseline.build + baseline.probe).as_secs_f64() * 0.7,
            "beamed {:?}+{:?} vs baseline {:?}+{:?}",
            beamed.build,
            beamed.probe,
            baseline.build,
            baseline.probe
        );
        // Totals follow from the work comparison (both pay the same
        // compile window); not asserted separately because total time is
        // the one quantity a loaded CI host can distort past any margin.
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(BeamVariant::BeamBuild.label(), "Beam Build");
        assert_eq!(ArchMode::Disaggregated.label(), "Disaggregated");
    }
}
