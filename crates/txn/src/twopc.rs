//! Pure two-phase-commit coordinator state: vote collection and
//! retransmission timers, with no I/O so every transition is unit
//! testable. The shard node loop (`anydb_core::shard`) drives these
//! against real links; the protocol itself is documented in DESIGN.md
//! §10 and the wire messages live in `anydb_common::commit`.

use std::time::{Duration, Instant};

use anydb_common::fxmap::FxHashSet;

/// Vote collection for one distributed transaction at its coordinator.
///
/// Votes are idempotent (a retransmitted Prepare provokes a duplicate
/// Vote, which must not double-count) and a single no-vote is final:
/// once any participant refuses, the outcome is abort no matter what
/// arrives later.
#[derive(Debug, Clone)]
pub struct CoordVotes {
    participants: Vec<u32>,
    yes: FxHashSet<u32>,
    refused: bool,
}

impl CoordVotes {
    /// Starts collecting votes from `participants` (remote nodes only —
    /// the coordinator's own staging is its implicit yes).
    pub fn new(participants: Vec<u32>) -> Self {
        Self {
            participants,
            yes: FxHashSet::default(),
            refused: false,
        }
    }

    /// The remote participants of this transaction.
    pub fn participants(&self) -> &[u32] {
        &self.participants
    }

    /// Records a vote from `node`. Unknown nodes and duplicates are
    /// absorbed silently (retransmission makes duplicates routine).
    pub fn record(&mut self, node: u32, yes: bool) {
        if !self.participants.contains(&node) {
            return;
        }
        if yes {
            self.yes.insert(node);
        } else {
            self.refused = true;
        }
    }

    /// Nodes that have not voted yes yet (the Prepare retransmission
    /// set while the outcome is open).
    pub fn unvoted(&self) -> Vec<u32> {
        self.participants
            .iter()
            .copied()
            .filter(|n| !self.yes.contains(n))
            .collect()
    }

    /// The decision, if one is forced: `Some(false)` as soon as any
    /// participant refuses, `Some(true)` once every participant voted
    /// yes, `None` while votes are still outstanding.
    pub fn decision(&self) -> Option<bool> {
        if self.refused {
            Some(false)
        } else if self.yes.len() == self.participants.len() {
            Some(true)
        } else {
            None
        }
    }
}

/// A retransmission timer: fires at most once per `every`, starting one
/// period after creation (the original send covers the first period).
#[derive(Debug, Clone)]
pub struct Retransmit {
    every: Duration,
    last: Instant,
}

impl Retransmit {
    /// A timer whose first due time is `now + every`.
    pub fn new(every: Duration, now: Instant) -> Self {
        Self { every, last: now }
    }

    /// True (and re-arms) if a full period elapsed since the last fire.
    /// Callers re-send whatever is still outstanding when this trips.
    pub fn due(&mut self, now: Instant) -> bool {
        if now.duration_since(self.last) >= self.every {
            self.last = now;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanimous_yes_commits() {
        let mut v = CoordVotes::new(vec![1, 2]);
        assert_eq!(v.decision(), None);
        v.record(1, true);
        assert_eq!(v.decision(), None);
        assert_eq!(v.unvoted(), vec![2]);
        v.record(2, true);
        assert_eq!(v.decision(), Some(true));
        assert!(v.unvoted().is_empty());
    }

    #[test]
    fn a_single_no_is_final() {
        let mut v = CoordVotes::new(vec![1, 2, 3]);
        v.record(2, false);
        assert_eq!(v.decision(), Some(false));
        // Later yes votes cannot resurrect the transaction.
        v.record(1, true);
        v.record(3, true);
        assert_eq!(v.decision(), Some(false));
    }

    #[test]
    fn duplicate_and_stray_votes_are_absorbed() {
        let mut v = CoordVotes::new(vec![1]);
        v.record(1, true);
        v.record(1, true); // retransmitted Prepare → duplicate Vote
        v.record(9, false); // not a participant
        assert_eq!(v.decision(), Some(true));
    }

    #[test]
    fn no_participants_is_an_immediate_commit() {
        // A purely local transaction that went through the 2PC path
        // anyway has nothing to wait for.
        assert_eq!(CoordVotes::new(Vec::new()).decision(), Some(true));
    }

    #[test]
    fn retransmit_fires_once_per_period() {
        let t0 = Instant::now();
        let mut r = Retransmit::new(Duration::from_millis(10), t0);
        assert!(!r.due(t0));
        assert!(!r.due(t0 + Duration::from_millis(9)));
        assert!(r.due(t0 + Duration::from_millis(10)));
        // Re-armed: not due again until another full period passes.
        assert!(!r.due(t0 + Duration::from_millis(19)));
        assert!(r.due(t0 + Duration::from_millis(25)));
    }
}
