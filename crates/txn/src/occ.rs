//! Optimistic concurrency control: read/write-set validation.
//!
//! §3.3 of the paper notes that OCC validation "joins the read/write set
//! of a transaction which is one data stream with the current state of the
//! database which is another data stream" — i.e. it is already stream-
//! shaped. This module provides the classic serial-validation OCC that the
//! streaming variant maps onto: reads record the version they observed;
//! validation re-checks versions inside a critical section and the caller
//! applies its writes before leaving it.

use anydb_common::{DbError, DbResult, Rid, TxnId};
use parking_lot::Mutex;

/// A transaction's read/write footprint.
#[derive(Debug, Default, Clone)]
pub struct Footprint {
    /// `(record, version observed)` for every read.
    pub reads: Vec<(Rid, u64)>,
    /// Records the transaction intends to overwrite.
    pub writes: Vec<Rid>,
}

impl Footprint {
    /// Empty footprint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a read.
    pub fn read(&mut self, rid: Rid, version: u64) {
        self.reads.push((rid, version));
    }

    /// Records a write intent.
    pub fn write(&mut self, rid: Rid) {
        self.writes.push(rid);
    }

    /// Clears for reuse (workhorse allocation pattern).
    pub fn clear(&mut self) {
        self.reads.clear();
        self.writes.clear();
    }
}

/// Serial-validation OCC manager.
pub struct OccManager {
    validation: Mutex<()>,
}

impl Default for OccManager {
    fn default() -> Self {
        Self::new()
    }
}

impl OccManager {
    /// New manager.
    pub fn new() -> Self {
        Self {
            validation: Mutex::new(()),
        }
    }

    /// Validates `footprint` and, if valid, runs `apply` (the write phase)
    /// before any other transaction can validate. `current_version`
    /// returns the live version of a record.
    ///
    /// Returns `ValidationFailed` if any read version changed.
    pub fn validate_and_commit<A>(
        &self,
        txn: TxnId,
        footprint: &Footprint,
        current_version: impl Fn(Rid) -> Option<u64>,
        apply: impl FnOnce() -> A,
    ) -> DbResult<A> {
        let _guard = self.validation.lock();
        for &(rid, seen) in &footprint.reads {
            match current_version(rid) {
                Some(now) if now == seen => {}
                _ => return Err(DbError::ValidationFailed(txn)),
            }
        }
        Ok(apply())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anydb_common::{PartitionId, TableId};
    use std::collections::HashMap;
    use std::sync::Arc;

    fn rid(slot: u32) -> Rid {
        Rid::new(TableId(0), PartitionId(0), slot)
    }

    #[test]
    fn clean_validation_commits() {
        let occ = OccManager::new();
        let mut fp = Footprint::new();
        fp.read(rid(0), 3);
        let versions: HashMap<Rid, u64> = [(rid(0), 3u64)].into();
        let out = occ
            .validate_and_commit(TxnId(1), &fp, |r| versions.get(&r).copied(), || 42)
            .unwrap();
        assert_eq!(out, 42);
    }

    #[test]
    fn stale_read_fails_validation() {
        let occ = OccManager::new();
        let mut fp = Footprint::new();
        fp.read(rid(0), 3);
        let versions: HashMap<Rid, u64> = [(rid(0), 4u64)].into();
        assert_eq!(
            occ.validate_and_commit(TxnId(7), &fp, |r| versions.get(&r).copied(), || ()),
            Err(DbError::ValidationFailed(TxnId(7)))
        );
    }

    #[test]
    fn missing_record_fails_validation() {
        let occ = OccManager::new();
        let mut fp = Footprint::new();
        fp.read(rid(9), 0);
        assert!(occ
            .validate_and_commit(TxnId(1), &fp, |_| None, || ())
            .is_err());
    }

    #[test]
    fn footprint_clear_reuses_capacity() {
        let mut fp = Footprint::new();
        fp.read(rid(0), 1);
        fp.write(rid(1));
        fp.clear();
        assert!(fp.reads.is_empty());
        assert!(fp.writes.is_empty());
    }

    #[test]
    fn concurrent_counter_increments_never_lost() {
        // Classic OCC loop: read version+value, validate, write. Lost
        // updates would show up as a final count < attempts.
        let occ = Arc::new(OccManager::new());
        let cell = Arc::new(parking_lot::RwLock::new((0u64, 0u64))); // (version, value)
        let mut handles = Vec::new();
        for _ in 0..4 {
            let occ = occ.clone();
            let cell = cell.clone();
            handles.push(std::thread::spawn(move || {
                let mut committed = 0;
                while committed < 500 {
                    let (ver, val) = *cell.read();
                    let mut fp = Footprint::new();
                    fp.read(rid(0), ver);
                    fp.write(rid(0));
                    let res = occ.validate_and_commit(
                        TxnId(1),
                        &fp,
                        |_| Some(cell.read().0),
                        || {
                            let mut w = cell.write();
                            *w = (ver + 1, val + 1);
                        },
                    );
                    if res.is_ok() {
                        committed += 1;
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cell.read().1, 2000);
    }
}
