//! # anydb-txn
//!
//! Concurrency-control substrate shared by the static baseline
//! (`anydb-dbx1000`) and the architecture-less core (`anydb-core`):
//!
//! * [`lock`] — a sharded record lock manager with shared/exclusive modes
//!   and the classic no-wait and wait-die policies (what DBx1000 uses),
//! * [`occ`] — optimistic validation over read/write sets,
//! * [`sequencer`] — order stamps and admission gates for the paper's
//!   *streaming concurrency control* (§3.3): conflicting transactions are
//!   serialized by consistent event order, not by blocking synchronization,
//! * [`history`] — operation histories and a conflict-graph
//!   serializability checker used throughout the test suites,
//! * [`twopc`] — pure two-phase-commit coordinator state (vote
//!   collection, retransmission timers) driven by the shard node loop,
//! * [`ts`] — timestamp/transaction-id oracles.

pub mod history;
pub mod lock;
pub mod occ;
pub mod sequencer;
pub mod ts;
pub mod twopc;

pub use history::{History, Op};
pub use lock::{LockManager, LockMode, LockPolicy};
pub use occ::OccManager;
pub use sequencer::{OrderGate, SeqNo, Sequencer};
pub use ts::TxnIdGen;
pub use twopc::{CoordVotes, Retransmit};
