//! Operation histories and conflict-graph serializability checking.
//!
//! The storage layer gives every row a version counter; executors under
//! test record which version each read observed and which version each
//! write produced. From that, the exact conflict graph is reconstructed:
//!
//! * `ww`: the writer of version `v` precedes the writer of `v+1`,
//! * `wr`: the writer of version `v` precedes every reader of `v`,
//! * `rw`: a reader of version `v` precedes the writer of `v+1`.
//!
//! A history is (conflict-)serializable iff the graph is acyclic. Every CC
//! scheme in the repository — wait-die 2PL, OCC, and the paper's streaming
//! CC — is property-tested against this checker.

use anydb_common::fxmap::FxHashMap;
use anydb_common::{Rid, TxnId};
use parking_lot::Mutex;

/// One recorded operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// A read that observed `version`.
    Read {
        /// Record read.
        rid: Rid,
        /// Version observed (0 = initial load).
        version: u64,
    },
    /// A write that produced `version` (always ≥ 1).
    Write {
        /// Record written.
        rid: Rid,
        /// Version created.
        version: u64,
    },
}

/// A thread-safe operation history.
#[derive(Debug, Default)]
pub struct History {
    ops: Mutex<Vec<(TxnId, Op)>>,
}

/// Why a history failed the check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two distinct transactions produced the same version of one record:
    /// a lost update / racing write.
    ConflictingWrites {
        /// The record.
        rid: Rid,
        /// The duplicated version.
        version: u64,
    },
    /// The conflict graph has a cycle through these transactions.
    Cycle(Vec<TxnId>),
}

impl History {
    /// Empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a read.
    pub fn record_read(&self, txn: TxnId, rid: Rid, version: u64) {
        self.ops.lock().push((txn, Op::Read { rid, version }));
    }

    /// Records a write.
    pub fn record_write(&self, txn: TxnId, rid: Rid, version: u64) {
        self.ops.lock().push((txn, Op::Write { rid, version }));
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.lock().len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Convenience wrapper over [`History::check`].
    pub fn is_serializable(&self) -> bool {
        self.check().is_ok()
    }

    /// Checks conflict-serializability; returns the first violation found.
    pub fn check(&self) -> Result<(), Violation> {
        let ops = self.ops.lock().clone();

        // writer_of[(rid, version)] -> txn; readers_of[(rid, version)] -> txns
        let mut writer_of: FxHashMap<(u128, u64), TxnId> = FxHashMap::default();
        let mut readers_of: FxHashMap<(u128, u64), Vec<TxnId>> = FxHashMap::default();
        let mut max_version: FxHashMap<u128, u64> = FxHashMap::default();

        for (txn, op) in &ops {
            match op {
                Op::Write { rid, version } => {
                    let key = (rid.pack(), *version);
                    if let Some(prev) = writer_of.insert(key, *txn) {
                        if prev != *txn {
                            return Err(Violation::ConflictingWrites {
                                rid: *rid,
                                version: *version,
                            });
                        }
                    }
                    let m = max_version.entry(rid.pack()).or_insert(0);
                    *m = (*m).max(*version);
                }
                Op::Read { rid, version } => {
                    readers_of
                        .entry((rid.pack(), *version))
                        .or_default()
                        .push(*txn);
                }
            }
        }

        // Build adjacency.
        let mut edges: FxHashMap<TxnId, Vec<TxnId>> = FxHashMap::default();
        let mut add_edge = |from: TxnId, to: TxnId| {
            if from != to {
                edges.entry(from).or_default().push(to);
            }
        };

        for (&(rid, version), &writer) in &writer_of {
            // ww edge to the next version's writer.
            if let Some(&next_writer) = writer_of.get(&(rid, version + 1)) {
                add_edge(writer, next_writer);
            }
            // wr edges to readers of this version.
            if let Some(readers) = readers_of.get(&(rid, version)) {
                for &r in readers {
                    add_edge(writer, r);
                }
            }
        }
        for (&(rid, version), readers) in &readers_of {
            // rw anti-dependency to the overwriter.
            if let Some(&next_writer) = writer_of.get(&(rid, version + 1)) {
                for &r in readers {
                    add_edge(r, next_writer);
                }
            }
        }

        // Cycle detection: iterative three-color DFS.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut colors: FxHashMap<TxnId, Color> = FxHashMap::default();
        let nodes: Vec<TxnId> = edges.keys().copied().collect();
        for &start in &nodes {
            if colors.get(&start).copied().unwrap_or(Color::White) != Color::White {
                continue;
            }
            // Stack of (node, next child index).
            let mut stack: Vec<(TxnId, usize)> = vec![(start, 0)];
            colors.insert(start, Color::Gray);
            while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
                let children = edges.get(&node).map(Vec::as_slice).unwrap_or(&[]);
                if *idx < children.len() {
                    let child = children[*idx];
                    *idx += 1;
                    match colors.get(&child).copied().unwrap_or(Color::White) {
                        Color::White => {
                            colors.insert(child, Color::Gray);
                            stack.push((child, 0));
                        }
                        Color::Gray => {
                            // Found a cycle: report the gray path suffix.
                            let mut cycle: Vec<TxnId> = stack
                                .iter()
                                .map(|(t, _)| *t)
                                .skip_while(|t| *t != child)
                                .collect();
                            cycle.push(child);
                            return Err(Violation::Cycle(cycle));
                        }
                        Color::Black => {}
                    }
                } else {
                    colors.insert(node, Color::Black);
                    stack.pop();
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anydb_common::{PartitionId, TableId};

    fn rid(slot: u32) -> Rid {
        Rid::new(TableId(0), PartitionId(0), slot)
    }

    #[test]
    fn empty_history_serializable() {
        assert!(History::new().is_serializable());
    }

    #[test]
    fn serial_execution_is_serializable() {
        let h = History::new();
        // T1: r(x,0) w(x,1); T2: r(x,1) w(x,2)
        h.record_read(TxnId(1), rid(0), 0);
        h.record_write(TxnId(1), rid(0), 1);
        h.record_read(TxnId(2), rid(0), 1);
        h.record_write(TxnId(2), rid(0), 2);
        assert!(h.is_serializable());
    }

    #[test]
    fn lost_update_cycle_detected() {
        let h = History::new();
        // Classic lost-update anomaly expressed through versions:
        // T1 reads v0 and writes v1; T2 also read v0 but writes v2.
        // T1 -> T2 (ww/wr chain) and T2 -> T1 (rw: T2 read v0, T1 wrote v1)
        h.record_read(TxnId(1), rid(0), 0);
        h.record_read(TxnId(2), rid(0), 0);
        h.record_write(TxnId(1), rid(0), 1);
        h.record_write(TxnId(2), rid(0), 2);
        let res = h.check();
        assert!(matches!(res, Err(Violation::Cycle(_))), "got {res:?}");
    }

    #[test]
    fn conflicting_writes_detected() {
        let h = History::new();
        h.record_write(TxnId(1), rid(0), 1);
        h.record_write(TxnId(2), rid(0), 1);
        assert_eq!(
            h.check(),
            Err(Violation::ConflictingWrites {
                rid: rid(0),
                version: 1
            })
        );
    }

    #[test]
    fn write_skew_style_cycle_detected() {
        let h = History::new();
        // T1 reads y (v0) then writes x (v1); T2 reads x (v0) then writes
        // y (v1). rw edges both ways -> cycle.
        h.record_read(TxnId(1), rid(1), 0);
        h.record_write(TxnId(1), rid(0), 1);
        h.record_read(TxnId(2), rid(0), 0);
        h.record_write(TxnId(2), rid(1), 1);
        assert!(!h.is_serializable());
    }

    #[test]
    fn disjoint_records_are_trivially_serializable() {
        let h = History::new();
        for t in 1..=8u64 {
            h.record_read(TxnId(t), rid(t as u32), 0);
            h.record_write(TxnId(t), rid(t as u32), 1);
        }
        assert!(h.is_serializable());
    }

    #[test]
    fn long_serial_chain_is_serializable() {
        let h = History::new();
        for t in 1..=100u64 {
            h.record_read(TxnId(t), rid(0), t - 1);
            h.record_write(TxnId(t), rid(0), t);
        }
        assert!(h.is_serializable());
        assert_eq!(h.len(), 200);
    }

    #[test]
    fn three_txn_cycle_detected() {
        let h = History::new();
        // T1 -> T2 on x, T2 -> T3 on y, T3 -> T1 on z.
        h.record_write(TxnId(1), rid(0), 1);
        h.record_read(TxnId(2), rid(0), 1); // T1 -> T2
        h.record_write(TxnId(2), rid(1), 1);
        h.record_read(TxnId(3), rid(1), 1); // T2 -> T3
        h.record_write(TxnId(3), rid(2), 1);
        // rw: T1 read z at v0 and T3 wrote z v1 gives T1 -> T3, which is
        // NOT a cycle (a genuine cycle needs T3 preceding T1; T3 reading
        // something T1 later overwrote is covered above via x). So this
        // particular chain is still acyclic:
        h.record_read(TxnId(1), rid(2), 0);
        assert!(h.is_serializable());

        // Now add the closing edge: T3 reads w v0, T1 writes w v1 -> T3->T1
        h.record_read(TxnId(3), rid(3), 0);
        h.record_write(TxnId(1), rid(3), 1);
        assert!(!h.is_serializable());
    }
}
