//! Timestamp and transaction-id oracles.

use std::sync::atomic::{AtomicU64, Ordering};

use anydb_common::TxnId;

/// Allocates globally unique, monotonically increasing transaction ids.
///
/// Ids double as wait-die priorities: smaller id = older transaction.
#[derive(Debug, Default)]
pub struct TxnIdGen {
    next: AtomicU64,
}

impl TxnIdGen {
    /// Oracle starting at 1 (0 is reserved for "no transaction").
    pub const fn new() -> Self {
        Self {
            next: AtomicU64::new(1),
        }
    }

    /// Allocates the next id.
    pub fn next(&self) -> TxnId {
        TxnId(self.next.fetch_add(1, Ordering::Relaxed))
    }

    /// How many ids have been handed out.
    pub fn issued(&self) -> u64 {
        self.next.load(Ordering::Relaxed).saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_increasing() {
        let g = TxnIdGen::new();
        let a = g.next();
        let b = g.next();
        assert!(a.raw() >= 1);
        assert!(a < b);
        assert_eq!(g.issued(), 2);
    }

    #[test]
    fn concurrent_allocation_is_unique() {
        let g = std::sync::Arc::new(TxnIdGen::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| g.next()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<TxnId> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 4000);
    }
}
