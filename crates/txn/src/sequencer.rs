//! Streaming concurrency control: order stamps and admission gates.
//!
//! The paper's key CC idea (§3.3): *"for consistency of concurrent
//! transactions it suffices to route their events in a consistent order
//! through ACs which execute the conflicting operations"*. Mechanically:
//!
//! 1. A [`Sequencer`] stamps each transaction once per conflict domain
//!    (we use one domain per warehouse/partition) with a monotonically
//!    increasing [`SeqNo`].
//! 2. Every AC that executes events of that domain owns an [`OrderGate`]
//!    which admits stamps strictly in order. An event arriving early stays
//!    parked in the AC's pending queue — the AC keeps executing *other*
//!    events, so execution remains non-blocking (§2.1).
//!
//! Because every conflicting event of transaction T precedes every
//! conflicting event of transaction T' at *every* involved AC (same stamp
//! order everywhere), the induced history is conflict-equivalent to the
//! serial order of stamps: coordination-free serializability.

use std::sync::atomic::{AtomicU64, Ordering};

/// A per-domain sequence number. Stamp `n` may only execute after stamps
/// `0..n` completed in that domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeqNo(pub u64);

/// Stamps transactions with per-domain sequence numbers.
///
/// One atomic per domain; stamping is wait-free.
#[derive(Debug)]
pub struct Sequencer {
    counters: Vec<AtomicU64>,
}

impl Sequencer {
    /// A sequencer over `domains` independent conflict domains.
    pub fn new(domains: usize) -> Self {
        assert!(domains > 0);
        Self {
            counters: (0..domains).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of domains.
    pub fn domains(&self) -> usize {
        self.counters.len()
    }

    /// Takes the next stamp in `domain`.
    pub fn stamp(&self, domain: usize) -> SeqNo {
        SeqNo(self.counters[domain].fetch_add(1, Ordering::Relaxed))
    }

    /// Stamps several domains at once (multi-partition transaction). The
    /// per-domain orders are independent; consistency only requires that
    /// *within* each domain all ACs see the same order, which holds
    /// because the stamp is taken once and shipped inside the events.
    pub fn stamp_many(&self, domains: &[usize]) -> Vec<(usize, SeqNo)> {
        domains.iter().map(|&d| (d, self.stamp(d))).collect()
    }

    /// Stamps issued so far in `domain`.
    pub fn issued(&self, domain: usize) -> u64 {
        self.counters[domain].load(Ordering::Relaxed)
    }
}

/// Admits stamped work strictly in sequence order.
pub struct OrderGate {
    next: AtomicU64,
}

impl Default for OrderGate {
    fn default() -> Self {
        Self::new()
    }
}

impl OrderGate {
    /// Gate expecting stamp 0 first.
    pub fn new() -> Self {
        Self {
            next: AtomicU64::new(0),
        }
    }

    /// True if `seq` is the next admissible stamp.
    #[inline]
    pub fn ready(&self, seq: SeqNo) -> bool {
        self.next.load(Ordering::Acquire) == seq.0
    }

    /// Marks `seq` complete, admitting the successor.
    ///
    /// # Panics
    /// Panics if completion happens out of order — that is a routing bug
    /// the tests must catch loudly.
    pub fn complete(&self, seq: SeqNo) {
        let prev = self.next.swap(seq.0 + 1, Ordering::AcqRel);
        assert_eq!(prev, seq.0, "order gate completed out of order");
    }

    /// The stamp the gate is waiting for.
    pub fn expecting(&self) -> SeqNo {
        SeqNo(self.next.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn stamps_are_dense_per_domain() {
        let s = Sequencer::new(2);
        assert_eq!(s.stamp(0), SeqNo(0));
        assert_eq!(s.stamp(0), SeqNo(1));
        assert_eq!(s.stamp(1), SeqNo(0));
        assert_eq!(s.issued(0), 2);
        assert_eq!(s.issued(1), 1);
    }

    #[test]
    fn stamp_many_covers_all_domains() {
        let s = Sequencer::new(3);
        let stamps = s.stamp_many(&[0, 2]);
        assert_eq!(stamps, vec![(0, SeqNo(0)), (2, SeqNo(0))]);
    }

    #[test]
    fn gate_admits_in_order() {
        let g = OrderGate::new();
        assert!(g.ready(SeqNo(0)));
        assert!(!g.ready(SeqNo(1)));
        g.complete(SeqNo(0));
        assert!(g.ready(SeqNo(1)));
        assert_eq!(g.expecting(), SeqNo(1));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn gate_rejects_out_of_order_completion() {
        let g = OrderGate::new();
        g.complete(SeqNo(2));
    }

    #[test]
    fn concurrent_stamping_is_dense() {
        let s = Arc::new(Sequencer::new(1));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| s.stamp(0).0).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort();
        let expected: Vec<u64> = (0..4000).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn gate_serializes_concurrent_workers() {
        // Workers each take stamps and append to a shared log only when
        // the gate admits them. The log must come out in stamp order.
        let s = Arc::new(Sequencer::new(1));
        let g = Arc::new(OrderGate::new());
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = s.clone();
            let g = g.clone();
            let log = log.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    let seq = s.stamp(0);
                    while !g.ready(seq) {
                        std::hint::spin_loop();
                    }
                    log.lock().push(seq.0);
                    g.complete(seq);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let log = log.lock();
        let expected: Vec<u64> = (0..2000).collect();
        assert_eq!(*log, expected);
    }
}
