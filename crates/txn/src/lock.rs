//! Record lock manager.
//!
//! A sharded lock table with shared/exclusive record locks. Two conflict
//! policies are provided:
//!
//! * [`LockPolicy::NoWait`] — a conflicting request aborts immediately,
//! * [`LockPolicy::WaitDie`] — an *older* requester (smaller `TxnId`)
//!   spins until the lock frees; a *younger* one aborts ("dies"). This is
//!   deadlock-free and is the configuration our DBx1000 baseline uses.
//!
//! The paper's point (§3.3) is that under high contention this machinery —
//! however well implemented — serializes transactions *and* charges them
//! for the coordination; streaming CC removes the coordination charge. The
//! `abl_cc` bench puts numbers on that claim.

use anydb_common::fxmap::FxHashMap;
use anydb_common::{DbError, DbResult, Rid, TxnId};
use parking_lot::Mutex;

/// Lock modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) — compatible with other shared holders.
    Shared,
    /// Exclusive (write) — compatible with nothing.
    Exclusive,
}

/// Conflict-resolution policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockPolicy {
    /// Abort the requester on any conflict.
    NoWait,
    /// Older requesters wait, younger requesters abort. Deadlock-free.
    WaitDie,
}

#[derive(Default)]
struct LockEntry {
    /// Current holders. Multiple entries only when all are `Shared`.
    holders: Vec<(TxnId, LockMode)>,
}

impl LockEntry {
    fn compatible(&self, txn: TxnId, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => self
                .holders
                .iter()
                .all(|(t, m)| *t == txn || *m == LockMode::Shared),
            LockMode::Exclusive => self.holders.iter().all(|(t, _)| *t == txn),
        }
    }

    /// True if every conflicting holder is younger than `txn` (so a
    /// wait-die requester may wait).
    fn may_wait(&self, txn: TxnId, mode: LockMode) -> bool {
        self.holders
            .iter()
            .all(|(t, m)| *t >= txn || (mode == LockMode::Shared && *m == LockMode::Shared))
    }
}

const SHARDS: usize = 64;

/// A sharded record lock table.
pub struct LockManager {
    shards: Vec<Mutex<FxHashMap<u128, LockEntry>>>,
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new()
    }
}

impl LockManager {
    /// Empty lock table.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
        }
    }

    #[inline]
    fn shard(&self, key: u128) -> &Mutex<FxHashMap<u128, LockEntry>> {
        &self.shards
            [anydb_common::fxmap::hash_u64(key as u64 ^ (key >> 64) as u64) as usize % SHARDS]
    }

    /// Tries to acquire once; on conflict reports whether waiting is
    /// permitted under wait-die.
    fn try_acquire(&self, txn: TxnId, rid: Rid, mode: LockMode) -> Result<(), bool> {
        let key = rid.pack();
        let mut shard = self.shard(key).lock();
        let entry = shard.entry(key).or_default();
        if let Some(held) = entry.holders.iter_mut().find(|(t, _)| *t == txn) {
            // Re-entrant: upgrade S -> X only if we are the sole holder.
            if mode == LockMode::Exclusive && held.1 == LockMode::Shared {
                if entry.holders.len() == 1 {
                    entry.holders[0].1 = LockMode::Exclusive;
                    return Ok(());
                }
                let may_wait = entry.may_wait(txn, mode);
                return Err(may_wait);
            }
            return Ok(());
        }
        if entry.compatible(txn, mode) {
            entry.holders.push((txn, mode));
            Ok(())
        } else {
            Err(entry.may_wait(txn, mode))
        }
    }

    /// Acquires a lock under `policy`. Blocks (spinning) only in the
    /// wait-die case where the requester is the older transaction.
    pub fn acquire(
        &self,
        txn: TxnId,
        rid: Rid,
        mode: LockMode,
        policy: LockPolicy,
    ) -> DbResult<()> {
        loop {
            match self.try_acquire(txn, rid, mode) {
                Ok(()) => return Ok(()),
                Err(may_wait) => match policy {
                    LockPolicy::NoWait => return Err(DbError::LockConflict(txn)),
                    LockPolicy::WaitDie => {
                        if may_wait {
                            std::hint::spin_loop();
                            std::thread::yield_now();
                        } else {
                            return Err(DbError::TxnAborted(txn));
                        }
                    }
                },
            }
        }
    }

    /// Releases one lock.
    pub fn release(&self, txn: TxnId, rid: Rid) {
        let key = rid.pack();
        let mut shard = self.shard(key).lock();
        if let Some(entry) = shard.get_mut(&key) {
            entry.holders.retain(|(t, _)| *t != txn);
            if entry.holders.is_empty() {
                shard.remove(&key);
            }
        }
    }

    /// Releases every lock held by `txn` from the given set (the caller's
    /// lock list — we do not keep per-txn state to stay allocation-free on
    /// the acquire path).
    pub fn release_all(&self, txn: TxnId, rids: &[Rid]) {
        for &rid in rids {
            self.release(txn, rid);
        }
    }

    /// Number of currently locked records (diagnostics).
    pub fn locked_records(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anydb_common::{PartitionId, TableId};
    use std::sync::Arc;

    fn rid(slot: u32) -> Rid {
        Rid::new(TableId(0), PartitionId(0), slot)
    }

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), rid(0), LockMode::Shared, LockPolicy::NoWait)
            .unwrap();
        lm.acquire(TxnId(2), rid(0), LockMode::Shared, LockPolicy::NoWait)
            .unwrap();
        assert_eq!(lm.locked_records(), 1);
    }

    #[test]
    fn exclusive_conflicts_with_everything() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), rid(0), LockMode::Exclusive, LockPolicy::NoWait)
            .unwrap();
        assert_eq!(
            lm.acquire(TxnId(2), rid(0), LockMode::Shared, LockPolicy::NoWait),
            Err(DbError::LockConflict(TxnId(2)))
        );
        assert_eq!(
            lm.acquire(TxnId(2), rid(0), LockMode::Exclusive, LockPolicy::NoWait),
            Err(DbError::LockConflict(TxnId(2)))
        );
    }

    #[test]
    fn reentrant_and_upgrade() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), rid(0), LockMode::Shared, LockPolicy::NoWait)
            .unwrap();
        // Re-entrant shared.
        lm.acquire(TxnId(1), rid(0), LockMode::Shared, LockPolicy::NoWait)
            .unwrap();
        // Upgrade allowed as sole holder.
        lm.acquire(TxnId(1), rid(0), LockMode::Exclusive, LockPolicy::NoWait)
            .unwrap();
        // Now exclusive blocks others.
        assert!(lm
            .acquire(TxnId(2), rid(0), LockMode::Shared, LockPolicy::NoWait)
            .is_err());
    }

    #[test]
    fn upgrade_blocked_by_other_sharer() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), rid(0), LockMode::Shared, LockPolicy::NoWait)
            .unwrap();
        lm.acquire(TxnId(2), rid(0), LockMode::Shared, LockPolicy::NoWait)
            .unwrap();
        assert!(lm
            .acquire(TxnId(1), rid(0), LockMode::Exclusive, LockPolicy::NoWait)
            .is_err());
    }

    #[test]
    fn release_frees_the_record() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), rid(0), LockMode::Exclusive, LockPolicy::NoWait)
            .unwrap();
        lm.release(TxnId(1), rid(0));
        assert_eq!(lm.locked_records(), 0);
        lm.acquire(TxnId(2), rid(0), LockMode::Exclusive, LockPolicy::NoWait)
            .unwrap();
    }

    #[test]
    fn wait_die_younger_dies() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), rid(0), LockMode::Exclusive, LockPolicy::WaitDie)
            .unwrap();
        // Txn 2 is younger than holder 1 -> dies instead of waiting.
        assert_eq!(
            lm.acquire(TxnId(2), rid(0), LockMode::Exclusive, LockPolicy::WaitDie),
            Err(DbError::TxnAborted(TxnId(2)))
        );
    }

    #[test]
    fn wait_die_older_waits_until_release() {
        let lm = Arc::new(LockManager::new());
        lm.acquire(TxnId(5), rid(0), LockMode::Exclusive, LockPolicy::WaitDie)
            .unwrap();
        let lm2 = lm.clone();
        // Txn 1 is older than holder 5 -> waits.
        let waiter = std::thread::spawn(move || {
            lm2.acquire(TxnId(1), rid(0), LockMode::Exclusive, LockPolicy::WaitDie)
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!waiter.is_finished(), "older txn should be waiting");
        lm.release(TxnId(5), rid(0));
        assert_eq!(waiter.join().unwrap(), Ok(()));
    }

    #[test]
    fn release_all_clears_multiple() {
        let lm = LockManager::new();
        let rids = [rid(0), rid(1), rid(2)];
        for r in rids {
            lm.acquire(TxnId(1), r, LockMode::Exclusive, LockPolicy::NoWait)
                .unwrap();
        }
        lm.release_all(TxnId(1), &rids);
        assert_eq!(lm.locked_records(), 0);
    }

    #[test]
    fn contended_counter_stays_consistent() {
        // 4 threads increment a "record" guarded by the lock manager;
        // wait-die retries on abort. The final count proves mutual
        // exclusion.
        let lm = Arc::new(LockManager::new());
        let counter = Arc::new(parking_lot::Mutex::new(0u64));
        let idgen = Arc::new(crate::ts::TxnIdGen::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let lm = lm.clone();
            let counter = counter.clone();
            let idgen = idgen.clone();
            handles.push(std::thread::spawn(move || {
                let mut committed = 0;
                while committed < 1000 {
                    let txn = idgen.next();
                    match lm.acquire(txn, rid(0), LockMode::Exclusive, LockPolicy::WaitDie) {
                        Ok(()) => {
                            *counter.lock() += 1;
                            lm.release(txn, rid(0));
                            committed += 1;
                        }
                        Err(_) => continue, // aborted: retry with new id
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 4000);
    }
}
