//! Property tests: both CC schemes produce serializable histories for
//! randomized concurrent schedules over a small record set.

use std::sync::Arc;

use anydb_common::{PartitionId, Rid, TableId, TxnId};
use anydb_txn::history::History;
use anydb_txn::lock::{LockManager, LockMode, LockPolicy};
use anydb_txn::sequencer::{OrderGate, Sequencer};
use anydb_txn::ts::TxnIdGen;
use proptest::prelude::*;

fn rid(slot: u32) -> Rid {
    Rid::new(TableId(0), PartitionId(0), slot)
}

/// Simulated record versions: `versions[slot]` is bumped under whatever
/// scheme is being tested, and every access is recorded into a history.
fn run_locked_schedule(txn_footprints: Vec<Vec<u32>>, threads: usize) -> History {
    let lm = Arc::new(LockManager::new());
    let ids = Arc::new(TxnIdGen::new());
    let history = Arc::new(History::new());
    let versions = Arc::new(
        (0..8)
            .map(|_| parking_lot::Mutex::new(0u64))
            .collect::<Vec<_>>(),
    );
    let work = Arc::new(parking_lot::Mutex::new(txn_footprints));

    let mut handles = Vec::new();
    for _ in 0..threads {
        let lm = lm.clone();
        let ids = ids.clone();
        let history = history.clone();
        let versions = versions.clone();
        let work = work.clone();
        handles.push(std::thread::spawn(move || loop {
            let Some(mut slots) = work.lock().pop() else {
                return;
            };
            slots.sort_unstable();
            slots.dedup();
            // Retry the footprint until it commits.
            loop {
                let txn = ids.next();
                let mut held = Vec::new();
                let mut ok = true;
                for &s in &slots {
                    match lm.acquire(txn, rid(s), LockMode::Exclusive, LockPolicy::WaitDie) {
                        Ok(()) => held.push(rid(s)),
                        Err(_) => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    for &s in &slots {
                        let mut v = versions[s as usize].lock();
                        *v += 1;
                        history.record_write(txn, rid(s), *v);
                    }
                }
                lm.release_all(txn, &held);
                if ok {
                    break;
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    Arc::try_unwrap(history).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Wait-die 2PL keeps arbitrary multi-record write transactions
    /// serializable under true thread concurrency.
    #[test]
    fn wait_die_schedules_are_serializable(
        footprints in prop::collection::vec(prop::collection::vec(0u32..8, 1..4), 1..24),
    ) {
        let history = run_locked_schedule(footprints, 3);
        prop_assert!(history.check().is_ok());
    }

    /// Ordered admission (the streaming-CC gate) serializes conflicting
    /// writes without locks: a single gate per domain, stamps taken in
    /// any interleaving by concurrent workers.
    #[test]
    fn gate_ordered_writes_are_serializable(txns in 1usize..64, threads in 1usize..4) {
        let seq = Arc::new(Sequencer::new(1));
        let gate = Arc::new(OrderGate::new());
        let history = Arc::new(History::new());
        let version = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let remaining = Arc::new(std::sync::atomic::AtomicUsize::new(txns));

        let mut handles = Vec::new();
        for _ in 0..threads {
            let seq = seq.clone();
            let gate = gate.clone();
            let history = history.clone();
            let version = version.clone();
            let remaining = remaining.clone();
            handles.push(std::thread::spawn(move || loop {
                if remaining
                    .fetch_update(
                        std::sync::atomic::Ordering::AcqRel,
                        std::sync::atomic::Ordering::Acquire,
                        |n| n.checked_sub(1),
                    )
                    .is_err()
                {
                    return;
                }
                let stamp = seq.stamp(0);
                while !gate.ready(stamp) {
                    std::hint::spin_loop();
                }
                let v = version.fetch_add(1, std::sync::atomic::Ordering::AcqRel) + 1;
                history.record_write(TxnId(stamp.0 + 1), rid(0), v);
                gate.complete(stamp);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        prop_assert!(history.check().is_ok());
        prop_assert_eq!(history.len(), txns);
    }
}
