//! Ablation: sharded multi-node TPC-C — scale-out, 2PC cost, and
//! zero-lost recovery (PR 9 tentpole; DESIGN.md §10).
//!
//! The paper's architecture-less pitch is that the same AC fabric spans
//! machines: place warehouses across nodes, route new-orders to their
//! home shard, and pay two-phase commit only when an order's supply
//! lines cross shards. This ablation prices the claim:
//!
//! * **scale-out** — all-local new-orders on 1, 2, and 4 shard nodes.
//!   Commits are latency-bound via the modeled group-commit fsync
//!   (`commit_latency`), so adding nodes divides the serial fsync train
//!   even on a one-core CI host: 2 nodes must at least match 1,
//! * **2PC cost** — on 2 nodes, an all-single-shard stream vs an
//!   all-cross-shard stream (every order carries one remote supply
//!   line). Cross-shard orders pay prepare/vote/decide round trips and
//!   fsync on both shards; single-shard throughput must at least match,
//! * **crash recovery** — 2 nodes, the coordinator crashes on its first
//!   cross-shard order *after logging the commit decision*, a
//!   replacement recovers from the durable WAL (finishing the apply and
//!   re-delivering the decision) and the driver's re-submissions finish
//!   the run. **Lost acked orders must be zero** — asserted
//!   bit-identically across every rep (it is an invariant, not a
//!   distribution) — and the client-visible stall is reported.
//!
//! Gated via `tools/bench_gate.rs`: `ratio_shard_scaleout_2v1` and
//! `ratio_shard_singleshard_vs_sync2pc_tx` floored at 1.0, and
//! `ratio_shard_zero_lost` = 1/(1+lost) pinned at 1.0, which only holds
//! when lost == 0. Wall-clock throughputs are medians over reps; the
//! run emits `BENCH_shard.json` for the gate and the CI artifact.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use anydb_bench::{bench_json_path, figure_header, median, row, write_flat_json};
use anydb_core::shard::{
    audit_order, drive_orders, peer_pair, shard_mesh, shard_store, CrashPoint, NodeExit,
    OrderVisibility, PeerEnd, ShardConfig, ShardMap, ShardMetrics, ShardNode, ShardOp, ShardRouter,
};
use anydb_storage::Wal;
use anydb_stream::LinkSpec;
use anydb_workload::tpcc::NewOrderParams;
use crossbeam::channel::Sender as ChanSender;

/// Timed repetitions per arm; throughputs take the median, the lost-
/// order count must be identical (zero) in every rep.
const REPS: usize = 3;
/// New-orders per throughput arm.
const LOAD_OPS: usize = 1200;
/// New-orders in the crash-recovery arm.
const CRASH_OPS: usize = 200;
/// Driver in-flight window for the throughput arms.
const WINDOW: usize = 32;

/// Bench tuning: client ops applied per node loop iteration are capped
/// well under the window so every iteration pays the fsync sleep — the
/// run is latency-bound and scale-out divides the sleep train.
fn bench_cfg() -> ShardConfig {
    ShardConfig {
        batch_ops: 8,
        commit_latency: Duration::from_micros(500),
        // Generous: healthy links on a loaded host must not retransmit.
        retransmit_every: Duration::from_millis(100),
        ..ShardConfig::default()
    }
}

/// A launched shard node (bench-side mirror of the chaos harness).
struct NodeHandle {
    ops_tx: ChanSender<ShardOp>,
    peer_joins: ChanSender<PeerEnd>,
    handle: thread::JoinHandle<NodeExit>,
}

fn launch(sn: ShardNode, peers: Vec<PeerEnd>) -> NodeHandle {
    let (ops_tx, ops_rx) = crossbeam::channel::unbounded();
    let (pj_tx, pj_rx) = crossbeam::channel::unbounded();
    let (_rj_tx, rj_rx) = crossbeam::channel::unbounded();
    let handle = thread::spawn(move || {
        let mut sn = sn;
        let crash = AtomicBool::new(false);
        let stop = AtomicBool::new(false);
        sn.run(&ops_rx, peers, &pj_rx, &rj_rx, &crash, &stop)
    });
    NodeHandle {
        ops_tx,
        peer_joins: pj_tx,
        handle,
    }
}

/// The first warehouse the map places on `node`.
fn warehouse_on(map: &ShardMap, node: u32) -> i64 {
    (1..).find(|&w| map.node_of(w) == node).unwrap()
}

fn order(w: i64, supply: Vec<i64>) -> NewOrderParams {
    let lines = supply
        .iter()
        .enumerate()
        .map(|(i, _)| (100 + i as i64, 5))
        .collect();
    NewOrderParams {
        w_id: w,
        d_id: 1,
        c_id: 7,
        lines,
        supply,
        entry_date: 20_260_808,
        rollback: false,
    }
}

/// Boots `nodes` shard nodes over a full mesh, runs `orders` to
/// completion, and returns acked orders per second.
fn throughput_arm(nodes: u32, orders: &[NewOrderParams]) -> f64 {
    let map = ShardMap::new(nodes);
    let mut mesh = shard_mesh(nodes, 1 << 10);
    let mut handles = Vec::new();
    let mut slots = Vec::new();
    for node in 0..nodes {
        let sn = ShardNode::new(
            node,
            map,
            Arc::new(shard_store()),
            Arc::new(Wal::new()),
            bench_cfg(),
            Arc::new(ShardMetrics::default()),
        );
        let h = launch(sn, std::mem::take(&mut mesh[node as usize]));
        slots.push(h.ops_tx.clone());
        handles.push(h);
    }
    let router = ShardRouter::new(map, slots);
    let start = Instant::now();
    let stats = drive_orders(
        &router,
        orders,
        WINDOW,
        Duration::from_secs(10),
        Duration::from_secs(120),
    );
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(stats.failed, 0, "arm acked an order as failed");
    assert_eq!(
        stats.acked_ids.len(),
        orders.len(),
        "arm finished without every order acked"
    );
    drop(router);
    for h in handles {
        drop(h.ops_tx);
        assert_eq!(h.handle.join().unwrap(), NodeExit::Stopped);
    }
    orders.len() as f64 / secs
}

/// All-local orders spread evenly over the cluster's warehouses.
fn local_orders(map: &ShardMap, total: usize) -> Vec<NewOrderParams> {
    let homes: Vec<i64> = (0..map.nodes()).map(|n| warehouse_on(map, n)).collect();
    (0..total)
        .map(|i| {
            let w = homes[i % homes.len()];
            order(w, vec![w, w])
        })
        .collect()
}

/// Every order homes alternately on each of 2 nodes and carries one
/// remote supply line: the all-2PC stream.
fn cross_orders(map: &ShardMap, total: usize) -> Vec<NewOrderParams> {
    let w0 = warehouse_on(map, 0);
    let w1 = warehouse_on(map, 1);
    (0..total)
        .map(|i| {
            let (home, other) = if i.is_multiple_of(2) {
                (w0, w1)
            } else {
                (w1, w0)
            };
            order(home, vec![home, other])
        })
        .collect()
}

/// Runs the crash-recovery arm: the coordinator of an all-cross stream
/// crashes after logging its first commit decision, a replacement
/// recovers from the durable WAL, links are rebuilt, the driver
/// re-submits. Returns `(stall ms, lost acked orders)` — lost counts
/// acked ids that are NOT fully visible across the surviving stores.
fn crash_arm() -> (f64, u64) {
    let map = ShardMap::new(2);
    let w0 = warehouse_on(&map, 0);
    let w1 = warehouse_on(&map, 1);
    let orders: Vec<_> = (0..CRASH_OPS).map(|_| order(w0, vec![w0, w1])).collect();

    let mut mesh = shard_mesh(2, 1 << 10);
    let wal0 = Arc::new(Wal::new());
    let crash_cfg = ShardConfig {
        crash_at: Some(CrashPoint::AfterDecideLogged),
        ..bench_cfg()
    };
    let n0 = launch(
        ShardNode::new(
            0,
            map,
            Arc::new(shard_store()),
            Arc::clone(&wal0),
            crash_cfg,
            Arc::new(ShardMetrics::default()),
        ),
        std::mem::take(&mut mesh[0]),
    );
    let store1 = Arc::new(shard_store());
    let n1 = launch(
        ShardNode::new(
            1,
            map,
            Arc::clone(&store1),
            Arc::new(Wal::new()),
            bench_cfg(),
            Arc::new(ShardMetrics::default()),
        ),
        std::mem::take(&mut mesh[1]),
    );

    let router = Arc::new(ShardRouter::new(
        map,
        vec![n0.ops_tx.clone(), n1.ops_tx.clone()],
    ));
    let driver = {
        let router = Arc::clone(&router);
        let orders = orders.clone();
        thread::spawn(move || {
            drive_orders(
                &router,
                &orders,
                WINDOW,
                Duration::from_millis(400),
                Duration::from_secs(120),
            )
        })
    };

    // The coordinator vanishes on order #1; recover a replacement from
    // its durable log and splice it back into mesh and router.
    assert_eq!(n0.handle.join().unwrap(), NodeExit::Crashed);
    drop(n0.ops_tx);
    let records = Wal::deserialize(wal0.serialize()).unwrap();
    let store0b = Arc::new(shard_store());
    let wal0b = Arc::new(Wal::new());
    wal0b.extend_shipped(&records);
    let recovered = ShardNode::recover(
        0,
        map,
        Arc::clone(&store0b),
        wal0b,
        bench_cfg(),
        Arc::new(ShardMetrics::default()),
    )
    .unwrap();
    let (end0, end1) = peer_pair(LinkSpec::instant(), 1 << 10, 0, 1);
    assert!(n1.peer_joins.send(end1).is_ok());
    let n0b = launch(recovered, vec![end0]);
    router.reroute(0, n0b.ops_tx.clone());

    let stats = driver.join().unwrap();
    assert_eq!(stats.failed, 0, "an order was acked as failed");
    assert_eq!(
        stats.acked_ids.len(),
        orders.len(),
        "driver finished without every order acked (resubmits={})",
        stats.resubmits
    );

    drop(router);
    drop(n0b.ops_tx);
    drop(n1.ops_tx);
    assert_eq!(n0b.handle.join().unwrap(), NodeExit::Stopped);
    assert_eq!(n1.handle.join().unwrap(), NodeExit::Stopped);

    // The headline audit: acked ⇒ fully visible across the survivors.
    let stores = vec![store0b, store1];
    let mut lost = 0u64;
    for &id in &stats.acked_ids {
        let p = &orders[(id - 1) as usize];
        if audit_order(&stores, &map, p, id) != OrderVisibility::Full {
            lost += 1;
        }
    }
    (stats.max_ack_gap.as_secs_f64() * 1e3, lost)
}

fn main() {
    figure_header(
        "Ablation: sharded TPC-C scale-out, 2PC cost, crash recovery",
        "New-orders routed to their home shard over modeled links.\n\
         scale-N = all-local orders on N nodes, commits latency-bound by\n\
         the modeled group-commit fsync; single/cross = 2 nodes, all\n\
         single-shard vs all cross-shard (presumed-abort 2PC); crash =\n\
         coordinator dies after logging its first commit decision, a\n\
         replacement recovers from the WAL. Gated on scale-out paying\n\
         off, on 2PC costing something, and on zero lost acked orders.",
    );

    let mut scale = [Vec::new(), Vec::new(), Vec::new()];
    let mut single = Vec::new();
    let mut cross = Vec::new();
    let mut stalls = Vec::new();
    let mut losts = Vec::new();
    for _ in 0..REPS {
        for (slot, nodes) in [1u32, 2, 4].into_iter().enumerate() {
            let map = ShardMap::new(nodes);
            scale[slot].push(throughput_arm(nodes, &local_orders(&map, LOAD_OPS)));
        }
        let map = ShardMap::new(2);
        single.push(throughput_arm(2, &local_orders(&map, LOAD_OPS)));
        cross.push(throughput_arm(2, &cross_orders(&map, LOAD_OPS)));
        let (stall_ms, lost) = crash_arm();
        stalls.push(stall_ms);
        losts.push(lost);
    }
    // Zero lost acked orders is an invariant, not a distribution: every
    // rep must produce the identical count, and that count must be zero.
    assert!(
        losts.windows(2).all(|w| w[0] == w[1]),
        "lost-order count not identical across reps: {losts:?}"
    );
    assert_eq!(losts[0], 0, "crash arm lost acked orders: {losts:?}");

    let scale_tx: Vec<f64> = scale.iter().map(|reps| median(reps.clone())).collect();
    let single_tx = median(single.clone());
    let cross_tx = median(cross.clone());
    let stall_ms = median(stalls.clone());
    let ratio_2v1 = scale_tx[1] / scale_tx[0];
    let ratio_4v1 = scale_tx[2] / scale_tx[0];
    let ratio_single = single_tx / cross_tx;
    let zero_lost = 1.0 / (1.0 + losts[0] as f64);

    let widths = [16usize, 16, 14];
    row(
        &["arm".into(), "acked orders/s".into(), "stall ms".into()],
        &widths,
    );
    for (label, tx, stall) in [
        ("1 node", scale_tx[0], String::new()),
        ("2 nodes", scale_tx[1], String::new()),
        ("4 nodes", scale_tx[2], String::new()),
        ("single-shard", single_tx, String::new()),
        ("sync-2PC", cross_tx, String::new()),
        ("crash+recover", cross_tx, format!("{stall_ms:.1}")),
    ] {
        row(&[label.into(), format!("{tx:.0}"), stall], &widths);
    }
    println!();
    println!(
        "2v1: {ratio_2v1:.2}x   4v1: {ratio_4v1:.2}x   single/2PC: {ratio_single:.2}x   \
         lost acked orders: {} (every rep)",
        losts[0]
    );
    println!("(acceptance: 2v1 and single/2PC >= 1.0 within gate tolerance; lost == 0 exactly)");

    let pairs: Vec<(String, f64)> = vec![
        ("shard_scale1_tx_ops_s".into(), scale_tx[0]),
        ("shard_scale2_tx_ops_s".into(), scale_tx[1]),
        ("shard_scale4_tx_ops_s".into(), scale_tx[2]),
        ("shard_singleshard_tx_ops_s".into(), single_tx),
        ("shard_sync2pc_tx_ops_s".into(), cross_tx),
        ("shard_crash_stall_ms".into(), stall_ms),
        ("shard_lost_orders".into(), losts[0] as f64),
        ("ratio_shard_scaleout_2v1".into(), ratio_2v1),
        ("ratio_shard_scaleout_4v1".into(), ratio_4v1),
        ("ratio_shard_singleshard_vs_sync2pc_tx".into(), ratio_single),
        ("ratio_shard_zero_lost".into(), zero_lost),
    ];
    let out = bench_json_path("BENCH_SHARD_JSON", "BENCH_shard.json");
    write_flat_json(&out, &pairs);
    println!();
    println!("wrote {}", out.display());
}
