//! Ablation: live workload morphing over a day-in-the-life schedule.
//!
//! PR 10's end-to-end claim (DESIGN.md §11): over a day that drifts from
//! partitionable OLTP through skewed HTAP into OLAP-heavy analytics, an
//! engine that *morphs* its execution strategy at transaction-window
//! boundaries beats every static strategy on the whole day, and beats
//! each static arm clearly on at least one phase — no fixed architecture
//! wins everywhere, which is the paper's thesis run live.
//!
//! The gated numbers come from the deterministic virtual-time simulator
//! (`anydb_sim::scenario::day_in_the_life_series`), which runs the real
//! `MorphController` — the same code the live engine hosts on driver 0 —
//! against every static arm. The simulator is where the paper's cost
//! orderings hold regardless of host core count; on the 1-core CI-class
//! host this repo benches on, shared-nothing dominates real-engine wall
//! clock for *every* regime, so a wall-clock gate would measure the host,
//! not the controller. Two ratios are gated:
//!
//! - `ratio_morph_vs_best_static_total`: morphing's whole-day throughput
//!   over the best static arm's. Floor 1.0 — morphing never loses a day.
//! - `ratio_morph_beats_each_static_best_phase`: for each static arm,
//!   morphing's best per-phase advantage over it; gate on the minimum
//!   across arms. Floor 1.0 — every static arm is beaten somewhere.
//!
//! Both are virtual-time deterministic (same seed, same numbers), so the
//! floors are exact acceptance thresholds, not noise bands.
//!
//! The real engine then runs an *ungated* live-swap arm: a morphing
//! `AnyDbEngine` over the same 12-phase schedule on wall clock, reporting
//! throughput, the switches actually taken, and the strategy sequence
//! each phase executed (`PhaseResult::strategies`). This validates that
//! hot swaps happen live and commit real transactions; serializability
//! across swaps is gated by the core test suite, not here.

use std::sync::Arc;
use std::time::Duration;

use anydb_bench::{bench_json_path, figure_header, row, write_flat_json};
use anydb_core::{AnyDbEngine, EngineConfig, MorphConfig, Strategy};
use anydb_sim::scenario::day_in_the_life_series;
use anydb_workload::phases::PhaseSchedule;
use anydb_workload::tpcc::{TpccConfig, TpccDb};

/// JSON key stem for one arm label, e.g. "AnyDB Shared-Nothing" ->
/// "shared_nothing".
fn stem(label: &str) -> String {
    label
        .trim_start_matches("AnyDB ")
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect::<String>()
        .split('_')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("_")
}

fn main() {
    figure_header(
        "Ablation: live workload morphing vs every static strategy",
        "Day-in-the-life schedule: OLTP morning -> HTAP afternoon -> OLAP\n\
         night. Gated arm is the virtual-time simulator driving the real\n\
         MorphController; the real engine adds an ungated live-swap run.",
    );

    // --- Gated: deterministic virtual-time day, morph vs statics. -----
    let workers = 4;
    let horizon = Duration::from_millis(40);
    let day = day_in_the_life_series(workers, horizon, 0x0DAE);

    let total = |s: &[anydb_sim::scenario::SeriesPoint]| s.iter().map(|p| p.mtps).sum::<f64>();
    let widths = [28usize, 16, 44];
    row(
        &[
            "arm".into(),
            "day total Mtx/s".into(),
            "per-phase Mtx/s".into(),
        ],
        &widths,
    );
    for (label, series) in &day.arms {
        row(
            &[
                label.clone(),
                format!("{:.3}", total(series)),
                series
                    .iter()
                    .map(|p| format!("{:.2}", p.mtps))
                    .collect::<Vec<_>>()
                    .join(" "),
            ],
            &widths,
        );
    }

    let (_, morph_series) = &day.arms[0];
    let morph_total = total(morph_series);
    let best_static_total = day.arms[1..]
        .iter()
        .map(|(_, s)| total(s))
        .fold(f64::MIN, f64::max);
    let ratio_total = morph_total / best_static_total;

    // For each static arm, morphing's best single-phase advantage; the
    // gate holds the minimum across arms >= 1.0: every fixed architecture
    // loses clearly somewhere in the day.
    let ratio_best_phase = day.arms[1..]
        .iter()
        .map(|(_, s)| {
            morph_series
                .iter()
                .zip(s.iter())
                .map(|(m, st)| m.mtps / st.mtps)
                .fold(f64::MIN, f64::max)
        })
        .fold(f64::MAX, f64::min);

    println!();
    println!(
        "morph day total vs best static: {ratio_total:.3}x   \
         min over statics of best-phase advantage: {ratio_best_phase:.2}x"
    );
    println!(
        "morph switches: {}   sequence: {}",
        day.morph_switches,
        day.morph_sequence
            .iter()
            .map(|s| s.label())
            .collect::<Vec<_>>()
            .join(" -> ")
    );
    println!("(acceptance: both ratios >= 1.0 — no static arm wins the day)");

    let mut pairs: Vec<(String, f64)> = Vec::new();
    for (label, series) in &day.arms {
        let name = stem(label);
        pairs.push((format!("morph_day_{name}_mtps_total"), total(series)));
        for p in series {
            pairs.push((format!("morph_day_{name}_mtps_p{}", p.phase), p.mtps));
        }
    }
    pairs.push(("morph_day_switches".into(), day.morph_switches as f64));
    pairs.push(("ratio_morph_vs_best_static_total".into(), ratio_total));
    pairs.push((
        "ratio_morph_beats_each_static_best_phase".into(),
        ratio_best_phase,
    ));

    // --- Ungated: real engine, live swaps over the same schedule. ------
    let db = Arc::new(
        TpccDb::load(
            TpccConfig {
                warehouses: 2,
                ..TpccConfig::default()
            },
            0x0DA1,
        )
        .unwrap(),
    );
    let engine = AnyDbEngine::new(
        db,
        EngineConfig {
            strategy: Strategy::SharedNothing,
            acs: 2,
            window: 256,
            morph: Some(MorphConfig {
                dwell: Duration::from_millis(5),
                min_backlog: 8,
                improvement: 1.0,
                ..MorphConfig::default()
            }),
            ..Default::default()
        },
    );
    let results = engine.run_schedule(
        &PhaseSchedule::day_in_the_life(),
        Duration::from_millis(50),
        7,
    );
    let committed: u64 = results.iter().map(|(_, r)| r.committed).sum();
    let elapsed: f64 = results.iter().map(|(_, r)| r.elapsed.as_secs_f64()).sum();
    let switches: u64 = results.iter().map(|(_, r)| r.switches).sum();
    println!();
    println!(
        "real engine (live swaps, ungated): {:.0} tx/s over the day, {} switches",
        committed as f64 / elapsed,
        switches
    );
    for (phase, r) in &results {
        println!(
            "  phase {:>2} {:<18} {}",
            phase.index,
            phase.kind.label(),
            r.strategies
                .iter()
                .map(|s| s.label())
                .collect::<Vec<_>>()
                .join(" -> ")
        );
    }
    pairs.push(("morph_live_tx_s".into(), committed as f64 / elapsed));
    pairs.push(("morph_live_switches".into(), switches as f64));

    let out = bench_json_path("BENCH_MORPH_JSON", "BENCH_morph.json");
    write_flat_json(&out, &pairs);
    println!();
    println!("wrote {}", out.display());
}
