//! Ablation: the price of an event hop.
//!
//! §3.2: "the overhead of parallelizing within one transaction dominates"
//! naive decomposition. This ablation measures, on the *real* engine,
//! the per-transaction cost of each routing granularity on this host:
//! whole-transaction events (shared-nothing), two balanced groups
//! (precise), pipelined stage groups (streaming), and per-op round trips
//! (static), all with identical storage work.

use std::sync::Arc;
use std::time::Duration;

use anydb_bench::{figure_header, row};
use anydb_core::{AnyDbEngine, EngineConfig, Strategy};
use anydb_workload::phases::PhaseKind;
use anydb_workload::tpcc::{TpccConfig, TpccDb};

fn main() {
    figure_header(
        "Ablation: routing granularity overhead (real engine)",
        "TPC-C payment, skewed to warehouse 1, 2 worker ACs, one driver.\n\
         Wall-clock on this host; the virtual-time simulator owns the paper\n\
         figures, this shows the real event-hop overhead ordering.",
    );

    let cfg = TpccConfig {
        warehouses: 2,
        ..TpccConfig::default()
    };
    let widths = [28usize, 14, 14];
    row(
        &["strategy".into(), "tx/s".into(), "us per txn".into()],
        &widths,
    );
    for strategy in [
        Strategy::SharedNothing,
        Strategy::PreciseIntra,
        Strategy::StreamingCc,
        Strategy::StaticIntra,
    ] {
        let db = Arc::new(TpccDb::load(cfg.clone(), 0xAB2).unwrap());
        let engine = AnyDbEngine::new(
            db,
            EngineConfig {
                strategy,
                acs: 2,
                ..Default::default()
            },
        );
        let r = engine.run_phase(PhaseKind::OltpSkewed, Duration::from_millis(300), 3);
        let rate = r.tx_per_sec();
        row(
            &[
                strategy.label().to_string(),
                format!("{rate:.0}"),
                format!("{:.2}", 1e6 / rate),
            ],
            &widths,
        );
    }
}
