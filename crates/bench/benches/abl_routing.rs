//! Ablation: the price of an event hop.
//!
//! §3.2: "the overhead of parallelizing within one transaction dominates"
//! naive decomposition. This ablation measures, on the *real* engine,
//! the per-transaction cost of each routing granularity on this host:
//! whole-transaction events (shared-nothing), two balanced groups
//! (precise), pipelined stage groups (streaming), and per-op round trips
//! (static), all with identical storage work.
//!
//! Since PR 3 this is also the engine-level number the CI perf gate
//! watches (the ROADMAP follow-up on gating beyond transport-level
//! metrics): the run emits `BENCH_routing.json` with two ratios —
//! shared-nothing/static and streaming/static throughput — that
//! `tools/bench_gate.rs` checks against `tools/bench_baseline.json`.
//!
//! Run-to-run variance, measured on the 1-core CI-class host this repo
//! benches on (5 back-to-back runs of per-strategy medians of 3): the
//! shared-nothing/static ratio sat in 3.8–5.3 and streaming/static in
//! 3.2–4.0 — noisier than the transport-level ratios because a full
//! engine run (drivers + ACs + completion channels) exposes more
//! scheduler surface, though both strategies in a ratio still share the
//! run's conditions. The checked-in floors (3.0 and 2.0) are therefore
//! acceptance thresholds below the observed band, not last-measured
//! values: with the gate's 15% tolerance the build fails only below
//! 2.55 / 1.70 — batching or routing rotting to where an event hop
//! costs what a whole transaction should (the Figure-5 ordering
//! collapsing), not noise.
//!
//! The JSON schema matches the other gated ablations: gated ratios plus
//! ungated raw values — here the per-strategy medians AND the individual
//! run samples (`routing_<strategy>_tx_s_runN`), so a tripped gate can
//! be diagnosed for noise vs. regression straight from the CI artifact,
//! without special-casing this file anywhere downstream.

use std::sync::Arc;
use std::time::Duration;

use anydb_bench::{bench_json_path, figure_header, median, row, write_flat_json};
use anydb_core::{AnyDbEngine, EngineConfig, Strategy};
use anydb_workload::phases::PhaseKind;
use anydb_workload::tpcc::{TpccConfig, TpccDb};

/// Runs per strategy; the median filters scheduler noise.
const REPS: usize = 3;

/// All [`REPS`] per-run throughput samples for one strategy; the caller
/// gates on their median and reports the raw samples alongside.
fn bench_strategy(cfg: &TpccConfig, strategy: Strategy) -> Vec<f64> {
    (0..REPS)
        .map(|rep| {
            let db = Arc::new(TpccDb::load(cfg.clone(), 0xAB2 + rep as u64).unwrap());
            let engine = AnyDbEngine::new(
                db,
                EngineConfig {
                    strategy,
                    acs: 2,
                    ..Default::default()
                },
            );
            engine
                .run_phase(PhaseKind::OltpSkewed, Duration::from_millis(300), 3)
                .tx_per_sec()
        })
        .collect()
}

fn main() {
    figure_header(
        "Ablation: routing granularity overhead (real engine)",
        "TPC-C payment, skewed to warehouse 1, 2 worker ACs, one driver.\n\
         Wall-clock on this host; the virtual-time simulator owns the paper\n\
         figures, this shows the real event-hop overhead ordering.",
    );

    let cfg = TpccConfig {
        warehouses: 2,
        ..TpccConfig::default()
    };
    let widths = [28usize, 14, 14];
    row(
        &["strategy".into(), "tx/s".into(), "us per txn".into()],
        &widths,
    );
    // JSON key stems, aligned with the strategy order below.
    let strategies = [
        (Strategy::SharedNothing, "shared_nothing"),
        (Strategy::PreciseIntra, "precise"),
        (Strategy::StreamingCc, "streaming"),
        (Strategy::StaticIntra, "static"),
    ];
    let mut rates = Vec::new();
    let mut samples = Vec::new();
    for (strategy, _) in strategies {
        let runs = bench_strategy(&cfg, strategy);
        let rate = median(runs.clone());
        row(
            &[
                strategy.label().to_string(),
                format!("{rate:.0}"),
                format!("{:.2}", 1e6 / rate),
            ],
            &widths,
        );
        rates.push(rate);
        samples.push(runs);
    }

    let sn_vs_static = rates[0] / rates[3];
    let streaming_vs_static = rates[2] / rates[3];
    println!();
    println!(
        "shared-nothing/static: {sn_vs_static:.2}x   streaming/static: {streaming_vs_static:.2}x"
    );
    println!("(acceptance: >= 3.0 and >= 2.0 — the Figure-5 ordering must hold with margin)");

    let mut pairs: Vec<(String, f64)> = Vec::new();
    for (((_, name), rate), runs) in strategies.iter().zip(&rates).zip(&samples) {
        pairs.push((format!("routing_{name}_tx_s"), *rate));
        for (i, sample) in runs.iter().enumerate() {
            pairs.push((format!("routing_{name}_tx_s_run{i}"), *sample));
        }
    }
    pairs.push((
        "ratio_routing_shared_nothing_vs_static".into(),
        sn_vs_static,
    ));
    pairs.push((
        "ratio_routing_streaming_vs_static".into(),
        streaming_vs_static,
    ));
    let out = bench_json_path("BENCH_ROUTING_JSON", "BENCH_routing.json");
    write_flat_json(&out, &pairs);
    println!();
    println!("wrote {}", out.display());
}
