//! Ablation: batched vs. unbatched event transfer (PR 1 tentpole).
//!
//! Every architecture AnyDB morphs into pays the event hot path on every
//! transaction: an SPSC ring crossing for local data beaming and an inbox
//! crossing for the AC event stream. This ablation measures the two
//! transports under a one-producer/one-consumer transfer of 64-bit events
//! at batch sizes {1, 8, 64, 256} — batch 1 being the seed's
//! one-atomic-handshake-per-event behavior, the larger sizes the
//! `push_slice`/`pop_chunk` and `send_many`/`drain_into` bulk paths.
//!
//! The printed ratio (batch 64 vs. batch 1) is the acceptance number for
//! the batched-event-streams PR: ≥ 1.5× events/sec on both transports.

use std::time::Instant;

use anydb_bench::{figure_header, row};
use anydb_stream::inbox::Inbox;
use anydb_stream::spsc::{spsc_channel, PopState};
use criterion::{criterion_group, Criterion};

const ITEMS: u64 = 2_000_000;
const CAP: usize = 1024;
const BATCHES: [usize; 4] = [1, 8, 64, 256];

/// SPSC ring, per-event push/pop (batch = 1) or bulk slice/chunk paths.
fn bench_spsc(batch: usize) -> f64 {
    let (mut tx, mut rx) = spsc_channel::<u64>(CAP);
    let start = Instant::now();
    let producer = std::thread::spawn(move || {
        if batch == 1 {
            for i in 0..ITEMS {
                tx.push_blocking(i).unwrap();
            }
        } else {
            let mut sent = 0u64;
            let mut chunk: Vec<u64> = Vec::with_capacity(batch);
            while sent < ITEMS {
                chunk.clear();
                chunk.extend(sent..(sent + batch as u64).min(ITEMS));
                let mut off = 0;
                while off < chunk.len() {
                    match tx.push_slice(&chunk[off..]) {
                        Ok(0) => std::thread::yield_now(),
                        Ok(n) => off += n,
                        Err(_) => panic!("consumer vanished"),
                    }
                }
                sent += chunk.len() as u64;
            }
        }
    });
    let mut received = 0u64;
    if batch == 1 {
        while rx.pop_blocking().is_some() {
            received += 1;
        }
    } else {
        let mut out: Vec<u64> = Vec::with_capacity(batch);
        loop {
            out.clear();
            match rx.pop_chunk(&mut out, batch) {
                Ok(n) => received += n as u64,
                Err(PopState::Empty) => std::thread::yield_now(),
                Err(PopState::Disconnected) => break,
            }
        }
    }
    producer.join().unwrap();
    assert_eq!(received, ITEMS);
    ITEMS as f64 / start.elapsed().as_secs_f64()
}

/// Event inbox, per-event send/pop (batch = 1) or send_many/drain_into.
fn bench_inbox(batch: usize) -> f64 {
    let (tx, rx) = Inbox::<u64>::new();
    let start = Instant::now();
    let producer = std::thread::spawn(move || {
        if batch == 1 {
            for i in 0..ITEMS {
                tx.send(i);
            }
        } else {
            let mut i = 0u64;
            while i < ITEMS {
                let hi = (i + batch as u64).min(ITEMS);
                tx.send_many(i..hi);
                i = hi;
            }
        }
    });
    let mut received = 0u64;
    if batch == 1 {
        while rx.pop_blocking().is_some() {
            received += 1;
        }
    } else {
        let mut out: Vec<u64> = Vec::with_capacity(batch);
        loop {
            out.clear();
            match rx.drain_into(&mut out, batch) {
                Ok(n) => received += n as u64,
                Err(PopState::Empty) => std::thread::yield_now(),
                Err(PopState::Disconnected) => break,
            }
        }
    }
    producer.join().unwrap();
    assert_eq!(received, ITEMS);
    ITEMS as f64 / start.elapsed().as_secs_f64()
}

/// Criterion micro views of the per-call costs (uncontended).
fn bench_micro(c: &mut Criterion) {
    c.bench_function("spsc_push_pop_single", |b| {
        let (mut tx, mut rx) = spsc_channel::<u64>(256);
        b.iter(|| {
            tx.push(1).unwrap();
            rx.pop().unwrap()
        });
    });
    c.bench_function("spsc_push_slice_pop_chunk_64", |b| {
        let (mut tx, mut rx) = spsc_channel::<u64>(256);
        let chunk: Vec<u64> = (0..64).collect();
        let mut out = Vec::with_capacity(64);
        b.iter(|| {
            tx.push_slice(&chunk).unwrap();
            out.clear();
            rx.pop_chunk(&mut out, 64).unwrap()
        });
    });
    c.bench_function("inbox_send_pop_single", |b| {
        let (tx, rx) = Inbox::<u64>::new();
        b.iter(|| {
            tx.send(1);
            rx.pop().unwrap()
        });
    });
    c.bench_function("inbox_send_many_drain_64", |b| {
        let (tx, rx) = Inbox::<u64>::new();
        let mut out = Vec::with_capacity(64);
        b.iter(|| {
            tx.send_many(0..64u64);
            out.clear();
            rx.drain_into(&mut out, 64).unwrap()
        });
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(15);
    targets = bench_micro
}

fn main() {
    figure_header(
        "Ablation: batched vs unbatched event transfer (SPSC + inbox)",
        "One producer, one consumer, 2M u64 events. batch=1 is the seed's\n\
         per-event handshake; larger batches use the bulk paths.",
    );

    let widths = [10usize, 16, 16];
    row(
        &["batch".into(), "spsc M ev/s".into(), "inbox M ev/s".into()],
        &widths,
    );
    let mut spsc = Vec::new();
    let mut inbox = Vec::new();
    for &b in &BATCHES {
        let s = bench_spsc(b);
        let i = bench_inbox(b);
        row(
            &[
                b.to_string(),
                format!("{:.1}", s / 1e6),
                format!("{:.1}", i / 1e6),
            ],
            &widths,
        );
        spsc.push(s);
        inbox.push(i);
    }
    println!();
    let spsc_ratio = spsc[2] / spsc[0];
    let inbox_ratio = inbox[2] / inbox[0];
    println!("spsc  batched(64)/unbatched(1): {spsc_ratio:.2}x");
    println!("inbox batched(64)/unbatched(1): {inbox_ratio:.2}x");
    println!("(acceptance: both >= 1.5x)");
    println!();

    micro();
}
