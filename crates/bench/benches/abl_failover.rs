//! Ablation: replicated storage ACs — commit-ack modes and failover
//! (PR 8 tentpole; DESIGN.md §9).
//!
//! The paper's §2.3 argues fault tolerance composes onto the AC fabric:
//! storage ACs stream their log, replacements replay it. This ablation
//! prices that claim on the insert path:
//!
//! * **unreplicated** — a lone primary storage AC, commit acked at local
//!   WAL append; the zero-durability baseline,
//! * **async** — a follower mirrors the WAL over a modeled link but the
//!   ack still releases at local append (replication trails behind),
//! * **sync** — the ack releases only once the follower's replicated LSN
//!   covers the commit: every "yes" the client hears is already durable
//!   on the follower, and that durability is what a crash cannot take
//!   back.
//!
//! The fourth arm buys the proof: a sync pair under load, primary
//! crashed mid-run, follower promoted on lease expiry, driver re-routed
//! and re-submitting. **Lost acked commits must be zero** — asserted
//! bit-identically across every rep (it is an invariant, not a
//! distribution) — and the client-visible stall (longest gap between
//! consecutive acks, spanning lease expiry + promotion + re-submission)
//! is reported.
//!
//! Gated via `tools/bench_gate.rs`: unreplicated and async throughput
//! each at least match sync (floors at 1.0 — sync does strictly more
//! work per ack), and `ratio_failover_zero_lost` = 1/(1+lost) pinned at
//! 1.0, which only holds when lost == 0. Wall-clock throughputs are
//! medians over reps; the run emits `BENCH_failover.json` for the gate
//! and the CI artifact.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use anydb_bench::{bench_json_path, figure_header, median, row, write_flat_json};
use anydb_common::DbError;
use anydb_core::replica::{
    drive_inserts, repl_connection, repl_store, repl_tuple, run_follower, run_primary,
    FollowerExit, PrimaryExit, ReplConfig, ReplMetrics, ReplMode, Router, REPL_TABLE,
};
use anydb_storage::Wal;
use anydb_stream::LinkSpec;

/// Timed repetitions per arm; throughputs take the median, the lost-
/// commit count must be identical (zero) in every rep.
const REPS: usize = 3;
/// Inserts per throughput arm.
const LOAD_OPS: i64 = 1500;
/// Inserts in the failover arm.
const FAILOVER_OPS: i64 = 800;
/// Commits acked before the failover arm pulls the plug.
const CRASH_AFTER_COMMITS: u64 = 200;
/// Driver in-flight window.
const WINDOW: usize = 32;

/// The replication link: real latency so sync's ack round-trip is a
/// genuine cost, not a scheduling artifact.
fn repl_link() -> LinkSpec {
    LinkSpec {
        latency: Duration::from_micros(50),
        bytes_per_sec: 1e9,
        offload: false,
    }
}

/// Runs one no-crash load arm and returns acked inserts per second.
/// `replicated: false` boots a lone primary (degraded/unreplicated).
fn throughput_arm(mode: ReplMode, replicated: bool) -> f64 {
    let cfg = ReplConfig {
        mode,
        batch_ops: 32,
        heartbeat_every: Duration::from_millis(5),
        lease: Duration::from_secs(5),
    };
    let metrics = Arc::new(ReplMetrics::new());
    let store_p = Arc::new(repl_store());
    let wal_p = Arc::new(Wal::new());
    let (ops_tx, ops_rx) = crossbeam::channel::unbounded();
    let (joins_tx, joins_rx) = crossbeam::channel::unbounded();
    let crash = Arc::new(AtomicBool::new(false));
    let router = Arc::new(Router::new(ops_tx));
    let stop = Arc::new(AtomicBool::new(false));

    let follower = if replicated {
        let (p_end, f_end) = repl_connection(repl_link(), 1 << 10);
        assert!(joins_tx.send(p_end).is_ok());
        let (metrics, stop) = (Arc::clone(&metrics), Arc::clone(&stop));
        Some(thread::spawn(move || {
            let store = repl_store();
            let wal = Wal::new();
            run_follower(&store, &wal, f_end, &cfg, &metrics, &stop)
        }))
    } else {
        None
    };
    let primary = {
        let (store, wal, metrics, crash) = (
            Arc::clone(&store_p),
            Arc::clone(&wal_p),
            Arc::clone(&metrics),
            Arc::clone(&crash),
        );
        thread::spawn(move || {
            run_primary(&store, &wal, &ops_rx, &joins_rx, &cfg, &crash, &metrics, 1)
        })
    };

    let start = Instant::now();
    let stats = drive_inserts(
        &router,
        0..LOAD_OPS,
        WINDOW,
        Duration::from_secs(10),
        Duration::from_secs(120),
    );
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(stats.failed, 0, "arm acked an insert as failed");
    assert_eq!(
        stats.acked_ids.len() as i64,
        LOAD_OPS,
        "arm finished without every insert acked"
    );

    stop.store(true, Ordering::Relaxed);
    if let Some(f) = follower {
        f.join().unwrap();
    }
    drop(router);
    drop(joins_tx);
    assert_eq!(primary.join().unwrap(), PrimaryExit::Stopped);
    LOAD_OPS as f64 / secs
}

/// Runs the failover arm: sync pair, crash mid-load, promotion, driver
/// re-routed. Returns `(stall ms, lost acked commits)` — lost counts
/// acked ids that are NOT durable on the surviving primary.
fn failover_arm() -> (f64, u64) {
    let cfg = ReplConfig {
        mode: ReplMode::Sync,
        batch_ops: 32,
        heartbeat_every: Duration::from_millis(5),
        lease: Duration::from_millis(100),
    };
    let metrics = Arc::new(ReplMetrics::new());
    let store_a = Arc::new(repl_store());
    let wal_a = Arc::new(Wal::new());
    let store_b = Arc::new(repl_store());
    let wal_b = Arc::new(Wal::new());
    let (a_end, b_end) = repl_connection(repl_link(), 1 << 10);

    let (ops1_tx, ops1_rx) = crossbeam::channel::unbounded();
    let (joins1_tx, joins1_rx) = crossbeam::channel::unbounded();
    assert!(joins1_tx.send(a_end).is_ok());
    let crash_a = Arc::new(AtomicBool::new(false));
    let router = Arc::new(Router::new(ops1_tx));

    let node_a = {
        let (store, wal, metrics, crash) = (
            Arc::clone(&store_a),
            Arc::clone(&wal_a),
            Arc::clone(&metrics),
            Arc::clone(&crash_a),
        );
        thread::spawn(move || {
            run_primary(
                &store, &wal, &ops1_rx, &joins1_rx, &cfg, &crash, &metrics, 1,
            )
        })
    };
    let (ops2_tx, ops2_rx) = crossbeam::channel::unbounded();
    let (joins2_tx, joins2_rx) = crossbeam::channel::unbounded();
    let stop_b = Arc::new(AtomicBool::new(false));
    let node_b = {
        let (store, wal, metrics, stop, router) = (
            Arc::clone(&store_b),
            Arc::clone(&wal_b),
            Arc::clone(&metrics),
            Arc::clone(&stop_b),
            Arc::clone(&router),
        );
        thread::spawn(move || {
            let exit = run_follower(&store, &wal, b_end, &cfg, &metrics, &stop);
            if exit == FollowerExit::Promoted {
                router.reroute(ops2_tx);
                drop(router); // release the rerouted sender with the clients'
                let crash_b = AtomicBool::new(false);
                run_primary(
                    &store, &wal, &ops2_rx, &joins2_rx, &cfg, &crash_b, &metrics, 2,
                );
            }
            exit
        })
    };

    let driver = {
        let router = Arc::clone(&router);
        thread::spawn(move || {
            drive_inserts(
                &router,
                0..FAILOVER_OPS,
                WINDOW,
                Duration::from_millis(400),
                Duration::from_secs(120),
            )
        })
    };

    // Pull the plug once a healthy chunk of commits is acked.
    let armed = Instant::now();
    while metrics.commits.get() < CRASH_AFTER_COMMITS {
        assert!(
            armed.elapsed() < Duration::from_secs(60),
            "failover arm never reached crash volume"
        );
        thread::sleep(Duration::from_millis(1));
    }
    crash_a.store(true, Ordering::Relaxed);
    assert_eq!(node_a.join().unwrap(), PrimaryExit::Crashed);

    let stats = driver.join().unwrap();
    assert_eq!(stats.failed, 0, "an insert was acked as failed");
    assert_eq!(
        stats.acked_ids.len() as i64,
        FAILOVER_OPS,
        "driver finished without every insert acked"
    );

    // The headline audit: acked ⇒ durable on the survivor. A re-insert
    // of a surviving row is recognized at its primary key.
    let table_b = store_b.table(REPL_TABLE).unwrap();
    let mut lost = 0u64;
    for &id in &stats.acked_ids {
        match table_b.insert(repl_tuple(id)) {
            Err(DbError::DuplicateKey(_)) => {}
            _ => lost += 1,
        }
    }

    drop(router);
    drop(joins2_tx);
    assert_eq!(node_b.join().unwrap(), FollowerExit::Promoted);
    (stats.max_ack_gap.as_secs_f64() * 1e3, lost)
}

fn main() {
    figure_header(
        "Ablation: replication ack modes and failover",
        "Single-row insert commits through a replicated storage AC pair.\n\
         unreplicated = lone primary; async = WAL shipped, ack at local\n\
         append; sync = ack only once the follower's replicated LSN\n\
         covers the commit. failover = sync pair, primary crashed\n\
         mid-load, follower promoted on lease expiry. Gated on sync\n\
         paying for its durability and on zero lost acked commits.",
    );

    let mut unrep = Vec::new();
    let mut asyn = Vec::new();
    let mut sync = Vec::new();
    let mut stalls = Vec::new();
    let mut losts = Vec::new();
    for _ in 0..REPS {
        unrep.push(throughput_arm(ReplMode::Async, false));
        asyn.push(throughput_arm(ReplMode::Async, true));
        sync.push(throughput_arm(ReplMode::Sync, true));
        let (stall_ms, lost) = failover_arm();
        stalls.push(stall_ms);
        losts.push(lost);
    }
    // Zero lost acked commits is an invariant, not a distribution: every
    // rep must produce the identical count, and that count must be zero.
    assert!(
        losts.windows(2).all(|w| w[0] == w[1]),
        "lost-commit count not identical across reps: {losts:?}"
    );
    assert_eq!(losts[0], 0, "failover lost acked commits: {losts:?}");

    let unrep_tx = median(unrep.clone());
    let async_tx = median(asyn.clone());
    let sync_tx = median(sync.clone());
    let stall_ms = median(stalls.clone());
    let ratio_unrep = unrep_tx / sync_tx;
    let ratio_async = async_tx / sync_tx;
    let zero_lost = 1.0 / (1.0 + losts[0] as f64);

    let widths = [14usize, 16, 14];
    row(
        &["arm".into(), "acked ops/s".into(), "stall ms".into()],
        &widths,
    );
    for (label, tx, stall) in [
        ("unreplicated", unrep_tx, String::new()),
        ("async", async_tx, String::new()),
        ("sync", sync_tx, String::new()),
        ("failover", sync_tx, format!("{stall_ms:.1}")),
    ] {
        row(&[label.into(), format!("{tx:.0}"), stall], &widths);
    }
    println!();
    println!(
        "unrep/sync: {ratio_unrep:.2}x   async/sync: {ratio_async:.2}x   \
         lost acked commits: {} (every rep)",
        losts[0]
    );
    println!("(acceptance: both ratios >= 1.0 within gate tolerance; lost == 0 exactly)");

    let pairs: Vec<(String, f64)> = vec![
        ("failover_unrep_tx_ops_s".into(), unrep_tx),
        ("failover_async_tx_ops_s".into(), async_tx),
        ("failover_sync_tx_ops_s".into(), sync_tx),
        ("failover_stall_ms".into(), stall_ms),
        ("failover_lost_commits".into(), losts[0] as f64),
        ("ratio_failover_unrep_vs_sync_tx".into(), ratio_unrep),
        ("ratio_failover_async_vs_sync_tx".into(), ratio_async),
        ("ratio_failover_zero_lost".into(), zero_lost),
    ];
    let out = bench_json_path("BENCH_FAILOVER_JSON", "BENCH_failover.json");
    write_flat_json(&out, &pairs);
    println!();
    println!("wrote {}", out.display());
}
