//! Ablation: shared multi-query Q3 execution (PR 6 tentpole).
//!
//! N concurrent Q3 requests with different date windows either execute
//! independently (the PR 5 state: one full pipeline per query) or as ONE
//! shared pipeline — the hull of the member predicates pushed into a
//! single scan per table, one shared open-order build side, per-member
//! bitmap refinement at the probe (`exec_q3_shared`, SharedDB-style).
//!
//! Arms, each on a freshly loaded database so the shared-scan caches
//! start cold:
//!
//! * **single**: one query, the widest member — the floor any sharing
//!   scheme is measured against.
//! * **unshared x32**: 32 members via `exec_q3_local` each. Customer and
//!   new-order scans deduplicate through the shared-scan cache after the
//!   first query (identical shapes), but every distinct date window is a
//!   fresh orders scan — the linear term sharing removes.
//! * **shared x32**: the same 32 members via one `exec_q3_shared` call.
//!
//! The gated metric is the **modeled cost**: rows materialized by fresh
//! partition scans (`SharedScanStats::miss_rows` deltas). It is exact,
//! deterministic, and immune to the 1-core CI host's scheduler noise —
//! wall-clock medians are reported alongside but not gated.
//!
//! Acceptance (gated in CI via `tools/bench_gate.rs`): the shared
//! pipeline's total cost for 32 concurrent queries stays within 2x the
//! single-query cost (`ratio_shared_single_vs_total_cost_n32 >= 0.5`;
//! observed ~1.0 — the hull scan IS the widest member's scan), where the
//! unshared path pays ~an orders scan per member
//! (`ratio_shared_unshared_vs_shared_cost_n32`, observed ~10x at this
//! date-window mix). Costs are asserted bit-identical across reps, so
//! the 15%-tolerance gate only ever sees genuine regressions.
//!
//! The run emits `BENCH_shared.json` at the repo root for the gate and
//! the CI artifact.

use std::hint::black_box;
use std::time::Instant;

use anydb_bench::{bench_json_path, figure_header, median, row, write_flat_json};
use anydb_core::olap::{exec_q3_local, exec_q3_shared};
use anydb_workload::chbench::Q3Spec;
use anydb_workload::tpcc::{TpccConfig, TpccDb};

/// Timed repetitions per arm; the median filters scheduler noise (the
/// gated cost metric is deterministic and checked equal across reps).
const REPS: usize = 3;
/// Concurrent Q3 members per shared window — the headline N.
const N_QUERIES: usize = 32;

fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// abl_htap's database scale: long enough to time stably on the CI
/// host, small enough to reload per arm (cold caches every time).
fn load_db() -> TpccDb {
    let cfg = TpccConfig {
        warehouses: 4,
        districts_per_warehouse: 10,
        customers_per_district: 500,
        items: 100,
        orders_per_district: 1000,
        open_order_fraction: 0.3,
        lines_per_order: 1,
        ..TpccConfig::default()
    };
    TpccDb::load(cfg, 0x5A4E).unwrap()
}

/// 32 members sharing the "since 2007" lower bound under monotonically
/// widening upper bounds (order dates span 2004–2011); the last member
/// is open-ended, so the hull degenerates to the plain `IntGe` shape and
/// the widest member doubles as the **single** arm.
fn member_specs() -> Vec<Q3Spec> {
    (0..N_QUERIES)
        .map(|i| Q3Spec {
            entry_date_max: if i == N_QUERIES - 1 {
                i64::MAX
            } else {
                20070301 + i as i64 * 1500
            },
            ..Q3Spec::default()
        })
        .collect()
}

/// The modeled pipeline cost so far: rows materialized by fresh scans
/// across the three Q3 tables. Cache hits (exact or superset-refined)
/// add nothing — that is precisely what sharing buys.
fn q3_cost(db: &TpccDb) -> u64 {
    [&db.customer, &db.neworder, &db.orders]
        .iter()
        .map(|t| t.shared_scan_stats().miss_rows)
        .sum()
}

fn main() {
    figure_header(
        "Ablation: shared multi-query Q3 execution",
        "32 concurrent members, same lower bound, widening date windows.\n\
         unshared = one pipeline per member; shared = one hull scan per\n\
         table + per-member bitmap refinement. Gated on scanned-row cost.",
    );

    let specs = member_specs();
    let widest = *specs.last().unwrap();

    // Functional pre-check before timing anything: every shared member
    // must equal its independently executed result.
    {
        let db = load_db();
        let independent: Vec<usize> = specs.iter().map(|s| exec_q3_local(&db, s)).collect();
        let shared = exec_q3_shared(&db, &specs);
        assert_eq!(shared, independent, "shared member diverged");
        assert!(shared.iter().all(|&r| r > 0), "degenerate member results");
        // Widening windows must yield non-decreasing counts.
        assert!(shared.windows(2).all(|w| w[0] <= w[1]));
    }

    let mut single_wall = Vec::new();
    let mut unshared_wall = Vec::new();
    let mut shared_wall = Vec::new();
    let mut single_cost = Vec::new();
    let mut unshared_cost = Vec::new();
    let mut shared_cost = Vec::new();
    for _ in 0..REPS {
        let db = load_db();
        let before = q3_cost(&db);
        let (rows, secs) = timed(|| exec_q3_local(&db, &widest));
        black_box(rows);
        single_wall.push(secs);
        single_cost.push(q3_cost(&db) - before);

        let db = load_db();
        let before = q3_cost(&db);
        let (rows, secs) = timed(|| {
            specs
                .iter()
                .map(|s| exec_q3_local(&db, s))
                .collect::<Vec<_>>()
        });
        black_box(rows);
        unshared_wall.push(secs);
        unshared_cost.push(q3_cost(&db) - before);

        let db = load_db();
        let before = q3_cost(&db);
        let (rows, secs) = timed(|| exec_q3_shared(&db, &specs));
        black_box(rows);
        shared_wall.push(secs);
        shared_cost.push(q3_cost(&db) - before);
    }
    // The cost metric is a deterministic function of (data, specs): any
    // spread across reps means the accounting itself broke.
    for costs in [&single_cost, &unshared_cost, &shared_cost] {
        assert!(
            costs.windows(2).all(|w| w[0] == w[1]),
            "modeled cost not deterministic: {costs:?}"
        );
    }
    let single = single_cost[0] as f64;
    let unshared = unshared_cost[0] as f64;
    let shared = shared_cost[0] as f64;
    let unshared_vs_shared = unshared / shared;
    let single_vs_shared = single / shared;
    let per_query_gain = N_QUERIES as f64 * single / shared;

    let widths = [14usize, 16, 14];
    row(
        &["arm".into(), "cost (rows)".into(), "wall ms".into()],
        &widths,
    );
    for (label, cost, wall) in [
        ("single", single, median(single_wall)),
        ("unshared x32", unshared, median(unshared_wall)),
        ("shared x32", shared, median(shared_wall.clone())),
    ] {
        row(
            &[
                label.into(),
                format!("{cost:.0}"),
                format!("{:.2}", wall * 1e3),
            ],
            &widths,
        );
    }
    println!();
    println!(
        "unshared/shared cost: {unshared_vs_shared:.2}x   \
         single/shared-total: {single_vs_shared:.2}x   \
         per-query gain at N=32: {per_query_gain:.1}x"
    );
    println!("(acceptance: shared total <= 2x single, i.e. single/shared-total >= 0.5)");

    let pairs: Vec<(String, f64)> = vec![
        ("shared_single_cost_rows".into(), single),
        ("shared_unshared_cost_rows_n32".into(), unshared),
        ("shared_shared_cost_rows_n32".into(), shared),
        ("shared_wall_ms_n32".into(), median(shared_wall) * 1e3),
        (
            "ratio_shared_unshared_vs_shared_cost_n32".into(),
            unshared_vs_shared,
        ),
        (
            "ratio_shared_single_vs_total_cost_n32".into(),
            single_vs_shared,
        ),
        (
            "ratio_shared_per_query_cost_gain_n32".into(),
            per_query_gain,
        ),
    ];
    let out = bench_json_path("BENCH_SHARED_JSON", "BENCH_shared.json");
    write_flat_json(&out, &pairs);
    println!();
    println!("wrote {}", out.display());
}
