//! Criterion microbenchmarks of the hot substrate primitives, plus the
//! host-parallelism probe that motivates the virtual-time simulator
//! (DESIGN.md §2).

use std::time::Duration;

use anydb_bench::host_scaling_probe;
use anydb_common::dist::Zipf;
use anydb_common::fxmap::FxHashMap;
use anydb_common::{PartitionId, Rid, TableId, Tuple, TxnId, Value};
use anydb_stream::spsc::spsc_channel;
use anydb_txn::lock::{LockManager, LockMode, LockPolicy};
use anydb_txn::sequencer::Sequencer;
use criterion::{criterion_group, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_spsc(c: &mut Criterion) {
    c.bench_function("spsc_push_pop", |b| {
        let (mut tx, mut rx) = spsc_channel::<u64>(256);
        b.iter(|| {
            tx.push(1).unwrap();
            rx.pop().unwrap()
        });
    });
}

fn bench_hash(c: &mut Criterion) {
    let mut fx: FxHashMap<u64, u64> = FxHashMap::default();
    let mut std_map: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for i in 0..10_000u64 {
        fx.insert(i, i);
        std_map.insert(i, i);
    }
    let mut i = 0u64;
    c.bench_function("fxmap_get", |b| {
        b.iter(|| {
            i = (i + 7) % 10_000;
            *fx.get(&i).unwrap()
        })
    });
    let mut j = 0u64;
    c.bench_function("stdmap_get", |b| {
        b.iter(|| {
            j = (j + 7) % 10_000;
            *std_map.get(&j).unwrap()
        })
    });
}

fn bench_tuple_codec(c: &mut Criterion) {
    let tuple = Tuple::new(vec![
        Value::Int(42),
        Value::Float(1.5),
        Value::str("customer-name"),
        Value::Null,
    ]);
    c.bench_function("tuple_encode", |b| b.iter(|| tuple.encode()));
    let bytes = tuple.encode();
    c.bench_function("tuple_decode", |b| {
        b.iter(|| Tuple::decode(&bytes).unwrap())
    });
}

fn bench_cc_primitives(c: &mut Criterion) {
    let lm = LockManager::new();
    let rid = Rid::new(TableId(0), PartitionId(0), 0);
    let mut t = 0u64;
    c.bench_function("lock_pair", |b| {
        b.iter(|| {
            t += 1;
            lm.acquire(TxnId(t), rid, LockMode::Exclusive, LockPolicy::WaitDie)
                .unwrap();
            lm.release(TxnId(t), rid);
        })
    });
    let seq = Sequencer::new(4);
    c.bench_function("sequencer_stamp", |b| b.iter(|| seq.stamp(0)));
}

fn bench_zipf(c: &mut Criterion) {
    let z = Zipf::new(100_000, 0.99);
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("zipf_sample", |b| b.iter(|| z.sample(&mut rng)));
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_spsc, bench_hash, bench_tuple_codec, bench_cc_primitives, bench_zipf
}

fn main() {
    // The probe first: this single number justifies the virtual-time
    // simulator for the OLTP figures.
    let ratio = host_scaling_probe();
    println!();
    println!("host 2-thread scaling of a memory-touching loop: {ratio:.2}x (ideal 2.0x)");
    println!("(OLTP figures therefore run in virtual time; see DESIGN.md §2)");
    println!();
    benches();
    Criterion::default().final_summary();
}
