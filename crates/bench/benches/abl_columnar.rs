//! Ablation: row vs columnar data streams on the Q3 scan→flow→probe
//! pipeline (PR 3 tentpole).
//!
//! Both arms run the full disaggregated pipeline over instant links
//! (three producer scans feeding the two-join compute consumer), on the
//! same database:
//!
//! * **row**: `stream_scan` clones a heap `Tuple` per row, flows apply
//!   the Q3 filters per tuple en route, and every value pays a wire tag —
//!   the PR 2 state of the data streams.
//! * **columnar**: `stream_scan_columns` materializes straight into
//!   `ColumnBatch` vectors with the filters and key projections pushed
//!   down to the scan, the wire spends one tag per column, and the
//!   consumer builds/probes from column slices without materializing a
//!   row (`Q3Compute::run_columns`).
//!
//! Reported: pipeline throughput in M input rows/s (rows scanned per
//! wall-clock second, identical input for both arms) and the modeled
//! wire bytes per stream. Acceptance (gated in CI via
//! `tools/bench_gate.rs` against `tools/bench_baseline.json`): columnar
//! ≥ 2× row throughput and lower wire bytes on *every* stream.
//!
//! Run-to-run variance: throughput medians over `REPS` runs move a few
//! percent on the 1-core CI host (producer/consumer share the core, so
//! scheduler noise largely cancels out of the ratio); the wire-byte
//! ratio is fully deterministic. The checked-in floor (2.0) is the
//! acceptance threshold, not the (higher) measured value, so normal
//! jitter never trips the 15%-tolerance gate.
//!
//! The run emits `BENCH_columnar.json` at the repo root for the gate and
//! the CI artifact.

use std::sync::Arc;
use std::time::Instant;

use anydb_bench::{bench_json_path, figure_header, median, row, write_flat_json};
use anydb_core::olap::{exec_q3_local, stream_scan, stream_scan_columns, Q3Compute};
use anydb_stream::flow::{ColFlowSender, Flow, FlowSender};
use anydb_stream::link::{LinkSpec, SimLink};
use anydb_workload::chbench::Q3Spec;
use anydb_workload::tpcc::{TpccConfig, TpccDb};

/// Rows per wire batch (the fig6 default).
const BATCH_ROWS: usize = 512;
/// Timed repetitions per arm; the median filters scheduler noise.
const REPS: usize = 5;

struct ArmResult {
    secs: f64,
    rows: usize,
    stream_bytes: [usize; 3],
}

/// One row-path pipeline execution: filtered full-row streams (what
/// beaming shipped before the columnar path), two-join consumer.
fn run_row(db: &Arc<TpccDb>, spec: Q3Spec) -> ArmResult {
    let (ctx, crx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
    let (ntx, nrx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
    let (otx, orx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
    let start = Instant::now();
    let producers = {
        let db = db.clone();
        std::thread::spawn(move || {
            stream_scan(
                &db.customer,
                FlowSender::new(
                    ctx,
                    Flow::identity().filter(move |t| spec.customer_filter(t)),
                ),
                BATCH_ROWS,
            );
            stream_scan(
                &db.neworder,
                FlowSender::new(ntx, Flow::identity()),
                BATCH_ROWS,
            );
            stream_scan(
                &db.orders,
                FlowSender::new(otx, Flow::identity().filter(move |t| spec.order_filter(t))),
                BATCH_ROWS,
            );
        })
    };
    let result = Q3Compute::new(spec).run(crx, nrx, orx);
    producers.join().unwrap();
    ArmResult {
        secs: start.elapsed().as_secs_f64(),
        rows: result.rows,
        stream_bytes: result.stream_bytes,
    }
}

/// One columnar pipeline execution: key projections with predicate
/// pushdown at the scan, vectorized build/probe.
fn run_col(db: &Arc<TpccDb>, spec: Q3Spec) -> ArmResult {
    let (ctx, crx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
    let (ntx, nrx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
    let (otx, orx) = SimLink::channel(LinkSpec::instant(), 1 << 14);
    let start = Instant::now();
    let producers = {
        let db = db.clone();
        std::thread::spawn(move || {
            stream_scan_columns(
                &db.customer,
                ColFlowSender::new(ctx, Flow::identity()),
                BATCH_ROWS,
                &Q3Spec::CUSTOMER_KEY_PROJ,
                Some(&spec.customer_pred()),
            );
            stream_scan_columns(
                &db.neworder,
                ColFlowSender::new(ntx, Flow::identity()),
                BATCH_ROWS,
                &Q3Spec::NEWORDER_KEY_PROJ,
                None,
            );
            stream_scan_columns(
                &db.orders,
                ColFlowSender::new(otx, Flow::identity()),
                BATCH_ROWS,
                &Q3Spec::ORDER_KEY_PROJ,
                Some(&spec.order_pred()),
            );
        })
    };
    let result = Q3Compute::new(spec).run_columns(crx, nrx, orx);
    producers.join().unwrap();
    ArmResult {
        secs: start.elapsed().as_secs_f64(),
        rows: result.rows,
        stream_bytes: result.stream_bytes,
    }
}

fn main() {
    figure_header(
        "Ablation: row vs columnar Q3 scan→flow→probe pipeline",
        "Instant links, 512-row batches; row arm = per-tuple clone + flow\n\
         filters + per-value wire tags, columnar arm = scan pushdown +\n\
         packed column wire + vectorized probe.",
    );

    // Figure-6 database scale, slightly enlarged so one pipeline run is
    // long enough to time stably on the CI host.
    let cfg = TpccConfig {
        warehouses: 4,
        districts_per_warehouse: 10,
        customers_per_district: 500,
        items: 100,
        orders_per_district: 1000,
        open_order_fraction: 0.3,
        lines_per_order: 1,
        ..TpccConfig::default()
    };
    let db = Arc::new(TpccDb::load(cfg, 0xC01).unwrap());
    let spec = Q3Spec::default();
    let input_rows = db.customer.row_count() + db.neworder.row_count() + db.orders.row_count();
    let oracle = exec_q3_local(&db, &spec);

    // Warmup: fault in tables, warm the allocator.
    let _ = run_row(&db, spec);
    let _ = run_col(&db, spec);

    let mut row_secs = Vec::new();
    let mut col_secs = Vec::new();
    let mut row_bytes = [0usize; 3];
    let mut col_bytes = [0usize; 3];
    for _ in 0..REPS {
        let r = run_row(&db, spec);
        assert_eq!(r.rows, oracle, "row path diverged from the oracle");
        row_bytes = r.stream_bytes;
        row_secs.push(r.secs);
        let c = run_col(&db, spec);
        assert_eq!(c.rows, oracle, "columnar path diverged from the oracle");
        col_bytes = c.stream_bytes;
        col_secs.push(c.secs);
    }

    let row_tput = input_rows as f64 / median(row_secs);
    let col_tput = input_rows as f64 / median(col_secs);
    let row_total: usize = row_bytes.iter().sum();
    let col_total: usize = col_bytes.iter().sum();

    let widths = [12usize, 16, 16, 14];
    row(
        &[
            "arm".into(),
            "M rows/s".into(),
            "wire KB total".into(),
            "KB c/n/o".into(),
        ],
        &widths,
    );
    for (label, tput, bytes) in [
        ("row", row_tput, row_bytes),
        ("columnar", col_tput, col_bytes),
    ] {
        row(
            &[
                label.into(),
                format!("{:.2}", tput / 1e6),
                format!("{:.0}", bytes.iter().sum::<usize>() as f64 / 1024.0),
                format!(
                    "{:.0}/{:.0}/{:.0}",
                    bytes[0] as f64 / 1024.0,
                    bytes[1] as f64 / 1024.0,
                    bytes[2] as f64 / 1024.0
                ),
            ],
            &widths,
        );
    }

    for i in 0..3 {
        assert!(
            col_bytes[i] < row_bytes[i],
            "stream {i}: columnar wire bytes not lower ({} vs {})",
            col_bytes[i],
            row_bytes[i]
        );
    }

    let tput_ratio = col_tput / row_tput;
    let wire_ratio = row_total as f64 / col_total as f64;
    println!();
    println!(
        "columnar/row throughput: {tput_ratio:.2}x   row/columnar wire bytes: {wire_ratio:.2}x"
    );
    println!("(acceptance: throughput >= 2.0x, wire ratio > 1 on every stream)");

    let pairs: Vec<(String, f64)> = vec![
        ("row_q3_mrows_s".into(), row_tput / 1e6),
        ("col_q3_mrows_s".into(), col_tput / 1e6),
        ("row_wire_kb".into(), row_total as f64 / 1024.0),
        ("col_wire_kb".into(), col_total as f64 / 1024.0),
        ("ratio_columnar_vs_row_q3".into(), tput_ratio),
        ("ratio_wire_bytes_row_vs_columnar".into(), wire_ratio),
    ];
    let out = bench_json_path("BENCH_COLUMNAR_JSON", "BENCH_columnar.json");
    write_flat_json(&out, &pairs);
    println!();
    println!("wrote {}", out.display());
}
