//! Figure 1 — OLTP throughput of AnyDB vs. DBx1000 across the evolving
//! 12-phase workload (partitionable OLTP → skewed OLTP → skewed HTAP →
//! partitionable HTAP).
//!
//! Primary source: the virtual-time simulator (`anydb-sim`, see DESIGN.md
//! §2 on the multi-core substitution). A short real-engine validation run
//! follows, executing the same strategies with live threads to confirm
//! the architectural orderings with actual storage mutations.

use std::sync::Arc;
use std::time::Duration;

use anydb_bench::{figure_header, mtps, row};
use anydb_core::{AnyDbEngine, EngineConfig, Strategy};
use anydb_dbx1000::{Dbx1000, Dbx1000Config};
use anydb_sim::figure1_series;
use anydb_workload::phases::PhaseSchedule;
use anydb_workload::tpcc::{TpccConfig, TpccDb};

fn main() {
    figure_header(
        "Figure 1: AnyDB vs DBx1000 across an evolving workload",
        "y-axis: OLTP throughput only (M tx/s), OLAP excluded as in the paper.\n\
         Simulated testbed: 4 workers; AnyDB adapts its architecture per phase\n\
         (shared-nothing when partitionable, streaming CC when skewed, OLAP on\n\
         disaggregated ACs in HTAP phases); DBx1000 is statically partitioned.",
    );

    let horizon = Duration::from_millis(400);
    let (anydb, dbx) = figure1_series(4, horizon, 0xF161);

    let widths = [5usize, 20, 12, 12, 14];
    row(
        &[
            "phase".into(),
            "regime".into(),
            "AnyDB".into(),
            "DBx1000".into(),
            "AnyDB OLAP q/s".into(),
        ],
        &widths,
    );
    for (a, d) in anydb.iter().zip(&dbx) {
        row(
            &[
                a.phase.to_string(),
                a.phase_label.to_string(),
                format!("{:.2}", a.mtps),
                format!("{:.2}", d.mtps),
                format!("{:.0}", a.olap_qps),
            ],
            &widths,
        );
    }

    println!();
    println!("-- real-engine validation (live threads, wall-clock; correctness-");
    println!("   grade numbers on this host, not paper-scale: see DESIGN.md) --");
    let cfg = TpccConfig {
        warehouses: 2,
        ..TpccConfig::default()
    };
    let db = Arc::new(TpccDb::load(cfg.clone(), 0xF161).unwrap());
    let schedule = PhaseSchedule::figure1();
    let phase_time = Duration::from_millis(120);

    let anydb_engine = AnyDbEngine::new(
        db.clone(),
        EngineConfig {
            strategy: Strategy::SharedNothing,
            acs: 2,
            ..Default::default()
        },
    );
    let any_real = anydb_engine.run_schedule(&schedule, phase_time, 1);

    let db2 = Arc::new(TpccDb::load(cfg, 0xF162).unwrap());
    let baseline = Dbx1000::new(
        db2,
        Dbx1000Config {
            executors: 2,
            payment_fraction: 1.0,
            ..Default::default()
        },
    );
    let dbx_real = baseline.run_schedule(&schedule, phase_time, 1);

    let widths = [5usize, 20, 14, 14];
    row(
        &[
            "phase".into(),
            "regime".into(),
            "AnyDB tx/s".into(),
            "DBx1000 tx/s".into(),
        ],
        &widths,
    );
    for ((p, a), (_, d)) in any_real.iter().zip(&dbx_real) {
        row(
            &[
                p.index.to_string(),
                p.kind.label().to_string(),
                format!("{:.0}", a.tx_per_sec()),
                format!("{:.0}", d.tx_per_sec()),
            ],
            &widths,
        );
    }
    let _ = mtps(0.0);
}
