//! Ablation: concurrency-control schemes under a contention sweep.
//!
//! §3.3's claim is that ordered event routing removes the coordination
//! charge that lock-based CC pays precisely when contention is high.
//! Two measurements:
//!
//! 1. virtual-time throughput of wait-die 2PL (DBx TEs) vs streaming CC
//!    as the fraction of transactions hitting warehouse 1 rises,
//! 2. real single-thread microcosts: a lock acquire/release pair vs a
//!    sequencer stamp (the per-record coordination primitive each scheme
//!    pays).

use std::time::{Duration, Instant};

use anydb_bench::{figure_header, row};
use anydb_common::dist::HotSpot;
use anydb_common::{PartitionId, Rid, TableId, TxnId};
use anydb_sim::{CostModel, SimStrategy, Simulator};
use anydb_txn::lock::{LockManager, LockMode, LockPolicy};
use anydb_txn::sequencer::Sequencer;
use anydb_workload::phases::PhaseKind;
use anydb_workload::tpcc::TpccConfig;

fn main() {
    figure_header(
        "Ablation: CC under contention (2PL wait-die vs streaming CC)",
        "Virtual-time throughput while sweeping the share of transactions\n\
         that target warehouse 1 (4 workers; 1.0 = Figure 5's skewed phases).",
    );

    let sim = Simulator::new(
        CostModel::default(),
        TpccConfig {
            warehouses: 4,
            ..TpccConfig::default()
        },
    );
    let horizon = Duration::from_millis(200);
    let widths = [12usize, 14, 16, 10];
    row(
        &[
            "hot share".into(),
            "2PL (M tx/s)".into(),
            "stream (M tx/s)".into(),
            "factor".into(),
        ],
        &widths,
    );
    for hot in [0.0f64, 0.25, 0.5, 0.75, 1.0] {
        // hot fraction of txns on warehouse 1, rest uniform.
        let dist = if hot == 0.0 {
            HotSpot::uniform(4)
        } else {
            HotSpot::new(4, 1, hot.max(0.25))
        };
        let twopl = sim.run_with_dist(
            SimStrategy::DbxTe { executors: 4 },
            PhaseKind::OltpPartitionable,
            dist,
            horizon,
            7,
        );
        let streaming = sim.run_with_dist(
            SimStrategy::StreamingCc { acs: 4 },
            PhaseKind::OltpPartitionable,
            dist,
            horizon,
            7,
        );
        row(
            &[
                format!("{hot:.2}"),
                format!("{:.2}", twopl.tx_per_sec() / 1e6),
                format!("{:.2}", streaming.tx_per_sec() / 1e6),
                format!("{:.2}x", streaming.tx_per_sec() / twopl.tx_per_sec()),
            ],
            &widths,
        );
    }

    println!();
    println!("-- real microcosts of the coordination primitives --");
    const N: u64 = 1_000_000;
    let lm = LockManager::new();
    let rid = Rid::new(TableId(0), PartitionId(0), 0);
    let start = Instant::now();
    for i in 0..N {
        lm.acquire(TxnId(i), rid, LockMode::Exclusive, LockPolicy::WaitDie)
            .unwrap();
        lm.release(TxnId(i), rid);
    }
    let lock_ns = start.elapsed().as_nanos() as f64 / N as f64;

    let seq = Sequencer::new(1);
    let start = Instant::now();
    for _ in 0..N {
        std::hint::black_box(seq.stamp(0));
    }
    let stamp_ns = start.elapsed().as_nanos() as f64 / N as f64;

    println!("lock acquire+release pair: {lock_ns:.0} ns");
    println!("sequencer stamp:           {stamp_ns:.0} ns");
    println!("ratio: {:.1}x", lock_ns / stamp_ns);
}
