//! Ablation: row vs columnar **HTAP-local** Q3 (PR 4 tentpole), plus the
//! zero-copy `ColumnBatch::split` microbench.
//!
//! All Q3 arms are the fully-aggregated execution an HTAP OLAP worker
//! runs inline for `Event::QueryQ3` — no streams, one thread, same
//! database:
//!
//! * **row**: `exec_q3_local_rows` — per-row latch, per-`Value` key
//!   extraction, tuple-keyed hash sets (the PR 3 state of the HTAP path).
//! * **columnar**: `exec_q3_local` — epoch-validated shared snapshot
//!   scans (`scan_columns_snapshot_shared`: latch-free chunked
//!   materialization with filters + key projections pushed down, cached
//!   per partition and served as zero-copy views while the partition is
//!   quiescent) feeding dense-bitmap joins over zipped key slices. This
//!   is the steady-state HTAP number: standing queries ride one shared
//!   scan, SharedDB-style.
//! * **columnar cold**: the same execution with every partition of all
//!   three tables written between queries, so every scan re-materializes
//!   — the floor the columnar path degrades to under a 100%-write-racing
//!   OLTP load (reported, not gated: it hovers around the row arm, since
//!   both are bound by the same per-row tuple cache misses).
//!
//! The split microbench pins the zero-copy claim: splitting a batch into
//! a fixed number of wire batches must cost the same whether the batch
//! holds 4k or 64k rows (views over shared buffers), where the copying
//! implementation scaled linearly with the row count.
//!
//! Acceptance (gated in CI via `tools/bench_gate.rs`): steady-state
//! columnar ≥ 1.8× row throughput, and the 64k/4k split-latency ratio
//! stays ~flat (ceiling 2.0 — the pre-refactor copying split measured
//! ~16× here). Run-to-run variance: the gated Q3 ratio moved well under
//! 15% over repeated runs on the 1-core CI host (single-threaded arms,
//! so scheduler noise largely cancels); the floor 1.8 is the acceptance
//! threshold, far below the measured value, so normal jitter never trips
//! the 15%-tolerance gate.
//!
//! The run emits `BENCH_htap.json` at the repo root for the gate and the
//! CI artifact.

use std::hint::black_box;
use std::time::Instant;

use anydb_bench::{bench_json_path, figure_header, median, row, write_flat_json};
use anydb_common::{ColumnBatch, DataType, PartitionId, Rid, Value};
use anydb_core::olap::{exec_q3_local, exec_q3_local_rows};
use anydb_storage::Table;
use anydb_workload::chbench::Q3Spec;
use anydb_workload::tpcc::{TpccConfig, TpccDb};

/// Timed repetitions per arm; the median filters scheduler noise.
const REPS: usize = 5;
/// Wire batches per split in the microbench (fixed, so only the input
/// row count varies).
const SPLIT_PARTS: usize = 16;
/// Split timing iterations per input size.
const SPLIT_ITERS: usize = 20_000;

fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Bumps the write epoch of every partition of `table` with an identity
/// update (rewrites column 0 of slot 0 with its current value): no data
/// or index changes, but every cached shared scan is invalidated —
/// exactly what one racing OLTP write per partition does.
fn dirty_table(table: &Table) {
    for p in 0..table.partition_count() {
        let rid = Rid::new(table.id(), PartitionId(p), 0);
        table
            .update(rid, |tu| {
                let v = tu.get(0).clone();
                tu.set(0, v);
            })
            .unwrap();
    }
}

/// Invalidates every shared scan in the Q3 working set.
fn dirty_q3_tables(db: &TpccDb) {
    dirty_table(&db.customer);
    dirty_table(&db.neworder);
    dirty_table(&db.orders);
}

/// Builds a `(int, int, int, str)` batch of `rows` rows — the key-ish
/// shape Q3 streams ship, plus a string column so a copying split would
/// pay arena memcpys too.
fn split_input(rows: usize) -> ColumnBatch {
    let types = [DataType::Int, DataType::Int, DataType::Int, DataType::Str];
    let mut b = ColumnBatch::new(&types);
    let mut app = b.appender();
    app.reserve(rows);
    for i in 0..rows as i64 {
        app.push_row(&[
            Value::Int(i % 4),
            Value::Int(i % 10),
            Value::Int(i),
            Value::str("payload"),
        ])
        .unwrap();
    }
    drop(app);
    b
}

/// Median seconds per split of `rows` rows into [`SPLIT_PARTS`] batches.
fn time_split(rows: usize) -> f64 {
    let input = split_input(rows);
    let batch_rows = rows.div_ceil(SPLIT_PARTS);
    let mut samples = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let start = Instant::now();
        for _ in 0..SPLIT_ITERS {
            // Clone is O(columns) on shared buffers; split consumes it.
            let parts = black_box(input.clone()).split(batch_rows);
            debug_assert_eq!(parts.len(), SPLIT_PARTS);
            black_box(parts);
        }
        samples.push(start.elapsed().as_secs_f64() / SPLIT_ITERS as f64);
    }
    median(samples)
}

fn main() {
    figure_header(
        "Ablation: row vs columnar HTAP-local Q3 + zero-copy split",
        "Single thread, same database; row arm = per-row latches + tuple\n\
         hash sets, columnar arm = snapshot scans with pushdown + bitmap\n\
         joins over key slices. Split: 16 wire batches from 4k vs 64k rows.",
    );

    // abl_columnar's database scale: long enough to time stably on the
    // CI host, small enough to load in seconds.
    let cfg = TpccConfig {
        warehouses: 4,
        districts_per_warehouse: 10,
        customers_per_district: 500,
        items: 100,
        orders_per_district: 1000,
        open_order_fraction: 0.3,
        lines_per_order: 1,
        ..TpccConfig::default()
    };
    let db = TpccDb::load(cfg, 0x47A9).unwrap();
    let spec = Q3Spec::default();
    let input_rows = db.customer.row_count() + db.neworder.row_count() + db.orders.row_count();

    // Warmup both arms (fault in tables, warm the allocator) and check
    // agreement once — also on a bounded window, so the IntBetween
    // pushdown path is exercised.
    let oracle = exec_q3_local_rows(&db, &spec);
    assert_eq!(exec_q3_local(&db, &spec), oracle, "columnar diverged");
    let windowed = Q3Spec {
        entry_date_max: 20091231,
        ..Q3Spec::default()
    };
    assert_eq!(
        exec_q3_local(&db, &windowed),
        exec_q3_local_rows(&db, &windowed),
        "columnar diverged on the bounded window"
    );

    let mut row_secs = Vec::new();
    let mut col_secs = Vec::new();
    let mut cold_secs = Vec::new();
    for _ in 0..REPS {
        let (rows, secs) = timed(|| exec_q3_local_rows(&db, &spec));
        assert_eq!(rows, oracle);
        row_secs.push(secs);
        // Cold arm: every partition written since the last query, so all
        // shared scans re-materialize.
        dirty_q3_tables(&db);
        let (rows, secs) = timed(|| exec_q3_local(&db, &spec));
        assert_eq!(rows, oracle);
        cold_secs.push(secs);
        // Steady-state arm: the database is quiescent, the query rides
        // the shared scans the cold run just materialized.
        let (rows, secs) = timed(|| exec_q3_local(&db, &spec));
        assert_eq!(rows, oracle);
        col_secs.push(secs);
    }
    let row_tput = input_rows as f64 / median(row_secs);
    let col_tput = input_rows as f64 / median(col_secs);
    let cold_tput = input_rows as f64 / median(cold_secs);
    let tput_ratio = col_tput / row_tput;
    let cold_ratio = cold_tput / row_tput;

    let split_4k = time_split(4096);
    let split_64k = time_split(65536);
    let split_ratio = split_64k / split_4k;

    let widths = [16usize, 16, 14];
    row(
        &["arm".into(), "M rows/s".into(), "Q3 rows".into()],
        &widths,
    );
    for (label, tput) in [
        ("row", row_tput),
        ("columnar", col_tput),
        ("columnar cold", cold_tput),
    ] {
        row(
            &[
                label.into(),
                format!("{:.2}", tput / 1e6),
                format!("{oracle}"),
            ],
            &widths,
        );
    }
    println!();
    println!(
        "columnar/row throughput: {tput_ratio:.2}x (cold {cold_ratio:.2}x)   \
         split 4k: {:.2}us   split 64k: {:.2}us   64k/4k: {split_ratio:.2}x",
        split_4k * 1e6,
        split_64k * 1e6,
    );
    println!("(acceptance: steady-state >= 1.8x, split ratio ~flat <= 2.0)");

    let pairs: Vec<(String, f64)> = vec![
        ("htap_row_q3_mrows_s".into(), row_tput / 1e6),
        ("htap_col_q3_mrows_s".into(), col_tput / 1e6),
        ("htap_col_q3_cold_mrows_s".into(), cold_tput / 1e6),
        ("ratio_htap_columnar_vs_row_q3".into(), tput_ratio),
        ("ratio_htap_columnar_cold_vs_row_q3".into(), cold_ratio),
        ("split_latency_us_4k_rows".into(), split_4k * 1e6),
        ("split_latency_us_64k_rows".into(), split_64k * 1e6),
        ("ratio_split_latency_64k_vs_4k_rows".into(), split_ratio),
    ];
    let out = bench_json_path("BENCH_HTAP_JSON", "BENCH_htap.json");
    write_flat_json(&out, &pairs);
    println!();
    println!("wrote {}", out.display());
}
