//! Ablation: row vs columnar **HTAP-local** Q3 over the per-column
//! storage mirror (PR 4–5 tentpoles), plus the zero-copy
//! `ColumnBatch::split` microbench.
//!
//! All Q3 arms are the fully-aggregated execution an HTAP OLAP worker
//! runs inline for `Event::QueryQ3` — no streams, one thread, same
//! database:
//!
//! * **row**: `exec_q3_local_rows` — per-row latch, per-`Value` key
//!   extraction, tuple-keyed hash sets (the PR 3 state of the HTAP path).
//! * **columnar**: `exec_q3_local` — epoch-validated shared snapshot
//!   scans (`scan_columns_snapshot_shared`, served zero-copy while the
//!   scanned column sets are quiescent) feeding dense-bitmap joins over
//!   zipped key slices. This is the steady-state HTAP number: standing
//!   queries ride one shared scan, SharedDB-style.
//! * **columnar cold**: the same execution with a value-changing write
//!   landing **inside every table's projection ∪ filter column set** on
//!   every partition between queries, so every scan re-materializes.
//!   Since PR 5 re-materialization copies from the partition's column
//!   mirror (sequential typed-vector reads) instead of walking tuples
//!   (one cache miss per row), which is what moved this arm from ≈ 1.0×
//!   row to a gated multiple of it.
//! * **columnar disjoint-write**: writes between queries (`c_balance`,
//!   `o_carrier_id`) land **outside** every Q3 column set — with
//!   column-level epochs the cached shared scans survive and the arm
//!   must track the steady-state number. This is the shared-cache
//!   survival metric: OLTP payment/delivery traffic does not evict
//!   standing analytics.
//!
//! The split microbench pins the zero-copy claim: splitting a batch into
//! a fixed number of wire batches must cost the same whether the batch
//! holds 4k or 64k rows (views over shared buffers), where the copying
//! implementation scaled linearly with the row count.
//!
//! Acceptance (gated in CI via `tools/bench_gate.rs`): steady-state
//! columnar ≥ 1.8× row throughput, cold ≥ 2.0× (the mirror's reason to
//! exist at this scale), disjoint-write ≥ 4.0× (must beat cold by
//! riding the cache; observed ≈ steady-state), and the 64k/4k
//! split-latency ratio stays ~flat (ceiling 2.0 — the pre-refactor
//! copying split measured ~16×). Run-to-run variance: the gated ratios
//! moved well under 15% over repeated runs on the 1-core CI host
//! (single-threaded arms, so scheduler noise largely cancels); the
//! floors sit far below the measured values, so normal jitter never
//! trips the 15%-tolerance gate.
//!
//! The run emits `BENCH_htap.json` at the repo root for the gate and the
//! CI artifact.

use std::hint::black_box;
use std::time::Instant;

use anydb_bench::{bench_json_path, figure_header, median, row, write_flat_json};
use anydb_common::{ColumnBatch, DataType, PartitionId, Rid, Tuple, Value};
use anydb_core::olap::{exec_q3_local, exec_q3_local_rows};
use anydb_storage::Table;
use anydb_workload::chbench::Q3Spec;
use anydb_workload::tpcc::{cols, TpccConfig, TpccDb};

/// Timed repetitions per arm; the median filters scheduler noise.
const REPS: usize = 5;
/// Wire batches per split in the microbench (fixed, so only the input
/// row count varies).
const SPLIT_PARTS: usize = 16;
/// Split timing iterations per input size.
const SPLIT_ITERS: usize = 20_000;

fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Applies `f` to slot 0 of every partition of `table` — one racing OLTP
/// write per partition.
fn write_each_partition(table: &Table, mut f: impl FnMut(&mut Tuple)) {
    for p in 0..table.partition_count() {
        let rid = Rid::new(table.id(), PartitionId(p), 0);
        table.update(rid, |tu| f(tu)).unwrap();
    }
}

/// One **value-changing** write per partition inside every table's Q3
/// projection ∪ filter column set, invalidating all cached shared scans
/// (column-level epochs ignore writes that change nothing, so the old
/// identity-update trick would leave the cache warm). The Q3 result is
/// provably unchanged:
/// * customer: rewrite `c_state` keeping its first character — the
///   filter only reads the prefix, the join keys are untouched;
/// * orders: advance `o_entry_d` by a day — still inside the open-ended
///   date window;
/// * neworder: all three columns are join keys, so no in-place write is
///   result-neutral — append a sentinel row with a fresh **negative**
///   `no_o_id` instead (no order ever matches it, and the grown prefix
///   invalidates the partition like any append).
fn dirty_q3_tables(db: &TpccDb, round: &mut i64) {
    *round += 1;
    let n = *round;
    write_each_partition(&db.customer, |tu| {
        let state = tu.get(cols::customer::C_STATE).as_str().unwrap();
        let head = &state[..1];
        tu.set(cols::customer::C_STATE, Value::str(format!("{head}{n}")));
    });
    write_each_partition(&db.orders, |tu| {
        let d = tu.get(cols::orders::O_ENTRY_D).as_int().unwrap();
        tu.set(cols::orders::O_ENTRY_D, Value::Int(d + 1));
    });
    for w in 1..=db.neworder.partition_count() as i64 {
        db.neworder
            .insert(Tuple::new(vec![
                Value::Int(w),
                Value::Int(1),
                Value::Int(-(n * 64 + w)),
            ]))
            .unwrap();
    }
}

/// One write per partition to columns **outside** every Q3 column set —
/// the payment/delivery shape (`c_balance`, `o_carrier_id`). With
/// column-level epochs the cached shared scans must survive these
/// untouched. (New-order rows are pure join keys; its real OLTP traffic
/// is insert/delete, which legitimately invalidates, so it stays
/// quiescent in this arm.)
fn dirty_disjoint_columns(db: &TpccDb, round: &mut i64) {
    *round += 1;
    let n = *round;
    write_each_partition(&db.customer, |tu| {
        tu.set(cols::customer::C_BALANCE, Value::Float(n as f64 + 0.25));
    });
    write_each_partition(&db.orders, |tu| {
        tu.set(cols::orders::O_CARRIER_ID, Value::Int(n));
    });
}

/// Builds a `(int, int, int, str)` batch of `rows` rows — the key-ish
/// shape Q3 streams ship, plus a string column so a copying split would
/// pay arena memcpys too.
fn split_input(rows: usize) -> ColumnBatch {
    let types = [DataType::Int, DataType::Int, DataType::Int, DataType::Str];
    let mut b = ColumnBatch::new(&types);
    let mut app = b.appender();
    app.reserve(rows);
    for i in 0..rows as i64 {
        app.push_row(&[
            Value::Int(i % 4),
            Value::Int(i % 10),
            Value::Int(i),
            Value::str("payload"),
        ])
        .unwrap();
    }
    drop(app);
    b
}

/// Median seconds per split of `rows` rows into [`SPLIT_PARTS`] batches.
fn time_split(rows: usize) -> f64 {
    let input = split_input(rows);
    let batch_rows = rows.div_ceil(SPLIT_PARTS);
    let mut samples = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let start = Instant::now();
        for _ in 0..SPLIT_ITERS {
            // Clone is O(columns) on shared buffers; split consumes it.
            let parts = black_box(input.clone()).split(batch_rows);
            debug_assert_eq!(parts.len(), SPLIT_PARTS);
            black_box(parts);
        }
        samples.push(start.elapsed().as_secs_f64() / SPLIT_ITERS as f64);
    }
    median(samples)
}

fn main() {
    figure_header(
        "Ablation: row vs columnar HTAP-local Q3 + zero-copy split",
        "Single thread, same database; row arm = per-row latches + tuple\n\
         hash sets, columnar arm = snapshot scans with pushdown + bitmap\n\
         joins over key slices. Split: 16 wire batches from 4k vs 64k rows.",
    );

    // abl_columnar's database scale: long enough to time stably on the
    // CI host, small enough to load in seconds.
    let cfg = TpccConfig {
        warehouses: 4,
        districts_per_warehouse: 10,
        customers_per_district: 500,
        items: 100,
        orders_per_district: 1000,
        open_order_fraction: 0.3,
        lines_per_order: 1,
        ..TpccConfig::default()
    };
    let db = TpccDb::load(cfg, 0x47A9).unwrap();
    let spec = Q3Spec::default();
    let input_rows = db.customer.row_count() + db.neworder.row_count() + db.orders.row_count();

    // Warmup both arms (fault in tables, warm the allocator) and check
    // agreement once — also on a bounded window, so the IntBetween
    // pushdown path is exercised.
    let oracle = exec_q3_local_rows(&db, &spec);
    assert_eq!(exec_q3_local(&db, &spec), oracle, "columnar diverged");
    let windowed = Q3Spec {
        entry_date_max: 20091231,
        ..Q3Spec::default()
    };
    assert_eq!(
        exec_q3_local(&db, &windowed),
        exec_q3_local_rows(&db, &windowed),
        "columnar diverged on the bounded window"
    );

    // Functional check of the survival claim before timing anything: a
    // cached customer key scan must be served from the very same buffers
    // across a disjoint-column write, and re-materialize after a write
    // inside its column set.
    let mut dirty_round = 0i64;
    {
        let proj = Q3Spec::CUSTOMER_KEY_PROJ;
        let pred = spec.customer_pred();
        let p0 = PartitionId(0);
        let (before, _) = db
            .customer
            .scan_columns_snapshot_shared(p0, &proj, Some(&pred))
            .unwrap();
        dirty_disjoint_columns(&db, &mut dirty_round);
        let (after, _) = db
            .customer
            .scan_columns_snapshot_shared(p0, &proj, Some(&pred))
            .unwrap();
        assert!(
            after.column(0).shares_buffer_with(before.column(0)),
            "disjoint-column write must not evict the cached shared scan"
        );
        dirty_q3_tables(&db, &mut dirty_round);
        let (evicted, _) = db
            .customer
            .scan_columns_snapshot_shared(p0, &proj, Some(&pred))
            .unwrap();
        assert!(
            !evicted.column(0).shares_buffer_with(before.column(0)),
            "in-set write must re-materialize the shared scan"
        );
    }

    let mut row_secs = Vec::new();
    let mut col_secs = Vec::new();
    let mut cold_secs = Vec::new();
    let mut disjoint_secs = Vec::new();
    for _ in 0..REPS {
        let (rows, secs) = timed(|| exec_q3_local_rows(&db, &spec));
        assert_eq!(rows, oracle);
        row_secs.push(secs);
        // Cold arm: every partition's Q3 column set written since the
        // last query, so all shared scans re-materialize (from the
        // column mirror).
        dirty_q3_tables(&db, &mut dirty_round);
        let (rows, secs) = timed(|| exec_q3_local(&db, &spec));
        assert_eq!(rows, oracle);
        cold_secs.push(secs);
        // Steady-state arm: the database is quiescent, the query rides
        // the shared scans the cold run just materialized.
        let (rows, secs) = timed(|| exec_q3_local(&db, &spec));
        assert_eq!(rows, oracle);
        col_secs.push(secs);
        // Disjoint-write arm: OLTP writes race, but only to columns
        // outside the Q3 sets — the caches must survive.
        dirty_disjoint_columns(&db, &mut dirty_round);
        let (rows, secs) = timed(|| exec_q3_local(&db, &spec));
        assert_eq!(rows, oracle);
        disjoint_secs.push(secs);
    }
    let row_tput = input_rows as f64 / median(row_secs);
    let col_tput = input_rows as f64 / median(col_secs);
    let cold_tput = input_rows as f64 / median(cold_secs);
    let disjoint_tput = input_rows as f64 / median(disjoint_secs);
    let tput_ratio = col_tput / row_tput;
    let cold_ratio = cold_tput / row_tput;
    let disjoint_ratio = disjoint_tput / row_tput;

    let split_4k = time_split(4096);
    let split_64k = time_split(65536);
    let split_ratio = split_64k / split_4k;

    let widths = [16usize, 16, 14];
    row(
        &["arm".into(), "M rows/s".into(), "Q3 rows".into()],
        &widths,
    );
    for (label, tput) in [
        ("row", row_tput),
        ("columnar", col_tput),
        ("columnar cold", cold_tput),
        ("col disjoint-write", disjoint_tput),
    ] {
        row(
            &[
                label.into(),
                format!("{:.2}", tput / 1e6),
                format!("{oracle}"),
            ],
            &widths,
        );
    }
    println!();
    println!(
        "columnar/row throughput: {tput_ratio:.2}x (cold {cold_ratio:.2}x, \
         disjoint-write {disjoint_ratio:.2}x)   \
         split 4k: {:.2}us   split 64k: {:.2}us   64k/4k: {split_ratio:.2}x",
        split_4k * 1e6,
        split_64k * 1e6,
    );
    println!(
        "(acceptance: steady-state >= 1.8x, cold >= 2.0x, \
         disjoint-write >= 4.0x, split ratio ~flat <= 2.0)"
    );

    let pairs: Vec<(String, f64)> = vec![
        ("htap_row_q3_mrows_s".into(), row_tput / 1e6),
        ("htap_col_q3_mrows_s".into(), col_tput / 1e6),
        ("htap_col_q3_cold_mrows_s".into(), cold_tput / 1e6),
        ("htap_col_q3_disjoint_mrows_s".into(), disjoint_tput / 1e6),
        ("ratio_htap_columnar_vs_row_q3".into(), tput_ratio),
        ("ratio_htap_columnar_cold_vs_row_q3".into(), cold_ratio),
        ("ratio_htap_disjoint_write_vs_row_q3".into(), disjoint_ratio),
        ("split_latency_us_4k_rows".into(), split_4k * 1e6),
        ("split_latency_us_64k_rows".into(), split_64k * 1e6),
        ("ratio_split_latency_64k_vs_4k_rows".into(), split_ratio),
    ];
    let out = bench_json_path("BENCH_HTAP_JSON", "BENCH_htap.json");
    write_flat_json(&out, &pairs);
    println!();
    println!("wrote {}", out.display());
}
