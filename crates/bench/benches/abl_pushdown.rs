//! Ablation: remote pushed-down scans vs ship-then-filter (PR 7
//! tentpole, the disaggregated half of AnyDB §4's data beaming).
//!
//! A compute AC needs the qualifying order keys from a *remote* storage
//! AC. Two ways to get them over the scan wire protocol
//! (`ScanRequest`/`ScanReply`, DESIGN.md §8):
//!
//! * **pushdown**: the request carries the date predicate and the key
//!   projection. The storage AC filters at its local scan and ships only
//!   surviving key columns.
//! * **ship-then-filter**: the request carries no predicate, so the
//!   filter column (`o_entry_d`) must ride along for the compute side to
//!   re-check — every order row crosses the link, survivors or not.
//!
//! The gated metric is **modeled wire bytes**: the request frame plus
//! every encoded reply frame, exactly as the link layer charges them
//! (`ScanRequester`/`ScanResponder` meter actual encoded lengths). It is
//! deterministic — asserted bit-identical across reps — so the CI gate
//! never sees scheduler noise; wall-clock medians are reported alongside
//! but not gated.
//!
//! Acceptance (gated via `tools/bench_gate.rs`): on a selective window
//! (~3 months of an 8-year date span) pushdown beats ship-then-filter by
//! more than 2.1x on wire bytes (`ratio_pushdown_ship_vs_pushdown_bytes`;
//! observed far higher — the ship arm pays 5 columns times every row,
//! pushdown pays 4 columns times the few survivors plus the cost of
//! asking).
//!
//! The run emits `BENCH_pushdown.json` at the repo root for the gate and
//! the CI artifact.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use anydb_bench::{bench_json_path, figure_header, median, row, write_flat_json};
use anydb_common::{ColPredicate, ScanReply, ScanRequest};
use anydb_core::olap::{request_remote_scan, serve_scan_stream};
use anydb_stream::flow::Flow;
use anydb_stream::link::LinkSpec;
use anydb_stream::remote::scan_connection;
use anydb_workload::chbench::Q3Spec;
use anydb_workload::tpcc::{TpccConfig, TpccDb};

/// Timed repetitions per arm; the median filters scheduler noise (the
/// gated byte metric is deterministic and checked equal across reps).
const REPS: usize = 3;
/// Reply split granularity — pipelining batches, like the beaming runs.
const BATCH_ROWS: usize = 512;

/// abl_shared's database scale: ~40k orders whose entry dates span
/// 2004–2011, so a one-quarter window is a few percent of the table.
fn load_db() -> Arc<TpccDb> {
    let cfg = TpccConfig {
        warehouses: 4,
        districts_per_warehouse: 10,
        customers_per_district: 500,
        items: 100,
        orders_per_district: 1000,
        open_order_fraction: 0.3,
        lines_per_order: 1,
        ..TpccConfig::default()
    };
    Arc::new(TpccDb::load(cfg, 0x5A4E).unwrap())
}

/// The selective member: Q1 2007 only. Its pushdown form is the
/// `IntBetween` range over `o_entry_d`.
fn window_spec() -> Q3Spec {
    Q3Spec {
        entry_date_min: 20070101,
        entry_date_max: 20070331,
        ..Q3Spec::default()
    }
}

/// Runs one remote orders scan over an instant link and drains it.
/// Returns `(surviving rows, modeled wire bytes, seconds)`; `post` is
/// the compute-side re-check the ship-then-filter arm must pay.
fn remote_orders_scan(
    db: &Arc<TpccDb>,
    proj: &[usize],
    pred: Option<ColPredicate>,
    post: Option<&ColPredicate>,
) -> (usize, u64, f64) {
    let start = Instant::now();
    let (requester, responder) = scan_connection(LinkSpec::instant(), 1 << 12);
    let server = {
        let db = db.clone();
        std::thread::spawn(move || serve_scan_stream(&db.orders, responder))
    };
    let req = ScanRequest {
        partition: None,
        proj: proj.to_vec(),
        pred,
        batch_rows: BATCH_ROWS,
        shared: false,
    };
    let (mut rx, req_bytes) = request_remote_scan(requester, &req, &Flow::identity());
    let mut wire = req_bytes as u64;
    let mut rows = 0usize;
    let mut sel = Vec::new();
    while let Some(frame) = rx.recv_blocking() {
        wire += frame.len() as u64;
        let reply = ScanReply::decode(&frame).expect("bad reply frame");
        match post {
            Some(p) => {
                sel.clear();
                p.select(&reply.batch, &mut sel);
                rows += sel.len();
            }
            None => rows += reply.batch.rows(),
        }
    }
    server.join().unwrap();
    (rows, wire, start.elapsed().as_secs_f64())
}

fn main() {
    figure_header(
        "Ablation: remote scan pushdown vs ship-then-filter",
        "Orders keys for a one-quarter date window from a remote storage\n\
         AC. pushdown = predicate travels in the ScanRequest, survivors'\n\
         keys come back; ship = no predicate, the filter column rides\n\
         along and every row crosses the link. Gated on wire bytes.",
    );

    let db = load_db();
    let spec = window_spec();
    let pred = spec.order_pred();
    // The ship arm re-checks with the predicate rebased onto the shipped
    // projection (o_entry_d is the last ORDER_SHARED_PROJ column).
    let post = pred
        .project_columns(&Q3Spec::ORDER_SHARED_PROJ)
        .expect("o_entry_d must survive the shared projection");

    // Functional pre-check: both arms and a local (wireless) serve agree
    // on the surviving row count, and the window is genuinely selective.
    {
        let (push_rows, _, _) =
            remote_orders_scan(&db, &Q3Spec::ORDER_KEY_PROJ, Some(pred.clone()), None);
        let (ship_rows, _, _) =
            remote_orders_scan(&db, &Q3Spec::ORDER_SHARED_PROJ, None, Some(&post));
        let req = ScanRequest {
            partition: None,
            proj: Q3Spec::ORDER_KEY_PROJ.to_vec(),
            pred: Some(pred.clone()),
            batch_rows: 0,
            shared: false,
        };
        let (replies, scanned) = db.orders.serve_scan(&req).unwrap();
        let local_rows: usize = replies.iter().map(|r| r.batch.rows()).sum();
        assert_eq!(push_rows, local_rows, "remote pushdown diverged from local");
        assert_eq!(
            ship_rows, local_rows,
            "ship-then-filter diverged from local"
        );
        assert!(local_rows > 0, "degenerate window: no survivors");
        assert!(
            local_rows * 10 < scanned,
            "window not selective: {local_rows} of {scanned} rows survive"
        );
    }

    let mut push_bytes = Vec::new();
    let mut ship_bytes = Vec::new();
    let mut push_wall = Vec::new();
    let mut ship_wall = Vec::new();
    let mut push_rows = 0usize;
    for _ in 0..REPS {
        let (rows, bytes, secs) =
            remote_orders_scan(&db, &Q3Spec::ORDER_KEY_PROJ, Some(pred.clone()), None);
        black_box(rows);
        push_rows = rows;
        push_bytes.push(bytes);
        push_wall.push(secs);

        let (rows, bytes, secs) =
            remote_orders_scan(&db, &Q3Spec::ORDER_SHARED_PROJ, None, Some(&post));
        black_box(rows);
        ship_bytes.push(bytes);
        ship_wall.push(secs);
    }
    // Wire bytes are a deterministic function of (data, request): any
    // spread across reps means the codec or the metering broke.
    for bytes in [&push_bytes, &ship_bytes] {
        assert!(
            bytes.windows(2).all(|w| w[0] == w[1]),
            "modeled wire bytes not deterministic: {bytes:?}"
        );
    }
    let push = push_bytes[0] as f64;
    let ship = ship_bytes[0] as f64;
    let ratio = ship / push;

    let widths = [18usize, 16, 14];
    row(
        &["arm".into(), "wire bytes".into(), "wall ms".into()],
        &widths,
    );
    for (label, bytes, wall) in [
        ("pushdown", push, median(push_wall.clone())),
        ("ship-then-filter", ship, median(ship_wall.clone())),
    ] {
        row(
            &[
                label.into(),
                format!("{bytes:.0}"),
                format!("{:.2}", wall * 1e3),
            ],
            &widths,
        );
    }
    println!();
    println!("ship/pushdown wire bytes: {ratio:.2}x   surviving rows: {push_rows}");
    println!("(acceptance: pushdown beats ship-then-filter by > 2.1x on wire bytes)");

    let pairs: Vec<(String, f64)> = vec![
        ("pushdown_wire_bytes".into(), push),
        ("pushdown_ship_wire_bytes".into(), ship),
        ("pushdown_rows_shipped".into(), push_rows as f64),
        ("pushdown_wall_ms".into(), median(push_wall) * 1e3),
        ("ratio_pushdown_ship_vs_pushdown_bytes".into(), ratio),
    ];
    let out = bench_json_path("BENCH_PUSHDOWN_JSON", "BENCH_pushdown.json");
    write_flat_json(&out, &pairs);
    println!();
    println!("wrote {}", out.display());
}
