//! Ablation: beam lead time.
//!
//! How early must a beam start to hide the transfer completely? We fix
//! the link and data size and sweep the lead time (the window between
//! beam initiation and operator execution — in Figure 6 this window is
//! the query compile time). Probe time should fall linearly until the
//! transfer is fully overlapped, then flatten at the pure compute floor.

use std::sync::Arc;
use std::time::Duration;

use anydb_bench::{figure_header, ms, row};
use anydb_core::beaming::{run_q3, ArchMode, BeamVariant, BeamingConfig};
use anydb_workload::chbench::Q3Spec;
use anydb_workload::tpcc::{TpccConfig, TpccDb};

fn main() {
    figure_header(
        "Ablation: beam lead time vs probe time",
        "Beam Build & Probe, disaggregated DPI link; lead time = compile window.",
    );

    let cfg = TpccConfig {
        warehouses: 2,
        districts_per_warehouse: 10,
        customers_per_district: 300,
        items: 100,
        orders_per_district: 600,
        lines_per_order: 1,
        ..TpccConfig::default()
    };
    let db = Arc::new(TpccDb::load(cfg, 0xAB1).unwrap());
    let spec = Q3Spec::default();

    let widths = [14usize, 12, 12, 12];
    row(
        &[
            "lead ms".into(),
            "build ms".into(),
            "probe ms".into(),
            "total ms".into(),
        ],
        &widths,
    );
    let mut floor = f64::MAX;
    for lead in (0..=40).step_by(4) {
        let cfg = BeamingConfig::paper_default(
            BeamVariant::BeamBuildProbe,
            ArchMode::Disaggregated,
            Duration::from_millis(lead),
        );
        let r = run_q3(&db, spec, &cfg);
        floor = floor.min(r.probe.as_secs_f64() * 1e3);
        row(
            &[lead.to_string(), ms(r.build), ms(r.probe), ms(r.total)],
            &widths,
        );
    }
    println!();
    println!("probe floor (transfer fully hidden): {floor:.2} ms");
}
