//! Figure 6 — data beaming for CH-benCHmark Q3: (a) query execution
//! time, (b) build time, (c) probe time, as a function of query compile
//! time (0–40 ms; the paper marks the commercial optimizer "DB-C" at
//! 30 ms).
//!
//! Runs on the real engine: live producer/consumer ACs, real scans and
//! hash joins, with modeled link transfer times (aggregated = NUMA-class
//! host links where filtering costs host CPU; disaggregated = DPI-class
//! links with NIC-offloaded filter flows). Bandwidths are scaled so the
//! baseline probe transfer sits near the paper's ~30 ms; see DESIGN.md §2
//! and EXPERIMENTS.md for the constants.

use std::sync::Arc;
use std::time::Duration;

use anydb_bench::{figure_header, ms, row};
use anydb_core::beaming::{run_q3, ArchMode, BeamVariant, BeamingConfig};
use anydb_workload::chbench::Q3Spec;
use anydb_workload::tpcc::{TpccConfig, TpccDb};

fn main() {
    figure_header(
        "Figure 6: data beaming (CH-benCHmark Q3, 3 scans + 2 joins)",
        "x-axis: query compile time in ms (DB-C marker at 30 ms). Aggregated =\n\
         solid (host links), Disaggregated = dashed (DPI offload).",
    );

    let cfg = TpccConfig {
        warehouses: 4,
        districts_per_warehouse: 10,
        customers_per_district: 300,
        items: 100,
        orders_per_district: 600,
        open_order_fraction: 0.3,
        lines_per_order: 1,
        ..TpccConfig::default()
    };
    let db = Arc::new(TpccDb::load(cfg, 0xF166).unwrap());
    let spec = Q3Spec::default();

    let compile_points: Vec<u64> = (0..=40).step_by(5).collect();
    let variants = [
        BeamVariant::Baseline,
        BeamVariant::BeamBuild,
        BeamVariant::BeamBuildProbe,
    ];
    let archs = [ArchMode::Aggregated, ArchMode::Disaggregated];

    // Untimed warmup: fault in the tables and warm the allocator so the
    // first measured cell is not polluted by cold-start costs.
    let warm =
        BeamingConfig::paper_default(BeamVariant::Baseline, ArchMode::Aggregated, Duration::ZERO);
    let _ = run_q3(&db, spec, &warm);

    // Collect all runs first: runs[(variant, arch)][compile] -> result.
    let mut results = Vec::new();
    for &variant in &variants {
        for &arch in &archs {
            let mut series = Vec::new();
            for &cms in &compile_points {
                let cfg = BeamingConfig::paper_default(variant, arch, Duration::from_millis(cms));
                let r = run_q3(&db, spec, &cfg);
                series.push(r);
            }
            results.push((variant, arch, series));
        }
    }

    let mut widths = vec![34usize];
    widths.extend(std::iter::repeat_n(7usize, compile_points.len()));
    for (panel, pick) in [
        ("(a) query execution time [ms]", 0usize),
        ("(b) build time [ms]", 1),
        ("(c) probe time [ms]", 2),
    ] {
        println!("--- {panel} ---");
        let mut header = vec!["series \\ compile ms".to_string()];
        header.extend(compile_points.iter().map(|c| c.to_string()));
        row(&header, &widths);
        for (variant, arch, series) in &results {
            let mut cells = vec![format!("{} / {}", variant.label(), arch.label())];
            for r in series {
                let v = match pick {
                    0 => r.total,
                    1 => r.build,
                    _ => r.probe,
                };
                cells.push(ms(v));
            }
            row(&cells, &widths);
        }
        println!();
    }
    let rows = results[0].2[0].rows;
    println!(
        "qualifying open orders per query: {rows} (identical across all runs: {})",
        results
            .iter()
            .all(|(_, _, s)| s.iter().all(|r| r.rows == rows))
    );
}
