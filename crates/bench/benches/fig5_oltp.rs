//! Figure 5 — OLTP performance of the execution strategies under
//! partitionable (phases 0–2) and fully skewed (phases 3–5) TPC-C
//! payment: DBx1000 4TE/1TE, AnyDB shared-nothing, streaming CC, static
//! intra-txn, precise intra-txn (2 ACs).

use std::time::Duration;

use anydb_bench::{figure_header, row};
use anydb_sim::figure5_series;

fn main() {
    figure_header(
        "Figure 5: OLTP execution strategies, partitionable vs skewed",
        "Virtual-time simulation, 4 workers (precise intra-txn uses 2 ACs as in\n\
         the paper). Values are M tx/s. Phases 0-2 uniform, 3-5 100% warehouse 1.",
    );

    let horizon = Duration::from_millis(400);
    let series = figure5_series(4, horizon, 0xF165);

    let mut widths = vec![26usize];
    widths.extend(std::iter::repeat_n(8usize, 6));
    let mut header = vec!["series".to_string()];
    header.extend((0..6).map(|i| format!("ph{i}")));
    row(&header, &widths);
    for (label, points) in &series {
        let mut cells = vec![label.clone()];
        cells.extend(points.iter().map(|p| format!("{:.2}", p.mtps)));
        row(&cells, &widths);
    }

    // The paper's headline factors, printed explicitly.
    let get = |label: &str| -> f64 {
        series
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, pts)| pts[4].mtps)
            .unwrap_or(0.0)
    };
    let base = get("DBx1000 4TE");
    println!();
    println!("skewed-phase factors vs DBx1000 4TE (paper: static ~1.1x, precise ~1.7x, streaming ~2.4x):");
    println!(
        "  static {:.2}x | precise {:.2}x | streaming {:.2}x",
        get("AnyDB Static Intra-Txn") / base,
        get("AnyDB Precise Intra-Txn") / base,
        get("AnyDB Streaming CC") / base,
    );
}
