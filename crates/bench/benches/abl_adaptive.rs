//! Ablation: adaptive vs. static batch sizing (PR 2 tentpole).
//!
//! The batched event streams of PR 1 left the batch size a static knob:
//! 1 is the latency end, 64 the throughput end, and nothing picks between
//! them. This ablation measures the `AdaptiveBatch` controller against
//! both static endpoints on the two event transports:
//!
//! * **loaded**: one producer floods 2M events; both sides size their
//!   transfer chunks per their controller, fed by the queue-depth
//!   mirrors. Adaptive must match static(64) — backlog drives it to the
//!   cap almost immediately.
//! * **idle**: events trickle in one at a time; the producer-side batcher
//!   holds events until its current batch size fills (the dispatch-
//!   batcher model). Static(64) turns the trickle into multi-millisecond
//!   queueing delay; adaptive decays to per-event shipping.
//!
//! Acceptance (gated in CI via `tools/bench_gate.rs` against
//! `tools/bench_baseline.json`): adaptive ≥ 95% of static(64) events/sec
//! on both loaded transports, and far below static(64)'s idle latency.
//! The run emits `BENCH_adaptive.json` at the repo root for the gate and
//! the CI artifact.

use std::time::{Duration, Instant};

use anydb_bench::{bench_json_path, figure_header, median, row, write_flat_json};
use anydb_stream::adaptive::AdaptiveBatch;
use anydb_stream::inbox::Inbox;
use anydb_stream::spsc::{spsc_channel, PopState};

const ITEMS: u64 = 2_000_000;
const CAP: usize = 1024;
/// Trickle events for the idle-latency model.
const IDLE_EVENTS: usize = 512;
/// Inter-arrival gap of the trickle.
const IDLE_GAP: Duration = Duration::from_micros(50);
/// Loaded runs per mode; the median filters scheduler noise on the
/// 1-core CI host.
const REPS: usize = 3;

#[derive(Clone, Copy)]
enum Mode {
    Static1,
    Static64,
    Adaptive,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Static1 => "static(1)",
            Mode::Static64 => "static(64)",
            Mode::Adaptive => "adaptive(1..64)",
        }
    }

    fn controller(self) -> AdaptiveBatch {
        match self {
            Mode::Static1 => AdaptiveBatch::fixed(1),
            Mode::Static64 => AdaptiveBatch::fixed(64),
            Mode::Adaptive => AdaptiveBatch::new(1, 64),
        }
    }
}

/// Loaded SPSC transfer: producer and consumer each size their chunks
/// with their own controller, fed by the ring's occupancy.
fn bench_spsc(mode: Mode) -> f64 {
    let (mut tx, mut rx) = spsc_channel::<u64>(CAP);
    let start = Instant::now();
    let producer = std::thread::spawn(move || {
        let mut ctrl = mode.controller();
        let mut chunk: Vec<u64> = Vec::with_capacity(ctrl.max());
        let mut sent = 0u64;
        while sent < ITEMS {
            let hi = (sent + ctrl.current() as u64).min(ITEMS);
            chunk.clear();
            chunk.extend(sent..hi);
            let mut off = 0;
            while off < chunk.len() {
                match tx.push_slice(&chunk[off..]) {
                    Ok(0) => std::thread::yield_now(),
                    Ok(n) => off += n,
                    Err(_) => panic!("consumer vanished"),
                }
            }
            sent = hi;
            ctrl.observe(tx.len());
        }
    });
    let mut ctrl = mode.controller();
    let mut out: Vec<u64> = Vec::with_capacity(ctrl.max());
    let mut received = 0u64;
    loop {
        out.clear();
        match rx.pop_chunk(&mut out, ctrl.current()) {
            Ok(n) => {
                received += n as u64;
                ctrl.observe(rx.len());
            }
            Err(PopState::Empty) => std::thread::yield_now(),
            Err(PopState::Disconnected) => break,
        }
    }
    producer.join().unwrap();
    assert_eq!(received, ITEMS);
    ITEMS as f64 / start.elapsed().as_secs_f64()
}

/// Loaded inbox transfer: `send_many` / `drain_into` sized per controller.
fn bench_inbox(mode: Mode) -> f64 {
    let (tx, rx) = Inbox::<u64>::new();
    let start = Instant::now();
    let producer = std::thread::spawn(move || {
        let mut ctrl = mode.controller();
        let mut i = 0u64;
        while i < ITEMS {
            let hi = (i + ctrl.current() as u64).min(ITEMS);
            tx.send_many(i..hi);
            i = hi;
            ctrl.observe(tx.len());
        }
    });
    let mut ctrl = mode.controller();
    let mut out: Vec<u64> = Vec::with_capacity(ctrl.max());
    let mut received = 0u64;
    loop {
        out.clear();
        match rx.drain_into(&mut out, ctrl.current()) {
            Ok(n) => {
                received += n as u64;
                ctrl.observe(rx.len());
            }
            Err(PopState::Empty) => std::thread::yield_now(),
            Err(PopState::Disconnected) => break,
        }
    }
    producer.join().unwrap();
    assert_eq!(received, ITEMS);
    ITEMS as f64 / start.elapsed().as_secs_f64()
}

/// Idle-queue latency: a trickle of timestamped events through a
/// sender-side batcher that ships when the controller's current batch
/// fills (the `DispatchBatcher` hold-until-full model). Returns the mean
/// enqueue→receive latency in microseconds.
fn bench_idle_latency(mode: Mode) -> f64 {
    let (tx, rx) = Inbox::<Instant>::new();
    let producer = std::thread::spawn(move || {
        let mut ctrl = mode.controller();
        let mut pending: Vec<Instant> = Vec::with_capacity(ctrl.max());
        for _ in 0..IDLE_EVENTS {
            std::thread::sleep(IDLE_GAP);
            pending.push(Instant::now());
            if pending.len() >= ctrl.current() {
                tx.send_many(pending.drain(..));
            }
            ctrl.observe(tx.len());
        }
        if !pending.is_empty() {
            tx.send_many(pending.drain(..));
        }
    });
    let mut out: Vec<Instant> = Vec::new();
    let mut total = Duration::ZERO;
    let mut n = 0usize;
    let mut backoff = anydb_common::backoff::Backoff::new();
    loop {
        out.clear();
        match rx.drain_into(&mut out, usize::MAX) {
            Ok(_) => {
                let now = Instant::now();
                for sent in &out {
                    total += now.duration_since(*sent);
                    n += 1;
                }
                backoff.reset();
            }
            Err(PopState::Empty) => backoff.wait(),
            Err(PopState::Disconnected) => break,
        }
    }
    producer.join().unwrap();
    assert_eq!(n, IDLE_EVENTS);
    total.as_secs_f64() * 1e6 / n as f64
}

fn main() {
    figure_header(
        "Ablation: adaptive vs static batch sizing (SPSC + inbox)",
        "Loaded: 2M u64 events, one producer, one consumer, chunks sized\n\
         per mode. Idle: 512 events trickling at 50us, sender-side batcher\n\
         holds until the current batch fills.",
    );

    let modes = [Mode::Static1, Mode::Static64, Mode::Adaptive];
    let widths = [16usize, 16, 16, 18];
    row(
        &[
            "mode".into(),
            "spsc M ev/s".into(),
            "inbox M ev/s".into(),
            "idle lat us/ev".into(),
        ],
        &widths,
    );
    let mut spsc = Vec::new();
    let mut inbox = Vec::new();
    let mut idle = Vec::new();
    for &mode in &modes {
        let s = median((0..REPS).map(|_| bench_spsc(mode)).collect());
        let i = median((0..REPS).map(|_| bench_inbox(mode)).collect());
        let l = bench_idle_latency(mode);
        row(
            &[
                mode.label().into(),
                format!("{:.1}", s / 1e6),
                format!("{:.1}", i / 1e6),
                format!("{l:.1}"),
            ],
            &widths,
        );
        spsc.push(s);
        inbox.push(i);
        idle.push(l);
    }

    let pairs: Vec<(String, f64)> = vec![
        ("spsc_static1_mev_s".into(), spsc[0] / 1e6),
        ("spsc_static64_mev_s".into(), spsc[1] / 1e6),
        ("spsc_adaptive_mev_s".into(), spsc[2] / 1e6),
        ("inbox_static1_mev_s".into(), inbox[0] / 1e6),
        ("inbox_static64_mev_s".into(), inbox[1] / 1e6),
        ("inbox_adaptive_mev_s".into(), inbox[2] / 1e6),
        ("idle_latency_us_static1".into(), idle[0]),
        ("idle_latency_us_static64".into(), idle[1]),
        ("idle_latency_us_adaptive".into(), idle[2]),
        ("ratio_spsc_static64_vs_static1".into(), spsc[1] / spsc[0]),
        (
            "ratio_inbox_static64_vs_static1".into(),
            inbox[1] / inbox[0],
        ),
        ("ratio_spsc_adaptive_vs_static64".into(), spsc[2] / spsc[1]),
        (
            "ratio_inbox_adaptive_vs_static64".into(),
            inbox[2] / inbox[1],
        ),
        (
            "ratio_idle_latency_adaptive_vs_static64".into(),
            idle[2] / idle[1],
        ),
    ];

    println!();
    println!(
        "spsc  adaptive/static(64): {:.2}x   inbox adaptive/static(64): {:.2}x",
        spsc[2] / spsc[1],
        inbox[2] / inbox[1]
    );
    println!(
        "idle latency adaptive/static(64): {:.3}x",
        idle[2] / idle[1]
    );
    println!("(acceptance: loaded ratios >= 0.95, idle ratio well below 1)");

    // Emitted at the repo root for tools/bench_gate.rs and the CI
    // artifact; overridable for local experiments.
    let out = bench_json_path("BENCH_ADAPTIVE_JSON", "BENCH_adaptive.json");
    write_flat_json(&out, &pairs);
    println!();
    println!("wrote {}", out.display());
}
