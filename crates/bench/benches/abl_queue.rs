//! Ablation: why the Folly-style SPSC ring.
//!
//! The paper's local data beaming uses a single-producer/single-consumer
//! shared-memory queue (its footnote cites Folly's). This ablation
//! compares our `anydb-stream` ring against a crossbeam bounded channel
//! and a mutex-guarded `VecDeque` under a one-producer/one-consumer
//! transfer of 64-bit items.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use anydb_bench::{figure_header, row};
use anydb_stream::spsc::spsc_channel;
use parking_lot::Mutex;

const ITEMS: u64 = 2_000_000;
const CAP: usize = 1024;

fn bench_spsc() -> f64 {
    let (mut tx, mut rx) = spsc_channel::<u64>(CAP);
    let start = Instant::now();
    let producer = std::thread::spawn(move || {
        for i in 0..ITEMS {
            tx.push_blocking(i).unwrap();
        }
    });
    let mut received = 0u64;
    while rx.pop_blocking().is_some() {
        received += 1;
    }
    producer.join().unwrap();
    assert_eq!(received, ITEMS);
    ITEMS as f64 / start.elapsed().as_secs_f64()
}

fn bench_crossbeam() -> f64 {
    let (tx, rx) = crossbeam::channel::bounded::<u64>(CAP);
    let start = Instant::now();
    let producer = std::thread::spawn(move || {
        for i in 0..ITEMS {
            tx.send(i).unwrap();
        }
    });
    let mut received = 0u64;
    while rx.recv().is_ok() {
        received += 1;
    }
    producer.join().unwrap();
    assert_eq!(received, ITEMS);
    ITEMS as f64 / start.elapsed().as_secs_f64()
}

fn bench_mutex_deque() -> f64 {
    let q = Arc::new(Mutex::new(VecDeque::<u64>::with_capacity(CAP)));
    let start = Instant::now();
    let producer = {
        let q = q.clone();
        std::thread::spawn(move || {
            for i in 0..ITEMS {
                loop {
                    let mut g = q.lock();
                    if g.len() < CAP {
                        g.push_back(i);
                        break;
                    }
                    drop(g);
                    std::thread::yield_now();
                }
            }
        })
    };
    let mut received = 0u64;
    let mut idle = anydb_common::backoff::Backoff::new();
    while received < ITEMS {
        let popped = q.lock().pop_front();
        if popped.is_some() {
            received += 1;
            idle.reset();
        } else {
            idle.wait();
        }
    }
    producer.join().unwrap();
    ITEMS as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    figure_header(
        "Ablation: SPSC ring vs alternatives (local data-beam transport)",
        "One producer, one consumer, 2M u64 items, capacity 1024.",
    );
    let widths = [26usize, 16];
    row(&["queue".into(), "M items/s".into()], &widths);
    let spsc = bench_spsc();
    row(
        &["anydb SpscRing".into(), format!("{:.1}", spsc / 1e6)],
        &widths,
    );
    let cb = bench_crossbeam();
    row(
        &["crossbeam bounded".into(), format!("{:.1}", cb / 1e6)],
        &widths,
    );
    let mx = bench_mutex_deque();
    row(
        &["Mutex<VecDeque>".into(), format!("{:.1}", mx / 1e6)],
        &widths,
    );
    println!();
    println!(
        "SpscRing vs crossbeam: {:.2}x, vs mutex deque: {:.2}x",
        spsc / cb,
        spsc / mx
    );
}
