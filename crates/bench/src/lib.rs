//! # anydb-bench
//!
//! Shared helpers for the figure-regeneration harnesses and ablation
//! benches. Each `benches/*.rs` target regenerates one figure (or one
//! ablation) of the paper and prints the same rows/series the paper
//! reports; `EXPERIMENTS.md` records paper-vs-measured side by side.

use std::time::Duration;

/// Prints a figure header with reproduction context.
pub fn figure_header(title: &str, notes: &str) {
    println!();
    println!("=== {title} ===");
    if !notes.is_empty() {
        println!("{notes}");
    }
    println!("host: {} logical cores", num_cpus_snapshot());
    println!();
}

/// Logical CPU count without extra dependencies.
pub fn num_cpus_snapshot() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Formats a duration as fractional milliseconds.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Formats a throughput as M tx/s with two decimals.
pub fn mtps(v: f64) -> String {
    format!("{:.2}", v / 1e6)
}

/// Prints one table row with `|`-separated, width-padded cells.
pub fn row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = *w))
        .collect();
    println!("| {} |", line.join(" | "));
}

/// Median of a sample set — what the repeated-run benches report, to
/// filter scheduler noise on the small CI host.
///
/// # Panics
/// Panics on an empty or NaN-containing sample set.
pub fn median(mut v: Vec<f64>) -> f64 {
    assert!(!v.is_empty(), "median of no samples");
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
    v[v.len() / 2]
}

/// Writes a flat `{"key": number, ...}` JSON file — the format
/// `tools/bench_gate.rs` parses. Shared by every JSON-emitting ablation.
///
/// # Panics
/// Panics if the file cannot be created or written (a bench host problem
/// worth failing loudly on).
pub fn write_flat_json(path: &std::path::Path, pairs: &[(String, f64)]) {
    use std::io::Write;
    let mut f =
        std::fs::File::create(path).unwrap_or_else(|e| panic!("create {}: {e}", path.display()));
    writeln!(f, "{{").unwrap();
    for (i, (k, v)) in pairs.iter().enumerate() {
        let comma = if i + 1 == pairs.len() { "" } else { "," };
        writeln!(f, "  \"{k}\": {v:.4}{comma}").unwrap();
    }
    writeln!(f, "}}").unwrap();
}

/// Resolves where a bench writes its JSON: the `env_var` override when
/// set (local experiments), else `file_name` at the repo root (where CI's
/// bench gate and artifact upload expect it).
pub fn bench_json_path(env_var: &str, file_name: &str) -> std::path::PathBuf {
    std::env::var(env_var).map_or_else(
        |_| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(file_name)
        },
        std::path::PathBuf::from,
    )
}

/// Measures wall-clock host parallel efficiency: ratio of 2-thread to
/// 1-thread throughput of a memory-touching loop. Documents why the OLTP
/// figures run in virtual time (DESIGN.md §2).
pub fn host_scaling_probe() -> f64 {
    use std::time::Instant;
    fn burn(ms_budget: u64) -> u64 {
        let start = Instant::now();
        let mut v = vec![0u64; 1 << 16];
        let mut i = 0u64;
        let mut n = 0u64;
        while start.elapsed() < Duration::from_millis(ms_budget) {
            for _ in 0..4096 {
                let idx = (i.wrapping_mul(0x9e3779b97f4a7c15) >> 48) as usize & 0xFFFF;
                v[idx] = v[idx].wrapping_add(i);
                i += 1;
            }
            n += 4096;
        }
        std::hint::black_box(&v);
        n
    }
    let solo = burn(150);
    let t1 = std::thread::spawn(|| burn(150));
    let t2 = std::thread::spawn(|| burn(150));
    let pair = t1.join().unwrap() + t2.join().unwrap();
    pair as f64 / solo as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(Duration::from_millis(12)), "12.00");
        assert_eq!(mtps(2_500_000.0), "2.50");
    }

    #[test]
    fn scaling_probe_reports_sane_ratio() {
        let r = host_scaling_probe();
        assert!(r > 0.3 && r < 4.0, "ratio {r}");
    }
}
