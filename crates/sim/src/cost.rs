//! The calibrated per-operation cost model.
//!
//! Costs are virtual nanoseconds per operation. The defaults are
//! calibrated so that a single executor running TPC-C payment lands near
//! the paper's single-TE baseline (~0.55–0.7 M tx/s) and match the
//! relative op weights we measured in the real engine (`anydb-core`),
//! where the customer leg (index scan + update + history insert)
//! dominates the two YTD updates. The `micro` bench re-measures the real
//! engine so the calibration can be checked against the host.

/// Virtual-time cost model (nanoseconds).
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Warehouse YTD update.
    pub op_warehouse_ns: u64,
    /// District YTD update.
    pub op_district_ns: u64,
    /// Customer resolve by primary key.
    pub resolve_by_id_ns: u64,
    /// Customer resolve by last name (the long range scan of Fig. 4 d).
    pub resolve_by_name_ns: u64,
    /// Customer balance/ytd/count update.
    pub op_customer_update_ns: u64,
    /// History row insert.
    pub op_history_ns: u64,
    /// Per-transaction begin/commit bookkeeping at an executor.
    pub txn_wrapup_ns: u64,
    /// Per-event hop: enqueue + dequeue + dispatch of one event.
    pub msg_ns: u64,
    /// Coordinator-side processing of one dispatched event or ack.
    pub coord_ns: u64,
    /// Lock acquire+release pair per record (lock-based baseline only).
    pub lock_pair_ns: u64,
    /// One full CH-Q3 execution on one executor.
    pub olap_q3_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            op_warehouse_ns: 250,
            op_district_ns: 250,
            resolve_by_id_ns: 150,
            resolve_by_name_ns: 430,
            op_customer_update_ns: 280,
            op_history_ns: 220,
            txn_wrapup_ns: 120,
            msg_ns: 120,
            coord_ns: 100,
            lock_pair_ns: 60,
            olap_q3_ns: 5_000_000,
        }
    }
}

impl CostModel {
    /// Cost of the customer leg for a given selector kind.
    pub fn customer_leg_ns(&self, by_name: bool) -> u64 {
        let resolve = if by_name {
            self.resolve_by_name_ns
        } else {
            self.resolve_by_id_ns
        };
        resolve + self.op_customer_update_ns + self.op_history_ns
    }

    /// Serial cost of one payment's storage work (no locks, no messages).
    pub fn payment_serial_ns(&self, by_name: bool) -> u64 {
        self.op_warehouse_ns + self.op_district_ns + self.customer_leg_ns(by_name)
    }

    /// Serial payment cost in the lock-based baseline (3 record locks).
    pub fn payment_locked_ns(&self, by_name: bool) -> u64 {
        self.payment_serial_ns(by_name) + 3 * self.lock_pair_ns + self.txn_wrapup_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_land_near_the_paper_baseline() {
        let c = CostModel::default();
        // Average payment (60% by name) under locks:
        let avg = 0.6 * c.payment_locked_ns(true) as f64 + 0.4 * c.payment_locked_ns(false) as f64;
        let tx_per_sec = 1e9 / avg;
        // Paper's single-TE baseline is ~0.55–0.7 M tx/s.
        assert!(
            (450_000.0..900_000.0).contains(&tx_per_sec),
            "calibration drifted: {tx_per_sec} tx/s"
        );
    }

    #[test]
    fn by_name_is_more_expensive() {
        let c = CostModel::default();
        assert!(c.customer_leg_ns(true) > c.customer_leg_ns(false));
        assert!(c.payment_serial_ns(true) > c.payment_serial_ns(false));
    }

    #[test]
    fn customer_leg_dominates_updates() {
        let c = CostModel::default();
        assert!(c.customer_leg_ns(true) > c.op_warehouse_ns + c.op_district_ns);
    }
}
