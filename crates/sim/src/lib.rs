//! # anydb-sim
//!
//! A deterministic virtual-time simulator of transaction execution for the
//! paper's OLTP experiments (Figures 1 and 5).
//!
//! ## Why a simulator?
//!
//! The paper's throughput claims are *architectural*: how serialization,
//! pipelining, and coordination overhead shift when the same transactions
//! are routed differently over the same components. Reproducing those
//! factors with wall-clock threads requires hardware parallelism the
//! reproduction host does not have (its 2 vCPUs were measured at ~1.3×
//! effective parallel speedup — see DESIGN.md §2). So, per the
//! substitution rule, the missing multi-core testbed is *simulated*: each
//! TE/AC is a queueing entity with a virtual clock; operation costs come
//! from a calibrated [`cost::CostModel`]; pipelining, idle partitions,
//! contended stages, and HTAP resource sharing all emerge from the queue
//! dynamics rather than from hand-written formulas.
//!
//! The real threaded engine (`anydb-core`) executes the identical
//! strategies for *correctness* (serializability, TPC-C invariants); this
//! crate reproduces their *timing*.

pub mod cost;
pub mod engine;
pub mod scenario;

pub use cost::CostModel;
pub use engine::{SimResult, SimStrategy, Simulator};
pub use scenario::{figure1_series, figure5_series, SeriesPoint};
