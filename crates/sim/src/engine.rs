//! The virtual-time queueing simulator.
//!
//! Every TE/AC is an *entity* with a virtual clock (`free_at`). A
//! saturated closed-loop client generates real TPC-C payment parameters
//! (same generators as the real engines, so skew and the 60/40
//! by-name/by-id mix are faithful); each transaction's work is charged to
//! entities according to the strategy's routing, and a transaction counts
//! as committed if it completes inside the virtual horizon.
//!
//! What emerges from the queue dynamics — without per-strategy formulas:
//!
//! * partitioned executors idle under skew (the Figure 5 collapse),
//! * pipeline throughput limited by the slowest stage (streaming CC),
//! * balanced vs. unbalanced sub-sequences (precise vs. static intra),
//! * per-op coordination overhead (static intra's round trips),
//! * OLAP jobs stealing executor time in the coupled baseline vs.
//!   running on a dedicated AC in AnyDB (the HTAP phases of Figure 1).

use std::time::Duration;

use anydb_common::dist::HotSpot;
use anydb_workload::phases::PhaseKind;
use anydb_workload::tpcc::gen::PaymentGen;
use anydb_workload::tpcc::{CustomerSelector, TpccConfig};

use crate::cost::CostModel;

/// Strategy under simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimStrategy {
    /// DBx1000-style static shared-nothing with lock overhead; OLAP
    /// queries run *on* the TEs.
    DbxTe {
        /// Number of transaction executors.
        executors: u32,
    },
    /// AnyDB acting shared-nothing (aggregated execution, no locks);
    /// OLAP on a dedicated AC.
    SharedNothing {
        /// Worker ACs.
        acs: u32,
    },
    /// Naive intra-transaction parallelism: one event per op, one
    /// coordinator round trip each.
    StaticIntra {
        /// Worker ACs (stage entities).
        acs: u32,
    },
    /// Balanced two-way split (Figure 4 d).
    PreciseIntra {
        /// Worker ACs.
        acs: u32,
    },
    /// Streaming CC: four-stage pipeline in stamp order.
    StreamingCc {
        /// Worker ACs.
        acs: u32,
    },
}

impl SimStrategy {
    /// Legend label.
    pub fn label(&self) -> String {
        match self {
            SimStrategy::DbxTe { executors } => format!("DBx1000 {executors}TE"),
            SimStrategy::SharedNothing { .. } => "AnyDB Shared-Nothing".into(),
            SimStrategy::StaticIntra { .. } => "AnyDB Static Intra-Txn".into(),
            SimStrategy::PreciseIntra { .. } => "AnyDB Precise Intra-Txn".into(),
            SimStrategy::StreamingCc { .. } => "AnyDB Streaming CC".into(),
        }
    }
}

/// Result of one simulated phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Transactions committed within the horizon.
    pub committed: u64,
    /// OLAP queries completed within the horizon.
    pub olap_queries: u64,
    /// The virtual horizon.
    pub horizon: Duration,
}

impl SimResult {
    /// OLTP throughput in (virtual) transactions per second.
    pub fn tx_per_sec(&self) -> f64 {
        self.committed as f64 / self.horizon.as_secs_f64()
    }
}

/// The simulator: cost model + workload scale.
pub struct Simulator {
    cost: CostModel,
    tpcc: TpccConfig,
    /// OLAP slowdown multiplier when queries share executors with OLTP
    /// (cache/latch interference in the coupled baseline).
    olap_interference: f64,
}

impl Simulator {
    /// New simulator over a workload scale.
    pub fn new(cost: CostModel, tpcc: TpccConfig) -> Self {
        Self {
            cost,
            tpcc,
            olap_interference: 1.25,
        }
    }

    /// The cost model in use.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Runs one phase in virtual time.
    pub fn run_phase(
        &self,
        strategy: SimStrategy,
        kind: PhaseKind,
        horizon: Duration,
        seed: u64,
    ) -> SimResult {
        let dist = kind.warehouse_dist(self.tpcc.warehouses);
        self.run_with_dist(strategy, kind, dist, horizon, seed)
    }

    /// Runs with an explicit warehouse distribution (contention-sweep
    /// ablations use this to dial skew continuously).
    pub fn run_with_dist(
        &self,
        strategy: SimStrategy,
        kind: PhaseKind,
        dist: HotSpot,
        horizon: Duration,
        seed: u64,
    ) -> SimResult {
        match strategy {
            SimStrategy::DbxTe { executors } => {
                self.run_partitioned(executors, kind, dist, horizon, seed, true)
            }
            SimStrategy::SharedNothing { acs } => {
                self.run_partitioned(acs, kind, dist, horizon, seed, false)
            }
            SimStrategy::StreamingCc { acs } => {
                self.run_pipelined(acs, kind, dist, horizon, seed, PipelineKind::Streaming)
            }
            SimStrategy::PreciseIntra { acs } => {
                self.run_pipelined(acs, kind, dist, horizon, seed, PipelineKind::Precise)
            }
            SimStrategy::StaticIntra { acs } => {
                self.run_pipelined(acs, kind, dist, horizon, seed, PipelineKind::Static)
            }
        }
    }

    /// Whole transactions at the entity owning the home warehouse.
    /// `locked` charges the 2PL overhead (DBx1000); otherwise the
    /// aggregated AnyDB execution (ordering by ownership, no locks).
    fn run_partitioned(
        &self,
        n: u32,
        kind: PhaseKind,
        dist: HotSpot,
        horizon: Duration,
        seed: u64,
        locked: bool,
    ) -> SimResult {
        let n = n.max(1) as usize;
        let horizon_ns = horizon.as_nanos() as u64;
        let mut gen = PaymentGen::new(self.tpcc.clone(), dist, seed);

        // OLAP budgeting (fluid): one query outstanding system-wide.
        // Coupled baseline: queries round-robin over the TEs, stealing
        // executor time (and running slower from interference).
        // AnyDB: a dedicated OLAP AC; worker budgets untouched.
        let mut budget = vec![horizon_ns; n];
        // The phase's concurrent stream count scales the analytics load:
        // HTAP phases run one stream, the OLAP-heavy batch window several.
        let streams = kind.olap_streams() as u64;
        let olap_queries = if streams > 0 {
            if locked {
                let q = (self.cost.olap_q3_ns as f64 * self.olap_interference) as u64;
                let total = (horizon_ns / q) * streams;
                // Each TE loses its round-robin share of query time — a
                // heavy batch window can consume a coupled TE entirely.
                for b in budget.iter_mut() {
                    *b = b.saturating_sub((total / n as u64) * q);
                }
                total
            } else {
                (horizon_ns / self.cost.olap_q3_ns) * streams
            }
        } else {
            0
        };

        let mut used = vec![0u64; n];
        let mut committed = 0u64;
        loop {
            let p = gen.next();
            let by_name = matches!(p.customer, CustomerSelector::ByLastName(_));
            let cost = if locked {
                self.cost.payment_locked_ns(by_name)
            } else {
                self.cost.payment_serial_ns(by_name) + self.cost.txn_wrapup_ns
            };
            let e = ((p.w_id - 1) as usize) % n;
            if used[e] + cost <= budget[e] {
                used[e] += cost;
                committed += 1;
            } else {
                // The phase ends when the *bottleneck* partition can no
                // longer absorb the offered stream: clients are a closed
                // loop over one shared arrival order, so once the hottest
                // entity falls behind, the system as a whole is saturated.
                // (Letting the cold entities keep filling would measure
                // aggregate capacity, not throughput under this skew.)
                break;
            }
        }
        SimResult {
            committed,
            olap_queries,
            horizon,
        }
    }

    /// Decomposed execution over stage entities.
    fn run_pipelined(
        &self,
        acs: u32,
        kind: PhaseKind,
        dist: HotSpot,
        horizon: Duration,
        seed: u64,
        pk: PipelineKind,
    ) -> SimResult {
        let horizon_ns = horizon.as_nanos() as u64;
        let mut gen = PaymentGen::new(self.tpcc.clone(), dist, seed);
        let c = &self.cost;

        let n_entities = acs.max(1) as usize;
        let mut entity_free = vec![0u64; n_entities];
        // A coordinator entity serializes per-op dispatch/ack processing
        // for the naive static strategy.
        let mut coord_free = 0u64;
        let mut committed = 0u64;

        // AnyDB routes OLAP to dedicated ACs in HTAP phases: the OLTP
        // pipeline is unaffected, and the batch window's extra streams
        // just mean more dedicated ACs (the elasticity of §4).
        let olap_queries = (horizon_ns / c.olap_q3_ns) * kind.olap_streams() as u64;

        loop {
            let p = gen.next();
            let by_name = matches!(p.customer, CustomerSelector::ByLastName(_));

            // Stage decomposition: (stage index, op cost) per group.
            let groups: Vec<(usize, u64)> = match pk {
                PipelineKind::Streaming => vec![
                    (0, c.op_warehouse_ns),
                    (1, c.op_district_ns),
                    (
                        2,
                        if by_name {
                            c.resolve_by_name_ns
                        } else {
                            c.resolve_by_id_ns
                        },
                    ),
                    (3, c.op_customer_update_ns + c.op_history_ns),
                ],
                PipelineKind::Precise => vec![
                    (0, c.op_warehouse_ns + c.op_district_ns),
                    (1, c.customer_leg_ns(by_name)),
                ],
                PipelineKind::Static => vec![
                    (0, c.op_warehouse_ns),
                    (1, c.op_district_ns),
                    (
                        2,
                        if by_name {
                            c.resolve_by_name_ns
                        } else {
                            c.resolve_by_id_ns
                        },
                    ),
                    (3, c.op_customer_update_ns),
                    (4, c.op_history_ns),
                ],
            };

            let mut completion = 0u64;
            for (stage, op_cost) in &groups {
                let e = stage % n_entities;
                // Stamp order == generation order: each stage is a FIFO
                // queue, so its clock just accumulates.
                let msgs = match pk {
                    // Fire-and-forget: one inbound event hop per group.
                    PipelineKind::Streaming | PipelineKind::Precise => c.msg_ns,
                    // Per-op dispatch *and* ack hop charged at the stage.
                    PipelineKind::Static => 2 * c.msg_ns,
                };
                entity_free[e] += msgs + op_cost;
                completion = completion.max(entity_free[e]);
            }
            if pk == PipelineKind::Static {
                // Coordinator processes one dispatch and one ack per op,
                // plus commit bookkeeping; overlapped across transactions
                // (the client keeps a window open) but serialized at the
                // coordinator itself.
                coord_free += groups.len() as u64 * 2 * c.coord_ns + c.txn_wrapup_ns;
                completion = completion.max(coord_free);
            }

            if completion <= horizon_ns {
                committed += 1;
            }
            let all_saturated = entity_free.iter().all(|f| *f >= horizon_ns)
                && (pk != PipelineKind::Static || coord_free >= horizon_ns);
            if all_saturated || completion > horizon_ns.saturating_mul(2) {
                break;
            }
        }

        SimResult {
            committed,
            olap_queries,
            horizon,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PipelineKind {
    Streaming,
    Precise,
    Static,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> Simulator {
        Simulator::new(
            CostModel::default(),
            TpccConfig {
                warehouses: 4,
                ..TpccConfig::default()
            },
        )
    }

    fn mtps(r: &SimResult) -> f64 {
        r.tx_per_sec() / 1e6
    }

    const HORIZON: Duration = Duration::from_millis(40);

    #[test]
    fn dbx_scales_when_partitionable() {
        let s = sim();
        let one = s.run_phase(
            SimStrategy::DbxTe { executors: 1 },
            PhaseKind::OltpPartitionable,
            HORIZON,
            1,
        );
        let four = s.run_phase(
            SimStrategy::DbxTe { executors: 4 },
            PhaseKind::OltpPartitionable,
            HORIZON,
            1,
        );
        let ratio = four.tx_per_sec() / one.tx_per_sec();
        assert!(
            (3.3..=4.2).contains(&ratio),
            "expected ~4x scaling, got {ratio}"
        );
    }

    #[test]
    fn dbx_collapses_under_skew() {
        // The Figure 5 anchor: 4 TEs perform like 1 TE under full skew.
        let s = sim();
        let one = s.run_phase(
            SimStrategy::DbxTe { executors: 1 },
            PhaseKind::OltpSkewed,
            HORIZON,
            2,
        );
        let four = s.run_phase(
            SimStrategy::DbxTe { executors: 4 },
            PhaseKind::OltpSkewed,
            HORIZON,
            2,
        );
        let ratio = four.tx_per_sec() / one.tx_per_sec();
        assert!((0.9..=1.1).contains(&ratio), "4TE/1TE under skew: {ratio}");
    }

    #[test]
    fn paper_ordering_under_skew() {
        // Figure 5, phases 3-5: baseline < static intra < precise intra
        // < streaming CC.
        let s = sim();
        let base = s.run_phase(
            SimStrategy::DbxTe { executors: 4 },
            PhaseKind::OltpSkewed,
            HORIZON,
            3,
        );
        let stat = s.run_phase(
            SimStrategy::StaticIntra { acs: 5 },
            PhaseKind::OltpSkewed,
            HORIZON,
            3,
        );
        let precise = s.run_phase(
            SimStrategy::PreciseIntra { acs: 2 },
            PhaseKind::OltpSkewed,
            HORIZON,
            3,
        );
        let streaming = s.run_phase(
            SimStrategy::StreamingCc { acs: 4 },
            PhaseKind::OltpSkewed,
            HORIZON,
            3,
        );
        assert!(
            base.tx_per_sec() < stat.tx_per_sec(),
            "baseline {} !< static {}",
            mtps(&base),
            mtps(&stat)
        );
        assert!(
            stat.tx_per_sec() < precise.tx_per_sec(),
            "static {} !< precise {}",
            mtps(&stat),
            mtps(&precise)
        );
        assert!(
            precise.tx_per_sec() < streaming.tx_per_sec(),
            "precise {} !< streaming {}",
            mtps(&precise),
            mtps(&streaming)
        );
        // Rough factors from the paper: streaming ≈ 2.4x baseline.
        let factor = streaming.tx_per_sec() / base.tx_per_sec();
        assert!((1.8..=3.5).contains(&factor), "streaming/baseline {factor}");
    }

    #[test]
    fn shared_nothing_matches_baseline_when_partitionable() {
        let s = sim();
        let dbx = s.run_phase(
            SimStrategy::DbxTe { executors: 4 },
            PhaseKind::OltpPartitionable,
            HORIZON,
            4,
        );
        let sn = s.run_phase(
            SimStrategy::SharedNothing { acs: 4 },
            PhaseKind::OltpPartitionable,
            HORIZON,
            4,
        );
        let ratio = sn.tx_per_sec() / dbx.tx_per_sec();
        assert!(
            (0.95..=1.35).contains(&ratio),
            "AnyDB SN vs DBx partitionable: {ratio}"
        );
    }

    #[test]
    fn htap_hurts_coupled_baseline_not_anydb() {
        let s = sim();
        let dbx_oltp = s.run_phase(
            SimStrategy::DbxTe { executors: 4 },
            PhaseKind::OltpPartitionable,
            HORIZON,
            5,
        );
        let dbx_htap = s.run_phase(
            SimStrategy::DbxTe { executors: 4 },
            PhaseKind::HtapPartitionable,
            HORIZON,
            5,
        );
        assert!(
            dbx_htap.tx_per_sec() < dbx_oltp.tx_per_sec() * 0.9,
            "coupled baseline should dip: {} vs {}",
            mtps(&dbx_htap),
            mtps(&dbx_oltp)
        );
        assert!(dbx_htap.olap_queries > 0);

        let any_oltp = s.run_phase(
            SimStrategy::SharedNothing { acs: 4 },
            PhaseKind::OltpPartitionable,
            HORIZON,
            5,
        );
        let any_htap = s.run_phase(
            SimStrategy::SharedNothing { acs: 4 },
            PhaseKind::HtapPartitionable,
            HORIZON,
            5,
        );
        let ratio = any_htap.tx_per_sec() / any_oltp.tx_per_sec();
        assert!(
            ratio > 0.97,
            "AnyDB OLTP must be isolated from OLAP: {ratio}"
        );
        // And AnyDB completes at least as many analytics queries.
        assert!(any_htap.olap_queries >= dbx_htap.olap_queries);
    }

    #[test]
    fn absolute_throughput_in_paper_ballpark() {
        // Paper: ~2.1 M tx/s partitionable with 4 workers, ~0.7 M serial.
        let s = sim();
        let four = s.run_phase(
            SimStrategy::DbxTe { executors: 4 },
            PhaseKind::OltpPartitionable,
            HORIZON,
            6,
        );
        let m = mtps(&four);
        assert!((1.5..=3.5).contains(&m), "partitionable 4TE = {m} M tx/s");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let s = sim();
        let a = s.run_phase(
            SimStrategy::StreamingCc { acs: 4 },
            PhaseKind::OltpSkewed,
            HORIZON,
            7,
        );
        let b = s.run_phase(
            SimStrategy::StreamingCc { acs: 4 },
            PhaseKind::OltpSkewed,
            HORIZON,
            7,
        );
        assert_eq!(a, b);
    }
}
