//! Figure scenarios: the series the paper plots, plus the day-in-the-life
//! morphing comparison (DESIGN.md §11) — the *real*
//! [`MorphController`] driven in virtual time against every static
//! strategy.

use std::time::Duration;

use anydb_common::metrics::LoadSnapshot;
use anydb_core::morph::{MorphConfig, MorphController};
use anydb_core::strategy::Strategy;
use anydb_workload::phases::{PhaseKind, PhaseSchedule};
use anydb_workload::tpcc::TpccConfig;

use crate::cost::CostModel;
use crate::engine::{SimStrategy, Simulator};

/// Per-phase choice of simulated strategy for one plotted series.
type StrategyFactory = Box<dyn Fn(PhaseKind) -> SimStrategy>;

/// One point of one series: phase index on the x-axis, M tx/s on the y.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// Phase index.
    pub phase: u32,
    /// Phase regime label.
    pub phase_label: &'static str,
    /// OLTP throughput in million transactions per second.
    pub mtps: f64,
    /// OLAP queries per second (0 outside HTAP phases).
    pub olap_qps: f64,
}

fn run_series(
    sim: &Simulator,
    schedule: &PhaseSchedule,
    strategy_for: impl Fn(PhaseKind) -> SimStrategy,
    horizon: Duration,
    seed: u64,
) -> Vec<SeriesPoint> {
    schedule
        .phases()
        .iter()
        .map(|phase| {
            let strategy = strategy_for(phase.kind);
            let r = sim.run_phase(strategy, phase.kind, horizon, seed ^ phase.index as u64);
            SeriesPoint {
                phase: phase.index,
                phase_label: phase.kind.label(),
                mtps: r.tx_per_sec() / 1e6,
                olap_qps: r.olap_queries as f64 / horizon.as_secs_f64(),
            }
        })
        .collect()
}

/// Figure 1: AnyDB (adaptive, per-phase architecture) vs. DBx1000
/// (static shared-nothing) across the 12 evolving phases.
///
/// Returns `(anydb, dbx1000)` series. AnyDB's per-phase choice is exactly
/// the paper's: shared-nothing + inter-txn parallelism while the workload
/// is partitionable, streaming CC once it skews, OLAP always routed to
/// disaggregated ACs.
pub fn figure1_series(
    workers: u32,
    horizon: Duration,
    seed: u64,
) -> (Vec<SeriesPoint>, Vec<SeriesPoint>) {
    let sim = Simulator::new(
        CostModel::default(),
        TpccConfig {
            warehouses: workers,
            ..TpccConfig::default()
        },
    );
    let schedule = PhaseSchedule::figure1();
    let anydb = run_series(
        &sim,
        &schedule,
        |kind| {
            if kind.is_skewed() {
                SimStrategy::StreamingCc { acs: workers }
            } else {
                SimStrategy::SharedNothing { acs: workers }
            }
        },
        horizon,
        seed,
    );
    let dbx = run_series(
        &sim,
        &schedule,
        |_| SimStrategy::DbxTe { executors: workers },
        horizon,
        seed,
    );
    (anydb, dbx)
}

/// Figure 5: the six series over the 6-phase OLTP schedule.
///
/// Returns `(label, series)` pairs in the paper's legend order.
pub fn figure5_series(
    workers: u32,
    horizon: Duration,
    seed: u64,
) -> Vec<(String, Vec<SeriesPoint>)> {
    let sim = Simulator::new(
        CostModel::default(),
        TpccConfig {
            warehouses: workers,
            ..TpccConfig::default()
        },
    );
    let schedule = PhaseSchedule::figure5();
    let strategies: Vec<(String, StrategyFactory)> = vec![
        (
            format!("DBx1000 {workers}TE"),
            Box::new(move |_| SimStrategy::DbxTe { executors: workers }),
        ),
        (
            "DBx1000 1TE".into(),
            Box::new(|_| SimStrategy::DbxTe { executors: 1 }),
        ),
        (
            "AnyDB Shared-Nothing".into(),
            Box::new(move |_| SimStrategy::SharedNothing { acs: workers }),
        ),
        (
            "AnyDB Streaming CC".into(),
            Box::new(move |_| SimStrategy::StreamingCc { acs: workers }),
        ),
        (
            "AnyDB Static Intra-Txn".into(),
            Box::new(move |_| SimStrategy::StaticIntra { acs: workers + 1 }),
        ),
        (
            "AnyDB Precise Intra-Txn".into(),
            Box::new(|_| SimStrategy::PreciseIntra { acs: 2 }),
        ),
    ];
    strategies
        .into_iter()
        .map(|(label, f)| (label, run_series(&sim, &schedule, f, horizon, seed)))
        .collect()
}

/// The engine strategy priced as its simulated counterpart, with the
/// exact entity counts `figure5_series` uses for each arm.
fn sim_strategy(s: Strategy, workers: u32) -> SimStrategy {
    match s {
        Strategy::SharedNothing => SimStrategy::SharedNothing { acs: workers },
        Strategy::StreamingCc => SimStrategy::StreamingCc { acs: workers },
        Strategy::StaticIntra => SimStrategy::StaticIntra { acs: workers + 1 },
        Strategy::PreciseIntra => SimStrategy::PreciseIntra { acs: 2 },
    }
}

fn static_label(s: Strategy) -> &'static str {
    match s {
        Strategy::SharedNothing => "AnyDB Shared-Nothing",
        Strategy::StreamingCc => "AnyDB Streaming CC",
        Strategy::StaticIntra => "AnyDB Static Intra-Txn",
        Strategy::PreciseIntra => "AnyDB Precise Intra-Txn",
    }
}

/// The day-in-the-life comparison (DESIGN.md §11).
#[derive(Debug, Clone)]
pub struct DaySeries {
    /// `(label, series)` arms: "AnyDB Morphing" first, then one static
    /// arm per [`Strategy`] in `Strategy::ALL` order.
    pub arms: Vec<(String, Vec<SeriesPoint>)>,
    /// Plan switches the controller took over the day.
    pub morph_switches: u64,
    /// The strategy the morphing arm actually ran, per phase.
    pub morph_sequence: Vec<Strategy>,
}

/// The morphing engine against every static strategy over the
/// [`PhaseSchedule::day_in_the_life`] schedule.
///
/// The morphing arm runs the *real* [`MorphController`] — the same code
/// the live engine hosts on driver 0 — in virtual time: each phase feeds
/// it one telemetry window synthesized from the phase's observable shape
/// (skew concentrates the queued backlog on one home partition, a
/// partitionable mix spreads it; exactly what the live engine samples),
/// and the phase then executes under whatever plan the controller stands
/// behind. No static arm can win the whole day — that is the claim the
/// bench gate holds (`abl_morph`).
pub fn day_in_the_life_series(workers: u32, horizon: Duration, seed: u64) -> DaySeries {
    let sim = Simulator::new(
        CostModel::default(),
        TpccConfig {
            warehouses: workers,
            ..TpccConfig::default()
        },
    );
    let schedule = PhaseSchedule::day_in_the_life();

    // One controller across the whole day; a sim phase is one big
    // transaction window, so the dwell spans half a phase — switches at
    // phase boundaries stay possible, thrash inside one is not.
    let mut ctl = MorphController::new(
        Strategy::SharedNothing,
        MorphConfig {
            acs: workers,
            dwell: horizon / 2,
            ..MorphConfig::default()
        },
    );
    let mut morph = Vec::new();
    let mut morph_sequence = Vec::new();
    for phase in schedule.phases() {
        let backlog = 64u64;
        let hot = if phase.kind.is_skewed() {
            backlog
        } else {
            backlog / workers.max(1) as u64
        };
        let snap = LoadSnapshot {
            oltp_committed: 100,
            olap_completed: phase.kind.olap_streams() as u64,
            depth_samples: 1,
            depth_hot: hot,
            depth_total: backlog,
            windows: 1,
            ..Default::default()
        };
        ctl.observe(horizon * phase.index, &snap);
        morph_sequence.push(ctl.current());
        let r = sim.run_phase(
            sim_strategy(ctl.current(), workers),
            phase.kind,
            horizon,
            seed ^ phase.index as u64,
        );
        morph.push(SeriesPoint {
            phase: phase.index,
            phase_label: phase.kind.label(),
            mtps: r.tx_per_sec() / 1e6,
            olap_qps: r.olap_queries as f64 / horizon.as_secs_f64(),
        });
    }

    let mut arms = vec![("AnyDB Morphing".to_string(), morph)];
    for s in Strategy::ALL {
        arms.push((
            static_label(s).to_string(),
            run_series(&sim, &schedule, |_| sim_strategy(s, workers), horizon, seed),
        ));
    }
    DaySeries {
        arms,
        morph_switches: ctl.switches(),
        morph_sequence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const H: Duration = Duration::from_millis(40);

    #[test]
    fn figure1_shape_holds() {
        let (anydb, dbx) = figure1_series(4, H, 42);
        assert_eq!(anydb.len(), 12);
        assert_eq!(dbx.len(), 12);
        for (a, d) in anydb.iter().zip(&dbx) {
            // AnyDB never loses to the static architecture…
            assert!(
                a.mtps >= d.mtps * 0.95,
                "phase {} ({}): AnyDB {} < DBx {}",
                a.phase,
                a.phase_label,
                a.mtps,
                d.mtps
            );
        }
        // …matches it when the static architecture is optimal…
        let a0 = anydb[0].mtps;
        let d0 = dbx[0].mtps;
        assert!((a0 / d0) < 1.4, "phase 0 should be close: {a0} vs {d0}");
        // …and clearly wins under skew (paper: ~2.4x).
        let a4 = anydb[4].mtps;
        let d4 = dbx[4].mtps;
        assert!(a4 / d4 > 1.8, "skewed phase: AnyDB {a4} vs DBx {d4}");
        // HTAP phases dent the baseline, not AnyDB.
        assert!(dbx[7].mtps < dbx[4].mtps);
        assert!(anydb[7].mtps > dbx[7].mtps);
        // OLAP runs only in HTAP phases.
        assert_eq!(anydb[0].olap_qps, 0.0);
        assert!(anydb[7].olap_qps > 0.0);
    }

    #[test]
    fn figure5_legend_and_ordering() {
        let series = figure5_series(4, H, 43);
        assert_eq!(series.len(), 6);
        let get = |label: &str| -> &Vec<SeriesPoint> {
            &series.iter().find(|(l, _)| l == label).unwrap().1
        };
        let base4 = get("DBx1000 4TE");
        let base1 = get("DBx1000 1TE");
        let sn = get("AnyDB Shared-Nothing");
        let streaming = get("AnyDB Streaming CC");
        let stat = get("AnyDB Static Intra-Txn");
        let precise = get("AnyDB Precise Intra-Txn");

        // Partitionable phase 0: 4TE ≈ SN, both well above 1TE.
        assert!(base4[0].mtps > base1[0].mtps * 3.0);
        assert!((sn[0].mtps / base4[0].mtps) > 0.95);

        // Skewed phase 4: 4TE ≈ 1TE; ordering base < static < precise <
        // streaming, the Figure 5 result.
        let p = 4;
        assert!((base4[p].mtps / base1[p].mtps) < 1.2);
        assert!(base4[p].mtps < stat[p].mtps);
        assert!(stat[p].mtps < precise[p].mtps);
        assert!(precise[p].mtps < streaming[p].mtps);
    }

    #[test]
    fn day_in_the_life_morphing_beats_every_static() {
        let day = day_in_the_life_series(4, H, 44);
        assert_eq!(day.arms.len(), 5);
        assert_eq!(day.arms[0].0, "AnyDB Morphing");
        let total = |s: &[SeriesPoint]| s.iter().map(|p| p.mtps).sum::<f64>();
        let morph = &day.arms[0].1;
        // End-to-end: morphing at least matches the best static day.
        for (label, series) in &day.arms[1..] {
            assert!(
                total(morph) >= total(series) * 0.999,
                "{label} won the day: {} vs morph {}",
                total(series),
                total(morph)
            );
            // And every static strategy loses at least one phase to it.
            assert!(
                morph
                    .iter()
                    .zip(series)
                    .any(|(m, s)| m.mtps > s.mtps * 1.05),
                "{label} never clearly beaten"
            );
        }
        // The controller actually morphed: SN through the morning, CC for
        // the rush, back for the spread-out evening — at least 2 switches.
        assert!(day.morph_switches >= 2, "switches {}", day.morph_switches);
        assert_eq!(day.morph_sequence.len(), 12);
        assert_eq!(day.morph_sequence[0], Strategy::SharedNothing);
        assert!(day.morph_sequence.contains(&Strategy::StreamingCc));
    }

    #[test]
    fn day_in_the_life_is_deterministic() {
        let a = day_in_the_life_series(4, H, 45);
        let b = day_in_the_life_series(4, H, 45);
        assert_eq!(a.morph_sequence, b.morph_sequence);
        assert_eq!(a.arms, b.arms);
    }
}
