//! Offline stand-in for `parking_lot`.
//!
//! Wraps the std locks behind parking_lot's API shape: `lock()` /
//! `read()` / `write()` return guards directly (no poisoning in the
//! signature). A poisoned std lock is recovered rather than propagated —
//! parking_lot has no poisoning at all, and AnyDB treats a panic while
//! holding a lock as fatal to the test anyway.

use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Mutual exclusion lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
