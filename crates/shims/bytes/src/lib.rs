//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the external
//! dependencies of the seed are provided as local shims implementing
//! exactly the API surface AnyDB uses (see the workspace manifest). This
//! one covers the `Buf`/`BufMut`/`Bytes`/`BytesMut` subset the tuple and
//! WAL codecs rely on. Encoding is big-endian, matching the real crate's
//! `put_u32`/`get_u32` family.

use std::sync::Arc;

/// Read cursor over a contiguous byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `n` bytes.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian i64.
    fn get_i64(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_be_bytes(b)
    }

    /// Reads a big-endian f64.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    /// Copies `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let n = dst.len();
        dst.copy_from_slice(&self.chunk()[..n]);
        self.advance(n);
    }
}

/// Write sink for the codec side.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian i64.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian f64.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// Growable byte buffer; freeze into an immutable [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts to an immutable, cheaply clonable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::from(self.data.into_boxed_slice()),
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Immutable shared byte buffer with an internal read cursor.
///
/// Cloning is cheap (the storage is `Arc`'d); each clone has its own
/// cursor, so `Tuple::decode(&bytes)` can read without disturbing the
/// caller's view — same observable behavior as the real crate's
/// slice-advancing `Bytes`.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    pos: usize,
}

impl Bytes {
    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: Arc::from(src),
            pos: 0,
        }
    }

    /// Buffer over a static slice (copied; see [`Bytes::slice`]).
    pub fn from_static(src: &'static [u8]) -> Self {
        Bytes::copy_from_slice(src)
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// A new buffer over `range` of the unconsumed bytes. Copies rather
    /// than sharing storage (the real crate shares; no caller here is on a
    /// path where the copy matters).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::copy_from_slice(&self.chunk()[range])
    }

    /// True if fully consumed (or empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes {
            data: Arc::from(Vec::new().into_boxed_slice()),
            pos: 0,
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.chunk() == other.chunk()
    }
}
impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.pos += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::with_capacity(64);
        b.put_u8(7);
        b.put_u16(300);
        b.put_u32(70_000);
        b.put_u64(1 << 40);
        b.put_i64(-5);
        b.put_f64(1.5);
        b.put_slice(b"xyz");
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 300);
        assert_eq!(r.get_u32(), 70_000);
        assert_eq!(r.get_u64(), 1 << 40);
        assert_eq!(r.get_i64(), -5);
        assert_eq!(r.get_f64(), 1.5);
        let mut s = [0u8; 3];
        r.copy_to_slice(&mut s);
        assert_eq!(&s, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn clone_has_independent_cursor() {
        let mut b = BytesMut::new();
        b.put_u32(9);
        let frozen = b.freeze();
        let mut a = frozen.clone();
        assert_eq!(a.get_u32(), 9);
        assert_eq!(a.remaining(), 0);
        assert_eq!(frozen.remaining(), 4);
    }
}
